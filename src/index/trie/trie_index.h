// High-cardinality exact-match index (paper §V-C1): a binary trie over
// 128-bit keys, truncated per key to its longest common prefix plus 8 extra
// bits, componentized for object storage:
//
//   * leaf components: sorted truncated keys + page-id posting lists,
//     each component ~64KB serialized;
//   * root component (written last, so it rides in the directory tail
//     read): a 256-entry first-byte lookup table replacing the top 8 trie
//     levels, plus each leaf's first key for routing.
//
// A lookup therefore costs two dependent rounds: tail read (directory +
// root), then exactly the leaf component(s) that can contain the key.
// Truncation makes the index false-positive-tolerant — multiple keys may
// collapse into one node after merges — which is sound because every hit is
// verified in situ against the data pages (paper §IV-B step 3).
#ifndef ROTTNEST_INDEX_TRIE_TRIE_INDEX_H_
#define ROTTNEST_INDEX_TRIE_TRIE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "format/page_table.h"
#include "index/component_file.h"

namespace rottnest::index {

/// A 128-bit key, compared big-endian bitwise (bit 0 = MSB of hi).
struct Key128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  /// Bit i (0 = most significant).
  bool Bit(int i) const {
    return i < 64 ? (hi >> (63 - i)) & 1 : (lo >> (127 - i)) & 1;
  }

  /// Keeps the first `bits` bits, zeroing the rest.
  Key128 Truncate(int bits) const;

  /// Length of the common prefix with `other`, in bits (0..128).
  int CommonPrefixLen(const Key128& other) const;

  bool operator==(const Key128& o) const { return hi == o.hi && lo == o.lo; }
  bool operator<(const Key128& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
};

/// Canonical key for a column value: raw bytes for 16-byte values (true
/// UUIDs), a 128-bit hash otherwise. Build and query must agree, so both
/// use this function.
Key128 KeyFromValue(Slice value);

/// Accumulates (key, page) postings and emits a trie index file.
class TrieIndexBuilder {
 public:
  explicit TrieIndexBuilder(std::string column) : column_(std::move(column)) {}

  /// Registers that `key` occurs in page `page` (of the page table passed
  /// to Finish).
  void Add(Key128 key, format::PageId page);

  /// Number of postings added.
  size_t num_postings() const { return postings_.size(); }

  /// Builds the index file image. `pages` is embedded as the "pagetable"
  /// component so searches can resolve page ids without other metadata.
  Status Finish(const format::PageTable& pages, Buffer* out) {
    return Finish(pages, nullptr, out);
  }

  /// Parallel variant: leaf serialization and compression fan out on `pool`
  /// (nullptr = inline). The emitted image is byte-identical at any thread
  /// count — the leaf partition and the append order are fixed before any
  /// work is distributed.
  Status Finish(const format::PageTable& pages, ThreadPool* pool, Buffer* out);

 private:
  std::string column_;
  std::vector<std::pair<Key128, format::PageId>> postings_;
};

/// One trie node as stored: a truncated key (zero-padded) and its pages.
/// Nodes are prefix-free within one index file, so at most one node can be
/// a prefix of any query key.
struct TrieEntry {
  Key128 key;        ///< First `bits` bits significant, rest zero.
  uint8_t bits = 0;  ///< Truncated length in bits, 1..128.
  std::vector<format::PageId> pages;
};

/// Looks up `key`, appending page ids of every node whose truncated key is
/// a prefix of `key`. Two dependent IO rounds (root already cached by the
/// reader's tail read, one round for leaves).
Status TrieQuery(ComponentFileReader* reader, ThreadPool* pool,
                 objectstore::IoTrace* trace, const Key128& key,
                 std::vector<format::PageId>* pages);

/// Loads the embedded page table.
Status LoadPageTable(ComponentFileReader* reader, ThreadPool* pool,
                     objectstore::IoTrace* trace, format::PageTable* out);

/// Merges several trie index files into one (LSM-style compaction). The
/// merged file's page table is the concatenation of the inputs' tables;
/// postings are remapped accordingly. Colliding truncated keys (one a
/// prefix of another) are coalesced, trading false positives for bounded
/// merge cost — as §V-C1 prescribes.
///
/// The merge streams: a k-way merge holds one parsed leaf per input (leaves
/// are evicted from the reader cache once consumed) and emits output leaves
/// as they fill, so peak memory is O(inputs × leaf) instead of the sum of
/// all input entries. Output bytes are independent of `pool`.
Status TrieMerge(const std::vector<ComponentFileReader*>& inputs,
                 ThreadPool* pool, objectstore::IoTrace* trace,
                 const std::string& column, Buffer* out);

/// Internal: parses the leaf-entry stream of one component. Exposed for
/// merge and tests.
Status ParseTrieLeaf(Slice payload, std::vector<TrieEntry>* out);

}  // namespace rottnest::index

#endif  // ROTTNEST_INDEX_TRIE_TRIE_INDEX_H_
