#include "index/trie/trie_index.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"
#include "compress/bitpack.h"

namespace rottnest::index {

namespace {

constexpr size_t kTargetLeafBytes = 64 << 10;
constexpr int kExtraBits = 8;  ///< Indexed beyond the LCP (paper §V-C1).
constexpr const char* kPageTableComponent = "pagetable";
constexpr const char* kRootComponent = "root";

std::string LeafName(size_t i) { return "leaf." + std::to_string(i); }

// Serialized size estimate of one entry.
size_t EntrySize(const TrieEntry& e) {
  return 1 + (e.bits + 7) / 8 + 2 + 2 * e.pages.size();
}

void SerializeEntry(const TrieEntry& e, Buffer* out) {
  out->push_back(e.bits == 128 ? 0 : e.bits);  // 0 encodes 128.
  int key_bytes = (e.bits + 7) / 8;
  for (int b = 0; b < key_bytes; ++b) {
    uint64_t word = b < 8 ? e.key.hi : e.key.lo;
    int byte_in_word = b % 8;
    out->push_back(static_cast<uint8_t>(word >> (56 - 8 * byte_in_word)));
  }
  std::vector<uint64_t> pages(e.pages.begin(), e.pages.end());
  compress::DeltaEncodeSorted(pages, out);
}

Status DeserializeEntry(Decoder* dec, TrieEntry* out) {
  Slice bits_byte;
  ROTTNEST_RETURN_NOT_OK(dec->GetBytes(1, &bits_byte));
  out->bits = bits_byte[0] == 0 ? 128 : bits_byte[0];
  int key_bytes = (out->bits + 7) / 8;
  Slice key_data;
  ROTTNEST_RETURN_NOT_OK(dec->GetBytes(key_bytes, &key_data));
  out->key = Key128{};
  for (int b = 0; b < key_bytes; ++b) {
    uint64_t byte = key_data[b];
    if (b < 8) {
      out->key.hi |= byte << (56 - 8 * b);
    } else {
      out->key.lo |= byte << (56 - 8 * (b - 8));
    }
  }
  std::vector<uint64_t> pages;
  ROTTNEST_RETURN_NOT_OK(compress::DeltaDecodeSorted(dec, &pages));
  out->pages.assign(pages.begin(), pages.end());
  return Status::OK();
}

/// True if `e.key`'s first `e.bits` bits are a prefix of `key`.
bool IsPrefixOf(const TrieEntry& e, const Key128& key) {
  return key.Truncate(e.bits) == e.key;
}

struct Root {
  std::vector<Key128> first_keys;  ///< First (padded) key of each leaf.
  std::vector<uint32_t> lut;       ///< 256 entries: first-byte -> leaf index.
};

void SerializeRoot(const Root& root, Buffer* out) {
  PutVarint64(out, root.first_keys.size());
  for (const Key128& k : root.first_keys) {
    PutFixed64(out, k.hi);
    PutFixed64(out, k.lo);
  }
  for (uint32_t v : root.lut) PutVarint32(out, v);
}

Status DeserializeRoot(Slice payload, Root* out) {
  Decoder dec(payload);
  uint64_t n = 0;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&n));
  out->first_keys.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    ROTTNEST_RETURN_NOT_OK(dec.GetFixed64(&out->first_keys[i].hi));
    ROTTNEST_RETURN_NOT_OK(dec.GetFixed64(&out->first_keys[i].lo));
  }
  out->lut.resize(256);
  for (int i = 0; i < 256; ++i) {
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&out->lut[i]));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing root bytes");
  return Status::OK();
}

// First-byte lookup table: lut[b] = last leaf whose first key's top byte
// is <= b (i.e. the leaf a key starting with byte b lands in or before).
void BuildRootLut(Root* root) {
  root->lut.assign(256, 0);
  for (int b = 0; b < 256; ++b) {
    uint32_t leaf = 0;
    Key128 probe;
    probe.hi = static_cast<uint64_t>(b) << 56;
    for (size_t l = 0; l < root->first_keys.size(); ++l) {
      // Compare by the padded key: leaves whose first key <= end of byte
      // range b (probe with all lower bits set).
      Key128 end = probe;
      end.hi |= 0x00ffffffffffffffULL;
      end.lo = ~0ULL;
      if (!(end < root->first_keys[l])) leaf = static_cast<uint32_t>(l);
    }
    root->lut[b] = leaf;
  }
}

/// Writes sorted, prefix-free entries + page table into an index file. Leaf
/// serialization and compression fan out on `pool`; the leaf partition is
/// computed serially first and components are appended in fixed order, so
/// the image does not depend on thread count.
Status WriteTrieFile(const std::string& column,
                     const std::vector<TrieEntry>& entries,
                     const format::PageTable& pages, ThreadPool* pool,
                     Buffer* out) {
  ComponentFileWriter writer(IndexType::kTrie, column);

  Buffer table_buf;
  pages.Serialize(&table_buf);
  ROTTNEST_RETURN_NOT_OK(
      writer.AddComponent(kPageTableComponent, Slice(table_buf)));

  // Partition entries into leaves (serial: the split points define the
  // file layout and must not depend on scheduling).
  std::vector<std::pair<size_t, size_t>> leaf_ranges;
  size_t i = 0;
  while (i < entries.size()) {
    size_t begin = i;
    size_t bytes = 0;
    while (i < entries.size() && (i == begin || bytes < kTargetLeafBytes)) {
      bytes += EntrySize(entries[i]);
      ++i;
    }
    leaf_ranges.emplace_back(begin, i);
  }

  std::vector<std::string> leaf_names(leaf_ranges.size());
  std::vector<Buffer> leaf_bodies(leaf_ranges.size());
  auto serialize_leaf = [&](size_t l) {
    auto [begin, end] = leaf_ranges[l];
    leaf_names[l] = LeafName(l);
    PutVarint64(&leaf_bodies[l], end - begin);
    for (size_t j = begin; j < end; ++j) {
      SerializeEntry(entries[j], &leaf_bodies[l]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(leaf_ranges.size(), serialize_leaf);
  } else {
    for (size_t l = 0; l < leaf_ranges.size(); ++l) serialize_leaf(l);
  }
  ROTTNEST_RETURN_NOT_OK(writer.AddComponents(leaf_names, leaf_bodies, pool));

  Root root;
  root.first_keys.reserve(leaf_ranges.size());
  for (const auto& [begin, end] : leaf_ranges) {
    root.first_keys.push_back(entries[begin].key);
  }
  BuildRootLut(&root);

  Buffer root_buf;
  SerializeRoot(root, &root_buf);
  // Root written last so it lands in the tail read.
  ROTTNEST_RETURN_NOT_OK(writer.AddComponent(kRootComponent, Slice(root_buf)));
  return writer.Finish(out);
}

/// Leaf component names in numeric order. ComponentNames() is
/// lexicographic ("leaf.10" < "leaf.2"), which would scramble a streaming
/// merge's key order.
std::vector<std::string> OrderedLeafNames(const ComponentFileReader& input) {
  size_t count = 0;
  for (const std::string& name : input.ComponentNames()) {
    if (name.rfind("leaf.", 0) == 0) ++count;
  }
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) names.push_back(LeafName(i));
  return names;
}

/// Streams one input's entries in key order, holding a single parsed leaf
/// at a time and evicting each leaf from the reader cache once consumed.
class TrieLeafStream {
 public:
  TrieLeafStream(ComponentFileReader* input, format::PageId page_offset,
                 ThreadPool* pool, objectstore::IoTrace* trace)
      : input_(input),
        page_offset_(page_offset),
        leaf_names_(OrderedLeafNames(*input)),
        pool_(pool),
        trace_(trace) {}

  /// Loads the first leaf. Must be called once before current()/Advance().
  Status Init() { return LoadNextLeaf(); }

  bool exhausted() const { return exhausted_; }
  TrieEntry& current() { return entries_[pos_]; }
  const TrieEntry& current() const { return entries_[pos_]; }

  Status Advance() {
    if (++pos_ < entries_.size()) return Status::OK();
    return LoadNextLeaf();
  }

 private:
  Status LoadNextLeaf() {
    for (;;) {
      if (next_leaf_ > 0) input_->Evict(leaf_names_[next_leaf_ - 1]);
      if (next_leaf_ >= leaf_names_.size()) {
        exhausted_ = true;
        entries_.clear();
        return Status::OK();
      }
      Buffer buf;
      ROTTNEST_RETURN_NOT_OK(
          input_->ReadComponent(leaf_names_[next_leaf_], pool_, trace_, &buf));
      ++next_leaf_;
      entries_.clear();
      ROTTNEST_RETURN_NOT_OK(ParseTrieLeaf(Slice(buf), &entries_));
      pos_ = 0;
      if (entries_.empty()) continue;  // Defensive: skip empty leaves.
      for (TrieEntry& e : entries_) {
        for (format::PageId& p : e.pages) p += page_offset_;
      }
      return Status::OK();
    }
  }

  ComponentFileReader* input_;
  format::PageId page_offset_;
  std::vector<std::string> leaf_names_;
  ThreadPool* pool_;
  objectstore::IoTrace* trace_;
  std::vector<TrieEntry> entries_;
  size_t pos_ = 0;
  size_t next_leaf_ = 0;
  bool exhausted_ = false;
};

/// Accumulates merged entries and emits output leaves as they fill,
/// replicating WriteTrieFile's partition rule (first entry always admitted,
/// further entries while the leaf is under kTargetLeafBytes) so a streaming
/// merge writes the same bytes as the buffered path. Completed leaf bodies
/// are flushed in small batches so compression can ride `pool` while peak
/// memory stays O(batch × leaf).
class TrieLeafEmitter {
 public:
  TrieLeafEmitter(ComponentFileWriter* writer, ThreadPool* pool)
      : writer_(writer), pool_(pool) {}

  Status Append(const TrieEntry& e) {
    if (count_ > 0 && bytes_ >= kTargetLeafBytes) {
      ROTTNEST_RETURN_NOT_OK(CloseLeaf());
    }
    if (count_ == 0) first_keys_.push_back(e.key);
    bytes_ += EntrySize(e);
    SerializeEntry(e, &body_);
    ++count_;
    return Status::OK();
  }

  /// Flushes the trailing leaf and fills `root` (first keys + LUT).
  Status Close(Root* root) {
    if (count_ > 0) ROTTNEST_RETURN_NOT_OK(CloseLeaf());
    ROTTNEST_RETURN_NOT_OK(FlushBatch());
    root->first_keys = std::move(first_keys_);
    BuildRootLut(root);
    return Status::OK();
  }

 private:
  static constexpr size_t kFlushBatchLeaves = 8;

  Status CloseLeaf() {
    Buffer leaf;
    PutVarint64(&leaf, count_);
    leaf.insert(leaf.end(), body_.begin(), body_.end());
    pending_names_.push_back(LeafName(next_leaf_++));
    pending_bodies_.push_back(std::move(leaf));
    body_.clear();
    bytes_ = 0;
    count_ = 0;
    if (pending_bodies_.size() >= kFlushBatchLeaves) return FlushBatch();
    return Status::OK();
  }

  Status FlushBatch() {
    if (pending_bodies_.empty()) return Status::OK();
    Status s = writer_->AddComponents(pending_names_, pending_bodies_, pool_);
    pending_names_.clear();
    pending_bodies_.clear();
    return s;
  }

  ComponentFileWriter* writer_;
  ThreadPool* pool_;
  Buffer body_;
  size_t bytes_ = 0;
  uint64_t count_ = 0;
  size_t next_leaf_ = 0;
  std::vector<Key128> first_keys_;
  std::vector<std::string> pending_names_;
  std::vector<Buffer> pending_bodies_;
};

}  // namespace

Key128 Key128::Truncate(int bits) const {
  Key128 r;
  if (bits >= 128) return *this;
  if (bits <= 0) return r;
  if (bits >= 64) {
    r.hi = hi;
    int lo_bits = bits - 64;
    r.lo = lo_bits == 0 ? 0 : lo & (~0ULL << (64 - lo_bits));
  } else {
    r.hi = hi & (~0ULL << (64 - bits));
  }
  return r;
}

int Key128::CommonPrefixLen(const Key128& other) const {
  if (hi != other.hi) return std::countl_zero(hi ^ other.hi);
  if (lo != other.lo) return 64 + std::countl_zero(lo ^ other.lo);
  return 128;
}

Key128 KeyFromValue(Slice value) {
  Key128 k;
  if (value.size() == 16) {
    // True UUID: preserve raw bytes (big-endian words keep sort order).
    for (int i = 0; i < 8; ++i) {
      k.hi = (k.hi << 8) | value[i];
      k.lo = (k.lo << 8) | value[8 + i];
    }
  } else {
    k.hi = Hash64(value, /*seed=*/0x524f54544e455354ULL);
    k.lo = Hash64(value, /*seed=*/0x494e444943455331ULL);
  }
  return k;
}

void TrieIndexBuilder::Add(Key128 key, format::PageId page) {
  postings_.emplace_back(key, page);
}

Status TrieIndexBuilder::Finish(const format::PageTable& pages,
                                ThreadPool* pool, Buffer* out) {
  std::sort(postings_.begin(), postings_.end(),
            [](const auto& a, const auto& b) {
              if (!(a.first == b.first)) return a.first < b.first;
              return a.second < b.second;
            });

  // Group postings by key.
  struct Grouped {
    Key128 key;
    std::vector<format::PageId> pages;
  };
  std::vector<Grouped> grouped;
  for (const auto& [key, page] : postings_) {
    if (grouped.empty() || !(grouped.back().key == key)) {
      grouped.push_back({key, {}});
    }
    if (grouped.back().pages.empty() || grouped.back().pages.back() != page) {
      grouped.back().pages.push_back(page);
    }
  }

  // Truncate each key to LCP(neighbours) + 1 + kExtraBits, the minimum that
  // keeps entries prefix-free plus headroom for future merges.
  std::vector<TrieEntry> entries;
  entries.reserve(grouped.size());
  for (size_t i = 0; i < grouped.size(); ++i) {
    int lcp = 0;
    if (i > 0) lcp = std::max(lcp, grouped[i].key.CommonPrefixLen(
                                       grouped[i - 1].key));
    if (i + 1 < grouped.size()) {
      lcp = std::max(lcp, grouped[i].key.CommonPrefixLen(grouped[i + 1].key));
    }
    int bits = std::min(128, lcp + 1 + kExtraBits);
    TrieEntry e;
    e.bits = static_cast<uint8_t>(bits == 128 ? 128 : bits);
    e.key = grouped[i].key.Truncate(bits);
    e.pages = std::move(grouped[i].pages);
    entries.push_back(std::move(e));
  }
  return WriteTrieFile(column_, entries, pages, pool, out);
}

Status ParseTrieLeaf(Slice payload, std::vector<TrieEntry>* out) {
  Decoder dec(payload);
  uint64_t n = 0;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TrieEntry e;
    ROTTNEST_RETURN_NOT_OK(DeserializeEntry(&dec, &e));
    out->push_back(std::move(e));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing leaf bytes");
  return Status::OK();
}

Status TrieQuery(ComponentFileReader* reader, ThreadPool* pool,
                 objectstore::IoTrace* trace, const Key128& key,
                 std::vector<format::PageId>* pages) {
  pages->clear();
  if (reader->type() != IndexType::kTrie) {
    return Status::InvalidArgument("not a trie index");
  }
  Buffer root_buf;
  ROTTNEST_RETURN_NOT_OK(
      reader->ReadComponent(kRootComponent, pool, trace, &root_buf));
  Root root;
  ROTTNEST_RETURN_NOT_OK(DeserializeRoot(Slice(root_buf), &root));
  if (root.first_keys.empty()) return Status::OK();

  // Route: the candidate leaf is the last one whose first key <= key.
  // Start from the first-byte LUT and refine locally.
  uint32_t leaf = root.lut[key.hi >> 56];
  while (leaf + 1 < root.first_keys.size() &&
         !(key < root.first_keys[leaf + 1])) {
    ++leaf;
  }
  while (leaf > 0 && key < root.first_keys[leaf]) --leaf;
  if (key < root.first_keys[leaf]) return Status::OK();  // Before all keys.

  Buffer leaf_buf;
  ROTTNEST_RETURN_NOT_OK(
      reader->ReadComponent(LeafName(leaf), pool, trace, &leaf_buf));
  std::vector<TrieEntry> entries;
  ROTTNEST_RETURN_NOT_OK(ParseTrieLeaf(Slice(leaf_buf), &entries));

  // Entries are prefix-free and sorted: the only possible prefix of `key`
  // is the last entry with padded key <= key.
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (!(key < entries[mid].key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return Status::OK();
  const TrieEntry& candidate = entries[lo - 1];
  if (IsPrefixOf(candidate, key)) {
    pages->assign(candidate.pages.begin(), candidate.pages.end());
  }
  return Status::OK();
}

Status LoadPageTable(ComponentFileReader* reader, ThreadPool* pool,
                     objectstore::IoTrace* trace, format::PageTable* out) {
  Buffer buf;
  ROTTNEST_RETURN_NOT_OK(
      reader->ReadComponent(kPageTableComponent, pool, trace, &buf));
  Decoder dec{Slice(buf)};
  return format::PageTable::Deserialize(&dec, out);
}

Status TrieMerge(const std::vector<ComponentFileReader*>& inputs,
                 ThreadPool* pool, objectstore::IoTrace* trace,
                 const std::string& column, Buffer* out) {
  // Absorb every input page table first: the merged table is the
  // concatenation of the inputs' tables and is complete before any entry
  // streams, so the "pagetable" component can be written in its usual
  // first-component slot.
  format::PageTable merged_pages;
  std::vector<TrieLeafStream> streams;
  streams.reserve(inputs.size());
  for (ComponentFileReader* input : inputs) {
    if (input->type() != IndexType::kTrie) {
      return Status::InvalidArgument("merge input is not a trie index");
    }
    format::PageTable table;
    ROTTNEST_RETURN_NOT_OK(LoadPageTable(input, pool, trace, &table));
    format::PageId offset = merged_pages.Absorb(table);
    streams.emplace_back(input, offset, pool, trace);
  }
  for (TrieLeafStream& s : streams) ROTTNEST_RETURN_NOT_OK(s.Init());

  ComponentFileWriter writer(IndexType::kTrie, column);
  Buffer table_buf;
  merged_pages.Serialize(&table_buf);
  ROTTNEST_RETURN_NOT_OK(
      writer.AddComponent(kPageTableComponent, Slice(table_buf)));

  // K-way merge by (key, bits), earliest input winning ties. The sorted
  // stream is coalesced on the fly: if the previous entry's truncated key
  // is a prefix of the current one, fold the current entry's postings into
  // it (bounded false positives instead of re-truncation, which would
  // require the original full keys). Equal (key, bits) entries always
  // coalesce and their pages are sorted + deduplicated, so the output is
  // independent of input order among ties.
  TrieLeafEmitter emitter(&writer, pool);
  TrieEntry pending;
  bool has_pending = false;
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].exhausted()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const TrieEntry& a = streams[i].current();
      const TrieEntry& b = streams[best].current();
      if (!(a.key == b.key) ? a.key < b.key : a.bits < b.bits) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    TrieEntry e = std::move(streams[best].current());
    ROTTNEST_RETURN_NOT_OK(streams[best].Advance());
    if (has_pending && pending.bits <= e.bits &&
        e.key.Truncate(pending.bits) == pending.key) {
      pending.pages.insert(pending.pages.end(), e.pages.begin(),
                           e.pages.end());
      std::sort(pending.pages.begin(), pending.pages.end());
      pending.pages.erase(
          std::unique(pending.pages.begin(), pending.pages.end()),
          pending.pages.end());
      continue;
    }
    if (has_pending) ROTTNEST_RETURN_NOT_OK(emitter.Append(pending));
    pending = std::move(e);
    has_pending = true;
  }
  if (has_pending) ROTTNEST_RETURN_NOT_OK(emitter.Append(pending));

  Root root;
  ROTTNEST_RETURN_NOT_OK(emitter.Close(&root));
  Buffer root_buf;
  SerializeRoot(root, &root_buf);
  // Root written last so it lands in the tail read.
  ROTTNEST_RETURN_NOT_OK(writer.AddComponent(kRootComponent, Slice(root_buf)));
  return writer.Finish(out);
}

}  // namespace rottnest::index
