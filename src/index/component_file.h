// Componentized index files (paper §V-B, Fig 6).
//
// An index file is a set of named, individually-compressed *components*
// plus a directory of their byte ranges. Query code reads the directory and
// the root component(s) in one tail range-read, then fetches exactly the
// leaf components a query needs in one parallel round — bounding the number
// of dependent object-store requests ("access depth") at ~2 regardless of
// index size, while keeping compression benefits.
//
// Layout:
//   [4-byte magic "RNI1"]
//   [component payloads, back-to-back, each compressed]
//   [directory: per component name/offset/sizes/codec/checksum, plus index
//    metadata]
//   [fixed64 directory checksum][fixed32 directory length]["RNI1"]
//
// Integrity: the directory carries a Hash64 checksum of itself (verified at
// open) and of every compressed component payload (verified on read), so a
// truncated or bit-flipped index body surfaces as Corruption instead of
// being silently accepted — magic bytes alone only catch missing tails.
//
// Components written *last* land in the speculative tail read and cost no
// extra round — writers should emit leaves first and roots last.
#ifndef ROTTNEST_INDEX_COMPONENT_FILE_H_
#define ROTTNEST_INDEX_COMPONENT_FILE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/thread_pool.h"
#include "compress/lz.h"
#include "objectstore/io_trace.h"
#include "objectstore/object_store.h"

namespace rottnest::index {

/// Index kind stored in the directory.
enum class IndexType : uint8_t {
  kTrie = 0,
  kFm = 1,
  kIvfPq = 2,
  kKeyword = 3,
};

const char* IndexTypeName(IndexType t);

/// Inverse of IndexTypeName. Returns false for unknown names.
bool IndexTypeFromName(const std::string& name, IndexType* out);

/// One damaged component found by ComponentFileReader::VerifyComponents:
/// which component, and the Corruption/IO status explaining how it failed.
struct ComponentDamage {
  std::string name;
  Status status;
};

/// Per-component audit metadata exposed by ComponentFileReader::Components.
struct ComponentInfo {
  std::string name;
  uint64_t compressed_size = 0;
  /// True when the component landed in the Open tail read and its payload
  /// checksum was already verified there — a deep scrub can skip it.
  bool verified_at_open = false;
};

/// Builds one index file image in memory.
class ComponentFileWriter {
 public:
  ComponentFileWriter(IndexType type, std::string column)
      : type_(type), column_(std::move(column)) {
    file_.insert(file_.end(), kMagic, kMagic + 4);
  }

  /// Appends a component. Names must be unique. Uses LZ compression unless
  /// the payload is incompressible.
  Status AddComponent(const std::string& name, Slice payload);

  /// Appends several components in order. Payload compression — the
  /// CPU-heavy part — runs in parallel on `pool` (nullptr = inline);
  /// directory entries and the file image are appended serially in input
  /// order, so the image is byte-identical to equivalent AddComponent
  /// calls at any thread count.
  Status AddComponents(const std::vector<std::string>& names,
                       const std::vector<Buffer>& payloads, ThreadPool* pool);

  /// Finalizes and returns the file image.
  Status Finish(Buffer* out);

  size_t current_size() const { return file_.size(); }

 private:
  static constexpr char kMagic[4] = {'R', 'N', 'I', '1'};
  friend class ComponentFileReader;

  /// Appends an already-compressed payload plus its directory entry.
  Status AppendCompressed(const std::string& name, size_t uncompressed_size,
                          Buffer compressed, uint8_t codec);

  struct Entry {
    std::string name;
    uint64_t offset;
    uint32_t compressed_size;
    uint32_t uncompressed_size;
    uint8_t codec;
    uint64_t checksum;  ///< Hash64 of the compressed payload bytes.
  };

  IndexType type_;
  std::string column_;
  Buffer file_;
  std::vector<Entry> entries_;
  bool finished_ = false;
};

/// Reads an index file from object storage with tail-read + batched
/// component fetches. Thread-compatible (one instance per query).
class ComponentFileReader {
 public:
  /// Opens `key`: one HEAD + one tail range read (`tail_bytes`). Components
  /// wholly contained in the tail are available immediately with no further
  /// IO.
  static Result<std::unique_ptr<ComponentFileReader>> Open(
      objectstore::ObjectStore* store, std::string key,
      objectstore::IoTrace* trace, size_t tail_bytes = 256 << 10);

  IndexType type() const { return type_; }
  const std::string& column() const { return column_; }
  const std::string& key() const { return key_; }

  bool HasComponent(const std::string& name) const {
    return directory_.count(name) != 0;
  }

  /// Names of all components.
  std::vector<std::string> ComponentNames() const;

  /// Fetches (if necessary) and returns the decompressed payloads of
  /// `names`, in one parallel round for all non-cached components.
  /// Results align with `names`. Cached components cost no IO.
  Status ReadComponents(const std::vector<std::string>& names,
                        ThreadPool* pool, objectstore::IoTrace* trace,
                        std::vector<Buffer>* out);

  /// Single-component convenience.
  Status ReadComponent(const std::string& name, ThreadPool* pool,
                       objectstore::IoTrace* trace, Buffer* out);

  /// Audit metadata for every component, in name order.
  std::vector<ComponentInfo> Components() const;

  /// Deep audit: re-fetches the raw compressed bytes of `names` from the
  /// store (one IoTrace round, bypassing the decompressed cache) and checks
  /// each against its directory checksum. Does NOT fail fast — every fetch
  /// error or checksum mismatch is appended to `damage` and the scan
  /// continues; the return Status is only for invalid arguments (unknown
  /// component name). `bytes_fetched` (optional) accumulates compressed
  /// bytes actually read, for scrub byte budgets.
  Status VerifyComponents(const std::vector<std::string>& names,
                          objectstore::IoTrace* trace,
                          std::vector<ComponentDamage>* damage,
                          uint64_t* bytes_fetched);

  /// Drops one component from the decompressed cache. Streaming merges
  /// bound their working set by evicting leaves after consuming them.
  void Evict(const std::string& name) { cache_.erase(name); }

 private:
  ComponentFileReader(objectstore::ObjectStore* store, std::string key)
      : store_(store), key_(std::move(key)) {}

  using Entry = ComponentFileWriter::Entry;

  objectstore::ObjectStore* store_;
  std::string key_;
  IndexType type_ = IndexType::kTrie;
  std::string column_;
  std::map<std::string, Entry> directory_;
  std::map<std::string, Buffer> cache_;
  std::set<std::string> verified_open_;  ///< Checksum-verified in Open's tail.
};

}  // namespace rottnest::index

#endif  // ROTTNEST_INDEX_COMPONENT_FILE_H_
