#include "index/fm/suffix_array.h"

#include <algorithm>
#include <numeric>

namespace rottnest::index {

namespace {

// SA-IS core, generic over the (possibly renamed) alphabet. `s` has length
// n with s[n-1] the unique smallest symbol (0).
void SaIsRec(const int64_t* s, int64_t* sa, int64_t n, int64_t alphabet) {
  if (n == 1) {
    sa[0] = 0;
    return;
  }
  if (n == 2) {
    sa[0] = 1;
    sa[1] = 0;
    return;
  }

  // Type classification: S-type (true) or L-type (false).
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (int64_t i = n - 2; i >= 0; --i) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](int64_t i) {
    return i > 0 && is_s[i] && !is_s[i - 1];
  };

  // Bucket boundaries by symbol.
  std::vector<int64_t> bucket_sizes(alphabet, 0);
  for (int64_t i = 0; i < n; ++i) bucket_sizes[s[i]]++;
  std::vector<int64_t> bucket_starts(alphabet), bucket_ends(alphabet);
  auto reset_buckets = [&] {
    int64_t sum = 0;
    for (int64_t c = 0; c < alphabet; ++c) {
      bucket_starts[c] = sum;
      sum += bucket_sizes[c];
      bucket_ends[c] = sum;
    }
  };

  // Induced sort: given LMS suffixes placed at their bucket ends (already
  // in sa), induce L-type then S-type suffixes.
  auto induce = [&] {
    reset_buckets();
    std::vector<int64_t> heads = bucket_starts;
    // Left-to-right pass: induce L-types.
    for (int64_t i = 0; i < n; ++i) {
      int64_t j = sa[i] - 1;
      if (sa[i] > 0 && !is_s[j]) {
        sa[heads[s[j]]++] = j;
      }
    }
    // Right-to-left pass: induce S-types.
    std::vector<int64_t> tails = bucket_ends;
    for (int64_t i = n - 1; i >= 0; --i) {
      int64_t j = sa[i] - 1;
      if (sa[i] > 0 && is_s[j]) {
        sa[--tails[s[j]]] = j;
      }
    }
  };

  // Stage 1: place LMS suffixes in arbitrary (position) order, induce, and
  // read off the sorted LMS substrings.
  std::fill(sa, sa + n, -1);
  reset_buckets();
  {
    std::vector<int64_t> tails = bucket_ends;
    for (int64_t i = 1; i < n; ++i) {
      if (is_lms(i)) sa[--tails[s[i]]] = i;
    }
  }
  induce();

  // Collect sorted LMS positions.
  std::vector<int64_t> lms_sorted;
  for (int64_t i = 0; i < n; ++i) {
    if (sa[i] >= 0 && is_lms(sa[i])) lms_sorted.push_back(sa[i]);
  }
  int64_t num_lms = static_cast<int64_t>(lms_sorted.size());

  // Name LMS substrings; equal substrings get equal names.
  std::vector<int64_t> name_of(n, -1);
  int64_t names = 0;
  int64_t prev = -1;
  for (int64_t k = 0; k < num_lms; ++k) {
    int64_t cur = lms_sorted[k];
    bool differ = prev < 0;
    if (!differ) {
      // Compare LMS substrings starting at prev and cur.
      for (int64_t d = 0;; ++d) {
        bool prev_lms = d > 0 && is_lms(prev + d);
        bool cur_lms = d > 0 && is_lms(cur + d);
        if (prev + d >= n || cur + d >= n || s[prev + d] != s[cur + d] ||
            is_s[prev + d] != is_s[cur + d]) {
          differ = true;
          break;
        }
        if (prev_lms || cur_lms) {
          differ = !(prev_lms && cur_lms);
          break;
        }
      }
    }
    if (differ) ++names;
    name_of[cur] = names - 1;
    prev = cur;
  }

  // Build the reduced problem: names of LMS positions in text order.
  std::vector<int64_t> lms_positions;
  std::vector<int64_t> reduced;
  for (int64_t i = 0; i < n; ++i) {
    if (is_lms(i)) {
      lms_positions.push_back(i);
      reduced.push_back(name_of[i]);
    }
  }

  std::vector<int64_t> lms_order(num_lms);
  if (names < num_lms) {
    // Names collide: recurse.
    std::vector<int64_t> sub_sa(num_lms);
    SaIsRec(reduced.data(), sub_sa.data(), num_lms, names);
    for (int64_t k = 0; k < num_lms; ++k) lms_order[k] = sub_sa[k];
  } else {
    // Names unique: order directly.
    for (int64_t k = 0; k < num_lms; ++k) lms_order[reduced[k]] = k;
  }

  // Stage 2: place LMS suffixes in their true sorted order, induce.
  std::fill(sa, sa + n, -1);
  reset_buckets();
  {
    std::vector<int64_t> tails = bucket_ends;
    for (int64_t k = num_lms - 1; k >= 0; --k) {
      int64_t pos = lms_positions[lms_order[k]];
      sa[--tails[s[pos]]] = pos;
    }
  }
  induce();
}

}  // namespace

Result<std::vector<int64_t>> BuildSuffixArray(Slice text) {
  int64_t n = static_cast<int64_t>(text.size());
  if (n == 0) return Status::InvalidArgument("empty text");
  if (text[n - 1] != 0) {
    return Status::InvalidArgument("text must end with 0x00 sentinel");
  }
  for (int64_t i = 0; i < n - 1; ++i) {
    if (text[i] == 0) {
      return Status::InvalidArgument("sentinel byte inside text");
    }
  }
  std::vector<int64_t> s(n);
  for (int64_t i = 0; i < n; ++i) s[i] = text[i];
  std::vector<int64_t> sa(n);
  SaIsRec(s.data(), sa.data(), n, 256);
  return sa;
}

Buffer BwtFromSuffixArray(Slice text, const std::vector<int64_t>& sa) {
  Buffer bwt(sa.size());
  size_t n = text.size();
  for (size_t i = 0; i < sa.size(); ++i) {
    bwt[i] = sa[i] == 0 ? text[n - 1] : text[sa[i] - 1];
  }
  return bwt;
}

Result<Buffer> InvertBwt(Slice bwt) {
  size_t n = bwt.size();
  if (n == 0) return Status::InvalidArgument("empty bwt");
  // LF mapping via counting sort of (symbol, occurrence rank).
  std::vector<int64_t> counts(256, 0);
  for (size_t i = 0; i < n; ++i) counts[bwt[i]]++;
  if (counts[0] != 1) {
    return Status::InvalidArgument("InvertBwt requires exactly one sentinel");
  }
  std::vector<int64_t> starts(256, 0);
  int64_t sum = 0;
  for (int c = 0; c < 256; ++c) {
    starts[c] = sum;
    sum += counts[c];
  }
  std::vector<int64_t> lf(n);
  std::vector<int64_t> seen(256, 0);
  for (size_t i = 0; i < n; ++i) {
    lf[i] = starts[bwt[i]] + seen[bwt[i]]++;
  }
  // Walk backwards from the sentinel row (row 0 holds the full text's
  // rotation starting at the sentinel).
  Buffer text(n);
  int64_t row = 0;
  for (size_t k = 0; k < n; ++k) {
    text[n - 1 - k] = bwt[row];
    row = lf[row];
  }
  // text currently ends with ...sentinel? The walk writes text[n-1]=bwt[0]
  // which is the char before the sentinel; rotate: the sentinel is the
  // first char written... Verify and normalize so output ends with 0x00.
  // bwt[0] corresponds to the suffix "$", so bwt[0] = last char before $.
  // The loop above reconstructs the text already in the right order except
  // the sentinel lands at position... validate:
  if (text[n - 1] != 0) {
    // Rotate left by one if the sentinel ended up first.
    if (text[0] == 0) {
      Buffer rotated(text.begin() + 1, text.end());
      rotated.push_back(0);
      return rotated;
    }
    return Status::Corruption("bwt inversion failed");
  }
  return text;
}

}  // namespace rottnest::index
