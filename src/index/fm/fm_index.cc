#include "index/fm/fm_index.h"

#include <algorithm>
#include <bit>
#include <set>

#include "compress/bitpack.h"
#include "index/fm/suffix_array.h"

namespace rottnest::index {

namespace {

constexpr uint8_t kSentinel = 0x00;
constexpr uint8_t kSeparator = 0x01;
constexpr uint8_t kReplacement = 0x02;

constexpr const char* kMetaComponent = "meta";
constexpr const char* kBoundsComponent = "bounds";
constexpr const char* kPageTableComponent = "pagetable";
constexpr size_t kSsaSlotsPerBlock = 8192;

std::string BwtName(uint64_t b) { return "bwt." + std::to_string(b); }
std::string MarkName(uint64_t b) { return "mark." + std::to_string(b); }
std::string SsaName(uint64_t b) { return "ssa." + std::to_string(b); }

// ---------------------------------------------------------------------------
// Meta component

struct FmMeta {
  uint64_t n = 0;             ///< Total BWT length (includes sentinels).
  uint32_t block_size = 0;    ///< Symbols per bwt/mark block.
  uint32_t sample_rate = 0;   ///< Text-order sampling stride.
  uint32_t pos_bits = 0;      ///< Bit width of packed sample positions.
  std::vector<uint64_t> c;    ///< 256 entries: # symbols < s.
  std::vector<uint64_t> string_starts;  ///< Global start of each string.

  uint64_t CumulativeBefore(uint16_t symbol) const {
    return symbol >= 256 ? n : c[symbol];
  }
  uint64_t SymbolTotal(uint8_t symbol) const {
    return CumulativeBefore(symbol + 1) - c[symbol];
  }
  uint64_t num_blocks() const {
    return (n + block_size - 1) / block_size;
  }
};

void SerializeMeta(const FmMeta& m, Buffer* out) {
  PutVarint64(out, m.n);
  PutVarint32(out, m.block_size);
  PutVarint32(out, m.sample_rate);
  PutVarint32(out, m.pos_bits);
  for (int s = 0; s < 256; ++s) PutVarint64(out, m.c[s]);
  PutVarint64(out, m.string_starts.size());
  for (uint64_t v : m.string_starts) PutVarint64(out, v);
}

Status DeserializeMeta(Slice payload, FmMeta* out) {
  Decoder dec(payload);
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&out->n));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&out->block_size));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&out->sample_rate));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&out->pos_bits));
  if (out->block_size == 0 || out->sample_rate == 0) {
    return Status::Corruption("fm meta: zero block size or sample rate");
  }
  out->c.resize(256);
  for (int s = 0; s < 256; ++s) {
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&out->c[s]));
  }
  uint64_t num_strings = 0;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&num_strings));
  out->string_starts.resize(num_strings);
  for (uint64_t i = 0; i < num_strings; ++i) {
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&out->string_starts[i]));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing fm meta");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// File emission (shared by builder and merge)

/// Fully-materialized index content, pre-componentization.
struct FmContent {
  Buffer bwt;                        ///< Whole BWT.
  std::vector<bool> marked;          ///< Per row: SA position sampled?
  std::vector<uint64_t> samples;     ///< Sampled positions, in row order.
  std::vector<uint64_t> string_starts;
  std::vector<uint64_t> page_offsets;
  format::PageTable pages;
};

Status EmitFmFile(const std::string& column, const FmOptions& options,
                  const FmContent& content, ThreadPool* pool, Buffer* out) {
  const Buffer& bwt = content.bwt;
  uint64_t n = bwt.size();
  FmMeta meta;
  meta.n = n;
  meta.block_size = options.block_size;
  meta.sample_rate = options.sample_rate;
  meta.c.assign(256, 0);
  {
    std::vector<uint64_t> counts(256, 0);
    for (uint8_t ch : bwt) counts[ch]++;
    uint64_t sum = 0;
    for (int s = 0; s < 256; ++s) {
      meta.c[s] = sum;
      sum += counts[s];
    }
  }
  meta.string_starts = content.string_starts;
  meta.pos_bits = std::max(1, compress::BitWidth(n));

  ComponentFileWriter writer(IndexType::kFm, column);

  // Components are built serially in emission order — page table first
  // (leaf-most), then bulk blocks, then small roots last — and appended in
  // one AddComponents call so their compression fans out on `pool` without
  // changing the file bytes. The occ/rank checkpoints are running prefix
  // sums, so payload construction itself stays a serial scan.
  std::vector<std::string> names;
  std::vector<Buffer> payloads;

  Buffer table_buf;
  content.pages.Serialize(&table_buf);
  names.push_back(kPageTableComponent);
  payloads.push_back(std::move(table_buf));

  // BWT blocks, each prefixed with its occ checkpoint.
  uint64_t bs = options.block_size;
  std::vector<uint64_t> running(256, 0);
  for (uint64_t b = 0; b * bs < n; ++b) {
    Buffer block;
    block.reserve(256 * 8 + bs);
    for (int s = 0; s < 256; ++s) PutFixed64(&block, running[s]);
    uint64_t end = std::min<uint64_t>(n, (b + 1) * bs);
    for (uint64_t i = b * bs; i < end; ++i) {
      block.push_back(bwt[i]);
      running[bwt[i]]++;
    }
    names.push_back(BwtName(b));
    payloads.push_back(std::move(block));
  }

  // Mark blocks: rank checkpoint + bitvector words.
  uint64_t mark_rank = 0;
  for (uint64_t b = 0; b * bs < n; ++b) {
    Buffer block;
    PutFixed64(&block, mark_rank);
    uint64_t end = std::min<uint64_t>(n, (b + 1) * bs);
    uint64_t word = 0;
    int bit = 0;
    for (uint64_t i = b * bs; i < end; ++i) {
      if (content.marked[i]) {
        word |= 1ULL << bit;
        ++mark_rank;
      }
      if (++bit == 64) {
        PutFixed64(&block, word);
        word = 0;
        bit = 0;
      }
    }
    if (bit != 0) PutFixed64(&block, word);
    names.push_back(MarkName(b));
    payloads.push_back(std::move(block));
  }

  // Sampled-position blocks, bit-packed.
  for (uint64_t b = 0; b * kSsaSlotsPerBlock < content.samples.size() ||
                       (b == 0 && content.samples.empty());
       ++b) {
    uint64_t begin = b * kSsaSlotsPerBlock;
    uint64_t end = std::min<uint64_t>(content.samples.size(),
                                      begin + kSsaSlotsPerBlock);
    std::vector<uint64_t> slice(content.samples.begin() + begin,
                                content.samples.begin() + end);
    Buffer block;
    compress::BitPack(slice, meta.pos_bits, &block);
    names.push_back(SsaName(b));
    payloads.push_back(std::move(block));
    if (end == content.samples.size()) break;
  }

  // Page bounds.
  Buffer bounds;
  compress::DeltaEncodeSorted(content.page_offsets, &bounds);
  names.push_back(kBoundsComponent);
  payloads.push_back(std::move(bounds));

  // Meta last: rides the directory tail read.
  Buffer meta_buf;
  SerializeMeta(meta, &meta_buf);
  names.push_back(kMetaComponent);
  payloads.push_back(std::move(meta_buf));

  ROTTNEST_RETURN_NOT_OK(writer.AddComponents(names, payloads, pool));
  return writer.Finish(out);
}

// ---------------------------------------------------------------------------
// Query-side view

/// Wraps a ComponentFileReader with FM-specific accessors. Component reads
/// go through the reader's cache; batching is done by the callers.
class FmView {
 public:
  static Status Open(ComponentFileReader* reader, ThreadPool* pool,
                     objectstore::IoTrace* trace, FmView* out) {
    if (reader->type() != IndexType::kFm) {
      return Status::InvalidArgument("not an fm index");
    }
    out->reader_ = reader;
    out->pool_ = pool;
    out->trace_ = trace;
    Buffer meta_buf;
    ROTTNEST_RETURN_NOT_OK(
        reader->ReadComponent(kMetaComponent, pool, trace, &meta_buf));
    return DeserializeMeta(Slice(meta_buf), &out->meta_);
  }

  const FmMeta& meta() const { return meta_; }

  /// Prefetches the named components in one round.
  Status Prefetch(const std::vector<std::string>& names) {
    std::vector<Buffer> ignored;
    return reader_->ReadComponents(names, pool_, trace_, &ignored);
  }

  /// Occ(c, i): occurrences of `c` in bwt[0, i). i may equal n.
  Status Occ(uint8_t c, uint64_t i, uint64_t* out) {
    if (i >= meta_.n) {
      *out = meta_.SymbolTotal(c);
      return Status::OK();
    }
    uint64_t b = i / meta_.block_size;
    Buffer block;
    ROTTNEST_RETURN_NOT_OK(
        reader_->ReadComponent(BwtName(b), pool_, trace_, &block));
    uint64_t count = DecodeFixed64(block.data() + 8 * c);
    uint64_t within = i - b * meta_.block_size;
    const uint8_t* data = block.data() + 256 * 8;
    for (uint64_t k = 0; k < within; ++k) {
      if (data[k] == c) ++count;
    }
    *out = count;
    return Status::OK();
  }

  Status BwtAt(uint64_t i, uint8_t* out) {
    uint64_t b = i / meta_.block_size;
    Buffer block;
    ROTTNEST_RETURN_NOT_OK(
        reader_->ReadComponent(BwtName(b), pool_, trace_, &block));
    *out = block[256 * 8 + (i - b * meta_.block_size)];
    return Status::OK();
  }

  /// LF step: row of the text position one before row i's position.
  Status Lf(uint64_t i, uint64_t* out) {
    uint8_t c;
    ROTTNEST_RETURN_NOT_OK(BwtAt(i, &c));
    uint64_t occ = 0;
    ROTTNEST_RETURN_NOT_OK(Occ(c, i, &occ));
    *out = meta_.c[c] + occ;
    return Status::OK();
  }

  /// Whether row j is sampled, and its sample slot (rank of marked rows
  /// strictly before j).
  Status Marked(uint64_t j, bool* marked, uint64_t* slot) {
    uint64_t b = j / meta_.block_size;
    Buffer block;
    ROTTNEST_RETURN_NOT_OK(
        reader_->ReadComponent(MarkName(b), pool_, trace_, &block));
    uint64_t rank = DecodeFixed64(block.data());
    uint64_t within = j - b * meta_.block_size;
    const uint8_t* words = block.data() + 8;
    uint64_t full_words = within / 64;
    for (uint64_t w = 0; w < full_words; ++w) {
      rank += std::popcount(DecodeFixed64(words + 8 * w));
    }
    uint64_t last = DecodeFixed64(words + 8 * full_words);
    uint64_t bit = within % 64;
    rank += std::popcount(last & ((bit == 0 ? 0 : (~0ULL >> (64 - bit)))));
    *marked = (last >> bit) & 1;
    *slot = rank;
    return Status::OK();
  }

  /// Sampled text position stored in `slot`.
  Status Sample(uint64_t slot, uint64_t* pos) {
    uint64_t b = slot / kSsaSlotsPerBlock;
    Buffer block;
    ROTTNEST_RETURN_NOT_OK(
        reader_->ReadComponent(SsaName(b), pool_, trace_, &block));
    std::vector<uint64_t> unpacked;
    uint64_t within = slot - b * kSsaSlotsPerBlock;
    ROTTNEST_RETURN_NOT_OK(compress::BitUnpack(Slice(block), meta_.pos_bits,
                                               within + 1, &unpacked));
    *pos = unpacked[within];
    return Status::OK();
  }

  /// Loads the page-boundary offsets.
  Status LoadBounds(std::vector<uint64_t>* out) {
    Buffer buf;
    ROTTNEST_RETURN_NOT_OK(
        reader_->ReadComponent(kBoundsComponent, pool_, trace_, &buf));
    Decoder dec{Slice(buf)};
    ROTTNEST_RETURN_NOT_OK(compress::DeltaDecodeSorted(&dec, out));
    if (!dec.exhausted()) return Status::Corruption("trailing bounds bytes");
    return Status::OK();
  }

  std::string BwtBlockName(uint64_t row) const {
    return BwtName(row / meta_.block_size);
  }
  std::string MarkBlockName(uint64_t row) const {
    return MarkName(row / meta_.block_size);
  }
  std::string SsaBlockName(uint64_t slot) const {
    return SsaName(slot / kSsaSlotsPerBlock);
  }

 private:
  ComponentFileReader* reader_ = nullptr;
  ThreadPool* pool_ = nullptr;
  objectstore::IoTrace* trace_ = nullptr;
  FmMeta meta_;
};

Status BackwardSearch(FmView* view, Slice pattern, uint64_t* lo,
                      uint64_t* hi) {
  const FmMeta& meta = view->meta();
  uint64_t l = 0, r = meta.n;
  for (size_t k = pattern.size(); k-- > 0;) {
    uint8_t c = pattern[k];
    // Both rank positions in one prefetch round.
    std::vector<std::string> names;
    if (l < meta.n) names.push_back(view->BwtBlockName(l));
    if (r < meta.n) {
      std::string rn = view->BwtBlockName(r);
      if (names.empty() || names[0] != rn) names.push_back(rn);
    }
    if (!names.empty()) ROTTNEST_RETURN_NOT_OK(view->Prefetch(names));
    uint64_t occ_l = 0, occ_r = 0;
    ROTTNEST_RETURN_NOT_OK(view->Occ(c, l, &occ_l));
    ROTTNEST_RETURN_NOT_OK(view->Occ(c, r, &occ_r));
    l = meta.c[c] + occ_l;
    r = meta.c[c] + occ_r;
    if (l >= r) {
      *lo = *hi = 0;
      return Status::OK();
    }
  }
  *lo = l;
  *hi = r;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Merge internals

/// Loads the full content of one index file (compaction-time full read).
Status LoadContent(ComponentFileReader* reader, ThreadPool* pool,
                   objectstore::IoTrace* trace, FmMeta* meta,
                   FmContent* out) {
  FmView view;
  ROTTNEST_RETURN_NOT_OK(FmView::Open(reader, pool, trace, &view));
  *meta = view.meta();
  uint64_t n = meta->n;
  uint64_t bs = meta->block_size;
  uint64_t num_blocks = meta->num_blocks();

  std::vector<std::string> names;
  for (uint64_t b = 0; b < num_blocks; ++b) names.push_back(BwtName(b));
  for (uint64_t b = 0; b < num_blocks; ++b) names.push_back(MarkName(b));
  std::vector<Buffer> blocks;
  ROTTNEST_RETURN_NOT_OK(reader->ReadComponents(names, pool, trace, &blocks));

  out->bwt.clear();
  out->bwt.reserve(n);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const Buffer& block = blocks[b];
    out->bwt.insert(out->bwt.end(), block.begin() + 256 * 8, block.end());
  }
  if (out->bwt.size() != n) return Status::Corruption("bwt size mismatch");

  out->marked.assign(n, false);
  uint64_t num_marked = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const Buffer& block = blocks[num_blocks + b];
    uint64_t end = std::min<uint64_t>(n, (b + 1) * bs);
    for (uint64_t i = b * bs; i < end; ++i) {
      uint64_t within = i - b * bs;
      uint64_t word = DecodeFixed64(block.data() + 8 + 8 * (within / 64));
      if ((word >> (within % 64)) & 1) {
        out->marked[i] = true;
        ++num_marked;
      }
    }
  }

  // Sample values.
  uint64_t num_ssa_blocks =
      num_marked == 0 ? 1 : (num_marked + kSsaSlotsPerBlock - 1) /
                                kSsaSlotsPerBlock;
  std::vector<std::string> ssa_names;
  for (uint64_t b = 0; b < num_ssa_blocks; ++b) ssa_names.push_back(SsaName(b));
  std::vector<Buffer> ssa_blocks;
  ROTTNEST_RETURN_NOT_OK(
      reader->ReadComponents(ssa_names, pool, trace, &ssa_blocks));
  out->samples.clear();
  out->samples.reserve(num_marked);
  for (uint64_t b = 0; b < num_ssa_blocks; ++b) {
    uint64_t begin = b * kSsaSlotsPerBlock;
    uint64_t count =
        std::min<uint64_t>(num_marked - begin, kSsaSlotsPerBlock);
    std::vector<uint64_t> unpacked;
    ROTTNEST_RETURN_NOT_OK(compress::BitUnpack(Slice(ssa_blocks[b]),
                                               meta->pos_bits, count,
                                               &unpacked));
    out->samples.insert(out->samples.end(), unpacked.begin(), unpacked.end());
  }

  out->string_starts = meta->string_starts;
  ROTTNEST_RETURN_NOT_OK(view.LoadBounds(&out->page_offsets));

  Buffer table_buf;
  ROTTNEST_RETURN_NOT_OK(
      reader->ReadComponent(kPageTableComponent, pool, trace, &table_buf));
  Decoder dec{Slice(table_buf)};
  ROTTNEST_RETURN_NOT_OK(format::PageTable::Deserialize(&dec, &out->pages));
  return Status::OK();
}

/// Holt-McMillan interleave refinement for two multi-string BWTs. Returns
/// the interleave vector Z (false = from `a`, true = from `b`).
Status ComputeInterleave(const Buffer& a, const Buffer& b,
                         uint32_t max_iterations, std::vector<bool>* out) {
  uint64_t n1 = a.size(), n2 = b.size(), n = n1 + n2;
  std::vector<uint64_t> counts(257, 0);
  for (uint8_t ch : a) counts[ch + 1]++;
  for (uint8_t ch : b) counts[ch + 1]++;
  for (int s = 0; s < 256; ++s) counts[s + 1] += counts[s];

  // Z_0: all of `a` then all of `b` — the correct 0-length-context order
  // (ties broken by input, matching multi-string BWT sentinel order).
  std::vector<bool> z(n, false);
  for (uint64_t i = n1; i < n; ++i) z[i] = true;

  std::vector<bool> next(n);
  std::vector<uint64_t> ptr(256);
  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    for (int s = 0; s < 256; ++s) ptr[s] = counts[s];
    uint64_t i1 = 0, i2 = 0;
    for (uint64_t p = 0; p < n; ++p) {
      uint8_t c = z[p] ? b[i2++] : a[i1++];
      next[ptr[c]++] = z[p];
    }
    if (next == z) {
      *out = std::move(z);
      return Status::OK();
    }
    std::swap(z, next);
  }
  return Status::Aborted("interleave refinement did not converge");
}

/// Merges two full contents into one.
Status MergePair(const FmContent& a, const FmContent& b,
                 const FmOptions& options, FmContent* out) {
  std::vector<bool> z;
  ROTTNEST_RETURN_NOT_OK(
      ComputeInterleave(a.bwt, b.bwt, options.max_interleave_iterations, &z));
  uint64_t n1 = a.bwt.size();
  uint64_t n = z.size();

  out->bwt.clear();
  out->bwt.reserve(n);
  out->marked.assign(n, false);
  out->samples.clear();
  uint64_t i1 = 0, i2 = 0;
  for (uint64_t p = 0; p < n; ++p) {
    if (!z[p]) {
      out->bwt.push_back(a.bwt[i1]);
      if (a.marked[i1]) out->marked[p] = true;
      ++i1;
    } else {
      out->bwt.push_back(b.bwt[i2]);
      if (b.marked[i2]) out->marked[p] = true;
      ++i2;
    }
  }
  // Samples must be emitted in merged-row order; replay the interleave.
  i1 = i2 = 0;
  uint64_t s1 = 0, s2 = 0;
  for (uint64_t p = 0; p < n; ++p) {
    if (!z[p]) {
      if (a.marked[i1]) out->samples.push_back(a.samples[s1++]);
      ++i1;
    } else {
      if (b.marked[i2]) out->samples.push_back(b.samples[s2++] + n1);
      ++i2;
    }
  }

  out->string_starts = a.string_starts;
  for (uint64_t start : b.string_starts) {
    out->string_starts.push_back(start + n1);
  }
  out->page_offsets = a.page_offsets;
  for (uint64_t off : b.page_offsets) out->page_offsets.push_back(off + n1);
  out->pages = a.pages;
  out->pages.Absorb(b.pages);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

void SanitizeText(Buffer* text) {
  for (uint8_t& ch : *text) {
    if (ch == kSentinel || ch == kSeparator) ch = kReplacement;
  }
}

void FmIndexBuilder::AddPage(Slice page_text) {
  page_offsets_.push_back(text_.size());
  size_t start = text_.size();
  text_.insert(text_.end(), page_text.data(),
               page_text.data() + page_text.size());
  for (size_t i = start; i < text_.size(); ++i) {
    if (text_[i] == kSentinel || text_[i] == kSeparator) {
      text_[i] = kReplacement;
    }
  }
  text_.push_back(kSeparator);
}

void FmIndexBuilder::AddPageValues(const std::vector<std::string>& values) {
  Buffer prepared;
  PreparePageText(values, &prepared);
  AddPreparedPage(Slice(prepared));
}

void FmIndexBuilder::PreparePageText(const std::vector<std::string>& values,
                                     Buffer* out) {
  out->clear();
  for (const std::string& v : values) {
    size_t start = out->size();
    out->insert(out->end(), v.begin(), v.end());
    for (size_t i = start; i < out->size(); ++i) {
      if ((*out)[i] == kSentinel || (*out)[i] == kSeparator) {
        (*out)[i] = kReplacement;
      }
    }
    out->push_back(kSeparator);
  }
}

void FmIndexBuilder::AddPreparedPage(Slice prepared) {
  page_offsets_.push_back(text_.size());
  text_.insert(text_.end(), prepared.data(), prepared.data() + prepared.size());
}

Status FmIndexBuilder::Finish(const format::PageTable& pages, ThreadPool* pool,
                              Buffer* out) {
  Buffer text = text_;
  text.push_back(kSentinel);

  ROTTNEST_ASSIGN_OR_RETURN(std::vector<int64_t> sa,
                            BuildSuffixArray(Slice(text)));
  FmContent content;
  content.bwt = BwtFromSuffixArray(Slice(text), sa);
  uint64_t n = content.bwt.size();
  content.marked.assign(n, false);
  for (uint64_t j = 0; j < n; ++j) {
    uint64_t pos = static_cast<uint64_t>(sa[j]);
    if (pos % options_.sample_rate == 0) {
      content.marked[j] = true;
      content.samples.push_back(pos);
    }
  }
  content.string_starts = {0};
  content.page_offsets = page_offsets_;
  content.pages = pages;
  return EmitFmFile(column_, options_, content, pool, out);
}

Status FmCount(ComponentFileReader* reader, ThreadPool* pool,
               objectstore::IoTrace* trace, Slice pattern, uint64_t* count,
               std::pair<uint64_t, uint64_t>* range) {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == kSentinel || pattern[i] == kSeparator) {
      return Status::InvalidArgument("pattern contains reserved bytes");
    }
  }
  FmView view;
  ROTTNEST_RETURN_NOT_OK(FmView::Open(reader, pool, trace, &view));
  uint64_t l, r;
  ROTTNEST_RETURN_NOT_OK(BackwardSearch(&view, pattern, &l, &r));
  *count = r - l;
  if (range != nullptr) *range = {l, r};
  return Status::OK();
}

Status FmLocatePages(ComponentFileReader* reader, ThreadPool* pool,
                     objectstore::IoTrace* trace, Slice pattern,
                     size_t max_locations,
                     std::vector<format::PageId>* pages) {
  pages->clear();
  FmView view;
  ROTTNEST_RETURN_NOT_OK(FmView::Open(reader, pool, trace, &view));
  uint64_t l, r;
  {
    uint64_t count = 0;
    std::pair<uint64_t, uint64_t> range;
    ROTTNEST_RETURN_NOT_OK(
        FmCount(reader, pool, trace, pattern, &count, &range));
    l = range.first;
    r = range.second;
  }
  if (l >= r) return Status::OK();

  // LF-walk each occurrence to its nearest sample, batching block reads
  // across occurrences per step (one dependent round per step).
  struct Walk {
    uint64_t row;
    uint64_t steps = 0;
    bool done = false;
    uint64_t slot = 0;  ///< Sample slot once done; resolved in a batch.
    uint64_t pos = 0;
  };
  std::vector<Walk> walks;
  for (uint64_t j = l; j < r && walks.size() < max_locations; ++j) {
    walks.push_back({j});
  }

  const uint32_t max_steps = view.meta().sample_rate + 1;
  for (uint32_t step = 0; step <= max_steps; ++step) {
    // Prefetch all blocks this step touches in one round.
    std::set<std::string> names;
    bool any_active = false;
    for (const Walk& w : walks) {
      if (w.done) continue;
      any_active = true;
      names.insert(view.MarkBlockName(w.row));
      names.insert(view.BwtBlockName(w.row));
    }
    if (!any_active) break;
    ROTTNEST_RETURN_NOT_OK(view.Prefetch(
        std::vector<std::string>(names.begin(), names.end())));

    for (Walk& w : walks) {
      if (w.done) continue;
      bool marked;
      uint64_t slot;
      ROTTNEST_RETURN_NOT_OK(view.Marked(w.row, &marked, &slot));
      if (marked) {
        w.slot = slot;
        w.done = true;
        continue;
      }
      uint64_t next;
      ROTTNEST_RETURN_NOT_OK(view.Lf(w.row, &next));
      w.row = next;
      w.steps++;
    }
  }
  for (const Walk& w : walks) {
    if (!w.done) {
      return Status::Internal("locate walk exceeded sample rate bound");
    }
  }

  // Resolve all sampled positions in one batched round.
  {
    std::set<std::string> ssa_names;
    for (const Walk& w : walks) ssa_names.insert(view.SsaBlockName(w.slot));
    ROTTNEST_RETURN_NOT_OK(view.Prefetch(
        std::vector<std::string>(ssa_names.begin(), ssa_names.end())));
    for (Walk& w : walks) {
      uint64_t sampled = 0;
      ROTTNEST_RETURN_NOT_OK(view.Sample(w.slot, &sampled));
      w.pos = sampled + w.steps;
    }
  }

  // Map text positions to pages via bounds.
  std::vector<uint64_t> bounds;
  ROTTNEST_RETURN_NOT_OK(view.LoadBounds(&bounds));
  std::set<format::PageId> result;
  for (const Walk& w : walks) {
    auto it = std::upper_bound(bounds.begin(), bounds.end(), w.pos);
    if (it == bounds.begin()) continue;  // Before the first page (sentinel).
    result.insert(static_cast<format::PageId>((it - bounds.begin()) - 1));
  }
  pages->assign(result.begin(), result.end());
  return Status::OK();
}

Status FmMerge(const std::vector<ComponentFileReader*>& inputs,
               ThreadPool* pool, objectstore::IoTrace* trace,
               const std::string& column, const FmOptions& options,
               Buffer* out) {
  if (inputs.empty()) return Status::InvalidArgument("no inputs to merge");
  FmMeta meta;
  FmContent merged;
  ROTTNEST_RETURN_NOT_OK(LoadContent(inputs[0], pool, trace, &meta, &merged));
  for (size_t i = 1; i < inputs.size(); ++i) {
    FmContent next;
    ROTTNEST_RETURN_NOT_OK(LoadContent(inputs[i], pool, trace, &meta, &next));
    FmContent combined;
    ROTTNEST_RETURN_NOT_OK(MergePair(merged, next, options, &combined));
    merged = std::move(combined);
  }
  return EmitFmFile(column, options, merged, pool, out);
}

}  // namespace rottnest::index
