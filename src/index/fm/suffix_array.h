// Suffix-array construction via SA-IS (Nong, Zhang & Chan) — linear time,
// used to build the BWT for the substring-search FM-index (paper §V-C2).
#ifndef ROTTNEST_INDEX_FM_SUFFIX_ARRAY_H_
#define ROTTNEST_INDEX_FM_SUFFIX_ARRAY_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace rottnest::index {

/// Builds the suffix array of `text`. The final byte must be 0x00 and 0x00
/// must not occur anywhere else (the unique smallest sentinel).
Result<std::vector<int64_t>> BuildSuffixArray(Slice text);

/// Derives the BWT from a text and its suffix array:
/// bwt[i] = text[sa[i] - 1], with the sentinel wrapping to text[n-1].
Buffer BwtFromSuffixArray(Slice text, const std::vector<int64_t>& sa);

/// Inverts a single-string BWT (with exactly one 0x00 sentinel) back to the
/// original text. Used by tests and for merge verification.
Result<Buffer> InvertBwt(Slice bwt);

}  // namespace rottnest::index

#endif  // ROTTNEST_INDEX_FM_SUFFIX_ARRAY_H_
