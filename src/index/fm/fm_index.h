// Substring-search index (paper §V-C2): an FM-index over the concatenated
// text of a column's data pages, componentized for object storage.
//
// Text model: each index file holds a *collection* of strings (one per
// original build; merges add more). Within a string, page texts are joined
// with a 0x01 separator and the string ends with a 0x00 sentinel, so
// patterns never match across pages' values or across strings. Input bytes
// 0x00 (sentinel) and 0x01 (separator) are remapped to 0x02 at build time —
// sound because every index hit is verified in situ against the raw data
// (paper §IV-B).
//
// Components:
//   bwt.B   : 256-symbol occ checkpoint + one BWT block (block_size bytes)
//   mark.B  : rank checkpoint + bitvector marking sampled SA rows
//   ssa.B   : bit-packed sampled text positions (text-order sampling,
//             every k-th position of each string, position 0 always)
//   bounds  : page-start offsets in the concatenated text
//   pagetable, meta (written last; meta rides the directory tail read)
//
// Backward search costs ≤2 block reads per pattern symbol (cached and
// batched per step); locate costs ≤k LF-steps per occurrence, batched
// across occurrences per step — the depth-bound behaviour §VII-A measures.
//
// Merging follows Holt & McMillan: the interleave bitvector of two BWTs is
// refined iteratively (bounded iterations) without reconstructing the
// texts; sample structures are carried over by remapping rows.
#ifndef ROTTNEST_INDEX_FM_FM_INDEX_H_
#define ROTTNEST_INDEX_FM_FM_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "format/page_table.h"
#include "index/component_file.h"

namespace rottnest::index {

/// FM-index build knobs.
struct FmOptions {
  uint32_t block_size = 64 << 10;  ///< BWT symbols per component.
  uint32_t sample_rate = 16;       ///< Text-order SA sampling stride k.
  /// Safety cap on Holt-McMillan interleave refinement passes; merge fails
  /// with Aborted beyond it (never reached for natural text).
  uint32_t max_interleave_iterations = 10000;
};

/// Replaces reserved bytes (0x00 separator, 0x01 sentinel) with 0x02.
void SanitizeText(Buffer* text);

/// Accumulates page texts and emits an FM index file.
class FmIndexBuilder {
 public:
  FmIndexBuilder(std::string column, FmOptions options)
      : column_(std::move(column)), options_(options) {}

  /// Appends one page's concatenated values. Pages must be added in the
  /// same order as the page table passed to Finish.
  void AddPage(Slice page_text);

  /// Appends one page given its individual values: each value is sanitized
  /// and values are joined with the separator so patterns cannot match
  /// across values.
  void AddPageValues(const std::vector<std::string>& values);

  /// Renders one page's values into the exact byte form AddPageValues
  /// appends (sanitized, separator-joined). Pure, so the parallel build
  /// pipeline can run it off-thread per staged file.
  static void PreparePageText(const std::vector<std::string>& values,
                              Buffer* out);

  /// Appends one page already rendered by PreparePageText.
  void AddPreparedPage(Slice prepared);

  /// Builds the index file image covering the added pages.
  Status Finish(const format::PageTable& pages, Buffer* out) {
    return Finish(pages, nullptr, out);
  }

  /// Parallel variant: component payload compression fans out on `pool`
  /// (nullptr = inline). Suffix-array construction stays serial — the
  /// emitted image is byte-identical at any thread count.
  Status Finish(const format::PageTable& pages, ThreadPool* pool, Buffer* out);

 private:
  std::string column_;
  FmOptions options_;
  Buffer text_;                          ///< Concatenated, sanitized.
  std::vector<uint64_t> page_offsets_;   ///< Start of each page's text.
};

/// Counts occurrences of `pattern` (backward search). Also returns the SA
/// range for use by locate.
Status FmCount(ComponentFileReader* reader, ThreadPool* pool,
               objectstore::IoTrace* trace, Slice pattern, uint64_t* count,
               std::pair<uint64_t, uint64_t>* range = nullptr);

/// Finds up to `max_locations` occurrences of `pattern` and returns the
/// page ids containing them (deduplicated, sorted).
Status FmLocatePages(ComponentFileReader* reader, ThreadPool* pool,
                     objectstore::IoTrace* trace, Slice pattern,
                     size_t max_locations,
                     std::vector<format::PageId>* pages);

/// Merges FM index files into one (pairwise Holt-McMillan interleave).
Status FmMerge(const std::vector<ComponentFileReader*>& inputs,
               ThreadPool* pool, objectstore::IoTrace* trace,
               const std::string& column, const FmOptions& options,
               Buffer* out);

}  // namespace rottnest::index

#endif  // ROTTNEST_INDEX_FM_FM_INDEX_H_
