#include "index/ivfpq/kmeans.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/random.h"

namespace rottnest::index {

float SquaredL2(const float* a, const float* b, size_t dim) {
  float sum = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

Result<KMeansResult> TrainKMeans(const float* data, size_t n, size_t dim,
                                 uint32_t k, uint32_t iterations,
                                 uint64_t seed) {
  if (n == 0 || dim == 0) return Status::InvalidArgument("no training data");
  k = static_cast<uint32_t>(std::min<size_t>(k, n));
  Random rng(seed);

  KMeansResult result;
  result.k = k;
  result.dim = static_cast<uint32_t>(dim);
  result.centroids.resize(static_cast<size_t>(k) * dim);
  result.assignments.assign(n, 0);

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance to the nearest chosen centroid.
  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  size_t first = rng.Uniform(n);
  std::memcpy(result.centroids.data(), data + first * dim,
              dim * sizeof(float));
  for (uint32_t c = 1; c < k; ++c) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      float d = SquaredL2(data + i * dim,
                          result.centroids.data() + (c - 1) * dim, dim);
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0) {
      double target = rng.NextDouble() * total;
      double acc = 0;
      for (size_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.Uniform(n);
    }
    std::memcpy(result.centroids.data() + c * dim, data + chosen * dim,
                dim * sizeof(float));
  }

  // Lloyd iterations.
  std::vector<double> sums(static_cast<size_t>(k) * dim);
  std::vector<uint64_t> counts(k);
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      uint32_t best = NearestCentroid(result.centroids, k,
                                      static_cast<uint32_t>(dim),
                                      data + i * dim);
      if (best != result.assignments[i]) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      uint32_t a = result.assignments[i];
      counts[a]++;
      for (size_t d = 0; d < dim; ++d) {
        sums[a * dim + d] += data[i * dim + d];
      }
    }
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed from a random vector.
        size_t pick = rng.Uniform(n);
        std::memcpy(result.centroids.data() + c * dim, data + pick * dim,
                    dim * sizeof(float));
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c * dim + d] =
            static_cast<float>(sums[c * dim + d] / counts[c]);
      }
    }
  }
  // Final assignment pass against the last centroid update.
  for (size_t i = 0; i < n; ++i) {
    result.assignments[i] = NearestCentroid(
        result.centroids, k, static_cast<uint32_t>(dim), data + i * dim);
  }
  return result;
}

uint32_t NearestCentroid(const std::vector<float>& centroids, uint32_t k,
                         uint32_t dim, const float* vec) {
  uint32_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (uint32_t c = 0; c < k; ++c) {
    float d = SquaredL2(vec, centroids.data() + static_cast<size_t>(c) * dim,
                        dim);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

std::vector<uint32_t> NearestCentroids(const std::vector<float>& centroids,
                                       uint32_t k, uint32_t dim,
                                       const float* vec, uint32_t m) {
  std::vector<std::pair<float, uint32_t>> dists;
  dists.reserve(k);
  for (uint32_t c = 0; c < k; ++c) {
    dists.emplace_back(
        SquaredL2(vec, centroids.data() + static_cast<size_t>(c) * dim, dim),
        c);
  }
  m = std::min(m, k);
  std::partial_sort(dists.begin(), dists.begin() + m, dists.end());
  std::vector<uint32_t> result(m);
  for (uint32_t i = 0; i < m; ++i) result[i] = dists[i].second;
  return result;
}

}  // namespace rottnest::index
