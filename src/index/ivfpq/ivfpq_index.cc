#include "index/ivfpq/ivfpq_index.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/random.h"
#include "index/ivfpq/kmeans.h"

namespace rottnest::index {

namespace {

constexpr const char* kMetaComponent = "meta";
constexpr const char* kCentroidsComponent = "centroids";
constexpr const char* kCodebooksComponent = "codebooks";
constexpr const char* kPageTableComponent = "pagetable";

std::string ListName(uint32_t l) { return "list." + std::to_string(l); }

struct IvfMeta {
  uint32_t dim = 0;
  uint32_t nlist = 0;
  uint32_t m = 0;  ///< Subquantizers.
  uint64_t num_vectors = 0;

  uint32_t sub_dim() const { return dim / m; }
};

void SerializeMeta(const IvfMeta& meta, Buffer* out) {
  PutVarint32(out, meta.dim);
  PutVarint32(out, meta.nlist);
  PutVarint32(out, meta.m);
  PutVarint64(out, meta.num_vectors);
}

Status DeserializeMeta(Slice payload, IvfMeta* out) {
  Decoder dec(payload);
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&out->dim));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&out->nlist));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&out->m));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&out->num_vectors));
  if (!dec.exhausted()) return Status::Corruption("trailing ivf meta");
  if (out->m == 0 || out->dim == 0 || out->dim % out->m != 0) {
    return Status::Corruption("bad ivf meta geometry");
  }
  return Status::OK();
}

void PutFloats(const float* data, size_t count, Buffer* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data);
  out->insert(out->end(), bytes, bytes + count * sizeof(float));
}

Status GetFloats(Slice payload, size_t expected, std::vector<float>* out) {
  if (payload.size() != expected * sizeof(float)) {
    return Status::Corruption("float array size mismatch");
  }
  out->resize(expected);
  std::memcpy(out->data(), payload.data(), payload.size());
  return Status::OK();
}

/// One inverted-list entry.
struct ListEntry {
  format::PageId page;
  uint32_t row_in_page;
  std::vector<uint8_t> code;  ///< M bytes.
};

void SerializeList(const std::vector<ListEntry>& entries, uint32_t m,
                   Buffer* out) {
  PutVarint64(out, entries.size());
  for (const ListEntry& e : entries) {
    PutVarint32(out, e.page);
    PutVarint32(out, e.row_in_page);
    out->insert(out->end(), e.code.begin(), e.code.end());
    (void)m;
  }
}

Status DeserializeList(Slice payload, uint32_t m,
                       std::vector<ListEntry>* out) {
  Decoder dec(payload);
  uint64_t n = 0;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ListEntry e;
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&e.page));
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&e.row_in_page));
    Slice code;
    ROTTNEST_RETURN_NOT_OK(dec.GetBytes(m, &code));
    e.code.assign(code.data(), code.data() + m);
    out->push_back(std::move(e));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing list bytes");
  return Status::OK();
}

/// Product quantizer: encode/decode against per-subspace codebooks
/// (m * 256 * sub_dim floats, indexed [sub][code][dim]).
std::vector<uint8_t> PqEncode(const std::vector<float>& codebooks,
                              const IvfMeta& meta, const float* vec) {
  uint32_t sd = meta.sub_dim();
  std::vector<uint8_t> code(meta.m);
  for (uint32_t s = 0; s < meta.m; ++s) {
    const float* sub = vec + s * sd;
    const float* book = codebooks.data() + static_cast<size_t>(s) * 256 * sd;
    uint32_t best = 0;
    float best_dist = std::numeric_limits<float>::max();
    for (uint32_t c = 0; c < 256; ++c) {
      float d = SquaredL2(sub, book + static_cast<size_t>(c) * sd, sd);
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    code[s] = static_cast<uint8_t>(best);
  }
  return code;
}

void PqDecode(const std::vector<float>& codebooks, const IvfMeta& meta,
              const uint8_t* code, float* out) {
  uint32_t sd = meta.sub_dim();
  for (uint32_t s = 0; s < meta.m; ++s) {
    const float* book = codebooks.data() + static_cast<size_t>(s) * 256 * sd;
    std::memcpy(out + s * sd, book + static_cast<size_t>(code[s]) * sd,
                sd * sizeof(float));
  }
}

/// ADC lookup table: distances from the query's subvectors to every
/// codeword; a code's distance is the sum of m table entries.
std::vector<float> BuildAdcTable(const std::vector<float>& codebooks,
                                 const IvfMeta& meta, const float* query) {
  uint32_t sd = meta.sub_dim();
  std::vector<float> table(static_cast<size_t>(meta.m) * 256);
  for (uint32_t s = 0; s < meta.m; ++s) {
    const float* sub = query + s * sd;
    const float* book = codebooks.data() + static_cast<size_t>(s) * 256 * sd;
    for (uint32_t c = 0; c < 256; ++c) {
      table[s * 256 + c] =
          SquaredL2(sub, book + static_cast<size_t>(c) * sd, sd);
    }
  }
  return table;
}

float AdcDistance(const std::vector<float>& table, uint32_t m,
                  const uint8_t* code) {
  float sum = 0.0f;
  for (uint32_t s = 0; s < m; ++s) sum += table[s * 256 + code[s]];
  return sum;
}

/// Writes the complete index file from trained quantizers + filled lists.
Status EmitIvfFile(const std::string& column, const IvfMeta& meta,
                   const std::vector<float>& centroids,
                   const std::vector<float>& codebooks,
                   const std::vector<std::vector<ListEntry>>& lists,
                   const format::PageTable& pages, ThreadPool* pool,
                   Buffer* out) {
  ComponentFileWriter writer(IndexType::kIvfPq, column);

  // Serialize lists in parallel (component order is fixed up front, so the
  // file bytes do not depend on thread count), then append everything in
  // one AddComponents call so compression rides `pool` too.
  std::vector<std::string> names;
  std::vector<Buffer> payloads;
  names.reserve(meta.nlist + 4);
  payloads.resize(meta.nlist + 4);

  names.push_back(kPageTableComponent);
  pages.Serialize(&payloads[0]);
  for (uint32_t l = 0; l < meta.nlist; ++l) names.push_back(ListName(l));
  auto serialize_list = [&](size_t l) {
    SerializeList(lists[l], meta.m, &payloads[1 + l]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(meta.nlist, serialize_list);
  } else {
    for (uint32_t l = 0; l < meta.nlist; ++l) serialize_list(l);
  }
  names.push_back(kCodebooksComponent);
  PutFloats(codebooks.data(), codebooks.size(), &payloads[1 + meta.nlist]);
  names.push_back(kCentroidsComponent);
  PutFloats(centroids.data(), centroids.size(), &payloads[2 + meta.nlist]);
  names.push_back(kMetaComponent);
  SerializeMeta(meta, &payloads[3 + meta.nlist]);

  ROTTNEST_RETURN_NOT_OK(writer.AddComponents(names, payloads, pool));
  return writer.Finish(out);
}

/// Loads meta + centroids + codebooks (normally all cached from the tail).
Status OpenQuantizers(ComponentFileReader* reader, ThreadPool* pool,
                      objectstore::IoTrace* trace, IvfMeta* meta,
                      std::vector<float>* centroids,
                      std::vector<float>* codebooks) {
  if (reader->type() != IndexType::kIvfPq) {
    return Status::InvalidArgument("not an ivfpq index");
  }
  std::vector<Buffer> parts;
  ROTTNEST_RETURN_NOT_OK(reader->ReadComponents(
      {kMetaComponent, kCentroidsComponent, kCodebooksComponent}, pool, trace,
      &parts));
  ROTTNEST_RETURN_NOT_OK(DeserializeMeta(Slice(parts[0]), meta));
  ROTTNEST_RETURN_NOT_OK(GetFloats(
      Slice(parts[1]), static_cast<size_t>(meta->nlist) * meta->dim,
      centroids));
  ROTTNEST_RETURN_NOT_OK(GetFloats(
      Slice(parts[2]),
      static_cast<size_t>(meta->m) * 256 * meta->sub_dim(), codebooks));
  return Status::OK();
}

}  // namespace

void IvfPqIndexBuilder::Add(const float* vector, format::PageId page,
                            uint32_t row_in_page) {
  vectors_.insert(vectors_.end(), vector, vector + dim_);
  locations_.emplace_back(page, row_in_page);
}

Status IvfPqIndexBuilder::Finish(const format::PageTable& pages,
                                 ThreadPool* pool, Buffer* out) {
  size_t n = locations_.size();
  if (n == 0) return Status::InvalidArgument("no vectors to index");
  if (dim_ % options_.num_subquantizers != 0) {
    return Status::InvalidArgument("dim must be divisible by subquantizers");
  }
  IvfMeta meta;
  meta.dim = dim_;
  meta.m = options_.num_subquantizers;
  meta.nlist = std::min<uint32_t>(options_.nlist,
                                  static_cast<uint32_t>(n));
  meta.num_vectors = n;

  // Deterministic training sample.
  size_t train_n = std::min<size_t>(n, options_.max_training_vectors);
  std::vector<float> train;
  if (train_n == n) {
    train = vectors_;
  } else {
    Random rng(options_.seed);
    train.reserve(train_n * dim_);
    for (size_t i = 0; i < train_n; ++i) {
      size_t pick = rng.Uniform(n);
      train.insert(train.end(), vectors_.begin() + pick * dim_,
                   vectors_.begin() + (pick + 1) * dim_);
    }
  }

  // Coarse quantizer.
  ROTTNEST_ASSIGN_OR_RETURN(
      KMeansResult coarse,
      TrainKMeans(train.data(), train_n, dim_, meta.nlist,
                  options_.kmeans_iterations, options_.seed));
  meta.nlist = coarse.k;

  // PQ codebooks: residuals are skipped (plain PQ on raw vectors) for
  // simplicity; each subspace trains its own 256-codeword book.
  uint32_t sd = dim_ / meta.m;
  std::vector<float> codebooks(static_cast<size_t>(meta.m) * 256 * sd);
  std::vector<float> sub_train(train_n * sd);
  for (uint32_t s = 0; s < meta.m; ++s) {
    for (size_t i = 0; i < train_n; ++i) {
      std::memcpy(sub_train.data() + i * sd, train.data() + i * dim_ + s * sd,
                  sd * sizeof(float));
    }
    ROTTNEST_ASSIGN_OR_RETURN(
        KMeansResult book,
        TrainKMeans(sub_train.data(), train_n, sd, 256,
                    options_.kmeans_iterations, options_.seed + s + 1));
    // book.k may be < 256 for tiny inputs; replicate the last centroid so
    // code bytes are always valid.
    for (uint32_t c = 0; c < 256; ++c) {
      uint32_t src = std::min(c, book.k - 1);
      std::memcpy(codebooks.data() + (static_cast<size_t>(s) * 256 + c) * sd,
                  book.centroids.data() + static_cast<size_t>(src) * sd,
                  sd * sizeof(float));
    }
  }

  // Assign and encode every vector. Both steps are pure per vector, so
  // they fan out on `pool` into per-vector slots; the inverted lists are
  // then filled serially in vector order, keeping list contents (and the
  // file bytes) identical to the serial build.
  std::vector<uint32_t> assignment(n);
  std::vector<std::vector<uint8_t>> codes(n);
  auto encode_one = [&](size_t i) {
    const float* vec = vectors_.data() + i * dim_;
    assignment[i] = NearestCentroid(coarse.centroids, meta.nlist, dim_, vec);
    codes[i] = PqEncode(codebooks, meta, vec);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, encode_one);
  } else {
    for (size_t i = 0; i < n; ++i) encode_one(i);
  }
  std::vector<std::vector<ListEntry>> lists(meta.nlist);
  for (size_t i = 0; i < n; ++i) {
    ListEntry e;
    e.page = locations_[i].first;
    e.row_in_page = locations_[i].second;
    e.code = std::move(codes[i]);
    lists[assignment[i]].push_back(std::move(e));
  }
  return EmitIvfFile(column_, meta, coarse.centroids, codebooks, lists, pages,
                     pool, out);
}

Status IvfPqSearch(ComponentFileReader* reader, ThreadPool* pool,
                   objectstore::IoTrace* trace, const float* query,
                   uint32_t dim, uint32_t nprobe, size_t max_candidates,
                   std::vector<VectorCandidate>* out) {
  out->clear();
  IvfMeta meta;
  std::vector<float> centroids, codebooks;
  ROTTNEST_RETURN_NOT_OK(
      OpenQuantizers(reader, pool, trace, &meta, &centroids, &codebooks));
  if (dim != meta.dim) return Status::InvalidArgument("query dim mismatch");

  std::vector<uint32_t> probes =
      NearestCentroids(centroids, meta.nlist, meta.dim, query, nprobe);
  std::vector<std::string> names;
  names.reserve(probes.size());
  for (uint32_t l : probes) names.push_back(ListName(l));
  std::vector<Buffer> lists;
  // One parallel round for all probed lists.
  ROTTNEST_RETURN_NOT_OK(reader->ReadComponents(names, pool, trace, &lists));

  std::vector<float> table = BuildAdcTable(codebooks, meta, query);
  std::vector<VectorCandidate> candidates;
  for (const Buffer& payload : lists) {
    std::vector<ListEntry> entries;
    ROTTNEST_RETURN_NOT_OK(DeserializeList(Slice(payload), meta.m, &entries));
    for (const ListEntry& e : entries) {
      VectorCandidate c;
      c.page = e.page;
      c.row_in_page = e.row_in_page;
      c.approx_dist = AdcDistance(table, meta.m, e.code.data());
      candidates.push_back(c);
    }
  }
  size_t keep = std::min(max_candidates, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end(),
                    [](const VectorCandidate& a, const VectorCandidate& b) {
                      return a.approx_dist < b.approx_dist;
                    });
  candidates.resize(keep);
  *out = std::move(candidates);
  return Status::OK();
}

Status IvfPqMerge(const std::vector<ComponentFileReader*>& inputs,
                  ThreadPool* pool, objectstore::IoTrace* trace,
                  const std::string& column, Buffer* out) {
  if (inputs.empty()) return Status::InvalidArgument("no inputs to merge");

  // Survivor quantizers: the first input's.
  IvfMeta meta;
  std::vector<float> centroids, codebooks;
  ROTTNEST_RETURN_NOT_OK(OpenQuantizers(inputs[0], pool, trace, &meta,
                                        &centroids, &codebooks));

  format::PageTable merged_pages;
  std::vector<std::vector<ListEntry>> lists(meta.nlist);
  uint64_t total_vectors = 0;

  for (size_t idx = 0; idx < inputs.size(); ++idx) {
    ComponentFileReader* input = inputs[idx];
    IvfMeta in_meta;
    std::vector<float> in_centroids, in_codebooks;
    ROTTNEST_RETURN_NOT_OK(OpenQuantizers(input, pool, trace, &in_meta,
                                          &in_centroids, &in_codebooks));
    if (in_meta.dim != meta.dim) {
      return Status::InvalidArgument("merge inputs disagree on dim");
    }
    Buffer table_buf;
    ROTTNEST_RETURN_NOT_OK(input->ReadComponent(kPageTableComponent, pool,
                                                trace, &table_buf));
    format::PageTable table;
    {
      Decoder dec{Slice(table_buf)};
      ROTTNEST_RETURN_NOT_OK(format::PageTable::Deserialize(&dec, &table));
    }
    format::PageId page_offset = merged_pages.Absorb(table);

    // Read all lists of this input in one round.
    std::vector<std::string> names;
    for (uint32_t l = 0; l < in_meta.nlist; ++l) names.push_back(ListName(l));
    std::vector<Buffer> in_lists;
    ROTTNEST_RETURN_NOT_OK(
        input->ReadComponents(names, pool, trace, &in_lists));

    bool same_quantizers = idx == 0;
    std::vector<float> reconstructed(meta.dim);
    for (uint32_t l = 0; l < in_meta.nlist; ++l) {
      std::vector<ListEntry> entries;
      ROTTNEST_RETURN_NOT_OK(
          DeserializeList(Slice(in_lists[l]), in_meta.m, &entries));
      for (ListEntry& e : entries) {
        e.page += page_offset;
        ++total_vectors;
        if (same_quantizers) {
          lists[l].push_back(std::move(e));
          continue;
        }
        // Re-encode through the survivor quantizers: decode with the
        // input's codebooks, then assign + encode with the survivor's.
        PqDecode(in_codebooks, in_meta, e.code.data(), reconstructed.data());
        uint32_t list = NearestCentroid(centroids, meta.nlist, meta.dim,
                                        reconstructed.data());
        ListEntry moved;
        moved.page = e.page;
        moved.row_in_page = e.row_in_page;
        moved.code = PqEncode(codebooks, meta, reconstructed.data());
        lists[list].push_back(std::move(moved));
      }
      // Bound the working set: the serialized list is folded into the
      // output's entry vectors above, so its cached payload is dead weight.
      input->Evict(ListName(l));
    }
  }
  meta.num_vectors = total_vectors;
  return EmitIvfFile(column, meta, centroids, codebooks, lists, merged_pages,
                     pool, out);
}

}  // namespace rottnest::index
