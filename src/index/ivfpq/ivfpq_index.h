// Vector ANN index (paper §V-C3): IVF-PQ, the centroid-based structure the
// paper picks over graph indices because object-storage search cost is
// dominated by access depth, not distance computations.
//
// Structure:
//   * coarse quantizer: nlist k-means centroids;
//   * product quantizer: M subspaces × 256 codewords each;
//   * inverted lists: per coarse centroid, the member vectors as
//     (page, row-in-page, M-byte PQ code) — one component per list.
//
// Components (roots written last so they ride the tail read): pagetable,
// list.L ..., codebooks, centroids, meta. A search reads the tail (meta +
// centroids + codebooks), then the `nprobe` probed lists in ONE parallel
// round — two dependent rounds total. Candidates are reranked by the core
// via in-situ page reads (`refine`, paper §VII-B2).
//
// Merging keeps the first input's codebooks, decodes other inputs' codes to
// reconstructed vectors and re-encodes them (double quantization) — the
// bounded-cost alternative to retraining from raw data.
#ifndef ROTTNEST_INDEX_IVFPQ_IVFPQ_INDEX_H_
#define ROTTNEST_INDEX_IVFPQ_IVFPQ_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "format/page_table.h"
#include "index/component_file.h"

namespace rottnest::index {

/// IVF-PQ build knobs.
struct IvfPqOptions {
  uint32_t nlist = 64;             ///< Coarse centroids (inverted lists).
  uint32_t num_subquantizers = 16; ///< PQ segments M; dim % M must be 0.
  uint32_t kmeans_iterations = 10;
  uint64_t seed = 0x5eed;
  /// Cap on vectors used for training (sampled deterministically).
  uint32_t max_training_vectors = 20000;
  /// Search-time defaults, used when SearchOptions.vector leaves
  /// nprobe/refine at 0 (the v2 search API folds the per-query knobs into
  /// SearchOptions::VectorSearchParams and defaults them from here).
  uint32_t default_nprobe = 16;    ///< Inverted lists probed per query.
  uint32_t default_refine = 64;    ///< Candidates exactly reranked in situ.
};

/// One approximate search candidate, to be reranked in situ.
struct VectorCandidate {
  format::PageId page = 0;
  uint32_t row_in_page = 0;
  float approx_dist = 0.0f;  ///< ADC (PQ) distance to the query.
};

/// Accumulates vectors and emits an IVF-PQ index file.
class IvfPqIndexBuilder {
 public:
  IvfPqIndexBuilder(std::string column, uint32_t dim, IvfPqOptions options)
      : column_(std::move(column)), dim_(dim), options_(options) {}

  /// Registers a vector living at (page, row_in_page).
  void Add(const float* vector, format::PageId page, uint32_t row_in_page);

  size_t num_vectors() const { return locations_.size(); }

  /// Trains quantizers and builds the index file image.
  Status Finish(const format::PageTable& pages, Buffer* out) {
    return Finish(pages, nullptr, out);
  }

  /// Parallel variant: per-vector assignment + PQ encoding (the dominant
  /// CPU cost) and component compression fan out on `pool` (nullptr =
  /// inline). Training is deterministic and serial; inverted lists are
  /// filled in vector order, so the image is byte-identical at any thread
  /// count.
  Status Finish(const format::PageTable& pages, ThreadPool* pool, Buffer* out);

 private:
  std::string column_;
  uint32_t dim_;
  IvfPqOptions options_;
  std::vector<float> vectors_;  ///< Row-major.
  std::vector<std::pair<format::PageId, uint32_t>> locations_;
};

/// Probes the `nprobe` nearest inverted lists and returns up to
/// `max_candidates` ADC-ranked candidates (ascending distance).
Status IvfPqSearch(ComponentFileReader* reader, ThreadPool* pool,
                   objectstore::IoTrace* trace, const float* query,
                   uint32_t dim, uint32_t nprobe, size_t max_candidates,
                   std::vector<VectorCandidate>* out);

/// Merges IVF-PQ index files (first input's quantizers survive).
Status IvfPqMerge(const std::vector<ComponentFileReader*>& inputs,
                  ThreadPool* pool, objectstore::IoTrace* trace,
                  const std::string& column, Buffer* out);

/// Reads vector floats out of a fixed-len column value.
inline const float* VectorFromValue(Slice value) {
  return reinterpret_cast<const float*>(value.data());
}

}  // namespace rottnest::index

#endif  // ROTTNEST_INDEX_IVFPQ_IVFPQ_INDEX_H_
