// Lloyd's k-means with k-means++ seeding: the training primitive for both
// the IVF coarse quantizer and the per-subspace product-quantizer codebooks
// (paper §V-C3).
#ifndef ROTTNEST_INDEX_IVFPQ_KMEANS_H_
#define ROTTNEST_INDEX_IVFPQ_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace rottnest::index {

/// Squared Euclidean distance between two `dim`-dimensional vectors.
float SquaredL2(const float* a, const float* b, size_t dim);

/// k-means result: k centroids of `dim` floats, row-major.
struct KMeansResult {
  std::vector<float> centroids;  ///< k * dim floats.
  std::vector<uint32_t> assignments;  ///< Per training vector.
  uint32_t k = 0;
  uint32_t dim = 0;
};

/// Trains k centroids over `n` vectors (row-major `data`, n*dim floats).
/// k is clamped to n. Deterministic for a given seed.
Result<KMeansResult> TrainKMeans(const float* data, size_t n, size_t dim,
                                 uint32_t k, uint32_t iterations,
                                 uint64_t seed);

/// Index of the centroid closest to `vec`.
uint32_t NearestCentroid(const std::vector<float>& centroids, uint32_t k,
                         uint32_t dim, const float* vec);

/// Indices of the `m` nearest centroids, closest first.
std::vector<uint32_t> NearestCentroids(const std::vector<float>& centroids,
                                       uint32_t k, uint32_t dim,
                                       const float* vec, uint32_t m);

}  // namespace rottnest::index

#endif  // ROTTNEST_INDEX_IVFPQ_KMEANS_H_
