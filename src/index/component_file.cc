#include "index/component_file.h"

#include <cstring>

#include "common/hash.h"
#include "objectstore/read_batch.h"

namespace rottnest::index {

namespace {

/// The AddComponent compression policy — LZ unless incompressible —
/// factored out so AddComponents can run it off-thread.
void CompressPayload(Slice payload, Buffer* compressed, uint8_t* codec) {
  *compressed = compress::LzCompress(payload);
  *codec = static_cast<uint8_t>(compress::Codec::kLz);
  if (compressed->size() >= payload.size()) {
    *compressed = payload.ToBuffer();
    *codec = static_cast<uint8_t>(compress::Codec::kNone);
  }
}

}  // namespace

constexpr char ComponentFileWriter::kMagic[4];

const char* IndexTypeName(IndexType t) {
  switch (t) {
    case IndexType::kTrie:
      return "trie";
    case IndexType::kFm:
      return "fm";
    case IndexType::kIvfPq:
      return "ivfpq";
    case IndexType::kKeyword:
      return "keyword";
  }
  return "unknown";
}

bool IndexTypeFromName(const std::string& name, IndexType* out) {
  for (IndexType t : {IndexType::kTrie, IndexType::kFm, IndexType::kIvfPq,
                      IndexType::kKeyword}) {
    if (name == IndexTypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

Status ComponentFileWriter::AppendCompressed(const std::string& name,
                                             size_t uncompressed_size,
                                             Buffer compressed,
                                             uint8_t codec) {
  if (finished_) return Status::InvalidArgument("writer finished");
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return Status::InvalidArgument("duplicate component: " + name);
    }
  }
  Entry e;
  e.name = name;
  e.offset = file_.size();
  e.compressed_size = static_cast<uint32_t>(compressed.size());
  e.uncompressed_size = static_cast<uint32_t>(uncompressed_size);
  e.codec = codec;
  e.checksum = Hash64(Slice(compressed));
  entries_.push_back(std::move(e));
  file_.insert(file_.end(), compressed.begin(), compressed.end());
  return Status::OK();
}

Status ComponentFileWriter::AddComponent(const std::string& name,
                                         Slice payload) {
  Buffer compressed;
  uint8_t codec = 0;
  CompressPayload(payload, &compressed, &codec);
  return AppendCompressed(name, payload.size(), std::move(compressed), codec);
}

Status ComponentFileWriter::AddComponents(
    const std::vector<std::string>& names, const std::vector<Buffer>& payloads,
    ThreadPool* pool) {
  if (names.size() != payloads.size()) {
    return Status::InvalidArgument("names/payloads size mismatch");
  }
  std::vector<Buffer> compressed(payloads.size());
  std::vector<uint8_t> codecs(payloads.size(), 0);
  auto compress_one = [&](size_t i) {
    CompressPayload(Slice(payloads[i]), &compressed[i], &codecs[i]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(payloads.size(), compress_one);
  } else {
    for (size_t i = 0; i < payloads.size(); ++i) compress_one(i);
  }
  for (size_t i = 0; i < payloads.size(); ++i) {
    ROTTNEST_RETURN_NOT_OK(AppendCompressed(
        names[i], payloads[i].size(), std::move(compressed[i]), codecs[i]));
  }
  return Status::OK();
}

Status ComponentFileWriter::Finish(Buffer* out) {
  if (finished_) return Status::InvalidArgument("writer finished");
  Buffer dir;
  dir.push_back(static_cast<uint8_t>(type_));
  PutLengthPrefixedString(&dir, column_);
  PutVarint64(&dir, entries_.size());
  for (const Entry& e : entries_) {
    PutLengthPrefixedString(&dir, e.name);
    PutVarint64(&dir, e.offset);
    PutVarint32(&dir, e.compressed_size);
    PutVarint32(&dir, e.uncompressed_size);
    dir.push_back(e.codec);
    PutFixed64(&dir, e.checksum);
  }
  file_.insert(file_.end(), dir.begin(), dir.end());
  PutFixed64(&file_, Hash64(Slice(dir)));
  PutFixed32(&file_, static_cast<uint32_t>(dir.size()));
  file_.insert(file_.end(), kMagic, kMagic + 4);
  *out = std::move(file_);
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<ComponentFileReader>> ComponentFileReader::Open(
    objectstore::ObjectStore* store, std::string key,
    objectstore::IoTrace* trace, size_t tail_bytes) {
  objectstore::ObjectMeta meta;
  ROTTNEST_RETURN_NOT_OK(store->Head(key, &meta));
  if (meta.size < 20) return Status::Corruption("index file too small");

  uint64_t tail_len = std::min<uint64_t>(meta.size, tail_bytes);
  Buffer tail;
  if (trace != nullptr) trace->BeginRound();
  ROTTNEST_RETURN_NOT_OK(
      store->GetRange(key, meta.size - tail_len, tail_len, &tail));
  if (trace != nullptr) trace->RecordGet(tail.size());

  if (std::memcmp(tail.data() + tail.size() - 4, ComponentFileWriter::kMagic,
                  4) != 0) {
    return Status::Corruption("bad index magic: " + key);
  }
  // When the tail read happens to cover the whole file, verifying the
  // LEADING magic is free. (For larger files it goes unchecked: no read
  // path depends on it — the directory checksum is the integrity root.)
  if (tail_len == meta.size &&
      std::memcmp(tail.data(), ComponentFileWriter::kMagic, 4) != 0) {
    return Status::Corruption("bad leading index magic: " + key);
  }
  uint32_t dir_len = DecodeFixed32(tail.data() + tail.size() - 8);
  if (static_cast<uint64_t>(dir_len) + 20 > meta.size) {
    return Status::Corruption("directory length exceeds file");
  }
  if (dir_len + 16 > tail.size()) {
    // Directory bigger than the tail read: fetch it exactly (rare; only for
    // indices with very many components).
    if (trace != nullptr) trace->BeginRound();
    ROTTNEST_RETURN_NOT_OK(store->GetRange(key, meta.size - 16 - dir_len,
                                           dir_len + 16, &tail));
    if (trace != nullptr) trace->RecordGet(tail.size());
    tail_len = dir_len + 16;
  }

  std::unique_ptr<ComponentFileReader> reader(
      new ComponentFileReader(store, std::move(key)));
  Slice dir(tail.data() + tail.size() - 16 - dir_len, dir_len);
  uint64_t dir_checksum = DecodeFixed64(tail.data() + tail.size() - 16);
  if (Hash64(dir) != dir_checksum) {
    return Status::Corruption("index directory checksum mismatch: " +
                              reader->key_);
  }
  Decoder dec(dir);
  Slice type_byte;
  ROTTNEST_RETURN_NOT_OK(dec.GetBytes(1, &type_byte));
  if (type_byte[0] > static_cast<uint8_t>(IndexType::kKeyword)) {
    return Status::Corruption("bad index type");
  }
  reader->type_ = static_cast<IndexType>(type_byte[0]);
  ROTTNEST_RETURN_NOT_OK(dec.GetLengthPrefixedString(&reader->column_));
  uint64_t num_entries;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&num_entries));
  uint64_t tail_start = meta.size - tail_len;
  for (uint64_t i = 0; i < num_entries; ++i) {
    Entry e;
    ROTTNEST_RETURN_NOT_OK(dec.GetLengthPrefixedString(&e.name));
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&e.offset));
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&e.compressed_size));
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&e.uncompressed_size));
    Slice codec;
    ROTTNEST_RETURN_NOT_OK(dec.GetBytes(1, &codec));
    e.codec = codec[0];
    ROTTNEST_RETURN_NOT_OK(dec.GetFixed64(&e.checksum));

    // Pre-decompress components fully contained in the tail we already have.
    if (e.offset >= tail_start) {
      Slice payload(tail.data() + (e.offset - tail_start), e.compressed_size);
      if (Hash64(payload) != e.checksum) {
        return Status::Corruption("component checksum mismatch: " + e.name +
                                  " in " + reader->key_);
      }
      Buffer raw;
      ROTTNEST_RETURN_NOT_OK(compress::Decompress(
          static_cast<compress::Codec>(e.codec), payload, e.uncompressed_size,
          &raw));
      reader->cache_.emplace(e.name, std::move(raw));
      reader->verified_open_.insert(e.name);
    }
    std::string name = e.name;
    reader->directory_.emplace(std::move(name), std::move(e));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing directory bytes");
  return reader;
}

std::vector<std::string> ComponentFileReader::ComponentNames() const {
  std::vector<std::string> names;
  names.reserve(directory_.size());
  for (const auto& [name, e] : directory_) names.push_back(name);
  return names;
}

Status ComponentFileReader::ReadComponents(
    const std::vector<std::string>& names, ThreadPool* pool,
    objectstore::IoTrace* trace, std::vector<Buffer>* out) {
  out->clear();
  out->resize(names.size());

  // Collect the cache misses into one batch.
  std::vector<objectstore::RangeRequest> requests;
  std::vector<size_t> miss_positions;
  for (size_t i = 0; i < names.size(); ++i) {
    auto dir_it = directory_.find(names[i]);
    if (dir_it == directory_.end()) {
      return Status::NotFound("no such component: " + names[i]);
    }
    auto cache_it = cache_.find(names[i]);
    if (cache_it != cache_.end()) {
      (*out)[i] = cache_it->second;
      continue;
    }
    requests.push_back(
        {key_, dir_it->second.offset, dir_it->second.compressed_size});
    miss_positions.push_back(i);
  }
  if (requests.empty()) return Status::OK();

  std::vector<Buffer> raw;
  ROTTNEST_RETURN_NOT_OK(
      objectstore::ReadBatch(store_, requests, pool, trace, &raw));
  for (size_t m = 0; m < miss_positions.size(); ++m) {
    size_t i = miss_positions[m];
    const Entry& e = directory_.at(names[i]);
    if (Hash64(Slice(raw[m])) != e.checksum) {
      return Status::Corruption("component checksum mismatch: " + names[i] +
                                " in " + key_);
    }
    Buffer decompressed;
    ROTTNEST_RETURN_NOT_OK(compress::Decompress(
        static_cast<compress::Codec>(e.codec), Slice(raw[m]),
        e.uncompressed_size, &decompressed));
    cache_[names[i]] = decompressed;
    (*out)[i] = std::move(decompressed);
  }
  return Status::OK();
}

Status ComponentFileReader::ReadComponent(const std::string& name,
                                          ThreadPool* pool,
                                          objectstore::IoTrace* trace,
                                          Buffer* out) {
  std::vector<Buffer> results;
  ROTTNEST_RETURN_NOT_OK(ReadComponents({name}, pool, trace, &results));
  *out = std::move(results[0]);
  return Status::OK();
}

std::vector<ComponentInfo> ComponentFileReader::Components() const {
  std::vector<ComponentInfo> infos;
  infos.reserve(directory_.size());
  for (const auto& [name, e] : directory_) {
    ComponentInfo info;
    info.name = name;
    info.compressed_size = e.compressed_size;
    info.verified_at_open = verified_open_.count(name) != 0;
    infos.push_back(std::move(info));
  }
  return infos;
}

Status ComponentFileReader::VerifyComponents(
    const std::vector<std::string>& names, objectstore::IoTrace* trace,
    std::vector<ComponentDamage>* damage, uint64_t* bytes_fetched) {
  for (const std::string& name : names) {
    if (directory_.count(name) == 0) {
      return Status::InvalidArgument("no such component: " + name);
    }
  }
  if (names.empty()) return Status::OK();
  if (trace != nullptr) trace->BeginRound();
  for (const std::string& name : names) {
    const Entry& e = directory_.at(name);
    Buffer raw;
    Status s = store_->GetRange(key_, e.offset, e.compressed_size, &raw);
    if (s.ok()) {
      if (trace != nullptr) trace->RecordGet(raw.size());
      if (bytes_fetched != nullptr) *bytes_fetched += raw.size();
      if (Hash64(Slice(raw)) != e.checksum) {
        s = Status::Corruption("component checksum mismatch: " + name +
                               " in " + key_);
      }
    }
    if (!s.ok()) damage->push_back({name, std::move(s)});
  }
  return Status::OK();
}

}  // namespace rottnest::index
