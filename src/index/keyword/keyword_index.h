// Tokenized inverted index for boolean keyword search over text columns
// (ROADMAP item 4a; RISE in PAPERS.md is the shape): a deterministic ASCII
// tokenizer feeds per-token posting lists of page ids, delta-encoded and
// bit-packed with the `src/compress/` coders, componentized for object
// storage:
//
//   * posting components ("post.N"): sorted terms, each with its packed
//     posting list, ~64KB serialized per component;
//   * dictionary component ("dict", written last so it rides in the
//     directory tail read): the first term of every posting component,
//     for routing a term to the one component that can contain it.
//
// A k-term boolean query therefore costs two dependent rounds: tail read
// (directory + dict), then ONE parallel round for exactly the posting
// component(s) the terms route to. Pages are a superset signal — a page
// holds many rows — so every candidate row is verified in situ against the
// data pages (paper §IV-B step 3), exactly like the trie path.
#ifndef ROTTNEST_INDEX_KEYWORD_KEYWORD_INDEX_H_
#define ROTTNEST_INDEX_KEYWORD_KEYWORD_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "format/page_table.h"
#include "index/component_file.h"

namespace rottnest::index {

/// Appends the tokens of `text` to `out`: maximal runs of ASCII
/// alphanumerics, lowercased. Deterministic and locale-independent — build
/// and query must agree, so both use this function.
void Tokenize(Slice text, std::vector<std::string>* out);

/// Normalizes a user-supplied query term through the tokenizer. Returns
/// false unless the term normalizes to exactly one token (empty or
/// multi-word input cannot match any posting).
bool NormalizeTerm(Slice term, std::string* out);

/// Encodes a sorted, deduplicated posting list: varint count, then (when
/// non-empty) one width byte and the delta gaps bit-packed at that width.
void EncodePostings(const std::vector<format::PageId>& pages, Buffer* out);

/// Inverse of EncodePostings.
Status DecodePostings(Decoder* dec, std::vector<format::PageId>* out);

/// One dictionary entry as stored: a term and its posting list.
struct KeywordEntry {
  std::string term;
  std::vector<format::PageId> pages;
};

/// Accumulates (term, page) postings and emits a keyword index file.
class KeywordIndexBuilder {
 public:
  explicit KeywordIndexBuilder(std::string column)
      : column_(std::move(column)) {}

  /// Registers that `term` (already tokenizer-normalized) occurs in page
  /// `page` (of the page table passed to Finish).
  void Add(std::string term, format::PageId page);

  /// Number of postings added.
  size_t num_postings() const { return postings_.size(); }

  /// Tokenizes one page's row values into the page's sorted, deduplicated
  /// token set. Pure, so the staged maintenance pipeline can run it
  /// off-thread per page without affecting emitted bytes.
  static void PreparePageTokens(const std::vector<std::string>& values,
                                std::vector<std::string>* out);

  /// Builds the index file image. `pages` is embedded as the "pagetable"
  /// component so searches can resolve page ids without other metadata.
  Status Finish(const format::PageTable& pages, Buffer* out) {
    return Finish(pages, nullptr, out);
  }

  /// Parallel variant: posting-component serialization and compression fan
  /// out on `pool` (nullptr = inline). The emitted image is byte-identical
  /// at any thread count — the component partition and the append order are
  /// fixed before any work is distributed.
  Status Finish(const format::PageTable& pages, ThreadPool* pool, Buffer* out);

 private:
  std::string column_;
  std::vector<std::pair<std::string, format::PageId>> postings_;
};

/// Looks up every term of a boolean query in one parallel component round.
/// `require_all` selects AND (intersection of the per-term page sets) vs OR
/// (union). AND over pages is sound for row-level matches: all terms of a
/// matching row live in that row's single page. Terms must already be
/// tokenizer-normalized.
Status KeywordQueryMany(ComponentFileReader* reader, ThreadPool* pool,
                        objectstore::IoTrace* trace,
                        const std::vector<std::string>& terms,
                        bool require_all, std::vector<format::PageId>* pages);

/// Single-term convenience.
Status KeywordQuery(ComponentFileReader* reader, ThreadPool* pool,
                    objectstore::IoTrace* trace, const std::string& term,
                    std::vector<format::PageId>* pages);

/// Merges several keyword index files into one (LSM-style compaction). The
/// merged file's page table is the concatenation of the inputs' tables;
/// postings are remapped accordingly and equal terms' lists are unioned.
///
/// The merge streams: a k-way merge holds one parsed posting component per
/// input (components are evicted from the reader cache once consumed) and
/// emits output components as they fill, replicating the builder's
/// partition rule so output bytes are independent of `pool`.
Status KeywordMerge(const std::vector<ComponentFileReader*>& inputs,
                    ThreadPool* pool, objectstore::IoTrace* trace,
                    const std::string& column, Buffer* out);

/// Size accounting for the bench's compression-ratio report.
struct KeywordIndexStats {
  uint64_t terms = 0;
  uint64_t postings = 0;
  /// Bytes of the encoded posting lists alone (count varint + width byte +
  /// packed gaps), before component-level LZ.
  uint64_t encoded_posting_bytes = 0;
};

/// Walks every posting component and tallies terms/postings/encoded bytes.
Status CollectKeywordStats(ComponentFileReader* reader, ThreadPool* pool,
                           objectstore::IoTrace* trace,
                           KeywordIndexStats* out);

/// Internal: parses the entry stream of one posting component. Exposed for
/// merge and tests.
Status ParseKeywordPostings(Slice payload, std::vector<KeywordEntry>* out);

}  // namespace rottnest::index

#endif  // ROTTNEST_INDEX_KEYWORD_KEYWORD_INDEX_H_
