#include "index/keyword/keyword_index.h"

#include <algorithm>

#include "compress/bitpack.h"
// For the shared "pagetable" component loader (LoadPageTable): the keyword
// file embeds its page table under the same component name and format as
// the other index types.
#include "index/trie/trie_index.h"

namespace rottnest::index {

namespace {

constexpr size_t kTargetPostingBytes = 64 << 10;
constexpr const char* kPageTableComponent = "pagetable";
constexpr const char* kDictComponent = "dict";

std::string PostingName(size_t i) { return "post." + std::to_string(i); }

// Serialized size estimate of one entry. Only consistency between the
// buffered build and the streaming merge matters (both partition with this
// function), not exactness.
size_t EntrySize(const KeywordEntry& e) {
  return 2 + e.term.size() + 2 + 2 * e.pages.size();
}

void SerializeEntry(const KeywordEntry& e, Buffer* out) {
  PutLengthPrefixedString(out, e.term);
  EncodePostings(e.pages, out);
}

Status DeserializeEntry(Decoder* dec, KeywordEntry* out) {
  ROTTNEST_RETURN_NOT_OK(dec->GetLengthPrefixedString(&out->term));
  return DecodePostings(dec, &out->pages);
}

/// The routing dictionary: the first term of every posting component.
struct Dict {
  std::vector<std::string> first_terms;
};

void SerializeDict(const Dict& dict, Buffer* out) {
  PutVarint64(out, dict.first_terms.size());
  for (const std::string& t : dict.first_terms) {
    PutLengthPrefixedString(out, t);
  }
}

Status DeserializeDict(Slice payload, Dict* out) {
  Decoder dec(payload);
  uint64_t n = 0;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&n));
  out->first_terms.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    ROTTNEST_RETURN_NOT_OK(dec.GetLengthPrefixedString(&out->first_terms[i]));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing dict bytes");
  return Status::OK();
}

/// Writes sorted, term-unique entries + page table into an index file.
/// Posting-component serialization and compression fan out on `pool`; the
/// partition is computed serially first and components are appended in
/// fixed order, so the image does not depend on thread count.
Status WriteKeywordFile(const std::string& column,
                        const std::vector<KeywordEntry>& entries,
                        const format::PageTable& pages, ThreadPool* pool,
                        Buffer* out) {
  ComponentFileWriter writer(IndexType::kKeyword, column);

  Buffer table_buf;
  pages.Serialize(&table_buf);
  ROTTNEST_RETURN_NOT_OK(
      writer.AddComponent(kPageTableComponent, Slice(table_buf)));

  // Partition entries into posting components (serial: the split points
  // define the file layout and must not depend on scheduling).
  std::vector<std::pair<size_t, size_t>> ranges;
  size_t i = 0;
  while (i < entries.size()) {
    size_t begin = i;
    size_t bytes = 0;
    while (i < entries.size() && (i == begin || bytes < kTargetPostingBytes)) {
      bytes += EntrySize(entries[i]);
      ++i;
    }
    ranges.emplace_back(begin, i);
  }

  std::vector<std::string> names(ranges.size());
  std::vector<Buffer> bodies(ranges.size());
  auto serialize_component = [&](size_t c) {
    auto [begin, end] = ranges[c];
    names[c] = PostingName(c);
    PutVarint64(&bodies[c], end - begin);
    for (size_t j = begin; j < end; ++j) {
      SerializeEntry(entries[j], &bodies[c]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(ranges.size(), serialize_component);
  } else {
    for (size_t c = 0; c < ranges.size(); ++c) serialize_component(c);
  }
  ROTTNEST_RETURN_NOT_OK(writer.AddComponents(names, bodies, pool));

  Dict dict;
  dict.first_terms.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    dict.first_terms.push_back(entries[begin].term);
  }
  Buffer dict_buf;
  SerializeDict(dict, &dict_buf);
  // Dict written last so it lands in the tail read.
  ROTTNEST_RETURN_NOT_OK(writer.AddComponent(kDictComponent, Slice(dict_buf)));
  return writer.Finish(out);
}

/// Posting component names in numeric order. ComponentNames() is
/// lexicographic ("post.10" < "post.2"), which would scramble a streaming
/// merge's term order.
std::vector<std::string> OrderedPostingNames(
    const ComponentFileReader& input) {
  size_t count = 0;
  for (const std::string& name : input.ComponentNames()) {
    if (name.rfind("post.", 0) == 0) ++count;
  }
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) names.push_back(PostingName(i));
  return names;
}

/// Streams one input's entries in term order, holding a single parsed
/// component at a time and evicting each from the reader cache once
/// consumed.
class KeywordPostingStream {
 public:
  KeywordPostingStream(ComponentFileReader* input, format::PageId page_offset,
                       ThreadPool* pool, objectstore::IoTrace* trace)
      : input_(input),
        page_offset_(page_offset),
        names_(OrderedPostingNames(*input)),
        pool_(pool),
        trace_(trace) {}

  /// Loads the first component. Must be called once before
  /// current()/Advance().
  Status Init() { return LoadNext(); }

  bool exhausted() const { return exhausted_; }
  KeywordEntry& current() { return entries_[pos_]; }
  const KeywordEntry& current() const { return entries_[pos_]; }

  Status Advance() {
    if (++pos_ < entries_.size()) return Status::OK();
    return LoadNext();
  }

 private:
  Status LoadNext() {
    for (;;) {
      if (next_ > 0) input_->Evict(names_[next_ - 1]);
      if (next_ >= names_.size()) {
        exhausted_ = true;
        entries_.clear();
        return Status::OK();
      }
      Buffer buf;
      ROTTNEST_RETURN_NOT_OK(
          input_->ReadComponent(names_[next_], pool_, trace_, &buf));
      ++next_;
      entries_.clear();
      ROTTNEST_RETURN_NOT_OK(ParseKeywordPostings(Slice(buf), &entries_));
      pos_ = 0;
      if (entries_.empty()) continue;  // Defensive: skip empty components.
      for (KeywordEntry& e : entries_) {
        for (format::PageId& p : e.pages) p += page_offset_;
      }
      return Status::OK();
    }
  }

  ComponentFileReader* input_;
  format::PageId page_offset_;
  std::vector<std::string> names_;
  ThreadPool* pool_;
  objectstore::IoTrace* trace_;
  std::vector<KeywordEntry> entries_;
  size_t pos_ = 0;
  size_t next_ = 0;
  bool exhausted_ = false;
};

/// Accumulates merged entries and emits posting components as they fill,
/// replicating WriteKeywordFile's partition rule (first entry always
/// admitted, further entries while the component is under
/// kTargetPostingBytes) so a streaming merge writes the same bytes as the
/// buffered path. Completed bodies flush in small batches so compression
/// can ride `pool` while peak memory stays O(batch × component).
class KeywordPostingEmitter {
 public:
  KeywordPostingEmitter(ComponentFileWriter* writer, ThreadPool* pool)
      : writer_(writer), pool_(pool) {}

  Status Append(const KeywordEntry& e) {
    if (count_ > 0 && bytes_ >= kTargetPostingBytes) {
      ROTTNEST_RETURN_NOT_OK(CloseComponent());
    }
    if (count_ == 0) first_terms_.push_back(e.term);
    bytes_ += EntrySize(e);
    SerializeEntry(e, &body_);
    ++count_;
    return Status::OK();
  }

  /// Flushes the trailing component and fills `dict`.
  Status Close(Dict* dict) {
    if (count_ > 0) ROTTNEST_RETURN_NOT_OK(CloseComponent());
    ROTTNEST_RETURN_NOT_OK(FlushBatch());
    dict->first_terms = std::move(first_terms_);
    return Status::OK();
  }

 private:
  static constexpr size_t kFlushBatchComponents = 8;

  Status CloseComponent() {
    Buffer component;
    PutVarint64(&component, count_);
    component.insert(component.end(), body_.begin(), body_.end());
    pending_names_.push_back(PostingName(next_++));
    pending_bodies_.push_back(std::move(component));
    body_.clear();
    bytes_ = 0;
    count_ = 0;
    if (pending_bodies_.size() >= kFlushBatchComponents) return FlushBatch();
    return Status::OK();
  }

  Status FlushBatch() {
    if (pending_bodies_.empty()) return Status::OK();
    Status s = writer_->AddComponents(pending_names_, pending_bodies_, pool_);
    pending_names_.clear();
    pending_bodies_.clear();
    return s;
  }

  ComponentFileWriter* writer_;
  ThreadPool* pool_;
  Buffer body_;
  size_t bytes_ = 0;
  uint64_t count_ = 0;
  size_t next_ = 0;
  std::vector<std::string> first_terms_;
  std::vector<std::string> pending_names_;
  std::vector<Buffer> pending_bodies_;
};

}  // namespace

void Tokenize(Slice text, std::vector<std::string>* out) {
  std::string token;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = static_cast<char>(text[i]);
    if (c >= 'a' && c <= 'z') {
      token.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      token.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if (c >= '0' && c <= '9') {
      token.push_back(c);
    } else if (!token.empty()) {
      out->push_back(std::move(token));
      token.clear();
    }
  }
  if (!token.empty()) out->push_back(std::move(token));
}

bool NormalizeTerm(Slice term, std::string* out) {
  std::vector<std::string> tokens;
  Tokenize(term, &tokens);
  if (tokens.size() != 1) return false;
  *out = std::move(tokens[0]);
  return true;
}

void EncodePostings(const std::vector<format::PageId>& pages, Buffer* out) {
  PutVarint64(out, pages.size());
  if (pages.empty()) return;
  std::vector<uint64_t> gaps(pages.size());
  gaps[0] = pages[0];
  uint64_t max_gap = gaps[0];
  for (size_t i = 1; i < pages.size(); ++i) {
    gaps[i] = pages[i] - pages[i - 1];
    max_gap = std::max(max_gap, gaps[i]);
  }
  int width = std::max(compress::BitWidth(max_gap), 1);
  out->push_back(static_cast<uint8_t>(width));
  compress::BitPack(gaps, width, out);
}

Status DecodePostings(Decoder* dec, std::vector<format::PageId>* out) {
  out->clear();
  uint64_t n = 0;
  ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&n));
  if (n == 0) return Status::OK();
  Slice width_byte;
  ROTTNEST_RETURN_NOT_OK(dec->GetBytes(1, &width_byte));
  int width = width_byte[0];
  if (width < 1 || width > 56) return Status::Corruption("bad posting width");
  Slice packed;
  ROTTNEST_RETURN_NOT_OK(dec->GetBytes((n * width + 7) / 8, &packed));
  std::vector<uint64_t> gaps;
  ROTTNEST_RETURN_NOT_OK(compress::BitUnpack(packed, width, n, &gaps));
  out->resize(n);
  uint64_t running = 0;
  for (uint64_t i = 0; i < n; ++i) {
    running += gaps[i];
    (*out)[i] = static_cast<format::PageId>(running);
  }
  return Status::OK();
}

void KeywordIndexBuilder::Add(std::string term, format::PageId page) {
  postings_.emplace_back(std::move(term), page);
}

void KeywordIndexBuilder::PreparePageTokens(
    const std::vector<std::string>& values, std::vector<std::string>* out) {
  out->clear();
  for (const std::string& v : values) Tokenize(Slice(v), out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

Status KeywordIndexBuilder::Finish(const format::PageTable& pages,
                                   ThreadPool* pool, Buffer* out) {
  std::sort(postings_.begin(), postings_.end());

  // Group postings by term, deduplicating pages.
  std::vector<KeywordEntry> entries;
  for (auto& [term, page] : postings_) {
    if (entries.empty() || entries.back().term != term) {
      entries.push_back({term, {}});
    }
    if (entries.back().pages.empty() || entries.back().pages.back() != page) {
      entries.back().pages.push_back(page);
    }
  }
  return WriteKeywordFile(column_, entries, pages, pool, out);
}

Status ParseKeywordPostings(Slice payload, std::vector<KeywordEntry>* out) {
  Decoder dec(payload);
  uint64_t n = 0;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    KeywordEntry e;
    ROTTNEST_RETURN_NOT_OK(DeserializeEntry(&dec, &e));
    out->push_back(std::move(e));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing posting bytes");
  return Status::OK();
}

Status KeywordQueryMany(ComponentFileReader* reader, ThreadPool* pool,
                        objectstore::IoTrace* trace,
                        const std::vector<std::string>& terms,
                        bool require_all,
                        std::vector<format::PageId>* pages) {
  pages->clear();
  if (reader->type() != IndexType::kKeyword) {
    return Status::InvalidArgument("not a keyword index");
  }
  if (terms.empty()) return Status::OK();
  Buffer dict_buf;
  ROTTNEST_RETURN_NOT_OK(
      reader->ReadComponent(kDictComponent, pool, trace, &dict_buf));
  Dict dict;
  ROTTNEST_RETURN_NOT_OK(DeserializeDict(Slice(dict_buf), &dict));

  // Route: each term's candidate component is the last one whose first
  // term <= term. Terms before all first terms have no postings.
  std::vector<int> term_component(terms.size(), -1);
  for (size_t t = 0; t < terms.size(); ++t) {
    auto it = std::upper_bound(dict.first_terms.begin(),
                               dict.first_terms.end(), terms[t]);
    if (it != dict.first_terms.begin()) {
      term_component[t] =
          static_cast<int>(it - dict.first_terms.begin()) - 1;
    } else if (require_all) {
      return Status::OK();  // A required term precedes every stored term.
    }
  }

  // One parallel round for every distinct component the terms route to.
  std::vector<int> needed;
  for (int c : term_component) {
    if (c >= 0) needed.push_back(c);
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  if (needed.empty()) return Status::OK();
  std::vector<std::string> names;
  names.reserve(needed.size());
  for (int c : needed) names.push_back(PostingName(c));
  std::vector<Buffer> bufs;
  ROTTNEST_RETURN_NOT_OK(reader->ReadComponents(names, pool, trace, &bufs));
  std::vector<std::vector<KeywordEntry>> parsed(needed.size());
  for (size_t i = 0; i < needed.size(); ++i) {
    ROTTNEST_RETURN_NOT_OK(ParseKeywordPostings(Slice(bufs[i]), &parsed[i]));
  }

  // Combine the per-term page sets: AND intersects, OR unions.
  bool first_term = true;
  std::vector<format::PageId> acc;
  for (size_t t = 0; t < terms.size(); ++t) {
    std::vector<format::PageId> term_pages;
    if (term_component[t] >= 0) {
      size_t slot = static_cast<size_t>(
          std::lower_bound(needed.begin(), needed.end(), term_component[t]) -
          needed.begin());
      const std::vector<KeywordEntry>& entries = parsed[slot];
      auto it = std::lower_bound(
          entries.begin(), entries.end(), terms[t],
          [](const KeywordEntry& e, const std::string& term) {
            return e.term < term;
          });
      if (it != entries.end() && it->term == terms[t]) {
        term_pages = it->pages;
      }
    }
    if (require_all) {
      if (term_pages.empty()) {
        pages->clear();
        return Status::OK();
      }
      if (first_term) {
        acc = std::move(term_pages);
      } else {
        std::vector<format::PageId> both;
        std::set_intersection(acc.begin(), acc.end(), term_pages.begin(),
                              term_pages.end(), std::back_inserter(both));
        acc = std::move(both);
        if (acc.empty()) return Status::OK();
      }
    } else {
      std::vector<format::PageId> either;
      std::set_union(acc.begin(), acc.end(), term_pages.begin(),
                     term_pages.end(), std::back_inserter(either));
      acc = std::move(either);
    }
    first_term = false;
  }
  *pages = std::move(acc);
  return Status::OK();
}

Status KeywordQuery(ComponentFileReader* reader, ThreadPool* pool,
                    objectstore::IoTrace* trace, const std::string& term,
                    std::vector<format::PageId>* pages) {
  return KeywordQueryMany(reader, pool, trace, {term}, /*require_all=*/true,
                          pages);
}

Status KeywordMerge(const std::vector<ComponentFileReader*>& inputs,
                    ThreadPool* pool, objectstore::IoTrace* trace,
                    const std::string& column, Buffer* out) {
  // Absorb every input page table first: the merged table is the
  // concatenation of the inputs' tables and is complete before any entry
  // streams, so the "pagetable" component can be written in its usual
  // first-component slot.
  format::PageTable merged_pages;
  std::vector<KeywordPostingStream> streams;
  streams.reserve(inputs.size());
  for (ComponentFileReader* input : inputs) {
    if (input->type() != IndexType::kKeyword) {
      return Status::InvalidArgument("merge input is not a keyword index");
    }
    format::PageTable table;
    ROTTNEST_RETURN_NOT_OK(LoadPageTable(input, pool, trace, &table));
    format::PageId offset = merged_pages.Absorb(table);
    streams.emplace_back(input, offset, pool, trace);
  }
  for (KeywordPostingStream& s : streams) ROTTNEST_RETURN_NOT_OK(s.Init());

  ComponentFileWriter writer(IndexType::kKeyword, column);
  Buffer table_buf;
  merged_pages.Serialize(&table_buf);
  ROTTNEST_RETURN_NOT_OK(
      writer.AddComponent(kPageTableComponent, Slice(table_buf)));

  // K-way merge by term, earliest input winning ties. Equal terms always
  // coalesce and their pages are sorted + deduplicated, so the output is
  // independent of input order among ties.
  KeywordPostingEmitter emitter(&writer, pool);
  KeywordEntry pending;
  bool has_pending = false;
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].exhausted()) continue;
      if (best < 0 || streams[i].current().term < streams[best].current().term) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    KeywordEntry e = std::move(streams[best].current());
    ROTTNEST_RETURN_NOT_OK(streams[best].Advance());
    if (has_pending && pending.term == e.term) {
      pending.pages.insert(pending.pages.end(), e.pages.begin(),
                           e.pages.end());
      std::sort(pending.pages.begin(), pending.pages.end());
      pending.pages.erase(
          std::unique(pending.pages.begin(), pending.pages.end()),
          pending.pages.end());
      continue;
    }
    if (has_pending) ROTTNEST_RETURN_NOT_OK(emitter.Append(pending));
    pending = std::move(e);
    has_pending = true;
  }
  if (has_pending) ROTTNEST_RETURN_NOT_OK(emitter.Append(pending));

  Dict dict;
  ROTTNEST_RETURN_NOT_OK(emitter.Close(&dict));
  Buffer dict_buf;
  SerializeDict(dict, &dict_buf);
  // Dict written last so it lands in the tail read.
  ROTTNEST_RETURN_NOT_OK(writer.AddComponent(kDictComponent, Slice(dict_buf)));
  return writer.Finish(out);
}

Status CollectKeywordStats(ComponentFileReader* reader, ThreadPool* pool,
                           objectstore::IoTrace* trace,
                           KeywordIndexStats* out) {
  *out = KeywordIndexStats{};
  if (reader->type() != IndexType::kKeyword) {
    return Status::InvalidArgument("not a keyword index");
  }
  for (const std::string& name : OrderedPostingNames(*reader)) {
    Buffer buf;
    ROTTNEST_RETURN_NOT_OK(reader->ReadComponent(name, pool, trace, &buf));
    std::vector<KeywordEntry> entries;
    ROTTNEST_RETURN_NOT_OK(ParseKeywordPostings(Slice(buf), &entries));
    for (const KeywordEntry& e : entries) {
      ++out->terms;
      out->postings += e.pages.size();
      Buffer encoded;
      EncodePostings(e.pages, &encoded);
      out->encoded_posting_bytes += encoded.size();
    }
    reader->Evict(name);
  }
  return Status::OK();
}

}  // namespace rottnest::index
