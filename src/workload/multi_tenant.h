// Closed-loop multi-tenant serving workload: the load shape the QueryEngine
// is designed for. N client threads issue mixed-kind queries (UUID lookups,
// substring/regex search, counts, vector ANN, boolean keyword search)
// against the canonical dataset
// schema (generators.h), each request tagged with a tenant drawn from a
// Zipfian popularity distribution — a few tenants dominate, the long tail
// trickles — optionally in bursts. Everything is a pure function of
// (seed, client, request), so two runs — or a batched and an unbatched run
// in the same bench — issue the IDENTICAL query sequence.
#ifndef ROTTNEST_WORKLOAD_MULTI_TENANT_H_
#define ROTTNEST_WORKLOAD_MULTI_TENANT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/query.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace rottnest::serve {
class QueryEngine;
}  // namespace rottnest::serve

namespace rottnest::workload {

/// Shape of the multi-tenant serving load.
struct MultiTenantSpec {
  /// Dataset the queries target (seeds the value generators; must match the
  /// spec the table was built with).
  DatasetSpec dataset;
  int tenants = 4;        ///< Distinct tenants ("tenant-0" most popular).
  double zipf_s = 1.0;    ///< Tenant popularity skew (0 = uniform).
  int clients = 8;              ///< Closed-loop client threads.
  int requests_per_client = 25; ///< Requests per client, in series.
  uint64_t seed = 42;     ///< Workload seed (independent of dataset.seed).
  size_t k = 4;           ///< Match budget per query.
  /// Per-query deadline budget (0 = none). Resolved by the engine at
  /// submit, so queue wait counts against it.
  Micros time_budget_micros = 0;
  /// Query-kind mix (normalized; zero a weight to drop the kind).
  double w_uuid = 0.45;
  double w_substring = 0.35;
  double w_count = 0.10;
  double w_regex = 0.05;
  double w_vector = 0.05;
  /// Keyword (inverted-index) queries: off by default so existing mixes are
  /// byte-for-byte unchanged; the serve bench turns it on to exercise all
  /// five index-backed kinds.
  double w_keyword = 0.0;
  /// Needle popularity skew: queries re-ask the same hot values/patterns
  /// Zipfian-style — what makes batching coalesce across wave members.
  double value_zipf_s = 0.9;
  size_t hot_values = 32;    ///< Distinct hot rows/patterns per kind.
  /// Bursty arrivals: after every `burst_size` requests a client pauses
  /// `burst_pause_micros` of real time (0 = steady back-to-back).
  int burst_size = 0;
  Micros burst_pause_micros = 0;
  /// Column names of the canonical dataset schema.
  std::string uuid_column = "uuid";
  std::string text_column = "body";
  std::string vector_column = "vec";
};

/// Deterministic query source: (client, request) -> tenant + typed Query.
/// Thread-safe after construction (all sampling is hash-based; the pattern
/// and needle tables are precomputed).
class MultiTenantWorkload {
 public:
  explicit MultiTenantWorkload(MultiTenantSpec spec);

  /// The tenant issuing request `request` of client `client`.
  std::string TenantFor(int client, int request) const;

  /// The full typed query (tenant + kind + needle + options) for one
  /// (client, request) slot. Pure: identical inputs, identical query.
  core::Query QueryFor(int client, int request) const;

  /// Real-time pause the client should take BEFORE issuing this request
  /// (burst shaping; 0 when bursts are off).
  Micros PauseBeforeMicros(int client, int request) const;

  const MultiTenantSpec& spec() const { return spec_; }

 private:
  uint64_t Slot(int client, int request, uint64_t salt) const;
  /// Zipf-ranked index in [0, n) for one slot.
  uint64_t ZipfPick(uint64_t slot_hash, uint64_t n, double s) const;

  MultiTenantSpec spec_;
  double w_total_ = 1;
  UuidGenerator uuids_;
  VectorGenerator vectors_;
  std::vector<std::string> patterns_;       ///< Hot substring patterns.
  std::vector<std::string> terms_;          ///< Hot single-word keyword terms.
  std::vector<uint64_t> hot_rows_;          ///< Hot row ordinals.
};

/// Outcome of one serving loop: the overall closed-loop report plus the
/// per-tenant completion counts and the summed per-query traced GETs (the
/// logical-read side of the wave-coalescing reconciliation).
struct ServeLoopReport {
  DriverReport overall;
  std::map<std::string, uint64_t> per_tenant_ok;
  uint64_t traced_gets = 0;   ///< Σ per-query IoTrace::total_gets.
  uint64_t traced_bytes = 0;  ///< Σ per-query IoTrace::total_bytes.
};

/// Runs the workload closed-loop through `engine` (spec.clients threads ×
/// spec.requests_per_client). With `trace_requests` every query carries its
/// own IoTrace whose totals are summed into the report — the per-query
/// logical reads that reconcile against the shared cache's physical stats.
ServeLoopReport RunServeLoop(serve::QueryEngine* engine,
                             const MultiTenantWorkload& workload,
                             bool trace_requests = false);

}  // namespace rottnest::workload

#endif  // ROTTNEST_WORKLOAD_MULTI_TENANT_H_
