#include "workload/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

namespace rottnest::workload {

uint64_t PercentileMicros(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = q * static_cast<double>(samples.size() - 1);
  size_t idx = static_cast<size_t>(std::llround(std::ceil(rank)));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

DriverReport RunClosedLoop(const DriverOptions& options,
                           const RequestFn& request) {
  DriverReport report;
  std::mutex mu;
  auto client_loop = [&](int client) {
    for (int r = 0; r < options.requests_per_client; ++r) {
      auto start = std::chrono::steady_clock::now();
      Result<bool> outcome = request(client, r);
      uint64_t micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      std::lock_guard<std::mutex> lock(mu);
      report.latencies_micros.push_back(micros);
      if (outcome.ok()) {
        if (outcome.value()) {
          ++report.partial;
        } else {
          ++report.ok;
        }
      } else if (outcome.status().IsResourceExhausted()) {
        ++report.shed;
      } else if (outcome.status().IsDeadlineExceeded()) {
        ++report.deadline;
      } else {
        ++report.errors;
      }
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back(client_loop, c);
  }
  for (std::thread& t : clients) t.join();

  report.p50_micros = PercentileMicros(report.latencies_micros, 0.5);
  report.p99_micros = PercentileMicros(report.latencies_micros, 0.99);
  if (!report.latencies_micros.empty()) {
    report.max_micros = *std::max_element(report.latencies_micros.begin(),
                                          report.latencies_micros.end());
  }
  return report;
}

}  // namespace rottnest::workload
