// Closed-loop multi-client driver for serving-path experiments: N client
// threads each issue requests back to back (a new request only after the
// previous one finished — the closed-loop model under which admission
// control and tail-latency hedging are classically studied), wall latencies
// and outcome classes are aggregated across clients. Used by the overload /
// tail-latency tests and bench/tail_latency.
#ifndef ROTTNEST_WORKLOAD_DRIVER_H_
#define ROTTNEST_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace rottnest::workload {

struct DriverOptions {
  int clients = 4;               ///< Concurrent closed-loop client threads.
  int requests_per_client = 25;  ///< Requests each client issues in series.
};

/// Aggregated outcome of one closed-loop run. Latencies cover EVERY request
/// (including shed ones — an instant rejection is a real, fast answer).
struct DriverReport {
  uint64_t ok = 0;        ///< Completed with a full result.
  uint64_t partial = 0;   ///< Completed, but cut short (partial result).
  uint64_t shed = 0;      ///< ResourceExhausted (admission shed).
  uint64_t deadline = 0;  ///< DeadlineExceeded (died waiting/working).
  uint64_t errors = 0;    ///< Any other failure.

  std::vector<uint64_t> latencies_micros;  ///< Per request, arrival order.
  uint64_t p50_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t max_micros = 0;

  uint64_t total() const { return ok + partial + shed + deadline + errors; }
};

/// One request, issued by `client` as its `request`-th call. Returns
/// OK(false) for a full result, OK(true) for a partial one, or the error
/// status (ResourceExhausted / DeadlineExceeded / anything else).
using RequestFn = std::function<Result<bool>(int client, int request)>;

/// Runs the closed loop and aggregates. Thread-safe aggregation; `request`
/// is called concurrently from `options.clients` threads and must be
/// thread-safe itself.
DriverReport RunClosedLoop(const DriverOptions& options,
                           const RequestFn& request);

/// Nearest-rank percentile of a latency sample (q in [0,1]; copies and
/// sorts). Returns 0 on an empty sample.
uint64_t PercentileMicros(std::vector<uint64_t> samples, double q);

}  // namespace rottnest::workload

#endif  // ROTTNEST_WORKLOAD_DRIVER_H_
