// Synthetic workload generators standing in for the paper's datasets:
// FineWeb/C4 web text -> Zipfian web-like text; 2B enterprise hashes ->
// uniform random hashes; SIFT-1B -> clustered Gaussian-mixture vectors.
// All deterministic under a seed so experiments reproduce exactly.
#ifndef ROTTNEST_WORKLOAD_GENERATORS_H_
#define ROTTNEST_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "format/types.h"
#include "lake/table.h"

namespace rottnest::workload {

/// Web-like text: Zipf-distributed vocabulary, sentence structure, document
/// lengths mirroring crawl data. Used for the substring-search workload.
class TextGenerator {
 public:
  explicit TextGenerator(uint64_t seed, size_t vocabulary = 8192);

  /// One document of roughly `target_chars` characters.
  std::string Document(size_t target_chars);

  /// A substring-search pattern sampled from the generated vocabulary
  /// (guaranteed to have non-trivial selectivity).
  std::string SamplePattern(int words = 2);

  /// A pattern that almost surely does not occur.
  std::string MissingPattern();

  /// The vocabulary word at Zipf rank `rank` (mod vocabulary size). Pure
  /// accessor — draws nothing from the generator's RNG — so callers can
  /// pick terms of a known frequency band without perturbing any other
  /// sampled sequence.
  const std::string& Word(size_t rank) const {
    return vocabulary_[rank % vocabulary_.size()];
  }

 private:
  Random rng_;
  std::vector<std::string> vocabulary_;
};

/// High-cardinality identifiers: `hash_bytes`-byte uniform random values
/// (16 for UUIDs, 128 to mirror the paper's hash workload).
class UuidGenerator {
 public:
  UuidGenerator(uint64_t seed, size_t hash_bytes = 16)
      : rng_(seed), hash_bytes_(hash_bytes) {}

  /// The id for ordinal `i` — stable, so queries can target known rows.
  std::string IdFor(uint64_t i) const;

  size_t hash_bytes() const { return hash_bytes_; }

 private:
  Random rng_;
  size_t hash_bytes_;
};

/// SIFT-like vectors: a mixture of `clusters` Gaussians in `dim`
/// dimensions; real embedding collections are similarly clustered, which is
/// what gives IVF indices their advantage.
class VectorGenerator {
 public:
  VectorGenerator(uint64_t seed, uint32_t dim = 128, uint32_t clusters = 64);

  /// The vector for ordinal `i` (deterministic).
  std::vector<float> VectorFor(uint64_t i) const;

  /// A query vector near (but not equal to) vector `i`.
  std::vector<float> QueryNear(uint64_t i, double jitter = 0.3) const;

  uint32_t dim() const { return dim_; }

 private:
  uint64_t seed_;
  uint32_t dim_;
  uint32_t clusters_;
  std::vector<float> centers_;
};

/// Populates a lake table (schema: ts, uuid, body, vec) with `total_rows`
/// across `num_files` files. Returns the per-column generators' seeds via
/// the fixed seed convention so searches can target known rows.
struct DatasetSpec {
  uint64_t total_rows = 10000;
  size_t num_files = 4;
  uint64_t seed = 42;
  size_t doc_chars = 400;    ///< Text column chars per row.
  uint32_t vector_dim = 32;  ///< Kept small for laptop-scale runs.
  size_t uuid_bytes = 16;
};

/// The canonical experiment schema.
format::Schema DatasetSchema(const DatasetSpec& spec);

/// Creates and fills a table at `root`. Rows are numbered 0..total_rows-1;
/// row i has uuid UuidGenerator(seed).IdFor(i), text from
/// TextGenerator(seed + file hash...), and vector VectorGenerator(seed).
Result<std::unique_ptr<lake::Table>> BuildDataset(
    objectstore::ObjectStore* store, const std::string& root,
    const DatasetSpec& spec,
    format::WriterOptions writer_options = format::WriterOptions{});

}  // namespace rottnest::workload

#endif  // ROTTNEST_WORKLOAD_GENERATORS_H_
