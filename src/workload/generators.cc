#include "workload/generators.h"

#include <algorithm>

#include "common/hash.h"

namespace rottnest::workload {

namespace {

// Pronounceable word from a hash: consonant-vowel syllables.
std::string WordFromHash(uint64_t h, size_t syllables) {
  static const char* kConsonants = "bcdfghjklmnprstvwz";
  static const char* kVowels = "aeiou";
  std::string word;
  for (size_t s = 0; s < syllables; ++s) {
    word.push_back(kConsonants[h % 18]);
    h /= 18;
    word.push_back(kVowels[h % 5]);
    h /= 5;
    if (h == 0) h = Mix64(s + 1);
  }
  return word;
}

}  // namespace

TextGenerator::TextGenerator(uint64_t seed, size_t vocabulary) : rng_(seed) {
  vocabulary_.reserve(vocabulary);
  for (size_t i = 0; i < vocabulary; ++i) {
    vocabulary_.push_back(WordFromHash(Mix64(seed * 131 + i), 2 + i % 3));
  }
}

std::string TextGenerator::Document(size_t target_chars) {
  std::string doc;
  doc.reserve(target_chars + 32);
  size_t sentence_words = 0;
  while (doc.size() < target_chars) {
    doc += vocabulary_[rng_.NextZipf(vocabulary_.size(), 1.1)];
    if (++sentence_words >= 6 + rng_.Uniform(10)) {
      doc += ". ";
      sentence_words = 0;
    } else {
      doc.push_back(' ');
    }
  }
  return doc;
}

std::string TextGenerator::SamplePattern(int words) {
  std::string pattern;
  for (int w = 0; w < words; ++w) {
    if (w > 0) pattern.push_back(' ');
    // Bias toward the mid-frequency band: frequent enough to occur,
    // selective enough to be a real search.
    size_t rank = 8 + rng_.Uniform(std::min<size_t>(120, vocabulary_.size() - 8));
    pattern += vocabulary_[rank];
  }
  return pattern;
}

std::string TextGenerator::MissingPattern() {
  return "zzqxv" + WordFromHash(rng_.Next(), 4) + "xqzzv";
}

std::string UuidGenerator::IdFor(uint64_t i) const {
  std::string id(hash_bytes_, '\0');
  // Seed-dependent but ordinal-stable.
  uint64_t base = Hash64(reinterpret_cast<const uint8_t*>(&i), 8,
                         /*seed=*/0x9e3779b9 ^ hash_bytes_);
  for (size_t b = 0; b < hash_bytes_; b += 8) {
    uint64_t word = Mix64(base + b / 8);
    for (size_t j = 0; j < 8 && b + j < hash_bytes_; ++j) {
      id[b + j] = static_cast<char>(word >> (8 * j));
    }
  }
  return id;
}

VectorGenerator::VectorGenerator(uint64_t seed, uint32_t dim,
                                 uint32_t clusters)
    : seed_(seed), dim_(dim), clusters_(clusters) {
  Random rng(seed * 977 + 5);
  centers_.resize(static_cast<size_t>(clusters) * dim);
  for (auto& c : centers_) {
    c = static_cast<float>(rng.NextGaussian() * 25.0);
  }
}

std::vector<float> VectorGenerator::VectorFor(uint64_t i) const {
  Random rng(Mix64(seed_ * 31 + i));
  uint32_t cluster = static_cast<uint32_t>(Mix64(i) % clusters_);
  std::vector<float> v(dim_);
  for (uint32_t d = 0; d < dim_; ++d) {
    v[d] = centers_[static_cast<size_t>(cluster) * dim_ + d] +
           static_cast<float>(rng.NextGaussian());
  }
  return v;
}

std::vector<float> VectorGenerator::QueryNear(uint64_t i,
                                              double jitter) const {
  std::vector<float> v = VectorFor(i);
  Random rng(Mix64(i * 7919 + seed_));
  for (auto& x : v) x += static_cast<float>(rng.NextGaussian() * jitter);
  return v;
}

format::Schema DatasetSchema(const DatasetSpec& spec) {
  format::Schema s;
  s.columns.push_back({"ts", format::PhysicalType::kInt64, 0});
  s.columns.push_back({"uuid", format::PhysicalType::kFixedLenByteArray,
                       static_cast<uint32_t>(spec.uuid_bytes)});
  s.columns.push_back({"body", format::PhysicalType::kByteArray, 0});
  s.columns.push_back({"vec", format::PhysicalType::kFixedLenByteArray,
                       spec.vector_dim * 4});
  return s;
}

Result<std::unique_ptr<lake::Table>> BuildDataset(
    objectstore::ObjectStore* store, const std::string& root,
    const DatasetSpec& spec, format::WriterOptions writer_options) {
  ROTTNEST_ASSIGN_OR_RETURN(
      std::unique_ptr<lake::Table> table,
      lake::Table::Create(store, root, DatasetSchema(spec), writer_options));

  TextGenerator text(spec.seed);
  UuidGenerator uuids(spec.seed, spec.uuid_bytes);
  VectorGenerator vectors(spec.seed, spec.vector_dim);

  uint64_t row = 0;
  for (size_t f = 0; f < spec.num_files; ++f) {
    uint64_t rows_in_file =
        spec.total_rows / spec.num_files +
        (f < spec.total_rows % spec.num_files ? 1 : 0);
    format::RowBatch batch;
    batch.schema = DatasetSchema(spec);
    format::ColumnVector::Ints ts;
    format::FlatFixed ids;
    ids.elem_size = static_cast<uint32_t>(spec.uuid_bytes);
    format::ColumnVector::Strings bodies;
    format::FlatFixed vecs;
    vecs.elem_size = spec.vector_dim * 4;
    for (uint64_t i = 0; i < rows_in_file; ++i, ++row) {
      ts.push_back(static_cast<int64_t>(1'700'000'000 + row));
      std::string id = uuids.IdFor(row);
      ids.Append(Slice(id));
      bodies.push_back(text.Document(spec.doc_chars));
      std::vector<float> v = vectors.VectorFor(row);
      vecs.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()),
                        v.size() * 4));
    }
    batch.columns.emplace_back(std::move(ts));
    batch.columns.emplace_back(std::move(ids));
    batch.columns.emplace_back(std::move(bodies));
    batch.columns.emplace_back(std::move(vecs));
    auto appended = table->Append(batch);
    if (!appended.ok()) return appended.status();
  }
  return table;
}

}  // namespace rottnest::workload
