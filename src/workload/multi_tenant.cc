#include "workload/multi_tenant.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "common/hash.h"
#include "common/random.h"
#include "serve/query_engine.h"

namespace rottnest::workload {

MultiTenantWorkload::MultiTenantWorkload(MultiTenantSpec spec)
    : spec_(std::move(spec)),
      uuids_(spec_.dataset.seed, spec_.dataset.uuid_bytes),
      vectors_(spec_.dataset.seed, spec_.dataset.vector_dim) {
  w_total_ = spec_.w_uuid + spec_.w_substring + spec_.w_count +
             spec_.w_regex + spec_.w_vector + spec_.w_keyword;
  if (w_total_ <= 0) {
    spec_.w_uuid = w_total_ = 1;  // Degenerate mix: all-UUID.
  }
  // Precompute the hot tables once — TextGenerator sampling is stateful,
  // so the per-request paths must only READ.
  const size_t hot = std::max<size_t>(spec_.hot_values, 1);
  TextGenerator text(spec_.dataset.seed);
  patterns_.reserve(hot);
  for (size_t i = 0; i < hot; ++i) {
    patterns_.push_back(text.SamplePattern(2));
  }
  // Single mid-frequency words: each normalizes to exactly one token, the
  // keyword API's per-term contract.
  terms_.reserve(hot);
  for (size_t i = 0; i < hot; ++i) {
    terms_.push_back(text.SamplePattern(1));
  }
  Random rows_rng(Mix64(spec_.seed ^ 0x9e3779b97f4a7c15ull));
  hot_rows_.reserve(hot);
  for (size_t i = 0; i < hot; ++i) {
    hot_rows_.push_back(rows_rng.Uniform(
        std::max<uint64_t>(spec_.dataset.total_rows, 1)));
  }
}

uint64_t MultiTenantWorkload::Slot(int client, int request,
                                   uint64_t salt) const {
  uint64_t h = spec_.seed;
  h = Mix64(h ^ (static_cast<uint64_t>(client) + 1));
  h = Mix64(h ^ (static_cast<uint64_t>(request) + 1));
  h = Mix64(h ^ salt);
  return h;
}

uint64_t MultiTenantWorkload::ZipfPick(uint64_t slot_hash, uint64_t n,
                                       double s) const {
  if (n <= 1) return 0;
  if (s <= 0) return slot_hash % n;
  // One Zipf draw from a throwaway PRNG seeded by the slot hash: the pick
  // is a pure function of the slot, deterministic across threads and runs.
  Random rng(slot_hash);
  return rng.NextZipf(n, s);
}

std::string MultiTenantWorkload::TenantFor(int client, int request) const {
  uint64_t rank = ZipfPick(Slot(client, request, /*salt=*/1),
                           std::max(spec_.tenants, 1), spec_.zipf_s);
  return "tenant-" + std::to_string(rank);
}

core::Query MultiTenantWorkload::QueryFor(int client, int request) const {
  core::SearchOptions opts;
  opts.time_budget_micros = spec_.time_budget_micros;

  // Kind by mix weight (deterministic per slot).
  Random kind_rng(Slot(client, request, /*salt=*/2));
  double u = kind_rng.NextDouble() * w_total_;
  const uint64_t pick = ZipfPick(Slot(client, request, /*salt=*/3),
                                 patterns_.size(), spec_.value_zipf_s);
  const uint64_t row_pick = ZipfPick(Slot(client, request, /*salt=*/4),
                                     hot_rows_.size(), spec_.value_zipf_s);

  core::Query q;
  if ((u -= spec_.w_uuid) < 0) {
    q = core::Query::Uuid(spec_.uuid_column, uuids_.IdFor(hot_rows_[row_pick]),
                          spec_.k, opts);
  } else if ((u -= spec_.w_substring) < 0) {
    q = core::Query::Substring(spec_.text_column, patterns_[pick], spec_.k,
                               opts);
  } else if ((u -= spec_.w_count) < 0) {
    q = core::Query::Count(spec_.text_column, patterns_[pick], opts);
  } else if ((u -= spec_.w_regex) < 0) {
    // A literal regex: exercises the regex entry point while staying on the
    // FM-index prefilter path (the planner treats all-literal patterns as
    // substring queries).
    q = core::Query::Regex(spec_.text_column, patterns_[pick], spec_.k, opts);
  } else if ((u -= spec_.w_vector) < 0) {
    q = core::Query::Vector(spec_.vector_column,
                            vectors_.QueryNear(hot_rows_[row_pick]), spec_.k,
                            opts);
  } else {
    // Two hot terms; the boolean mode alternates deterministically per slot
    // so both the AND (intersection) and OR (union) paths see load.
    const uint64_t second = ZipfPick(Slot(client, request, /*salt=*/5),
                                     terms_.size(), spec_.value_zipf_s);
    core::KeywordMode mode = (Slot(client, request, /*salt=*/6) & 1) != 0
                                 ? core::KeywordMode::kOr
                                 : core::KeywordMode::kAnd;
    std::vector<std::string> terms = {terms_[pick], terms_[second]};
    q = core::Query::MakeKeyword(spec_.text_column, std::move(terms), mode,
                                 spec_.k, opts);
  }
  q.tenant = TenantFor(client, request);
  return q;
}

Micros MultiTenantWorkload::PauseBeforeMicros(int client, int request) const {
  (void)client;
  if (spec_.burst_size <= 0 || spec_.burst_pause_micros <= 0) return 0;
  if (request == 0) return 0;
  return request % spec_.burst_size == 0 ? spec_.burst_pause_micros : 0;
}

ServeLoopReport RunServeLoop(serve::QueryEngine* engine,
                             const MultiTenantWorkload& workload,
                             bool trace_requests) {
  ServeLoopReport report;
  std::mutex mu;

  DriverOptions dopts;
  dopts.clients = workload.spec().clients;
  dopts.requests_per_client = workload.spec().requests_per_client;

  report.overall = RunClosedLoop(dopts, [&](int client,
                                            int request) -> Result<bool> {
    Micros pause = workload.PauseBeforeMicros(client, request);
    if (pause > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(pause));
    }
    core::Query q = workload.QueryFor(client, request);
    objectstore::IoTrace trace;
    if (trace_requests) q.options.trace = &trace;
    Result<core::QueryResponse> resp = engine->Execute(std::move(q));
    {
      std::lock_guard<std::mutex> lock(mu);
      report.traced_gets += trace.total_gets();
      report.traced_bytes += trace.total_bytes();
      if (resp.ok()) {
        ++report.per_tenant_ok[workload.TenantFor(client, request)];
      }
    }
    if (!resp.ok()) return resp.status();
    return resp.value().result.partial;
  });
  return report;
}

}  // namespace rottnest::workload
