// The serving front-end (ROADMAP item 1): one long-lived QueryEngine per
// process, accepting thousands of concurrent in-flight queries over the
// shared client state — ONE sharded CachingStore, ONE ThreadPool, ONE
// MetricsRegistry — behind the unified `Query`/`QueryResponse` API
// (core/query.h).
//
// What the engine adds over a direct `Rottnest::Execute` call:
//
//   * Admission (the PR-6 AdmissionController, wrapped): bounded queue,
//     concurrency cap, EWMA-predicted-wait shedding — a query that would
//     blow its deadline just waiting is rejected typed ResourceExhausted
//     at submit, BEFORE any planning I/O. The knobs moved here from
//     RottnestOptions (`ServeOptions::max_concurrent`/`max_queue`);
//     direct Search* calls run unadmitted.
//   * Per-tenant FAIR SCHEDULING: each tenant (Query::tenant) gets a FIFO
//     queue and a weight (`ServeOptions::tenant_weights`); the dispatcher
//     picks queries by stride scheduling (pass += 1/weight, min pass
//     first), so a flooding tenant cannot starve the others — throughput
//     divides by weight under saturation.
//   * REQUEST BATCHING: the dispatcher drains up to `batch_max` queries
//     (lingering `batch_window_micros` to fill the wave) and runs them as
//     one GET WAVE on the shared pool, bracketed by the cache's
//     BeginWave/EndWave — queries whose plans touch the same index blocks
//     coalesce into one physical GET (IoStats::cache_wave_hits), extending
//     the cache's key-level single flight to wave level. Waves are
//     serialized, which is exactly what makes the store-wide ledger
//     wave-scoped. Per-query IoTraces still record every LOGICAL read, so
//     traced GETs reconcile exactly against physical IoStats:
//        Σ traced gets == Δ(hits + misses + coalesced + wave_hits).
//   * DEADLINES THAT INCLUDE QUEUE WAIT: the engine resolves each query's
//     deadline at SUBMIT time (`SearchOptions::deadline`), so time spent
//     in the fair queue counts against `time_budget_micros`; a query whose
//     deadline expires while queued fails typed DeadlineExceeded when
//     picked — before any planning I/O. Inside a wave each member keeps
//     its OWN deadline (the earliest-deadline member cuts itself short
//     while its wave-mates run on), and a failed shared fetch propagates
//     per-query (failures are never ledger-cached).
//   * SNAPSHOT PINNING: each wave resolves the table's latest version once
//     (hint-accelerated HEAD probes, not a LIST) and pins every member
//     that asked for "latest" (options.snapshot < 0) to it — wave-mates
//     plan against one consistent metadata state, and a concurrent
//     TruncateLog/Vacuum that removes the pinned version mid-query
//     surfaces as typed retryable Unavailable ("pinned snapshot ...;
//     retry"), never a spurious NotFound. Queries that pinned their own
//     snapshot keep their typed NotFound contract.
//
// Execute() blocks the calling thread until its query completes — the
// closed-loop serving model; thousands of callers may block concurrently.
#ifndef ROTTNEST_SERVE_QUERY_ENGINE_H_
#define ROTTNEST_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/query.h"
#include "core/rottnest.h"

namespace rottnest::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace rottnest::obs

namespace rottnest::serve {

/// Serving-layer policy: overload, fairness and batching knobs. (The
/// pre-serve `RottnestOptions::max_concurrent_searches` /
/// `max_queued_searches` admission knobs live here now.)
struct ServeOptions {
  /// Queries allowed to execute concurrently (one wave is sized to at most
  /// this). Clamped to >= 1.
  int max_concurrent = 8;
  /// Queries allowed to wait in the tenant queues; arrivals beyond this
  /// are shed typed ResourceExhausted.
  int max_queue = 64;
  /// Seed for the admission EWMA before any query completes.
  Micros initial_service_micros = 50'000;
  /// Default `time_budget_micros` applied to queries that carry none
  /// (0 = no default deadline). Resolved at submit, so queue wait counts.
  Micros default_time_budget_micros = 0;
  /// Queries per GET wave (clamped to [1, max_concurrent]). 1 = batching
  /// off: every query runs alone, no wave ledger — the unbatched baseline
  /// the serve bench compares against.
  size_t batch_max = 8;
  /// How long the dispatcher lingers for stragglers to fill a wave once it
  /// holds at least one query. 0 = take only what is already queued.
  Micros batch_window_micros = 300;
  /// Per-tenant scheduling weights (unlisted tenants weigh 1.0; a tenant
  /// with weight w gets w× the picks of a weight-1 tenant under load).
  std::map<std::string, double> tenant_weights;
  /// Start with the dispatcher paused (tests: stage a queue deterministic-
  /// ally, then Resume()).
  bool start_paused = false;
};

/// Cumulative engine accounting (monotonic; read with .load()).
struct EngineStats {
  std::atomic<uint64_t> submitted{0};         ///< Execute() calls accepted.
  std::atomic<uint64_t> shed{0};              ///< Rejected at submit.
  std::atomic<uint64_t> expired_in_queue{0};  ///< Died queued, never ran.
  std::atomic<uint64_t> completed{0};         ///< Got a result (incl. queue
                                              ///< expiry and shutdown).
  std::atomic<uint64_t> failed{0};            ///< Completed with an error.
  std::atomic<uint64_t> waves{0};             ///< GET waves dispatched.
  std::atomic<uint64_t> wave_queries{0};      ///< Queries across all waves.
  std::atomic<uint64_t> pinned{0};            ///< Snapshot pinned by engine.
  std::atomic<uint64_t> pin_conflicts{0};     ///< Pinned version vanished
                                              ///< mid-query (retryable).
};

/// Pre-resolved `serve.<name>.*` metric handles (nullptr-safe).
struct EngineMetrics {
  obs::Counter* submitted = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* expired = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* failed = nullptr;
  obs::Counter* waves = nullptr;
  obs::Counter* wave_queries = nullptr;
  obs::Counter* pinned = nullptr;
  obs::Counter* pin_conflicts = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Histogram* wave_size = nullptr;
  obs::Histogram* latency_micros = nullptr;
};

EngineMetrics ResolveEngineMetrics(obs::MetricsRegistry* registry,
                                   const std::string& name);

/// The multi-tenant serving front-end. `client` must outlive the engine.
/// Thread-safe: Execute() may be called from any number of threads.
class QueryEngine {
 public:
  QueryEngine(core::Rottnest* client, ServeOptions options);
  ~QueryEngine();  // Shutdown() + join.

  /// Submits `q` and blocks until it completes (or is shed / expires in
  /// queue / the engine shuts down). The deadline is resolved HERE, so
  /// queue wait counts against the budget.
  Result<core::QueryResponse> Execute(core::Query q);

  /// Stops accepting queries, fails everything still queued with
  /// Unavailable, and joins the dispatcher. Idempotent.
  void Shutdown();

  /// Test hooks: freeze/unfreeze the dispatcher (queued queries accumulate
  /// while paused — admission shedding still applies).
  void Pause();
  void Resume();

  /// Queries currently waiting in the tenant queues.
  size_t QueueDepth() const;

  /// Completed-query count per tenant (fairness observability).
  std::map<std::string, uint64_t> TenantCompleted() const;

  const EngineStats& stats() const { return stats_; }
  const core::AdmissionController& admission() const { return admission_; }
  const ServeOptions& options() const { return options_; }

  /// Mirrors engine events into `registry` under `serve.<name>.*` and the
  /// wrapped controller's under `admission.<name>.*`. Attach before use.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "serve");

 private:
  /// One in-flight query: the submitter blocks on `cv` until `done`.
  struct Request {
    core::Query query;
    Deadline deadline;
    Micros submitted_at = 0;
    /// The engine pinned this query's snapshot (the query asked for
    /// "latest"); a mid-flight NotFound then means concurrent retention/
    /// vacuum removed the pinned version — converted to typed retryable
    /// Unavailable rather than surfaced as a spurious NotFound.
    bool engine_pinned = false;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::optional<Result<core::QueryResponse>> result;
  };

  /// One tenant's FIFO plus its stride-scheduling state.
  struct TenantQueue {
    std::deque<std::shared_ptr<Request>> queue;
    double pass = 0;    ///< Virtual time of the next pick.
    double stride = 1;  ///< 1 / weight.
  };

  void DispatcherLoop();
  /// Picks the next request in weighted-fair order (min pass, map-order
  /// tie-break). Caller holds mu_ and has checked queued_ > 0.
  std::shared_ptr<Request> PickLocked();
  /// Executes one wave of requests concurrently on the client pool,
  /// bracketed by the cache's BeginWave/EndWave when it can coalesce.
  void RunWave(std::vector<std::shared_ptr<Request>>& wave);
  void Complete(const std::shared_ptr<Request>& req,
                Result<core::QueryResponse> result);

  core::Rottnest* client_;
  ServeOptions options_;
  core::AdmissionController admission_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< Wakes the dispatcher.
  std::map<std::string, TenantQueue> tenants_;
  size_t queued_ = 0;
  double vtime_ = 0;  ///< Pass of the most recent pick (new-tenant floor).
  bool paused_ = false;
  bool shutdown_ = false;
  std::map<std::string, uint64_t> tenant_completed_;

  EngineStats stats_;
  EngineMetrics metrics_;
  std::thread dispatcher_;
};

}  // namespace rottnest::serve

#endif  // ROTTNEST_SERVE_QUERY_ENGINE_H_
