#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace rottnest::serve {

namespace {

// How long the dispatcher's cv waits may block in REAL time. All deadline
// decisions read the injected clock; the real-time bound only keeps
// SimulatedClock tests from hanging on a wait the simulation has already
// satisfied.
constexpr auto kDispatcherPoll = std::chrono::milliseconds(1);

}  // namespace

EngineMetrics ResolveEngineMetrics(obs::MetricsRegistry* registry,
                                   const std::string& name) {
  EngineMetrics m;
  if (registry == nullptr) return m;
  const std::string p = "serve." + name + ".";
  m.submitted = registry->GetCounter(p + "submitted");
  m.shed = registry->GetCounter(p + "shed");
  m.expired = registry->GetCounter(p + "expired_in_queue");
  m.completed = registry->GetCounter(p + "completed");
  m.failed = registry->GetCounter(p + "failed");
  m.waves = registry->GetCounter(p + "waves");
  m.wave_queries = registry->GetCounter(p + "wave_queries");
  m.pinned = registry->GetCounter(p + "pinned");
  m.pin_conflicts = registry->GetCounter(p + "pin_conflicts");
  m.queue_depth = registry->GetGauge(p + "queue_depth");
  m.wave_size = registry->GetHistogram(p + "wave_size");
  m.latency_micros = registry->GetHistogram(p + "latency_micros");
  return m;
}

namespace {

core::AdmissionOptions ToAdmissionOptions(const ServeOptions& o) {
  core::AdmissionOptions a;
  a.max_concurrent = std::max(1, o.max_concurrent);
  a.max_queue = std::max(0, o.max_queue);
  a.initial_service_micros = o.initial_service_micros;
  return a;
}

}  // namespace

QueryEngine::QueryEngine(core::Rottnest* client, ServeOptions options)
    : client_(client),
      options_(std::move(options)),
      admission_(&client->clock(), ToAdmissionOptions(options_)) {
  options_.max_concurrent = std::max(1, options_.max_concurrent);
  options_.batch_max = std::clamp<size_t>(
      options_.batch_max, 1, static_cast<size_t>(options_.max_concurrent));
  paused_ = options_.start_paused;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryEngine::~QueryEngine() { Shutdown(); }

void QueryEngine::AttachMetrics(obs::MetricsRegistry* registry,
                                const std::string& name) {
  metrics_ = ResolveEngineMetrics(registry, name);
  admission_.AttachMetrics(registry, name);
  // The serving surface owns the metadata-plane counters too: replay /
  // checkpoint traffic of the client's logs shows up as `meta.*`.
  client_->table()->AttachMetrics(registry);
  client_->metadata().AttachMetrics(registry);
}

Result<core::QueryResponse> QueryEngine::Execute(core::Query q) {
  const Clock& clock = client_->clock();
  // Resolve the deadline at SUBMIT time: the per-query budget (or the
  // engine default) starts ticking now, so time spent queued counts
  // against it. Execution later reuses this exact absolute deadline via
  // SearchOptions::deadline — it is never re-derived from the budget.
  if (q.options.deadline.infinite()) {
    Micros budget = q.options.time_budget_micros > 0
                        ? q.options.time_budget_micros
                        : options_.default_time_budget_micros;
    q.options.deadline = Deadline::After(&clock, budget);
  }

  auto req = std::make_shared<Request>();
  req->deadline = q.options.deadline;
  req->submitted_at = clock.NowMicros();
  req->query = std::move(q);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Unavailable("query engine is shut down");
    }
    // Admission policy: queue cap + predicted-wait shed, typed
    // ResourceExhausted — never blocks, never touches storage.
    Status admit = admission_.NoteArrival(req->deadline);
    if (!admit.ok()) {
      stats_.shed.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.shed);
      return admit;
    }
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.submitted);
    TenantQueue& tq = tenants_[req->query.tenant];
    if (tq.queue.empty()) {
      auto it = options_.tenant_weights.find(req->query.tenant);
      double w = it != options_.tenant_weights.end() && it->second > 0
                     ? it->second
                     : 1.0;
      tq.stride = 1.0 / w;
      // (Re)joining tenants start at the current virtual time — an idle
      // tenant must not bank credit and burst past active ones.
      tq.pass = std::max(tq.pass, vtime_);
    }
    tq.queue.push_back(req);
    ++queued_;
    obs::Set(metrics_.queue_depth, static_cast<int64_t>(queued_));
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(req->mu);
  req->cv.wait(lock, [&] { return req->done; });
  return std::move(*req->result);
}

void QueryEngine::Shutdown() {
  std::vector<std::shared_ptr<Request>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [tenant, tq] : tenants_) {
      for (auto& r : tq.queue) orphans.push_back(std::move(r));
      tq.queue.clear();
    }
    queued_ = 0;
    obs::Set(metrics_.queue_depth, 0);
  }
  cv_.notify_all();
  for (auto& r : orphans) {
    admission_.CancelArrival(/*expired_in_queue=*/false);
    Complete(r, Status::Unavailable("query engine shut down while queued"));
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void QueryEngine::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryEngine::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

size_t QueryEngine::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

std::map<std::string, uint64_t> QueryEngine::TenantCompleted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant_completed_;
}

std::shared_ptr<QueryEngine::Request> QueryEngine::PickLocked() {
  // Stride scheduling: pick the non-empty tenant with the minimum pass
  // (map order breaks ties deterministically), then advance its pass by
  // its stride — a weight-w tenant is picked w times as often.
  TenantQueue* best = nullptr;
  for (auto& [tenant, tq] : tenants_) {
    if (tq.queue.empty()) continue;
    if (best == nullptr || tq.pass < best->pass) best = &tq;
  }
  if (best == nullptr) return nullptr;
  vtime_ = best->pass;
  best->pass += best->stride;
  std::shared_ptr<Request> req = std::move(best->queue.front());
  best->queue.pop_front();
  --queued_;
  obs::Set(metrics_.queue_depth, static_cast<int64_t>(queued_));
  return req;
}

void QueryEngine::DispatcherLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Request>> wave;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || (!paused_ && queued_ > 0); });
      if (shutdown_) return;
      const size_t wave_cap = options_.batch_max;
      // Gather: drain what is queued in fair order, lingering up to
      // batch_window_micros for stragglers to fill the wave. The linger
      // uses short real cv waits but gives up as soon as the wave is full
      // or the window closes — it trades a bounded sliver of latency for
      // GET coalescing across wave members.
      const Clock& clock = client_->clock();
      const Micros window_close =
          clock.NowMicros() + options_.batch_window_micros;
      // Real-time backstop: under SimulatedClock the injected clock may
      // never advance, so the linger must also close after the window's
      // worth of REAL time or the dispatcher would poll forever.
      const auto real_close =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.batch_window_micros);
      for (;;) {
        while (wave.size() < wave_cap && queued_ > 0) {
          std::shared_ptr<Request> req = PickLocked();
          if (req == nullptr) break;
          if (req->deadline.expired()) {
            // Died waiting in the fair queue: typed failure BEFORE any
            // planning I/O (satellite: queue wait counts against the
            // ambient budget).
            admission_.CancelArrival(/*expired_in_queue=*/true);
            stats_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
            obs::Increment(metrics_.expired);
            lock.unlock();
            Complete(req, Status::DeadlineExceeded(
                              "query deadline expired in serve queue "
                              "before any planning I/O"));
            lock.lock();
            continue;
          }
          wave.push_back(std::move(req));
        }
        if (wave.size() >= wave_cap || shutdown_ || paused_) break;
        if (wave.empty()) break;  // Everything picked had expired; re-wait.
        if (options_.batch_window_micros <= 0 ||
            clock.NowMicros() >= window_close ||
            std::chrono::steady_clock::now() >= real_close) {
          break;
        }
        cv_.wait_for(lock, kDispatcherPoll);
      }
    }
    if (!wave.empty()) RunWave(wave);
  }
}

void QueryEngine::RunWave(std::vector<std::shared_ptr<Request>>& wave) {
  objectstore::CachingStore* cache = client_->cache();
  const bool coalesce = cache != nullptr && wave.size() > 1;
  stats_.waves.fetch_add(1, std::memory_order_relaxed);
  stats_.wave_queries.fetch_add(wave.size(), std::memory_order_relaxed);
  obs::Increment(metrics_.waves);
  obs::Add(metrics_.wave_queries, wave.size());
  obs::Record(metrics_.wave_size, wave.size());

  // Pin the wave to one snapshot version: every member that asked for
  // "latest" plans against the same metadata state, resolved once with
  // hint-accelerated HEAD probes instead of per-query LISTs. Resolution
  // failure (cold store hiccup, empty table) leaves members unpinned —
  // Execute resolves latest itself, exactly as before.
  lake::Version pinned = -1;
  {
    auto latest = client_->table()->log().LatestVersion();
    if (latest.ok()) pinned = latest.value();
  }
  for (auto& req : wave) {
    if (pinned >= 0 && req->query.options.snapshot < 0) {
      req->query.options.snapshot = pinned;
      req->engine_pinned = true;
      stats_.pinned.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.pinned);
    }
  }

  // One RAII slot per member: releasing each ticket feeds the admission
  // EWMA with that query's observed service time.
  std::vector<core::AdmissionTicket> tickets;
  tickets.reserve(wave.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    tickets.push_back(admission_.StartScheduled());
  }

  if (coalesce) cache->BeginWave();
  // The wave runs on the client's shared pool. Each member installs its
  // own ambient deadline inside Execute (via SearchOptions::deadline), so
  // the earliest-deadline member cuts itself short while wave-mates run
  // on; a failed shared fetch is never ledger-cached, so it propagates to
  // every member that needed the range.
  client_->pool()->ParallelFor(wave.size(), [&](size_t i) {
    Result<core::QueryResponse> result = client_->Execute(wave[i]->query);
    if (!result.ok() && result.status().IsNotFound() &&
        wave[i]->engine_pinned) {
      // The version the ENGINE pinned vanished mid-query (concurrent
      // TruncateLog/Vacuum won the race). The caller asked for "latest",
      // so this is not their error — convert to typed retryable
      // Unavailable; a retry re-pins against the new latest.
      stats_.pin_conflicts.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.pin_conflicts);
      result = Status::Unavailable(
          "pinned snapshot " +
          std::to_string(wave[i]->query.options.snapshot) +
          " truncated or vacuumed mid-query; retry");
    }
    tickets[i].Release();
    Complete(wave[i], std::move(result));
  });
  if (coalesce) cache->EndWave();
}

void QueryEngine::Complete(const std::shared_ptr<Request>& req,
                           Result<core::QueryResponse> result) {
  stats_.completed.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.completed);
  if (!result.ok()) {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.failed);
  }
  obs::Record(metrics_.latency_micros,
              client_->clock().NowMicros() - req->submitted_at);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++tenant_completed_[req->query.tenant];
  }
  {
    std::lock_guard<std::mutex> lock(req->mu);
    req->result.emplace(std::move(result));
    req->done = true;
  }
  req->cv.notify_all();
}

}  // namespace rottnest::serve
