#include "objectstore/fault_injection.h"

namespace rottnest::objectstore {

namespace {

Status CrashStatus(const char* op) {
  return Status::IOError(std::string("injected crash at op ") + op);
}

}  // namespace

Status FaultInjectingStore::Apply(const char* op, const std::string& key,
                                  bool is_write,
                                  const std::function<Status()>& fn) {
  FailurePoint hook;
  Status injected;       // OK means no fault drawn.
  bool execute = true;   // Whether the backing operation runs at all.
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t my_index = op_counter_++;
    fault_stats_.ops.fetch_add(1, std::memory_order_relaxed);
    hook = failure_point_;

    if (crashed_) {
      // The process is "dead": refuse everything until ClearCrash.
      fault_stats_.crash_refusals.fetch_add(1, std::memory_order_relaxed);
      return CrashStatus(op);
    }
    auto it = schedule_.find(my_index);
    if (it != schedule_.end()) {
      injected = it->second.status;
      execute = it->second.side_effect_lands;
      fault_stats_.scheduled_injected.fetch_add(1, std::memory_order_relaxed);
    } else if (crash_at_.has_value() && *crash_at_ == my_index) {
      crashed_ = true;
      injected = CrashStatus(op);
      execute = (crash_mode_ == CrashMode::kAfterOp);
    } else if (options_.transient_fault_rate > 0 &&
               rng_.NextDouble() < options_.transient_fault_rate) {
      injected = Status::Unavailable(std::string("injected transient fault (") +
                                     op + " " + key + ")");
      execute = false;
      fault_stats_.transient_injected.fetch_add(1, std::memory_order_relaxed);
    } else if (is_write && options_.ambiguous_put_rate > 0 &&
               rng_.NextDouble() < options_.ambiguous_put_rate) {
      // The write will land but the caller sees an error — as when an S3
      // PUT times out after the server applied it.
      injected = Status::Unavailable(std::string("injected ambiguous outcome (") +
                                     op + " " + key + ")");
      execute = true;
      fault_stats_.ambiguous_injected.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Hook and backing store run lock-free so they may re-enter this store.
  if (hook) ROTTNEST_RETURN_NOT_OK(hook(op, key));
  if (!execute) return injected;
  Status real = fn();
  if (!injected.ok()) {
    // An ambiguous fault only masks a *successful* operation; a genuine
    // failure (e.g. PutIfAbsent conflict) is reported truthfully.
    return real.ok() ? injected : real;
  }
  return real;
}

Status FaultInjectingStore::Put(const std::string& key, Slice data) {
  return Apply("put", key, /*is_write=*/true,
               [&] { return inner_->Put(key, data); });
}

Status FaultInjectingStore::PutIfAbsent(const std::string& key, Slice data) {
  return Apply("put_if_absent", key, /*is_write=*/true,
               [&] { return inner_->PutIfAbsent(key, data); });
}

Status FaultInjectingStore::Get(const std::string& key, Buffer* out) {
  return Apply("get", key, /*is_write=*/false,
               [&] { return inner_->Get(key, out); });
}

Status FaultInjectingStore::GetRange(const std::string& key, uint64_t offset,
                                     uint64_t length, Buffer* out) {
  return Apply("get", key, /*is_write=*/false,
               [&] { return inner_->GetRange(key, offset, length, out); });
}

Status FaultInjectingStore::Head(const std::string& key, ObjectMeta* out) {
  return Apply("head", key, /*is_write=*/false,
               [&] { return inner_->Head(key, out); });
}

Status FaultInjectingStore::List(const std::string& prefix,
                                 std::vector<ObjectMeta>* out) {
  return Apply("list", prefix, /*is_write=*/false,
               [&] { return inner_->List(prefix, out); });
}

Status FaultInjectingStore::Delete(const std::string& key) {
  return Apply("delete", key, /*is_write=*/true,
               [&] { return inner_->Delete(key); });
}

}  // namespace rottnest::objectstore
