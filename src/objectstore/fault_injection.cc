#include "objectstore/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/hash.h"
#include "obs/metrics.h"

namespace rottnest::objectstore {

namespace {

Status CrashStatus(const char* op) {
  return Status::IOError(std::string("injected crash at op ") + op);
}

}  // namespace

FaultMetrics ResolveFaultMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name) {
  FaultMetrics m;
  if (registry == nullptr) return m;
  const std::string p = "fault." + name + ".";
  m.ops = registry->GetCounter(p + "ops");
  m.transient_injected = registry->GetCounter(p + "transient_injected");
  m.ambiguous_injected = registry->GetCounter(p + "ambiguous_injected");
  m.scheduled_injected = registry->GetCounter(p + "scheduled_injected");
  m.crash_refusals = registry->GetCounter(p + "crash_refusals");
  m.corrupt_reads_injected = registry->GetCounter(p + "corrupt_reads_injected");
  m.truncations_injected = registry->GetCounter(p + "truncations_injected");
  m.rot_injected = registry->GetCounter(p + "rot_injected");
  m.slow_reads_injected = registry->GetCounter(p + "slow_reads_injected");
  m.brownout_ops = registry->GetCounter(p + "brownout_ops");
  m.latency_injected_micros =
      registry->GetCounter(p + "latency_injected_micros");
  return m;
}

Status FaultInjectingStore::Apply(const char* op, const std::string& key,
                                  bool is_write, Buffer* read_payload,
                                  const std::function<Status()>& fn) {
  FailurePoint hook;
  Status injected;       // OK means no fault drawn.
  bool execute = true;   // Whether the backing operation runs at all.
  bool corrupt = false;  // Flip one bit of the payload after the read.
  uint64_t corrupt_salt = 0;
  std::optional<uint64_t> truncate_to;
  Micros delay = 0;      // Injected latency, slept outside the lock.
  bool crash_fired = false;  // This op triggered the crash point.
  SleepFn sleeper;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t my_index = op_counter_++;
    fault_stats_.ops.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.ops);
    hook = failure_point_;

    if (crashed_) {
      // The process is "dead": refuse everything until ClearCrash.
      fault_stats_.crash_refusals.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.crash_refusals);
      return CrashStatus(op);
    }
    auto it = schedule_.find(my_index);
    if (it != schedule_.end()) {
      injected = it->second.status;
      execute = it->second.side_effect_lands;
      fault_stats_.scheduled_injected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.scheduled_injected);
    } else if (crash_at_.has_value() && *crash_at_ == my_index) {
      crashed_ = true;
      crash_fired = true;
      injected = CrashStatus(op);
      execute = (crash_mode_ == CrashMode::kAfterOp);
    } else if (options_.transient_fault_rate > 0 &&
               rng_.NextDouble() < options_.transient_fault_rate) {
      injected = Status::Unavailable(std::string("injected transient fault (") +
                                     op + " " + key + ")");
      execute = false;
      fault_stats_.transient_injected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.transient_injected);
    } else if (is_write && options_.ambiguous_put_rate > 0 &&
               rng_.NextDouble() < options_.ambiguous_put_rate) {
      // The write will land but the caller sees an error — as when an S3
      // PUT times out after the server applied it.
      injected = Status::Unavailable(std::string("injected ambiguous outcome (") +
                                     op + " " + key + ")");
      execute = true;
      fault_stats_.ambiguous_injected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.ambiguous_injected);
    }
    // Latent corruption only damages reads that will otherwise succeed —
    // the caller gets OK plus bad bytes, never an error.
    if (read_payload != nullptr && injected.ok() && execute) {
      auto trunc = truncation_schedule_.find(my_index);
      if (trunc != truncation_schedule_.end()) {
        truncate_to = trunc->second;
        fault_stats_.truncations_injected.fetch_add(1,
                                                    std::memory_order_relaxed);
        obs::Increment(metrics_.truncations_injected);
      }
      if (options_.corrupt_read_rate > 0 &&
          (options_.corrupt_key_filter.empty() ||
           key.find(options_.corrupt_key_filter) != std::string::npos) &&
          rng_.NextDouble() < options_.corrupt_read_rate) {
        corrupt = true;
        corrupt_salt = rng_.Next();
        fault_stats_.corrupt_reads_injected.fetch_add(
            1, std::memory_order_relaxed);
        obs::Increment(metrics_.corrupt_reads_injected);
      }
    }
    // Latency model: a per-op base, a seeded heavy tail on reads that will
    // otherwise succeed, and clock-windowed brown-outs. Decisions (and PRNG
    // draws) stay under the lock for determinism; the sleep happens below,
    // outside it, so concurrent slow requests overlap like real ones.
    // An op that fires the crash point answers instantly — like every
    // refusal after it, it models a closed socket, not a slow disk.
    if (!crash_fired) delay += options_.base_latency_micros;
    if (read_payload != nullptr && options_.slow_read_rate > 0 &&
        injected.ok() && execute &&
        rng_.NextDouble() < options_.slow_read_rate) {
      delay += options_.slow_read_latency_micros;
      fault_stats_.slow_reads_injected.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.slow_reads_injected);
    }
    if (!crash_fired && !options_.brownouts.empty()) {
      Micros now = inner_->clock().NowMicros();
      bool browned = false;
      for (const BrownOut& w : options_.brownouts) {
        if (now >= w.start_micros && now < w.end_micros &&
            (w.key_filter.empty() ||
             key.find(w.key_filter) != std::string::npos)) {
          delay += w.extra_micros;
          browned = true;
        }
      }
      if (browned) {
        fault_stats_.brownout_ops.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(metrics_.brownout_ops);
      }
    }
    if (delay > 0) {
      fault_stats_.latency_injected_micros.fetch_add(
          delay, std::memory_order_relaxed);
      obs::Add(metrics_.latency_injected_micros, delay);
      sleeper = sleep_;
    }
  }

  if (delay > 0) {
    if (sleeper) {
      sleeper(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
  // Hook and backing store run lock-free so they may re-enter this store.
  if (hook) ROTTNEST_RETURN_NOT_OK(hook(op, key));
  if (!execute) return injected;
  Status real = fn();
  if (real.ok() && read_payload != nullptr) {
    if (truncate_to.has_value() && read_payload->size() > *truncate_to) {
      read_payload->resize(*truncate_to);
    }
    if (corrupt && !read_payload->empty()) {
      size_t pos = corrupt_salt % read_payload->size();
      (*read_payload)[pos] ^=
          static_cast<uint8_t>(1u << ((corrupt_salt >> 32) % 8));
    }
  }
  if (!injected.ok()) {
    // An ambiguous fault only masks a *successful* operation; a genuine
    // failure (e.g. PutIfAbsent conflict) is reported truthfully.
    return real.ok() ? injected : real;
  }
  return real;
}

Status FaultInjectingStore::RotObject(const std::string& key, RotKind kind) {
  if (kind == RotKind::kDrop) {
    ROTTNEST_RETURN_NOT_OK(inner_->Delete(key));
    fault_stats_.rot_injected.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.rot_injected);
    return Status::OK();
  }
  Buffer data;
  ROTTNEST_RETURN_NOT_OK(inner_->Get(key, &data));
  if (data.empty()) {
    return Status::InvalidArgument("cannot rot empty object: " + key);
  }
  uint64_t h = Hash64(Slice(key));
  if (kind == RotKind::kFlipBit) {
    data[h % data.size()] ^= static_cast<uint8_t>(1u << ((h >> 32) % 8));
  } else {
    data.resize(h % data.size());  // kTruncate: lose a hash-chosen tail.
  }
  ROTTNEST_RETURN_NOT_OK(inner_->Put(key, Slice(data)));
  fault_stats_.rot_injected.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.rot_injected);
  return Status::OK();
}

Status FaultInjectingStore::Put(const std::string& key, Slice data) {
  return Apply("put", key, /*is_write=*/true, /*read_payload=*/nullptr,
               [&] { return inner_->Put(key, data); });
}

Status FaultInjectingStore::PutIfAbsent(const std::string& key, Slice data) {
  return Apply("put_if_absent", key, /*is_write=*/true,
               /*read_payload=*/nullptr,
               [&] { return inner_->PutIfAbsent(key, data); });
}

Status FaultInjectingStore::Get(const std::string& key, Buffer* out) {
  return Apply("get", key, /*is_write=*/false, /*read_payload=*/out,
               [&] { return inner_->Get(key, out); });
}

Status FaultInjectingStore::GetRange(const std::string& key, uint64_t offset,
                                     uint64_t length, Buffer* out) {
  return Apply("get", key, /*is_write=*/false, /*read_payload=*/out,
               [&] { return inner_->GetRange(key, offset, length, out); });
}

Status FaultInjectingStore::Head(const std::string& key, ObjectMeta* out) {
  return Apply("head", key, /*is_write=*/false, /*read_payload=*/nullptr,
               [&] { return inner_->Head(key, out); });
}

Status FaultInjectingStore::List(const std::string& prefix,
                                 std::vector<ObjectMeta>* out) {
  return Apply("list", prefix, /*is_write=*/false, /*read_payload=*/nullptr,
               [&] { return inner_->List(prefix, out); });
}

Status FaultInjectingStore::Delete(const std::string& key) {
  return Apply("delete", key, /*is_write=*/true, /*read_payload=*/nullptr,
               [&] { return inner_->Delete(key); });
}

}  // namespace rottnest::objectstore
