#include "objectstore/object_store.h"

namespace rottnest::objectstore {

Status InMemoryObjectStore::MaybeFail(const char* op, const std::string& key) {
  // Caller holds mu_.
  if (failure_point_) return failure_point_(op, key);
  return Status::OK();
}

Status InMemoryObjectStore::Put(const std::string& key, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("put", key));
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  Entry& e = objects_[key];
  e.data = data.ToBuffer();
  e.created_micros = clock_->NowMicros();
  return Status::OK();
}

Status InMemoryObjectStore::PutIfAbsent(const std::string& key, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("put_if_absent", key));
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  if (objects_.count(key) != 0) {
    return Status::AlreadyExists("object exists: " + key);
  }
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  Entry& e = objects_[key];
  e.data = data.ToBuffer();
  e.created_micros = clock_->NowMicros();
  return Status::OK();
}

Status InMemoryObjectStore::Get(const std::string& key, Buffer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("get", key));
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  *out = it->second.data;
  stats_.bytes_read.fetch_add(out->size(), std::memory_order_relaxed);
  return Status::OK();
}

Status InMemoryObjectStore::GetRange(const std::string& key, uint64_t offset,
                                     uint64_t length, Buffer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("get", key));
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  const Buffer& data = it->second.data;
  if (offset > data.size()) {
    return Status::InvalidArgument("range offset past end of object");
  }
  if (offset == data.size()) {
    // Zero-length read at EOF: valid per HTTP range semantics.
    out->clear();
    return Status::OK();
  }
  uint64_t avail = data.size() - offset;
  uint64_t n = std::min<uint64_t>(length, avail);
  out->assign(data.begin() + offset, data.begin() + offset + n);
  stats_.bytes_read.fetch_add(n, std::memory_order_relaxed);
  return Status::OK();
}

Status InMemoryObjectStore::Head(const std::string& key, ObjectMeta* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("head", key));
  stats_.heads.fetch_add(1, std::memory_order_relaxed);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  out->key = key;
  out->size = it->second.data.size();
  out->created_micros = it->second.created_micros;
  return Status::OK();
}

Status InMemoryObjectStore::List(const std::string& prefix,
                                 std::vector<ObjectMeta>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("list", prefix));
  stats_.lists.fetch_add(1, std::memory_order_relaxed);
  out->clear();
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    ObjectMeta m;
    m.key = it->first;
    m.size = it->second.data.size();
    m.created_micros = it->second.created_micros;
    out->push_back(std::move(m));
  }
  return Status::OK();
}

Status InMemoryObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("delete", key));
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  objects_.erase(key);
  return Status::OK();
}

uint64_t InMemoryObjectStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [k, e] : objects_) total += e.data.size();
  return total;
}

size_t InMemoryObjectStore::ObjectCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

}  // namespace rottnest::objectstore
