#include "objectstore/object_store.h"

#include "obs/metrics.h"

namespace rottnest::objectstore {

SleepFn SimulatedSleeper(SimulatedClock* clock) {
  return [clock](Micros wait) { clock->Advance(wait); };
}

StoreMetrics ResolveStoreMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name) {
  StoreMetrics m;
  if (registry == nullptr) return m;
  const std::string p = "store." + name + ".";
  m.gets = registry->GetCounter(p + "gets");
  m.puts = registry->GetCounter(p + "puts");
  m.lists = registry->GetCounter(p + "lists");
  m.deletes = registry->GetCounter(p + "deletes");
  m.heads = registry->GetCounter(p + "heads");
  m.bytes_read = registry->GetCounter(p + "bytes_read");
  m.bytes_written = registry->GetCounter(p + "bytes_written");
  m.cache_hits = registry->GetCounter(p + "cache_hits");
  m.cache_misses = registry->GetCounter(p + "cache_misses");
  m.cache_evictions = registry->GetCounter(p + "cache_evictions");
  m.cache_coalesced = registry->GetCounter(p + "coalesced");
  m.cache_wave_hits = registry->GetCounter(p + "wave_hits");
  m.get_bytes = registry->GetHistogram(p + "get_bytes");
  return m;
}

Status InMemoryObjectStore::MaybeFail(const char* op, const std::string& key) {
  // Caller holds mu_.
  if (failure_point_) return failure_point_(op, key);
  return Status::OK();
}

Status InMemoryObjectStore::Put(const std::string& key, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("put", key));
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  obs::Increment(metrics_.puts);
  obs::Add(metrics_.bytes_written, data.size());
  Entry& e = objects_[key];
  e.data = data.ToBuffer();
  e.created_micros = clock_->NowMicros();
  return Status::OK();
}

Status InMemoryObjectStore::PutIfAbsent(const std::string& key, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("put_if_absent", key));
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.puts);
  if (objects_.count(key) != 0) {
    return Status::AlreadyExists("object exists: " + key);
  }
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  obs::Add(metrics_.bytes_written, data.size());
  Entry& e = objects_[key];
  e.data = data.ToBuffer();
  e.created_micros = clock_->NowMicros();
  return Status::OK();
}

Status InMemoryObjectStore::Get(const std::string& key, Buffer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("get", key));
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.gets);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  *out = it->second.data;
  stats_.bytes_read.fetch_add(out->size(), std::memory_order_relaxed);
  obs::Add(metrics_.bytes_read, out->size());
  obs::Record(metrics_.get_bytes, out->size());
  return Status::OK();
}

Status InMemoryObjectStore::GetRange(const std::string& key, uint64_t offset,
                                     uint64_t length, Buffer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("get", key));
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.gets);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  const Buffer& data = it->second.data;
  if (offset > data.size()) {
    return Status::InvalidArgument("range offset past end of object");
  }
  if (offset == data.size()) {
    // Zero-length read at EOF: valid per HTTP range semantics.
    out->clear();
    return Status::OK();
  }
  uint64_t avail = data.size() - offset;
  uint64_t n = std::min<uint64_t>(length, avail);
  out->assign(data.begin() + offset, data.begin() + offset + n);
  stats_.bytes_read.fetch_add(n, std::memory_order_relaxed);
  obs::Add(metrics_.bytes_read, n);
  obs::Record(metrics_.get_bytes, n);
  return Status::OK();
}

Status InMemoryObjectStore::Head(const std::string& key, ObjectMeta* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("head", key));
  stats_.heads.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.heads);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  out->key = key;
  out->size = it->second.data.size();
  out->created_micros = it->second.created_micros;
  return Status::OK();
}

Status InMemoryObjectStore::List(const std::string& prefix,
                                 std::vector<ObjectMeta>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("list", prefix));
  stats_.lists.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.lists);
  out->clear();
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    ObjectMeta m;
    m.key = it->first;
    m.size = it->second.data.size();
    m.created_micros = it->second.created_micros;
    out->push_back(std::move(m));
  }
  return Status::OK();
}

Status InMemoryObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ROTTNEST_RETURN_NOT_OK(MaybeFail("delete", key));
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.deletes);
  objects_.erase(key);
  return Status::OK();
}

uint64_t InMemoryObjectStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [k, e] : objects_) total += e.data.size();
  return total;
}

size_t InMemoryObjectStore::ObjectCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

}  // namespace rottnest::objectstore
