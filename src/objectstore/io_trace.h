// Access-pattern recording and the S3 latency/cost model.
//
// Object storage favors wide parallel requests over deep dependent chains
// (paper §V-B). To project realistic S3 latencies from in-memory runs, a
// query records its access pattern as a sequence of *rounds*: all requests
// issued within a round are concurrent; consecutive rounds are dependent.
// Simulated latency is then
//     sum over rounds of [ TTFB + max_request_bytes / effective_bandwidth ]
//   + recorded compute time,
// which reproduces the paper's Fig 10a behaviour: latency flat in request
// size until ~1 MB, then linear, roughly independent of concurrency until
// the instance bandwidth saturates.
#ifndef ROTTNEST_OBJECTSTORE_IO_TRACE_H_
#define ROTTNEST_OBJECTSTORE_IO_TRACE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "objectstore/object_store.h"

namespace rottnest::objectstore {

/// Latency and pricing parameters for an S3-like store accessed from an EC2
/// instance. Defaults are calibrated to the paper's measurements.
struct S3Model {
  double ttfb_ms = 30.0;             ///< Time to first byte per request.
  double per_stream_mbps = 90.0;     ///< MB/s for a single GET stream.
  double instance_gbps = 12.5;       ///< Instance NIC: 100 Gbit/s = 12.5 GB/s.
  double list_ms = 60.0;             ///< Per LIST request.
  double get_cost_usd = 0.4e-6;      ///< $ per GET request.
  double put_cost_usd = 5.0e-6;      ///< $ per PUT/LIST request.
  double max_get_rps_per_prefix = 5500.0;  ///< S3 GET throttle limit.

  /// Latency of one round of `concurrency` parallel reads of `bytes` each
  /// (max bytes among them), in milliseconds.
  double RoundLatencyMs(uint64_t max_bytes, size_t concurrency) const {
    double per_stream = per_stream_mbps * 1e6;  // bytes/s
    double instance = instance_gbps * 1e9;      // bytes/s
    double bw = std::min(per_stream,
                         instance / std::max<size_t>(concurrency, 1));
    return ttfb_ms + static_cast<double>(max_bytes) / bw * 1000.0;
  }
};

/// One round of concurrent requests.
struct IoRound {
  std::vector<uint64_t> request_bytes;  ///< Size of each concurrent request.
  bool is_list = false;                 ///< LIST rounds cost list_ms.
};

/// Records the access pattern of one logical operation (a search, an index
/// build, ...). Thread-safe: parallel reads within a round may come from a
/// thread pool.
class IoTrace {
 public:
  IoTrace() = default;

  /// Starts a new dependent round. All requests recorded until the next
  /// BeginRound are treated as concurrent.
  void BeginRound() {
    std::lock_guard<std::mutex> lock(mu_);
    rounds_.emplace_back();
  }

  /// Records one GET of `bytes` in the current round (opens a round if none).
  void RecordGet(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (rounds_.empty()) rounds_.emplace_back();
    rounds_.back().request_bytes.push_back(bytes);
    total_gets_ += 1;
    total_bytes_ += bytes;
  }

  /// Records one LIST in its own round.
  void RecordList() {
    std::lock_guard<std::mutex> lock(mu_);
    rounds_.emplace_back();
    rounds_.back().is_list = true;
    total_lists_ += 1;
  }

  /// Adds CPU time (decode, distance computations, scan) to the projection.
  void AddComputeMicros(Micros micros) {
    std::lock_guard<std::mutex> lock(mu_);
    compute_micros_ += micros;
  }

  /// Snapshot of the recorded rounds (for merging and inspection).
  std::vector<IoRound> rounds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rounds_;
  }

  /// Folds the traces of tasks that ran CONCURRENTLY (the search planner's
  /// per-index fan-out) into this trace: round j of every child lands in
  /// one merged round, so the merged depth is the MAX of the children's
  /// depths — the §V-B width/depth model for parallel dependent chains —
  /// instead of their sum, which is what recording children sequentially
  /// would claim. Child compute is folded as the max too (the chains
  /// overlap in wall-clock). Children must be quiescent when merged, and
  /// each child may be folded into a parent at most once per Reset() —
  /// merging one twice double-counts its requests in the parent's totals
  /// (debug-asserted; see merged_into_parent()).
  void MergeParallel(const std::vector<const IoTrace*>& children) {
    std::vector<std::vector<IoRound>> snaps;
    Micros max_compute = 0;
    uint64_t gets = 0, lists = 0, bytes = 0;
    size_t max_depth = 0;
    for (const IoTrace* c : children) {
      if (c == nullptr) continue;
      const bool already_merged = c->MarkMerged();
      (void)already_merged;
      assert(!already_merged && "IoTrace child merged into a parent twice");
      snaps.push_back(c->rounds());
      max_depth = std::max(max_depth, snaps.back().size());
      max_compute = std::max(max_compute, c->compute_micros());
      gets += c->total_gets();
      lists += c->total_lists();
      bytes += c->total_bytes();
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t j = 0; j < max_depth; ++j) {
      IoRound merged;
      for (const auto& snap : snaps) {
        if (j >= snap.size()) continue;
        merged.is_list = merged.is_list || snap[j].is_list;
        merged.request_bytes.insert(merged.request_bytes.end(),
                                    snap[j].request_bytes.begin(),
                                    snap[j].request_bytes.end());
      }
      rounds_.push_back(std::move(merged));
    }
    total_gets_ += gets;
    total_lists_ += lists;
    total_bytes_ += bytes;
    compute_micros_ += max_compute;
  }

  /// Number of dependent rounds (the access *depth*).
  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t d = 0;
    for (const auto& r : rounds_) {
      if (r.is_list || !r.request_bytes.empty()) ++d;
    }
    return d;
  }

  uint64_t total_gets() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_gets_;
  }
  uint64_t total_lists() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_lists_;
  }
  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  Micros compute_micros() const {
    std::lock_guard<std::mutex> lock(mu_);
    return compute_micros_;
  }

  /// Projected end-to-end latency on S3, in milliseconds.
  double ProjectedLatencyMs(const S3Model& model) const {
    std::lock_guard<std::mutex> lock(mu_);
    double ms = 0;
    for (const auto& r : rounds_) {
      // A merged fan-out round may hold a LIST and GETs concurrently; the
      // round costs whichever side is slower.
      double round_ms = r.is_list ? model.list_ms : 0;
      if (!r.request_bytes.empty()) {
        uint64_t max_bytes =
            *std::max_element(r.request_bytes.begin(), r.request_bytes.end());
        round_ms = std::max(
            round_ms, model.RoundLatencyMs(max_bytes, r.request_bytes.size()));
      }
      ms += round_ms;
    }
    return ms + static_cast<double>(compute_micros_) / 1000.0;
  }

  /// Projected request cost in USD.
  double RequestCostUsd(const S3Model& model) const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(total_gets_) * model.get_cost_usd +
           static_cast<double>(total_lists_) * model.put_cost_usd;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    rounds_.clear();
    total_gets_ = total_lists_ = total_bytes_ = 0;
    compute_micros_ = 0;
    merged_into_parent_ = false;
  }

  /// True once this trace has been folded into a parent via MergeParallel.
  /// Cleared by Reset(). Guards the "merge a child at most once" contract.
  bool merged_into_parent() const {
    std::lock_guard<std::mutex> lock(mu_);
    return merged_into_parent_;
  }

 private:
  /// Marks this trace as merged; returns whether it already was.
  bool MarkMerged() const {
    std::lock_guard<std::mutex> lock(mu_);
    const bool was = merged_into_parent_;
    merged_into_parent_ = true;
    return was;
  }

  mutable std::mutex mu_;
  std::vector<IoRound> rounds_;
  uint64_t total_gets_ = 0;
  uint64_t total_lists_ = 0;
  uint64_t total_bytes_ = 0;
  Micros compute_micros_ = 0;
  mutable bool merged_into_parent_ = false;
};

/// ObjectStore decorator that records reads/lists into an IoTrace.
/// Writes pass through unrecorded (index-build cost is accounted as compute).
class TracedObjectStore : public ObjectStore {
 public:
  /// Neither pointer is owned; both must outlive this object.
  TracedObjectStore(ObjectStore* inner, IoTrace* trace)
      : inner_(inner), trace_(trace) {}

  Status Put(const std::string& key, Slice data) override {
    return inner_->Put(key, data);
  }
  Status PutIfAbsent(const std::string& key, Slice data) override {
    return inner_->PutIfAbsent(key, data);
  }
  Status Get(const std::string& key, Buffer* out) override {
    Status s = inner_->Get(key, out);
    if (s.ok()) trace_->RecordGet(out->size());
    return s;
  }
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override {
    Status s = inner_->GetRange(key, offset, length, out);
    if (s.ok()) trace_->RecordGet(out->size());
    return s;
  }
  Status Head(const std::string& key, ObjectMeta* out) override {
    return inner_->Head(key, out);
  }
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override {
    Status s = inner_->List(prefix, out);
    if (s.ok()) trace_->RecordList();
    return s;
  }
  Status Delete(const std::string& key) override {
    return inner_->Delete(key);
  }
  const Clock& clock() const override { return inner_->clock(); }
  const IoStats& stats() const override { return inner_->stats(); }

  IoTrace* trace() { return trace_; }

 private:
  ObjectStore* inner_;
  IoTrace* trace_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_IO_TRACE_H_
