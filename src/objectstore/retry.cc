#include "objectstore/retry.h"

#include <cmath>
#include <cstring>

#include "obs/metrics.h"

namespace rottnest::objectstore {

RetryMetrics ResolveRetryMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name) {
  RetryMetrics m;
  if (registry == nullptr) return m;
  const std::string p = "retry." + name + ".";
  m.operations = registry->GetCounter(p + "operations");
  m.attempts = registry->GetCounter(p + "attempts");
  m.retries = registry->GetCounter(p + "retries");
  m.budget_exhausted = registry->GetCounter(p + "budget_exhausted");
  m.ambiguous_resolved = registry->GetCounter(p + "ambiguous_resolved");
  m.backoff_micros = registry->GetCounter(p + "backoff_micros");
  return m;
}

Micros RetryPolicy::BackoffFor(int retry, Random* rng) const {
  double wait = static_cast<double>(initial_backoff_micros) *
                std::pow(multiplier, retry - 1);
  wait = std::min(wait, static_cast<double>(max_backoff_micros));
  // Deterministic jitter: shave off up to `jitter` of the wait so retrying
  // clients desynchronize instead of thundering back in lockstep.
  if (jitter > 0 && rng != nullptr) {
    wait -= wait * jitter * rng->NextDouble();
  }
  return std::max<Micros>(static_cast<Micros>(wait), 1);
}

Status RetryingStore::Backoff(int retry, const Deadline& deadline) {
  Micros wait;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    wait = policy_.BackoffFor(retry, &rng_);
  }
  if (!deadline.infinite() && wait >= deadline.remaining_micros()) {
    // Sleeping past the deadline cannot help — the next attempt would start
    // already expired. Hand the remaining budget back to the caller.
    return Status::DeadlineExceeded("retry backoff would outlive deadline");
  }
  retry_stats_.backoff_micros.fetch_add(wait, std::memory_order_relaxed);
  obs::Add(metrics_.backoff_micros, wait);
  if (sleep_) sleep_(wait);
  return Status::OK();
}

Status RetryingStore::RetryLoop(const std::function<Status()>& attempt) {
  retry_stats_.operations.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.operations);
  Deadline deadline = CurrentDeadline();
  Status last;
  for (int i = 0; i < policy_.max_attempts; ++i) {
    if (i > 0) {
      retry_stats_.retries.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.retries);
      ROTTNEST_RETURN_NOT_OK(Backoff(i, deadline));
    }
    ROTTNEST_RETURN_NOT_OK(deadline.Check("retry"));
    retry_stats_.attempts.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.attempts);
    last = attempt();
    if (!last.IsUnavailable()) return last;
  }
  retry_stats_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.budget_exhausted);
  return last;
}

Status RetryingStore::Put(const std::string& key, Slice data) {
  // Puts are last-writer-wins overwrites: replaying one is harmless.
  return RetryLoop([&] { return inner_->Put(key, data); });
}

Status RetryingStore::PutIfAbsent(const std::string& key, Slice data) {
  retry_stats_.operations.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.operations);
  // Conditional puts cannot be blindly retried: an ambiguous failure may
  // mean our write landed, and a naive retry would then read AlreadyExists
  // and report a successful commit as a conflict. Once any attempt ends
  // ambiguously, conflicts are resolved by fetching the object and
  // comparing it to what we tried to write.
  auto resolve = [&](Status* out) -> bool {
    Buffer existing;
    Status g = inner_->Get(key, &existing);
    if (g.ok()) {
      bool ours = existing.size() == data.size() &&
                  (data.size() == 0 ||
                   std::memcmp(existing.data(), data.data(), data.size()) == 0);
      if (ours) {
        retry_stats_.ambiguous_resolved.fetch_add(1,
                                                  std::memory_order_relaxed);
        obs::Increment(metrics_.ambiguous_resolved);
        *out = Status::OK();
      } else {
        *out = Status::AlreadyExists("object exists: " + key);
      }
      return true;
    }
    if (!g.IsNotFound() && !g.IsUnavailable()) {
      *out = g;  // Unexpected read failure: surface it.
      return true;
    }
    return false;  // NotFound (didn't land) or transient: keep trying.
  };

  Deadline deadline = CurrentDeadline();
  bool ambiguous = false;
  Status last;
  for (int i = 0; i < policy_.max_attempts; ++i) {
    if (i > 0) {
      retry_stats_.retries.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.retries);
      ROTTNEST_RETURN_NOT_OK(Backoff(i, deadline));
    }
    ROTTNEST_RETURN_NOT_OK(deadline.Check("retry"));
    retry_stats_.attempts.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.attempts);
    last = inner_->PutIfAbsent(key, data);
    if (last.ok()) return last;
    if (last.IsAlreadyExists()) {
      if (!ambiguous) return last;  // Genuine conflict: someone else won.
      Status resolved;
      if (resolve(&resolved)) return resolved;
      continue;  // Resolution was itself transient; back off and retry.
    }
    if (!last.IsUnavailable()) return last;
    // Transient error on a conditional put: the write may have landed.
    ambiguous = true;
    Status resolved;
    if (resolve(&resolved)) return resolved;
  }
  retry_stats_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.budget_exhausted);
  return last;
}

Status RetryingStore::Get(const std::string& key, Buffer* out) {
  return RetryLoop([&] { return inner_->Get(key, out); });
}

Status RetryingStore::GetRange(const std::string& key, uint64_t offset,
                               uint64_t length, Buffer* out) {
  return RetryLoop([&] { return inner_->GetRange(key, offset, length, out); });
}

Status RetryingStore::Head(const std::string& key, ObjectMeta* out) {
  return RetryLoop([&] { return inner_->Head(key, out); });
}

Status RetryingStore::List(const std::string& prefix,
                           std::vector<ObjectMeta>* out) {
  return RetryLoop([&] { return inner_->List(prefix, out); });
}

Status RetryingStore::Delete(const std::string& key) {
  // Deletes are idempotent (deleting a missing key succeeds).
  return RetryLoop([&] { return inner_->Delete(key); });
}

}  // namespace rottnest::objectstore
