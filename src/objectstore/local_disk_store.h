// Object store backed by a local directory — lets examples persist data
// across runs. Keys map to files under a root; '/' in keys becomes
// directories. Provides the same strong-consistency semantics as the
// in-memory store (local filesystems are strongly consistent).
#ifndef ROTTNEST_OBJECTSTORE_LOCAL_DISK_STORE_H_
#define ROTTNEST_OBJECTSTORE_LOCAL_DISK_STORE_H_

#include <mutex>
#include <string>

#include "objectstore/object_store.h"

namespace rottnest::objectstore {

class LocalDiskObjectStore : public ObjectStore {
 public:
  /// `root` is created if missing. `clock` must outlive the store.
  LocalDiskObjectStore(std::string root, const Clock* clock);

  Status Put(const std::string& key, Slice data) override;
  Status PutIfAbsent(const std::string& key, Slice data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override;
  Status Head(const std::string& key, ObjectMeta* out) override;
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override;
  Status Delete(const std::string& key) override;

  const Clock& clock() const override { return *clock_; }
  const IoStats& stats() const override { return stats_; }

  /// Mirrors every IoStats increment into `registry` under
  /// `store.<name>.*`. Attach before use (not thread-safe vs in-flight ops).
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "disk") {
    metrics_ = ResolveStoreMetrics(registry, name);
  }

 private:
  std::string PathFor(const std::string& key) const;

  std::string root_;
  const Clock* clock_;
  // Serializes PutIfAbsent (existence check + write) and key-space scans.
  mutable std::mutex mu_;
  IoStats stats_;
  StoreMetrics metrics_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_LOCAL_DISK_STORE_H_
