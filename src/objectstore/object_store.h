// Object storage abstraction: the S3 substrate Rottnest runs on.
//
// The protocol's correctness (paper §IV-D) relies on exactly two storage
// properties, both provided here:
//   1. strong read-after-write consistency (a Get after a successful Put
//      observes the object; List observes committed objects), and
//   2. a single global clock stamping object creation times (used by the
//      vacuum timeout rule).
// Additionally, PutIfAbsent provides the conditional-put primitive used to
// commit transaction-log versions (as in Delta on S3 with conditional
// writes). No atomic rename is required anywhere.
#ifndef ROTTNEST_OBJECTSTORE_OBJECT_STORE_H_
#define ROTTNEST_OBJECTSTORE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace rottnest::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace rottnest::obs

namespace rottnest::objectstore {

/// Metadata for a stored object.
struct ObjectMeta {
  std::string key;
  uint64_t size = 0;
  Micros created_micros = 0;  ///< Store-clock creation time.
};

/// Aggregate request counters, used for cost accounting ($ per request) and
/// throughput-cap analysis (5500 GET RPS per prefix). The cache_* fields are
/// populated only by CachingStore (zero elsewhere): hits are reads served
/// without touching the backing store, so on a CachingStore the gets/heads
/// counters reflect *physical* requests (misses) only.
struct IoStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> lists{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> heads{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> cache_hits{0};       ///< Reads served from cache.
  std::atomic<uint64_t> cache_misses{0};     ///< Reads that hit the store.
  std::atomic<uint64_t> cache_evictions{0};  ///< Entries aged out by budget.
  /// Concurrent misses coalesced onto another client's in-flight fetch
  /// (single-flight dedup in CachingStore); each saved one backing GET.
  std::atomic<uint64_t> cache_coalesced{0};
  /// Misses served from the wave ledger (CachingStore::BeginWave/EndWave —
  /// the serving layer's GET batching): an earlier member of the same GET
  /// wave already fetched the range, so this read paid no backing request
  /// even though the LRU had no (or no longer any) entry for it.
  std::atomic<uint64_t> cache_wave_hits{0};
  /// Resident cache payload bytes — a gauge owned by the cache, not a
  /// monotonic counter; excluded from Reset().
  std::atomic<uint64_t> cache_bytes{0};

  void Reset() {
    gets = puts = lists = deletes = heads = 0;
    bytes_read = bytes_written = 0;
    cache_hits = cache_misses = cache_evictions = cache_coalesced = 0;
    cache_wave_hits = 0;
  }
};

/// Pre-resolved metric handles mirroring IoStats, emitted at the exact
/// sites the stats counters increment — so for any store the registry's
/// `store.<name>.*` counters exactly equal its IoStats (the reconciliation
/// property tests assert). All handles null when metrics are off; emission
/// is then a single branch, no allocation (see obs/metrics.h).
struct StoreMetrics {
  obs::Counter* gets = nullptr;
  obs::Counter* puts = nullptr;
  obs::Counter* lists = nullptr;
  obs::Counter* deletes = nullptr;
  obs::Counter* heads = nullptr;
  obs::Counter* bytes_read = nullptr;
  obs::Counter* bytes_written = nullptr;
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_evictions = nullptr;
  obs::Counter* cache_coalesced = nullptr;
  obs::Counter* cache_wave_hits = nullptr;
  obs::Histogram* get_bytes = nullptr;  ///< Per-GET payload distribution.
};

/// Resolves the `store.<name>.*` handle set in `registry` (nullptr-safe:
/// returns all-null handles for a null registry).
StoreMetrics ResolveStoreMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name);

/// Abstract object store. Implementations must be thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores (or overwrites) `key`.
  virtual Status Put(const std::string& key, Slice data) = 0;

  /// Stores `key` only if it does not exist; AlreadyExists otherwise.
  /// This is the commit primitive for transaction logs.
  virtual Status PutIfAbsent(const std::string& key, Slice data) = 0;

  /// Reads the whole object.
  virtual Status Get(const std::string& key, Buffer* out) = 0;

  /// Byte-range read of [offset, offset+length). Reading past the end is
  /// truncated (like HTTP range requests); offset == size yields an empty
  /// buffer (a zero-length suffix read); only offset > size is
  /// InvalidArgument.
  virtual Status GetRange(const std::string& key, uint64_t offset,
                          uint64_t length, Buffer* out) = 0;

  /// Object metadata without the body.
  virtual Status Head(const std::string& key, ObjectMeta* out) = 0;

  /// Lists all objects whose key starts with `prefix`, sorted by key.
  virtual Status List(const std::string& prefix,
                      std::vector<ObjectMeta>* out) = 0;

  /// Deletes the object. Deleting a missing key succeeds (idempotent).
  virtual Status Delete(const std::string& key) = 0;

  /// Store clock (global; stamps created_micros).
  virtual const Clock& clock() const = 0;

  /// Cumulative request counters.
  virtual const IoStats& stats() const = 0;
};

/// Failure injection hook: called before each mutating/reading operation
/// with the op name ("put", "get", ...) and key; returning non-OK makes the
/// operation fail with that status. Used by protocol crash tests.
using FailurePoint =
    std::function<Status(const std::string& op, const std::string& key)>;

/// Advances time during a wait (retry backoff, injected latency).
/// Simulations pass SimulatedSleeper(&clock); production blocks the thread.
using SleepFn = std::function<void(Micros)>;

/// A SleepFn that advances `clock` instead of blocking — waits consume
/// simulated time, keeping chaos tests instant and deterministic.
SleepFn SimulatedSleeper(SimulatedClock* clock);

/// In-memory object store with strong read-after-write consistency.
///
/// All operations are linearizable (single mutex). Object creation times
/// come from the injected Clock, giving simulations a deterministic global
/// clock.
class InMemoryObjectStore : public ObjectStore {
 public:
  /// `clock` must outlive the store.
  explicit InMemoryObjectStore(const Clock* clock) : clock_(clock) {}

  Status Put(const std::string& key, Slice data) override;
  Status PutIfAbsent(const std::string& key, Slice data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override;
  Status Head(const std::string& key, ObjectMeta* out) override;
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override;
  Status Delete(const std::string& key) override;

  const Clock& clock() const override { return *clock_; }
  const IoStats& stats() const override { return stats_; }
  IoStats& mutable_stats() { return stats_; }

  /// Installs (or clears, with nullptr semantics via empty function) the
  /// failure-injection hook.
  void SetFailurePoint(FailurePoint fp) {
    std::lock_guard<std::mutex> lock(mu_);
    failure_point_ = std::move(fp);
  }

  /// Starts mirroring every IoStats increment into `registry` under
  /// `store.<name>.*` (pass nullptr to stop). Not thread-safe against
  /// in-flight operations; attach before use.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "memory") {
    metrics_ = ResolveStoreMetrics(registry, name);
  }

  /// Total bytes currently stored (for storage-cost accounting).
  uint64_t TotalBytes() const;

  /// Number of objects currently stored.
  size_t ObjectCount() const;

 private:
  struct Entry {
    Buffer data;
    Micros created_micros = 0;
  };

  Status MaybeFail(const char* op, const std::string& key);

  const Clock* clock_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> objects_;
  FailurePoint failure_point_;
  IoStats stats_;
  StoreMetrics metrics_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_OBJECT_STORE_H_
