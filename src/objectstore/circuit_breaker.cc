#include "objectstore/circuit_breaker.h"

#include "obs/metrics.h"

namespace rottnest::objectstore {

namespace {
// The fail-fast message carries a fixed marker so IsCircuitOpen can
// distinguish breaker verdicts from genuine store Unavailable errors
// without widening the StatusCode enum for one decorator.
constexpr char kOpenMarker[] = "circuit breaker open";
}  // namespace

BreakerMetrics ResolveBreakerMetrics(obs::MetricsRegistry* registry,
                                     const std::string& name) {
  BreakerMetrics m;
  if (registry == nullptr) return m;
  const std::string p = "breaker." + name + ".";
  m.outcomes = registry->GetCounter(p + "outcomes");
  m.failures_observed = registry->GetCounter(p + "failures_observed");
  m.opened = registry->GetCounter(p + "opened");
  m.fast_failures = registry->GetCounter(p + "fast_failures");
  m.probes = registry->GetCounter(p + "probes");
  m.reclosed = registry->GetCounter(p + "reclosed");
  m.state = registry->GetGauge(p + "state");
  return m;
}

bool IsCircuitOpen(const Status& status) {
  return status.IsUnavailable() &&
         status.message().find(kOpenMarker) != std::string::npos;
}

CircuitBreaker::CircuitBreaker(const Clock* clock, BreakerOptions options,
                               std::string name)
    : clock_(clock), options_(options), name_(std::move(name)) {
  ring_.resize(options_.window > 0 ? options_.window : 1, false);
}

void CircuitBreaker::AttachMetrics(obs::MetricsRegistry* registry,
                                   const std::string& name) {
  metrics_ = ResolveBreakerMetrics(registry, name);
  obs::Set(metrics_.state, static_cast<int64_t>(state()));
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool CircuitBreaker::IsFailure(const Status& status,
                               Micros latency_micros) const {
  // DeadlineExceeded reports the CALLER's budget, not store health, and
  // NotFound/AlreadyExists/Corruption are answers about object state.
  if (status.IsUnavailable() || status.IsIOError()) return true;
  return options_.latency_threshold_micros > 0 &&
         latency_micros > options_.latency_threshold_micros;
}

void CircuitBreaker::OpenLocked() {
  state_ = State::kOpen;
  opened_at_ = clock_->NowMicros();
  probe_inflight_ = false;
  probe_successes_ = 0;
  stats_.opened.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.opened);
  obs::Set(metrics_.state, static_cast<int64_t>(state_));
}

Status CircuitBreaker::Admit(bool* is_probe) {
  *is_probe = false;
  if (!options_.enabled) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen) {
    if (clock_->NowMicros() - opened_at_ <
        static_cast<Micros>(options_.cooldown_micros)) {
      stats_.fast_failures.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.fast_failures);
      return Status::Unavailable(std::string(kOpenMarker) + ": " + name_);
    }
    state_ = State::kHalfOpen;
    probe_successes_ = 0;
    probe_inflight_ = false;
    obs::Set(metrics_.state, static_cast<int64_t>(state_));
  }
  if (state_ == State::kHalfOpen) {
    if (probe_inflight_) {
      // One probe at a time; everyone else keeps failing fast.
      stats_.fast_failures.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.fast_failures);
      return Status::Unavailable(std::string(kOpenMarker) + ": " + name_ +
                                 " (probing)");
    }
    probe_inflight_ = true;
    *is_probe = true;
    stats_.probes.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.probes);
  }
  return Status::OK();
}

void CircuitBreaker::Record(const Status& status, Micros latency_micros,
                            bool was_probe) {
  if (!options_.enabled) return;
  bool failure = IsFailure(status, latency_micros);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.outcomes.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.outcomes);
  if (failure) {
    stats_.failures_observed.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.failures_observed);
  }
  if (was_probe) {
    probe_inflight_ = false;
    if (state_ != State::kHalfOpen) return;  // A transition raced us.
    if (failure) {
      OpenLocked();
      return;
    }
    if (++probe_successes_ >= options_.half_open_probes) {
      state_ = State::kClosed;
      ring_.assign(ring_.size(), false);
      ring_next_ = ring_count_ = ring_failures_ = 0;
      stats_.reclosed.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.reclosed);
      obs::Set(metrics_.state, static_cast<int64_t>(state_));
    }
    return;
  }
  if (state_ != State::kClosed) return;  // Straggler from before a trip.
  if (ring_count_ == ring_.size()) {
    if (ring_[ring_next_]) --ring_failures_;
  } else {
    ++ring_count_;
  }
  ring_[ring_next_] = failure;
  if (failure) ++ring_failures_;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  if (ring_count_ >= options_.min_samples &&
      static_cast<double>(ring_failures_) >=
          options_.failure_threshold * static_cast<double>(ring_count_)) {
    OpenLocked();
  }
}

Status BreakerStore::Run(const std::function<Status()>& fn) {
  bool is_probe = false;
  ROTTNEST_RETURN_NOT_OK(breaker_.Admit(&is_probe));
  Micros start = inner_->clock().NowMicros();
  Status s = fn();
  breaker_.Record(s, inner_->clock().NowMicros() - start, is_probe);
  return s;
}

Status BreakerStore::Put(const std::string& key, Slice data) {
  return Run([&] { return inner_->Put(key, data); });
}

Status BreakerStore::PutIfAbsent(const std::string& key, Slice data) {
  return Run([&] { return inner_->PutIfAbsent(key, data); });
}

Status BreakerStore::Get(const std::string& key, Buffer* out) {
  return Run([&] { return inner_->Get(key, out); });
}

Status BreakerStore::GetRange(const std::string& key, uint64_t offset,
                              uint64_t length, Buffer* out) {
  return Run([&] { return inner_->GetRange(key, offset, length, out); });
}

Status BreakerStore::Head(const std::string& key, ObjectMeta* out) {
  return Run([&] { return inner_->Head(key, out); });
}

Status BreakerStore::List(const std::string& prefix,
                          std::vector<ObjectMeta>* out) {
  return Run([&] { return inner_->List(prefix, out); });
}

Status BreakerStore::Delete(const std::string& key) {
  return Run([&] { return inner_->Delete(key); });
}

}  // namespace rottnest::objectstore
