#include "objectstore/local_disk_store.h"

#include "obs/metrics.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace rottnest::objectstore {

namespace fs = std::filesystem;

namespace {

// Keys are stored with '/' preserved as directory separators; a ".obj"
// suffix distinguishes object files from directories so that a key can be a
// proper prefix of another key.
constexpr const char* kSuffix = ".obj";

std::string KeyFromPath(const fs::path& root, const fs::path& file) {
  std::string rel = fs::relative(file, root).generic_string();
  return rel.substr(0, rel.size() - 4);  // strip ".obj"
}

}  // namespace

LocalDiskObjectStore::LocalDiskObjectStore(std::string root,
                                           const Clock* clock)
    : root_(std::move(root)), clock_(clock) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

std::string LocalDiskObjectStore::PathFor(const std::string& key) const {
  return root_ + "/" + key + kSuffix;
}

Status LocalDiskObjectStore::Put(const std::string& key, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  obs::Increment(metrics_.puts);
  obs::Add(metrics_.bytes_written, data.size());
  fs::path p = PathFor(key);
  std::error_code ec;
  fs::create_directories(p.parent_path(), ec);
  // Write to a temp file then rename for atomicity on the local FS. (The
  // Rottnest protocol does not rely on this; it is local hygiene only.)
  fs::path tmp = p;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for write: " + tmp.string());
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("short write: " + tmp.string());
  }
  fs::rename(tmp, p, ec);
  if (ec) return Status::IOError("rename failed: " + ec.message());
  return Status::OK();
}

Status LocalDiskObjectStore::PutIfAbsent(const std::string& key, Slice data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fs::exists(PathFor(key))) {
      stats_.puts.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.puts);
      return Status::AlreadyExists("object exists: " + key);
    }
  }
  return Put(key, data);
}

Status LocalDiskObjectStore::Get(const std::string& key, Buffer* out) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.gets);
  std::ifstream in(PathFor(key), std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("no such object: " + key);
  std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(out->data()), size);
  if (!in) return Status::IOError("short read: " + key);
  stats_.bytes_read.fetch_add(out->size(), std::memory_order_relaxed);
  obs::Add(metrics_.bytes_read, out->size());
  obs::Record(metrics_.get_bytes, out->size());
  return Status::OK();
}

Status LocalDiskObjectStore::GetRange(const std::string& key, uint64_t offset,
                                      uint64_t length, Buffer* out) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.gets);
  std::ifstream in(PathFor(key), std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("no such object: " + key);
  uint64_t size = static_cast<uint64_t>(in.tellg());
  if (offset > size) {
    return Status::InvalidArgument("range offset past end of object");
  }
  if (offset == size) {
    // Zero-length read at EOF: valid per HTTP range semantics.
    out->clear();
    return Status::OK();
  }
  uint64_t n = std::min<uint64_t>(length, size - offset);
  in.seekg(static_cast<std::streamoff>(offset));
  out->resize(static_cast<size_t>(n));
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(n));
  if (!in) return Status::IOError("short range read: " + key);
  stats_.bytes_read.fetch_add(n, std::memory_order_relaxed);
  obs::Add(metrics_.bytes_read, n);
  obs::Record(metrics_.get_bytes, n);
  return Status::OK();
}

Status LocalDiskObjectStore::Head(const std::string& key, ObjectMeta* out) {
  stats_.heads.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.heads);
  std::error_code ec;
  fs::path p = PathFor(key);
  auto size = fs::file_size(p, ec);
  if (ec) return Status::NotFound("no such object: " + key);
  out->key = key;
  out->size = size;
  auto mtime = fs::last_write_time(p, ec);
  out->created_micros =
      ec ? 0
         : std::chrono::duration_cast<std::chrono::microseconds>(
               mtime.time_since_epoch())
               .count();
  return Status::OK();
}

Status LocalDiskObjectStore::List(const std::string& prefix,
                                  std::vector<ObjectMeta>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.lists.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.lists);
  out->clear();
  std::error_code ec;
  fs::path root(root_);
  if (!fs::exists(root)) return Status::OK();
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) return Status::IOError("list failed: " + ec.message());
    if (!it->is_regular_file()) continue;
    std::string name = it->path().generic_string();
    if (name.size() < 4 || name.compare(name.size() - 4, 4, kSuffix) != 0) {
      continue;
    }
    std::string key = KeyFromPath(root, it->path());
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    ObjectMeta m;
    m.key = key;
    m.size = it->file_size(ec);
    auto mtime = fs::last_write_time(it->path(), ec);
    m.created_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           mtime.time_since_epoch())
                           .count();
    out->push_back(std::move(m));
  }
  std::sort(out->begin(), out->end(),
            [](const ObjectMeta& a, const ObjectMeta& b) {
              return a.key < b.key;
            });
  return Status::OK();
}

Status LocalDiskObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.deletes);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  return Status::OK();
}

}  // namespace rottnest::objectstore
