// Circuit breaker for object storage: when a store is failing or slow
// enough that requests are mostly wasted work, fail FAST instead — callers
// get an immediate typed Unavailable and route around the store (the search
// planner records the index child as cut short) rather than each burning a
// full retry budget against a dead endpoint.
//
// Classic three-state machine over a rolling outcome window:
//
//   Closed ──(failure fraction ≥ threshold over ≥ min_samples)──► Open
//   Open ──(cooldown elapsed on the STORE clock)──► Half-open
//   Half-open ──(half_open_probes consecutive successes)──► Closed
//   Half-open ──(any probe failure)──► Open (cooldown restarts)
//
// "Failure" means Unavailable/IOError, or — when latency_threshold_micros
// is set — an op slower than the threshold. DeadlineExceeded is explicitly
// NOT a failure: it reports the caller's budget, not the store's health.
// All timing uses the store clock, so the machine is fully deterministic
// under SimulatedClock.
//
// Stack position: ABOVE RetryingStore (breaker verdicts reflect post-retry
// outcomes — a fault the retry layer absorbed is not an incident — and a
// fast-fail skips the whole backoff loop), BELOW CachingStore (cache hits
// need no admission).
#ifndef ROTTNEST_OBJECTSTORE_CIRCUIT_BREAKER_H_
#define ROTTNEST_OBJECTSTORE_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "objectstore/object_store.h"

namespace rottnest::objectstore {

struct BreakerOptions {
  size_t window = 64;        ///< Rolling outcome window size.
  size_t min_samples = 16;   ///< Outcomes required before the breaker may
                             ///< trip (a cold start is not an incident).
  double failure_threshold = 0.5;  ///< Failure fraction that opens.
  /// An op slower than this counts as a failure even when it succeeds
  /// (brown-out detection). 0 disables latency-based failures.
  Micros latency_threshold_micros = 0;
  Micros cooldown_micros = 5'000'000;  ///< Open → half-open, store clock.
  int half_open_probes = 3;  ///< Consecutive probe successes to close.
  bool enabled = true;       ///< Off = transparent pass-through.
};

/// Pre-resolved metric handles mirroring BreakerStats.
struct BreakerMetrics {
  obs::Counter* outcomes = nullptr;
  obs::Counter* failures_observed = nullptr;
  obs::Counter* opened = nullptr;
  obs::Counter* fast_failures = nullptr;
  obs::Counter* probes = nullptr;
  obs::Counter* reclosed = nullptr;
  obs::Gauge* state = nullptr;  ///< 0 closed, 1 half-open, 2 open.
};

/// Resolves the `breaker.<name>.*` handle set (nullptr-safe).
BreakerMetrics ResolveBreakerMetrics(obs::MetricsRegistry* registry,
                                     const std::string& name);

/// Cumulative breaker accounting.
struct BreakerStats {
  std::atomic<uint64_t> outcomes{0};           ///< Outcomes recorded.
  std::atomic<uint64_t> failures_observed{0};  ///< Failing outcomes.
  std::atomic<uint64_t> opened{0};             ///< Closed/half-open → open.
  std::atomic<uint64_t> fast_failures{0};      ///< Requests refused open.
  std::atomic<uint64_t> probes{0};             ///< Half-open probes admitted.
  std::atomic<uint64_t> reclosed{0};           ///< Half-open → closed.
};

/// The state machine itself, usable standalone. Thread-safe (one mutex;
/// transitions are cheap).
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  /// `clock` must outlive the breaker (pass the store clock).
  CircuitBreaker(const Clock* clock, BreakerOptions options,
                 std::string name = "store");

  /// Gate for one request. OK admits it (setting *is_probe in half-open:
  /// exactly one probe flies at a time); otherwise a typed Unavailable
  /// fail-fast the caller returns without touching the store. Every
  /// admitted request MUST be reported via Record().
  Status Admit(bool* is_probe);

  /// Reports an admitted request's outcome. `latency_micros` is measured on
  /// the store clock by the caller.
  void Record(const Status& status, Micros latency_micros, bool was_probe);

  State state() const;
  const BreakerStats& breaker_stats() const { return stats_; }
  const BreakerOptions& options() const { return options_; }

  void AttachMetrics(obs::MetricsRegistry* registry, const std::string& name);

 private:
  /// Caller holds mu_. Transitions to open and stamps the cooldown.
  void OpenLocked();

  bool IsFailure(const Status& status, Micros latency_micros) const;

  const Clock* clock_;
  BreakerOptions options_;
  std::string name_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::vector<bool> ring_;  ///< true = failure.
  size_t ring_next_ = 0;
  size_t ring_count_ = 0;
  size_t ring_failures_ = 0;
  Micros opened_at_ = 0;
  bool probe_inflight_ = false;
  int probe_successes_ = 0;

  BreakerStats stats_;
  BreakerMetrics metrics_;
};

/// True iff `status` is the breaker's fail-fast verdict (as opposed to a
/// genuine transient from the store) — callers that must distinguish
/// "the store said no" from "we refused to ask" branch on this.
bool IsCircuitOpen(const Status& status);

/// ObjectStore decorator gating every operation through a CircuitBreaker.
/// `inner` must outlive the decorator.
class BreakerStore : public ObjectStore {
 public:
  BreakerStore(ObjectStore* inner, BreakerOptions options = {},
               std::string name = "store")
      : inner_(inner), breaker_(&inner->clock(), options, std::move(name)) {}

  Status Put(const std::string& key, Slice data) override;
  Status PutIfAbsent(const std::string& key, Slice data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override;
  Status Head(const std::string& key, ObjectMeta* out) override;
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override;
  Status Delete(const std::string& key) override;

  const Clock& clock() const override { return inner_->clock(); }
  const IoStats& stats() const override { return inner_->stats(); }

  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  ObjectStore* inner() { return inner_; }

  /// Mirrors breaker accounting into `registry` under `breaker.<name>.*`.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "store") {
    breaker_.AttachMetrics(registry, name);
  }

 private:
  Status Run(const std::function<Status()>& fn);

  ObjectStore* inner_;
  CircuitBreaker breaker_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_CIRCUIT_BREAKER_H_
