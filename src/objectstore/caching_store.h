// Client-side read-through cache for object storage (the Airphant lesson:
// object-store indexes are only competitive when the hot index blocks stop
// being re-fetched on every query).
//
// CachingStore is an ObjectStore decorator with a sharded (N-way,
// mutex-per-shard) LRU over byte-range reads, keyed on (key, offset, length)
// and bounded by a byte budget split evenly across shards. It is safe by
// construction for the Rottnest workload: index files and data files are
// immutable once uploaded, so a cached range can never go stale — entries
// are never invalidated by content change, and keys removed by vacuum
// simply age out of the LRU. The two mutation paths that *could* break that
// assumption (an overwriting Put, a Delete) defensively drop the key's
// entries anyway, so the decorator stays a faithful ObjectStore even for
// non-Rottnest callers.
//
// What is cached:
//   * GetRange(key, offset, length)  — keyed exactly on the request triple;
//   * Get(key)                       — keyed as (key, 0, kWholeObject);
//   * Head(key)                      — object metadata, tiny entries that
//                                      spare the open-path HEAD round-trip.
// Lists always pass through (they observe mutable namespace state).
//
// Placement in the store stack (see DESIGN.md "Client-side caching & search
// fan-out"): the cache sits ABOVE RetryingStore/FaultInjectingStore —
//     CachingStore -> RetryingStore -> FaultInjectingStore -> backing store
// — so hits skip the retry machinery entirely and misses inherit its fault
// absorption; a fault-injected read error is returned, never cached.
//
// Accounting: stats() exposes this decorator's own IoStats, where gets /
// heads / bytes_read count only *physical* requests forwarded to the inner
// store and cache_hits / cache_misses / cache_evictions / cache_bytes count
// cache events. Thread-safe throughout; misses fetch without holding any
// shard mutex, so concurrent readers only serialize on bookkeeping.
#ifndef ROTTNEST_OBJECTSTORE_CACHING_STORE_H_
#define ROTTNEST_OBJECTSTORE_CACHING_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "objectstore/object_store.h"

namespace rottnest::objectstore {

/// Cache shape knobs.
struct CacheOptions {
  uint64_t capacity_bytes = 64ull << 20;  ///< Total payload budget.
  size_t shards = 16;                     ///< Independent LRU shards.
  bool cache_heads = true;                ///< Also cache Head() metadata.
  /// Byte cap on the wave ledger (BeginWave/EndWave); past it, further
  /// fetches of the wave are simply not recorded (still correct, the
  /// coalescing just stops growing). Separate from capacity_bytes: the
  /// ledger must hold a wave's shared blocks even when the LRU is tiny.
  uint64_t wave_ledger_bytes = 64ull << 20;
};

/// Sharded read-through LRU cache over an ObjectStore. `inner` must outlive
/// the decorator.
class CachingStore : public ObjectStore {
 public:
  CachingStore(ObjectStore* inner, CacheOptions options);

  // Cached read paths.
  Status Get(const std::string& key, Buffer* out) override;
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override;
  Status Head(const std::string& key, ObjectMeta* out) override;

  // Pass-through (writes invalidate the key's entries defensively).
  Status Put(const std::string& key, Slice data) override;
  Status PutIfAbsent(const std::string& key, Slice data) override;
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override;
  Status Delete(const std::string& key) override;

  const Clock& clock() const override { return inner_->clock(); }
  const IoStats& stats() const override { return stats_; }

  // ---- Wave-level coalescing (the serving layer's GET batching) --------
  // Single-flight (above) dedups misses that are in flight at the same
  // instant; a GET WAVE widens that window to a whole batch of queries.
  // Between BeginWave() and the matching EndWave() the cache keeps a side
  // ledger of every payload fetched from the inner store; a miss whose key
  // is in the ledger is served from it WITHOUT a physical request — even
  // if the LRU already evicted the entry — and counted in
  // IoStats::cache_wave_hits. Waves nest (refcounted); the ledger drops
  // when the last one ends. Failed fetches are never recorded, so a
  // breaker/outage/deadline failure still propagates to every query that
  // needed the range (per-query error semantics are unchanged). The
  // serving engine serializes its waves, so one store-wide ledger IS
  // wave-scoped coalescing; concurrent non-wave readers simply join it.

  void BeginWave();
  void EndWave();
  /// Entries currently held by the wave ledger (0 outside any wave).
  size_t WaveLedgerEntries() const;

  /// Drops every cached entry (budget and shards unchanged).
  void Clear();

  /// Drops all entries of `key` (any offset/length, plus its Head entry).
  void Invalidate(const std::string& key);

  /// Current resident payload bytes / entry count across all shards.
  uint64_t ResidentBytes() const;
  size_t EntryCount() const;

  const CacheOptions& options() const { return options_; }
  ObjectStore* inner() { return inner_; }

  /// Mirrors every IoStats increment (including cache hit/miss/eviction
  /// events) into `registry` under `store.<name>.*`. Attach before use.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "cache") {
    metrics_ = ResolveStoreMetrics(registry, name);
  }

 private:
  /// Sentinel length marking a whole-object Get() entry.
  static constexpr uint64_t kWholeObject = ~0ull;
  /// Sentinel offset marking a Head() metadata entry.
  static constexpr uint64_t kHeadEntry = ~0ull;

  struct EntryKey {
    std::string key;
    uint64_t offset = 0;
    uint64_t length = 0;
    bool operator==(const EntryKey& o) const {
      return offset == o.offset && length == o.length && key == o.key;
    }
  };
  struct EntryKeyHash {
    size_t operator()(const EntryKey& k) const;
  };
  struct Entry {
    EntryKey key;
    Buffer data;        ///< Range/whole-object payload.
    ObjectMeta meta;    ///< Head payload (offset == kHeadEntry entries).
    uint64_t charge = 0;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<EntryKey, std::list<Entry>::iterator, EntryKeyHash>
        index;
    uint64_t bytes = 0;
  };

  /// One in-flight backing fetch, shared by every concurrent miss on the
  /// same EntryKey (single-flight dedup): the first misser becomes the
  /// leader and fetches; the rest wait here and are served the leader's
  /// result without issuing their own GET. Fixes the thundering herd a
  /// hedge-amplified fan-out would otherwise send through a cold cache.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    Buffer data;
    ObjectMeta meta;
  };

  /// One wave-ledger record: the payload a leader fetched during the
  /// current wave (data for Get/GetRange keys, meta for Head keys).
  struct WaveEntry {
    Buffer data;
    ObjectMeta meta;
  };

  Shard& ShardFor(const EntryKey& k);
  /// Looks `k` up in its shard; on hit promotes to MRU and copies out.
  bool Lookup(const EntryKey& k, Buffer* data, ObjectMeta* meta);
  /// Runs the miss path for `k` with single-flight dedup. The leader calls
  /// `fetch` (which does its own physical-stats accounting) and populates
  /// the cache; coalesced followers wait and copy the leader's result.
  Status MissFetch(EntryKey k, Buffer* data_out, ObjectMeta* meta_out,
                   const std::function<Status(Buffer*, ObjectMeta*)>& fetch);
  /// Inserts (or refreshes) `k`, charging its payload and evicting LRU
  /// entries past the shard budget.
  void Insert(EntryKey k, const Buffer* data, const ObjectMeta* meta);
  void EvictLocked(Shard& shard);
  /// Serves `k` from the wave ledger if a wave is open and holds it.
  bool WaveLookup(const EntryKey& k, Buffer* data, ObjectMeta* meta);
  /// Records a successful leader fetch into the open wave's ledger (no-op
  /// outside a wave or past the ledger byte cap).
  void WaveRecord(const EntryKey& k, const Buffer* data,
                  const ObjectMeta* meta);

  ObjectStore* inner_;
  CacheOptions options_;
  uint64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex flights_mu_;
  std::unordered_map<EntryKey, std::shared_ptr<InFlight>, EntryKeyHash>
      flights_;
  mutable std::mutex wave_mu_;
  int wave_depth_ = 0;        ///< Open BeginWave() nestings.
  uint64_t wave_bytes_ = 0;   ///< Ledger payload bytes held.
  std::unordered_map<EntryKey, WaveEntry, EntryKeyHash> wave_ledger_;
  mutable IoStats stats_;
  StoreMetrics metrics_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_CACHING_STORE_H_
