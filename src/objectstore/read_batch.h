// Parallel batched byte-range reads: the "width" primitive of §V-B. All
// requests in one batch are issued concurrently and count as one dependent
// round in the IoTrace.
#ifndef ROTTNEST_OBJECTSTORE_READ_BATCH_H_
#define ROTTNEST_OBJECTSTORE_READ_BATCH_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "objectstore/io_trace.h"
#include "objectstore/object_store.h"

namespace rottnest::objectstore {

/// One byte-range read request. length == 0 means "whole object".
struct RangeRequest {
  std::string key;
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Issues all `requests` concurrently on `pool` (or inline when pool is
/// null), recording them as one round in `trace` (if non-null). Results are
/// positionally aligned with requests. Returns the first error encountered,
/// with all other requests still attempted. Error contract: a failed
/// request leaves a ZERO-LENGTH buffer at its position — never whatever
/// partial bytes the store wrote before failing — so a caller that decides
/// to tolerate the error (degraded reads) can distinguish "failed slot"
/// from data without consulting per-slot statuses.
Status ReadBatch(ObjectStore* store, const std::vector<RangeRequest>& requests,
                 ThreadPool* pool, IoTrace* trace,
                 std::vector<Buffer>* results);

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_READ_BATCH_H_
