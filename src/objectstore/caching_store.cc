#include "objectstore/caching_store.h"

#include <algorithm>

#include "common/hash.h"
#include "obs/metrics.h"

namespace rottnest::objectstore {

namespace {

/// Fixed bookkeeping overhead charged per entry on top of the payload, so a
/// flood of tiny entries (Head metadata, short ranges) still respects the
/// byte budget.
constexpr uint64_t kEntryOverhead = 64;

}  // namespace

size_t CachingStore::EntryKeyHash::operator()(const EntryKey& k) const {
  uint64_t h = Hash64(Slice(k.key));
  h ^= Mix64(k.offset * 0x9e3779b97f4a7c15ull + k.length);
  return static_cast<size_t>(h);
}

CachingStore::CachingStore(ObjectStore* inner, CacheOptions options)
    : inner_(inner), options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shard_capacity_ = options_.capacity_bytes / options_.shards;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CachingStore::Shard& CachingStore::ShardFor(const EntryKey& k) {
  return *shards_[EntryKeyHash{}(k) % shards_.size()];
}

bool CachingStore::Lookup(const EntryKey& k, Buffer* data, ObjectMeta* meta) {
  Shard& shard = ShardFor(k);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(k);
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // Promote.
  if (data != nullptr) *data = it->second->data;
  if (meta != nullptr) *meta = it->second->meta;
  return true;
}

void CachingStore::Insert(EntryKey k, const Buffer* data,
                          const ObjectMeta* meta) {
  Entry e;
  e.charge = kEntryOverhead + k.key.size() + (data != nullptr ? data->size() : 0);
  if (e.charge > shard_capacity_) return;  // Never cache past the budget.
  e.key = k;
  if (data != nullptr) e.data = *data;
  if (meta != nullptr) e.meta = *meta;

  Shard& shard = ShardFor(k);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(k);
  if (it != shard.index.end()) {
    // A concurrent miss on the same range already populated it (objects are
    // immutable, so the payloads are identical); just promote.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  uint64_t charge = e.charge;
  shard.bytes += charge;
  shard.lru.push_front(std::move(e));
  shard.index.emplace(std::move(k), shard.lru.begin());
  stats_.cache_bytes.fetch_add(charge);
  EvictLocked(shard);
}

void CachingStore::EvictLocked(Shard& shard) {
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.charge;
    stats_.cache_bytes.fetch_sub(victim.charge);
    stats_.cache_evictions.fetch_add(1);
    obs::Increment(metrics_.cache_evictions);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

Status CachingStore::MissFetch(
    EntryKey k, Buffer* data_out, ObjectMeta* meta_out,
    const std::function<Status(Buffer*, ObjectMeta*)>& fetch) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(k);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<InFlight>();
      flights_.emplace(k, flight);
      leader = true;
    }
  }

  if (!leader) {
    // Coalesce onto the leader's in-flight fetch: one physical GET serves
    // every concurrent misser of this range.
    stats_.cache_coalesced.fetch_add(1);
    obs::Increment(metrics_.cache_coalesced);
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->status.ok()) {
      if (data_out != nullptr) *data_out = flight->data;
      if (meta_out != nullptr) *meta_out = flight->meta;
    }
    return flight->status;
  }

  Buffer data;
  ObjectMeta meta;
  Status s;
  if (WaveLookup(k, &data, &meta)) {
    // An earlier member of the current GET wave already fetched this range
    // (it may have aged out of the LRU since): serve it with no physical
    // request, and re-insert so the LRU observes the touch.
    stats_.cache_wave_hits.fetch_add(1);
    obs::Increment(metrics_.cache_wave_hits);
    s = Status::OK();
    Insert(k, data_out != nullptr ? &data : nullptr,
           meta_out != nullptr ? &meta : nullptr);
  } else {
    stats_.cache_misses.fetch_add(1);
    obs::Increment(metrics_.cache_misses);
    s = fetch(&data, &meta);
    if (s.ok()) {
      Insert(k, data_out != nullptr ? &data : nullptr,
             meta_out != nullptr ? &meta : nullptr);
      WaveRecord(k, data_out != nullptr ? &data : nullptr,
                 meta_out != nullptr ? &meta : nullptr);
    }
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = s;
    if (s.ok()) {
      flight->data = data;  // Copy: followers may still need it after we
      flight->meta = meta;  // move our own result out below.
    }
    flight->done = true;
  }
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    flights_.erase(k);
  }
  flight->cv.notify_all();
  if (s.ok()) {
    if (data_out != nullptr) *data_out = std::move(data);
    if (meta_out != nullptr) *meta_out = meta;
  }
  return s;
}

Status CachingStore::Get(const std::string& key, Buffer* out) {
  EntryKey k{key, 0, kWholeObject};
  if (Lookup(k, out, nullptr)) {
    stats_.cache_hits.fetch_add(1);
    obs::Increment(metrics_.cache_hits);
    return Status::OK();
  }
  return MissFetch(std::move(k), out, nullptr,
                   [this, &key](Buffer* data, ObjectMeta*) {
                     ROTTNEST_RETURN_NOT_OK(inner_->Get(key, data));
                     stats_.gets.fetch_add(1);
                     stats_.bytes_read.fetch_add(data->size());
                     obs::Increment(metrics_.gets);
                     obs::Add(metrics_.bytes_read, data->size());
                     obs::Record(metrics_.get_bytes, data->size());
                     return Status::OK();
                   });
}

Status CachingStore::GetRange(const std::string& key, uint64_t offset,
                              uint64_t length, Buffer* out) {
  EntryKey k{key, offset, length};
  if (Lookup(k, out, nullptr)) {
    stats_.cache_hits.fetch_add(1);
    obs::Increment(metrics_.cache_hits);
    return Status::OK();
  }
  return MissFetch(
      std::move(k), out, nullptr,
      [this, &key, offset, length](Buffer* data, ObjectMeta*) {
        ROTTNEST_RETURN_NOT_OK(inner_->GetRange(key, offset, length, data));
        stats_.gets.fetch_add(1);
        stats_.bytes_read.fetch_add(data->size());
        obs::Increment(metrics_.gets);
        obs::Add(metrics_.bytes_read, data->size());
        obs::Record(metrics_.get_bytes, data->size());
        return Status::OK();
      });
}

Status CachingStore::Head(const std::string& key, ObjectMeta* out) {
  if (!options_.cache_heads) {
    stats_.heads.fetch_add(1);
    obs::Increment(metrics_.heads);
    return inner_->Head(key, out);
  }
  EntryKey k{key, kHeadEntry, 0};
  if (Lookup(k, nullptr, out)) {
    stats_.cache_hits.fetch_add(1);
    obs::Increment(metrics_.cache_hits);
    return Status::OK();
  }
  return MissFetch(std::move(k), nullptr, out,
                   [this, &key](Buffer*, ObjectMeta* meta) {
                     ROTTNEST_RETURN_NOT_OK(inner_->Head(key, meta));
                     stats_.heads.fetch_add(1);
                     obs::Increment(metrics_.heads);
                     return Status::OK();
                   });
}

Status CachingStore::Put(const std::string& key, Slice data) {
  Invalidate(key);  // Overwrites are outside the immutability contract.
  Status s = inner_->Put(key, data);
  if (s.ok()) {
    stats_.puts.fetch_add(1);
    stats_.bytes_written.fetch_add(data.size());
    obs::Increment(metrics_.puts);
    obs::Add(metrics_.bytes_written, data.size());
  }
  return s;
}

Status CachingStore::PutIfAbsent(const std::string& key, Slice data) {
  Status s = inner_->PutIfAbsent(key, data);
  if (s.ok()) {
    stats_.puts.fetch_add(1);
    stats_.bytes_written.fetch_add(data.size());
    obs::Increment(metrics_.puts);
    obs::Add(metrics_.bytes_written, data.size());
  }
  return s;
}

Status CachingStore::List(const std::string& prefix,
                          std::vector<ObjectMeta>* out) {
  stats_.lists.fetch_add(1);
  obs::Increment(metrics_.lists);
  return inner_->List(prefix, out);
}

Status CachingStore::Delete(const std::string& key) {
  Invalidate(key);  // A vacuumed key must not resurrect from cache.
  Status s = inner_->Delete(key);
  if (s.ok()) {
    stats_.deletes.fetch_add(1);
    obs::Increment(metrics_.deletes);
  }
  return s;
}

void CachingStore::BeginWave() {
  std::lock_guard<std::mutex> lock(wave_mu_);
  ++wave_depth_;
}

void CachingStore::EndWave() {
  std::lock_guard<std::mutex> lock(wave_mu_);
  if (wave_depth_ > 0 && --wave_depth_ == 0) {
    wave_ledger_.clear();
    wave_bytes_ = 0;
  }
}

size_t CachingStore::WaveLedgerEntries() const {
  std::lock_guard<std::mutex> lock(wave_mu_);
  return wave_ledger_.size();
}

bool CachingStore::WaveLookup(const EntryKey& k, Buffer* data,
                              ObjectMeta* meta) {
  std::lock_guard<std::mutex> lock(wave_mu_);
  if (wave_depth_ == 0) return false;
  auto it = wave_ledger_.find(k);
  if (it == wave_ledger_.end()) return false;
  if (data != nullptr) *data = it->second.data;
  if (meta != nullptr) *meta = it->second.meta;
  return true;
}

void CachingStore::WaveRecord(const EntryKey& k, const Buffer* data,
                              const ObjectMeta* meta) {
  std::lock_guard<std::mutex> lock(wave_mu_);
  if (wave_depth_ == 0) return;
  uint64_t charge =
      kEntryOverhead + k.key.size() + (data != nullptr ? data->size() : 0);
  if (wave_bytes_ + charge > options_.wave_ledger_bytes) return;
  auto [it, inserted] = wave_ledger_.try_emplace(k);
  if (!inserted) return;  // A racing leader of the same range beat us.
  if (data != nullptr) it->second.data = *data;
  if (meta != nullptr) it->second.meta = *meta;
  wave_bytes_ += charge;
}

void CachingStore::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->lru) stats_.cache_bytes.fetch_sub(e.charge);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

void CachingStore::Invalidate(const std::string& key) {
  // Entries of one object may land in any shard (the offset participates in
  // the shard hash), so scan them all. Mutations are rare in this workload;
  // reads never pay this cost.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.key == key) {
        shard->bytes -= it->charge;
        stats_.cache_bytes.fetch_sub(it->charge);
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

uint64_t CachingStore::ResidentBytes() const {
  return stats_.cache_bytes.load();
}

size_t CachingStore::EntryCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

}  // namespace rottnest::objectstore
