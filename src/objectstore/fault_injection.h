// Chaos layer for object storage: a decorator injecting the fault taxonomy
// of real cloud stores into any backing ObjectStore, deterministically.
//
// Fault classes (see DESIGN.md "Fault model & retry semantics"):
//   * transient errors    — S3 503 SlowDown / throttling; the request never
//                           executes and is safe to retry (Unavailable);
//   * ambiguous outcomes  — the nastiest S3 failure mode: a Put/PutIfAbsent
//                           *lands* but the caller sees an error (timeout
//                           after the server applied the write);
//   * crashes             — a countdown kills the process at the Nth store
//                           operation; every later operation fails too, so a
//                           truncated run looks exactly like a crashed one;
//   * scripted faults     — a schedule pinning specific op indices to
//                           specific outcomes, for directed tests;
//   * latent corruption   — reads that SUCCEED but return damaged bytes:
//                           seeded bit-flips (corrupt_read_rate), scripted
//                           payload truncation, and post-commit "object
//                           rot" (RotObject: a stored object is mutated,
//                           truncated or dropped in the backing store after
//                           the fact). The store reports no error — only
//                           checksums above it can tell.
//   * slow requests       — injected latency: a per-op base, a seeded
//                           heavy tail on reads (slow_read_rate), and
//                           clock-windowed brown-outs keyed by key filter.
//                           The op SUCCEEDS, it just takes long — what
//                           hedging and deadlines exist to survive.
//
// All randomized decisions come from one seeded PRNG: the same seed over the
// same operation sequence reproduces the same injected faults, so any chaos
// test failure replays exactly. Subsumes and generalizes the old
// InMemoryObjectStore::SetFailurePoint hook (which still works here, and now
// over LocalDiskObjectStore too).
#ifndef ROTTNEST_OBJECTSTORE_FAULT_INJECTION_H_
#define ROTTNEST_OBJECTSTORE_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "objectstore/object_store.h"

namespace rottnest::objectstore {

/// Whether a crash fires before or after the victim operation's side effect.
/// kBeforeOp models a process dying mid-request (the write is lost);
/// kAfterOp models dying after the server applied it (the write survives but
/// the process never observed success) — together they cover both halves of
/// every operation's crash window.
enum class CrashMode {
  kBeforeOp,
  kAfterOp,
};

/// A store-clock window during which matching operations see extra injected
/// latency — models a partition-level brown-out (one throttled S3 prefix,
/// a degraded availability zone) rather than uniformly slow storage.
struct BrownOut {
  Micros start_micros = 0;  ///< Window start on the store clock (inclusive).
  Micros end_micros = 0;    ///< Window end (exclusive).
  std::string key_filter;   ///< Empty = every key; else substring match.
  Micros extra_micros = 0;  ///< Latency added to each matching op.
};

/// Randomized fault configuration. Rates are probabilities in [0, 1].
struct FaultOptions {
  uint64_t seed = 0;                 ///< PRNG seed; same seed ⇒ same faults.
  double transient_fault_rate = 0;   ///< Unavailable on any op, no effect.
  double ambiguous_put_rate = 0;     ///< Put/PutIfAbsent lands, caller errors.
  /// Silent payload damage: a Get/GetRange that SUCCEEDS but returns the
  /// payload with one deterministically chosen bit flipped. Models wire /
  /// medium bit rot that object stores do not surface as an error.
  double corrupt_read_rate = 0;
  /// When non-empty, corrupt_read_rate only applies to keys containing this
  /// substring (e.g. ".index" to rot index files but spare the txn log).
  std::string corrupt_key_filter;
  /// Latency injection (all zero = off). The delay is DECIDED under the
  /// store mutex with the same seeded PRNG as the fault draws — same seed,
  /// same slow ops — but SLEPT outside it via the pluggable sleeper
  /// (SetSleeper), so simulated-clock tests stay instant while benches see
  /// real wall time.
  Micros base_latency_micros = 0;       ///< Added to every operation.
  double slow_read_rate = 0;            ///< Fraction of reads in the tail.
  Micros slow_read_latency_micros = 0;  ///< Extra latency for a slow read.
  std::vector<BrownOut> brownouts;      ///< Clock-windowed slowdowns.
};

/// Pre-resolved metric handles mirroring FaultStats (see StoreMetrics).
struct FaultMetrics {
  obs::Counter* ops = nullptr;
  obs::Counter* transient_injected = nullptr;
  obs::Counter* ambiguous_injected = nullptr;
  obs::Counter* scheduled_injected = nullptr;
  obs::Counter* crash_refusals = nullptr;
  obs::Counter* corrupt_reads_injected = nullptr;
  obs::Counter* truncations_injected = nullptr;
  obs::Counter* rot_injected = nullptr;
  obs::Counter* slow_reads_injected = nullptr;
  obs::Counter* brownout_ops = nullptr;
  obs::Counter* latency_injected_micros = nullptr;
};

/// Resolves the `fault.<name>.*` handle set (nullptr-safe).
FaultMetrics ResolveFaultMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name);

/// Counters of injected faults (monotonic; for assertions and reporting).
struct FaultStats {
  std::atomic<uint64_t> ops{0};                 ///< Operations intercepted.
  std::atomic<uint64_t> transient_injected{0};  ///< Transient errors served.
  std::atomic<uint64_t> ambiguous_injected{0};  ///< Landed-but-errored puts.
  std::atomic<uint64_t> scheduled_injected{0};  ///< Scripted faults served.
  std::atomic<uint64_t> crash_refusals{0};      ///< Ops refused post-crash.
  std::atomic<uint64_t> corrupt_reads_injected{0};  ///< Bit-flipped reads.
  std::atomic<uint64_t> truncations_injected{0};    ///< Truncated reads.
  std::atomic<uint64_t> rot_injected{0};  ///< Post-commit object rot events.
  std::atomic<uint64_t> slow_reads_injected{0};  ///< Heavy-tail reads served.
  std::atomic<uint64_t> brownout_ops{0};  ///< Ops slowed by a brown-out.
  std::atomic<uint64_t> latency_injected_micros{0};  ///< Total delay added.
};

/// How RotObject damages a stored object.
enum class RotKind {
  kFlipBit,    ///< One bit of the stored bytes flips.
  kTruncate,   ///< The object loses its tail.
  kDrop,       ///< The object disappears entirely.
};

/// ObjectStore decorator injecting deterministic faults. Thread-safe; the
/// fault decision is made under an internal mutex but the backing store (and
/// any failure-point hook) is invoked outside it, so hooks may re-enter the
/// store (e.g. to simulate a concurrent writer at an exact protocol point).
class FaultInjectingStore : public ObjectStore {
 public:
  /// `inner` must outlive the decorator.
  explicit FaultInjectingStore(ObjectStore* inner, FaultOptions options = {})
      : inner_(inner), options_(options), rng_(options.seed) {}

  Status Put(const std::string& key, Slice data) override;
  Status PutIfAbsent(const std::string& key, Slice data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override;
  Status Head(const std::string& key, ObjectMeta* out) override;
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override;
  Status Delete(const std::string& key) override;

  const Clock& clock() const override { return inner_->clock(); }
  const IoStats& stats() const override { return inner_->stats(); }

  /// Installs (or clears, with an empty function) a failure-point hook,
  /// called before each operation executes; a non-OK return fails the op
  /// with no side effect. Runs without internal locks held.
  void SetFailurePoint(FailurePoint fp) {
    std::lock_guard<std::mutex> lock(mu_);
    failure_point_ = std::move(fp);
  }

  /// Arms a crash at absolute operation index `op_index` (0-based over the
  /// store's lifetime; combine with op_count() for "N ops from now"). The
  /// victim op fails per `mode`, and every subsequent op fails until
  /// ClearCrash() — the store behaves like a dead process.
  void SetCrashAtOp(uint64_t op_index, CrashMode mode) {
    std::lock_guard<std::mutex> lock(mu_);
    crash_at_ = op_index;
    crash_mode_ = mode;
    crashed_ = false;
  }

  /// Disarms any pending crash and revives a crashed store ("restart").
  void ClearCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    crash_at_.reset();
    crashed_ = false;
  }

  /// True once an armed crash has fired (and ClearCrash was not called).
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }

  /// Scripts the outcome of the op at absolute index `op_index`: the caller
  /// sees `status`; the operation's side effect executes iff
  /// `side_effect_lands` (an ambiguous outcome when true).
  void ScheduleFault(uint64_t op_index, Status status,
                     bool side_effect_lands) {
    std::lock_guard<std::mutex> lock(mu_);
    schedule_[op_index] = {std::move(status), side_effect_lands};
  }

  /// Scripts silent truncation: the read (Get/GetRange) at absolute op
  /// index `op_index` succeeds but returns only the first `keep_bytes`
  /// bytes of its payload. No-op for non-read ops at that index.
  void ScheduleTruncation(uint64_t op_index, uint64_t keep_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    truncation_schedule_[op_index] = keep_bytes;
  }

  /// Adjusts the latent-corruption knob mid-run (directed tests corrupt a
  /// window of reads, then turn it off). An empty `key_filter` corrupts
  /// reads of every key; otherwise only keys containing the substring.
  void SetCorruptReadRate(double rate, std::string key_filter = "") {
    std::lock_guard<std::mutex> lock(mu_);
    options_.corrupt_read_rate = rate;
    options_.corrupt_key_filter = std::move(key_filter);
  }

  /// Installs the sleeper that serves injected latency. Empty (the default)
  /// blocks the calling thread for real — what benches want; simulated-time
  /// tests pass SimulatedSleeper(&clock) so delays are instant. The sleeper
  /// runs OUTSIDE the store mutex, like the backing operation.
  void SetSleeper(SleepFn sleep) {
    std::lock_guard<std::mutex> lock(mu_);
    sleep_ = std::move(sleep);
  }

  /// Adds a brown-out window mid-run (directed tests open and close
  /// slowdowns around specific protocol points).
  void AddBrownOut(BrownOut window) {
    std::lock_guard<std::mutex> lock(mu_);
    options_.brownouts.push_back(std::move(window));
  }

  /// Clears all brown-out windows.
  void ClearBrownOuts() {
    std::lock_guard<std::mutex> lock(mu_);
    options_.brownouts.clear();
  }

  /// Post-commit object rot: damages `key` directly in the backing store —
  /// the entropy happens inside the storage medium, not on the request
  /// path, so it consumes no op index, draws nothing from the PRNG, and no
  /// later read reports an error for it. The damage site is derived from
  /// Hash64(key), so a given key always rots the same way.
  Status RotObject(const std::string& key, RotKind kind);

  /// Total operations intercepted so far.
  uint64_t op_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return op_counter_;
  }

  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Mirrors every FaultStats increment into `registry` under
  /// `fault.<name>.*`. Attach before use.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "store") {
    metrics_ = ResolveFaultMetrics(registry, name);
  }

  ObjectStore* inner() { return inner_; }

 private:
  struct ScheduledFault {
    Status status;
    bool side_effect_lands;
  };

  /// Runs one operation through the fault model. `is_write` enables
  /// ambiguous-outcome injection; `fn` performs the backing operation.
  /// `read_payload` (non-null for Get/GetRange) is the buffer latent
  /// corruption — scheduled truncation and corrupt_read_rate bit-flips —
  /// applies to after a successful backing read.
  Status Apply(const char* op, const std::string& key, bool is_write,
               Buffer* read_payload, const std::function<Status()>& fn);

  ObjectStore* inner_;
  FaultOptions options_;
  mutable std::mutex mu_;
  Random rng_;
  uint64_t op_counter_ = 0;
  FailurePoint failure_point_;
  std::optional<uint64_t> crash_at_;
  CrashMode crash_mode_ = CrashMode::kBeforeOp;
  bool crashed_ = false;
  std::map<uint64_t, ScheduledFault> schedule_;
  std::map<uint64_t, uint64_t> truncation_schedule_;  ///< op index → keep.
  SleepFn sleep_;  ///< Serves injected latency; empty = real thread sleep.
  FaultStats fault_stats_;
  FaultMetrics metrics_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_FAULT_INJECTION_H_
