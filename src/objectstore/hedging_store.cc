#include "objectstore/hedging_store.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace rottnest::objectstore {

namespace {

// Hedge waits and latency observations are WALL time by construction: the
// point of a hedge is to react to a request that is physically slow, which
// a simulated store clock cannot express. Tests therefore inject real
// (small) latencies when exercising this layer.
Micros WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HedgeMetrics ResolveHedgeMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name) {
  HedgeMetrics m;
  if (registry == nullptr) return m;
  const std::string p = "hedge." + name + ".";
  m.reads = registry->GetCounter(p + "reads");
  m.hedges_issued = registry->GetCounter(p + "hedges_issued");
  m.hedges_won = registry->GetCounter(p + "hedges_won");
  m.primary_won_after_hedge =
      registry->GetCounter(p + "primary_won_after_hedge");
  m.failures = registry->GetCounter(p + "failures");
  m.read_latency_micros = registry->GetHistogram(p + "read_latency_micros");
  m.hedge_delay_micros = registry->GetGauge(p + "hedge_delay_micros");
  return m;
}

HedgingStore::HedgingStore(ObjectStore* inner, HedgeOptions options)
    : inner_(inner), options_(options) {
  if (!options_.enabled) return;
  window_.resize(256);
  int threads = std::max(1, options_.threads);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HedgingStore::~HedgingStore() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void HedgingStore::AttachMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name) {
  metrics_ = ResolveHedgeMetrics(registry, name);
}

void HedgingStore::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Even under shutdown the queue drains fully: a queued attempt has a
      // caller blocked on its flight.
      if (queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_;
    }
    inflight_cv_.notify_all();
  }
}

void HedgingStore::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void HedgingStore::Quiesce() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

Micros HedgingStore::CurrentHedgeDelayMicros() const {
  std::lock_guard<std::mutex> lock(window_mu_);
  if (window_count_ < options_.min_samples) {
    return options_.initial_delay_micros;
  }
  size_t n = static_cast<size_t>(
      std::min<uint64_t>(window_count_, window_.size()));
  std::vector<Micros> samples(window_.begin(), window_.begin() + n);
  size_t rank = static_cast<size_t>(options_.hedge_quantile * (n - 1));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  Micros delay = samples[rank];
  return std::clamp(delay, options_.min_delay_micros,
                    options_.max_delay_micros);
}

void HedgingStore::RecordLatency(Micros latency) {
  {
    std::lock_guard<std::mutex> lock(window_mu_);
    window_[window_next_] = latency;
    window_next_ = (window_next_ + 1) % window_.size();
    ++window_count_;
  }
  obs::Record(metrics_.read_latency_micros,
              static_cast<uint64_t>(std::max<Micros>(latency, 0)));
  obs::Set(metrics_.hedge_delay_micros, CurrentHedgeDelayMicros());
}

Status HedgingStore::HedgedRead(const AttemptFn& attempt, Buffer* out) {
  if (!options_.enabled) return attempt(out);
  hedge_stats_.reads.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.reads);

  auto flight = std::make_shared<Flight>();
  // The hedge task may start after this frame's deadline scope unwinds, so
  // it carries a by-value copy of the ambient deadline.
  Deadline deadline = CurrentDeadline();

  auto run_attempt = [this, flight, attempt, deadline](bool is_hedge) {
    Buffer buf;  // Private: a loser never touches the winner's output.
    ScopedOpDeadline scoped(deadline);
    Status s = attempt(&buf);
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      --flight->outstanding;
      if (!flight->settled) {
        if (s.ok()) {
          flight->settled = true;
          flight->result = s;
          flight->winner = std::move(buf);
          flight->hedge_won = is_hedge;
        } else {
          // Remember the error; if no attempt succeeds the caller reports
          // the first one (the primary's, in the common ordering).
          if (flight->first_error.ok()) flight->first_error = s;
          flight->result = s;
        }
      }
    }
    flight->cv.notify_all();
  };

  Micros start = WallMicros();
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->outstanding = 1;
  }
  Submit([run_attempt] { run_attempt(false); });

  Micros delay = CurrentHedgeDelayMicros();
  bool hedged = false;
  {
    std::unique_lock<std::mutex> lock(flight->mu);
    bool done = flight->cv.wait_for(
        lock, std::chrono::microseconds(delay),
        [&] { return flight->settled || flight->outstanding == 0; });
    if (!done && !deadline.expired()) {
      ++flight->outstanding;
      hedged = true;
    }
  }
  if (hedged) {
    hedge_stats_.hedges_issued.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.hedges_issued);
    Submit([run_attempt] { run_attempt(true); });
  }

  Status result;
  bool hedge_won = false;
  {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(
        lock, [&] { return flight->settled || flight->outstanding == 0; });
    if (flight->settled) {
      *out = std::move(flight->winner);
      result = Status::OK();
      hedge_won = flight->hedge_won;
    } else {
      result = flight->first_error.ok() ? flight->result
                                        : flight->first_error;
    }
  }

  if (result.ok()) {
    RecordLatency(WallMicros() - start);
    if (hedged) {
      if (hedge_won) {
        hedge_stats_.hedges_won.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(metrics_.hedges_won);
      } else {
        hedge_stats_.primary_won_after_hedge.fetch_add(
            1, std::memory_order_relaxed);
        obs::Increment(metrics_.primary_won_after_hedge);
      }
    }
  } else {
    hedge_stats_.failures.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.failures);
  }
  return result;
}

// `key` is captured BY VALUE: a losing hedge can outlive the caller's
// frame, so the attempt must not reference caller-owned storage.
Status HedgingStore::Get(const std::string& key, Buffer* out) {
  return HedgedRead([this, key](Buffer* buf) { return inner_->Get(key, buf); },
                    out);
}

Status HedgingStore::GetRange(const std::string& key, uint64_t offset,
                              uint64_t length, Buffer* out) {
  return HedgedRead(
      [this, key, offset, length](Buffer* buf) {
        return inner_->GetRange(key, offset, length, buf);
      },
      out);
}

// Writes and metadata ops pass through: hedging a Put would double-apply
// side effects, and Head/List are cheap enough to leave to the retry layer.
Status HedgingStore::Put(const std::string& key, Slice data) {
  return inner_->Put(key, data);
}

Status HedgingStore::PutIfAbsent(const std::string& key, Slice data) {
  return inner_->PutIfAbsent(key, data);
}

Status HedgingStore::Head(const std::string& key, ObjectMeta* out) {
  return inner_->Head(key, out);
}

Status HedgingStore::List(const std::string& prefix,
                          std::vector<ObjectMeta>* out) {
  return inner_->List(prefix, out);
}

Status HedgingStore::Delete(const std::string& key) {
  return inner_->Delete(key);
}

}  // namespace rottnest::objectstore
