#include "objectstore/read_batch.h"

#include <mutex>

namespace rottnest::objectstore {

Status ReadBatch(ObjectStore* store, const std::vector<RangeRequest>& requests,
                 ThreadPool* pool, IoTrace* trace,
                 std::vector<Buffer>* results) {
  results->clear();
  results->resize(requests.size());
  if (requests.empty()) return Status::OK();
  if (trace != nullptr) trace->BeginRound();

  std::mutex err_mu;
  Status first_error;

  auto do_one = [&](size_t i) {
    const RangeRequest& req = requests[i];
    Buffer out;
    Status s;
    if (req.length == 0 && req.offset == 0) {
      s = store->Get(req.key, &out);
    } else {
      s = store->GetRange(req.key, req.offset, req.length, &out);
    }
    if (s.ok()) {
      if (trace != nullptr) trace->RecordGet(out.size());
      (*results)[i] = std::move(out);
    } else {
      // Error contract (see header): the slot must be a zero-length buffer,
      // not whatever partial state this worker's store call left in `out`
      // or a previous occupant of the slot (callers may pass a recycled
      // results vector).
      (*results)[i] = Buffer();
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) first_error = s;
    }
  };

  if (pool != nullptr && requests.size() > 1) {
    pool->ParallelFor(requests.size(), do_one);
  } else {
    for (size_t i = 0; i < requests.size(); ++i) do_one(i);
  }
  return first_error;
}

}  // namespace rottnest::objectstore
