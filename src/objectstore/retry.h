// Retry/backoff stack for object storage: a decorator that absorbs the
// transient faults cloud stores emit as a matter of course (throttling,
// 503s, timeouts) so the layers above see them only when a retry budget is
// truly exhausted.
//
// Retry safety is per operation (see DESIGN.md "Fault model & retry
// semantics"):
//   * Get/GetRange/Head/List  — read-only, always safe to retry;
//   * Put/Delete              — idempotent (last-writer-wins / delete-of-
//                               missing succeeds), safe to retry;
//   * PutIfAbsent             — NOT blindly retryable: an ambiguous error
//     may mean our write landed, and a retry would then see AlreadyExists
//     and mis-report a successful commit as a conflict (double-counting a
//     txn-log version). Resolved by Get-and-compare: if the stored bytes
//     equal what we tried to write, the commit was ours and succeeded.
//
// Backoff is capped exponential with deterministic jitter, and *sleeping*
// is pluggable: simulations pass a SimulatedClock-advancing sleeper so
// backoff consumes simulated time, never wall time.
#ifndef ROTTNEST_OBJECTSTORE_RETRY_H_
#define ROTTNEST_OBJECTSTORE_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/deadline.h"
#include "common/random.h"
#include "objectstore/object_store.h"

namespace rottnest::objectstore {

/// Capped exponential backoff with deterministic jitter. SleepFn and
/// SimulatedSleeper live in object_store.h (shared with latency injection).
struct RetryPolicy {
  int max_attempts = 8;                       ///< Total tries per operation.
  Micros initial_backoff_micros = 10'000;     ///< Wait before 2nd attempt.
  Micros max_backoff_micros = 5'000'000;      ///< Cap on any single wait.
  double multiplier = 2.0;                    ///< Exponential growth factor.
  double jitter = 0.5;                        ///< Fraction of wait randomized.
  uint64_t jitter_seed = 0x0badcafe;          ///< Same seed ⇒ same waits.

  /// The wait before retry number `retry` (1-based), jittered by `rng`.
  Micros BackoffFor(int retry, Random* rng) const;
};

/// Pre-resolved metric handles mirroring RetryStats (see StoreMetrics).
struct RetryMetrics {
  obs::Counter* operations = nullptr;
  obs::Counter* attempts = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* budget_exhausted = nullptr;
  obs::Counter* ambiguous_resolved = nullptr;
  obs::Counter* backoff_micros = nullptr;
};

/// Resolves the `retry.<name>.*` handle set (nullptr-safe).
RetryMetrics ResolveRetryMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name);

/// Cumulative retry accounting across all operations of one RetryingStore.
struct RetryStats {
  std::atomic<uint64_t> operations{0};          ///< Logical ops issued.
  std::atomic<uint64_t> attempts{0};            ///< Physical attempts (≥ ops).
  std::atomic<uint64_t> retries{0};             ///< Attempts after the first.
  std::atomic<uint64_t> budget_exhausted{0};    ///< Ops that ran out of tries.
  std::atomic<uint64_t> ambiguous_resolved{0};  ///< PutIfAbsent outcomes
                                                ///< settled by Get-compare.
  std::atomic<uint64_t> backoff_micros{0};      ///< Total time slept.
};

/// ObjectStore decorator retrying transient (Unavailable) failures with
/// policy-driven backoff. Other error codes pass through untouched — a
/// NotFound or AlreadyExists is an answer, not a fault. Thread-safe.
class RetryingStore : public ObjectStore {
 public:
  /// `inner` must outlive the decorator. `sleep` may be empty (no waiting
  /// between attempts — still correct, just an eager retry loop).
  RetryingStore(ObjectStore* inner, RetryPolicy policy, SleepFn sleep = {})
      : inner_(inner),
        policy_(policy),
        sleep_(std::move(sleep)),
        rng_(policy.jitter_seed) {}

  Status Put(const std::string& key, Slice data) override;
  Status PutIfAbsent(const std::string& key, Slice data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override;
  Status Head(const std::string& key, ObjectMeta* out) override;
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override;
  Status Delete(const std::string& key) override;

  const Clock& clock() const override { return inner_->clock(); }
  const IoStats& stats() const override { return inner_->stats(); }

  const RetryStats& retry_stats() const { return retry_stats_; }
  const RetryPolicy& policy() const { return policy_; }
  ObjectStore* inner() { return inner_; }

  /// Mirrors every RetryStats increment into `registry` under
  /// `retry.<name>.*`. Attach before use.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "store") {
    metrics_ = ResolveRetryMetrics(registry, name);
  }

 private:
  /// Runs `attempt` under the retry budget, waiting between tries.
  /// Only Unavailable triggers a retry. Honors the ambient operation
  /// deadline (CurrentDeadline()): an expired deadline fails the op with
  /// DeadlineExceeded before the next attempt, and a backoff that would
  /// sleep past the deadline returns DeadlineExceeded instead of sleeping.
  Status RetryLoop(const std::function<Status()>& attempt);

  /// Waits out the backoff before 1-based retry number `retry`, unless the
  /// wait would outlive `deadline` (then: no sleep, DeadlineExceeded).
  Status Backoff(int retry, const Deadline& deadline);

  ObjectStore* inner_;
  RetryPolicy policy_;
  SleepFn sleep_;
  std::mutex rng_mu_;
  Random rng_;
  RetryStats retry_stats_;
  RetryMetrics metrics_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_RETRY_H_
