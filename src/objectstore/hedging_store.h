// Hedged reads: the classic tail-tolerance move (Dean & Barroso, "The Tail
// at Scale"). A read that has not completed after a hedge delay gets a
// second, identical request; the first success wins and the loser's result
// is discarded. Under a heavy-tailed store this converts p99 ≈ tail into
// p99 ≈ p(quantile)+tail², at the cost of a small fraction of duplicate
// GETs (bounded by the hedge quantile: hedging at p95 adds ≤5% requests).
//
// Design notes:
//   * Only Get/GetRange are hedged — they are idempotent reads. Writes,
//     Head and List pass straight through.
//   * The hedge delay is DERIVED, not configured: it tracks a quantile
//     (default p95) of this store's own observed read latencies, clamped to
//     [min, max]. Until enough samples accumulate, initial_delay applies.
//   * First-WINS cancellation is cooperative: object stores give us no way
//     to abort an in-flight GET, so the loser runs to completion against a
//     private buffer and then discards itself — it never touches the
//     winner's output buffer, the caller's IoTrace, or the caller's stack
//     (the flight state is shared_ptr-owned; TSAN tests pin this down).
//   * IoTrace stays LOGICAL: the layers above record one read per read.
//     Physical duplicates are visible as hedge_stats().hedges_issued, so
//     the request-cost invariant `physical gets == traced gets + hedges`
//     stays checkable (with the cache off and retries quiet).
//   * The operation deadline propagates: each worker task re-installs the
//     caller's ambient Deadline, so a hedged read under an expired deadline
//     short-circuits inside layers below that check it.
#ifndef ROTTNEST_OBJECTSTORE_HEDGING_STORE_H_
#define ROTTNEST_OBJECTSTORE_HEDGING_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "objectstore/object_store.h"

namespace rottnest::obs {
class Gauge;
}  // namespace rottnest::obs

namespace rottnest::objectstore {

struct HedgeOptions {
  /// Reads outstanding longer than this quantile of observed read latency
  /// get a hedge.
  double hedge_quantile = 0.95;
  /// Hedge delay before enough samples accumulate to trust the quantile.
  Micros initial_delay_micros = 50'000;
  /// Observed-latency samples required before the quantile takes over.
  uint64_t min_samples = 32;
  /// Clamp on the derived delay — a floor so a fast store doesn't hedge
  /// everything, a ceiling so one straggler burst can't disable hedging.
  Micros min_delay_micros = 1'000;
  Micros max_delay_micros = 500'000;
  /// Worker threads serving primary + hedge requests.
  int threads = 8;
  /// Master switch; off = transparent pass-through (no worker hop).
  bool enabled = true;
};

/// Pre-resolved metric handles mirroring HedgeStats.
struct HedgeMetrics {
  obs::Counter* reads = nullptr;
  obs::Counter* hedges_issued = nullptr;
  obs::Counter* hedges_won = nullptr;
  obs::Counter* primary_won_after_hedge = nullptr;
  obs::Counter* failures = nullptr;
  obs::Histogram* read_latency_micros = nullptr;
  obs::Gauge* hedge_delay_micros = nullptr;
};

/// Resolves the `hedge.<name>.*` handle set (nullptr-safe).
HedgeMetrics ResolveHedgeMetrics(obs::MetricsRegistry* registry,
                                 const std::string& name);

/// Cumulative hedging accounting.
struct HedgeStats {
  std::atomic<uint64_t> reads{0};          ///< Logical hedgeable reads.
  std::atomic<uint64_t> hedges_issued{0};  ///< Second requests sent.
  std::atomic<uint64_t> hedges_won{0};     ///< Hedge finished first with OK.
  std::atomic<uint64_t> primary_won_after_hedge{0};  ///< Hedge wasted.
  std::atomic<uint64_t> failures{0};       ///< Both attempts failed.
};

/// ObjectStore decorator issuing hedged Get/GetRange requests.
/// Thread-safe. `inner` must be thread-safe too (both attempts may run
/// concurrently against it) and must outlive the decorator.
class HedgingStore : public ObjectStore {
 public:
  explicit HedgingStore(ObjectStore* inner, HedgeOptions options = {});
  ~HedgingStore() override;

  Status Put(const std::string& key, Slice data) override;
  Status PutIfAbsent(const std::string& key, Slice data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override;
  Status Head(const std::string& key, ObjectMeta* out) override;
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override;
  Status Delete(const std::string& key) override;

  const Clock& clock() const override { return inner_->clock(); }
  const IoStats& stats() const override { return inner_->stats(); }

  const HedgeStats& hedge_stats() const { return hedge_stats_; }
  const HedgeOptions& options() const { return options_; }
  ObjectStore* inner() { return inner_; }

  /// The hedge delay the next read would use (quantile-derived once
  /// min_samples observed latencies accumulate, clamped to [min, max]).
  Micros CurrentHedgeDelayMicros() const;

  /// Blocks until every in-flight request (including losing hedges) has
  /// drained. Call before reconciling obs counters against IoStats — a
  /// loser still in flight would otherwise move physical counters after
  /// the snapshot.
  void Quiesce();

  /// Mirrors every HedgeStats increment into `registry` under
  /// `hedge.<name>.*`. Attach before use.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "store");

 private:
  /// Shared state of one logical read: both attempts write private buffers
  /// and the first SUCCESS settles the flight. shared_ptr-owned so a loser
  /// outliving the caller's frame touches only this block.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool settled = false;      ///< A winner committed its result.
    int outstanding = 0;       ///< Attempts not yet finished.
    Status first_error;        ///< Primary's error (reported if all fail).
    Status result;             ///< Winner's status.
    Buffer winner;             ///< Winner's payload.
    bool hedge_won = false;    ///< The settling attempt was the hedge.
  };

  using AttemptFn = std::function<Status(Buffer*)>;

  /// Runs the hedged read protocol for one Get/GetRange.
  Status HedgedRead(const AttemptFn& attempt, Buffer* out);

  /// Records one observed read latency and returns the updated delay.
  void RecordLatency(Micros latency);

  void WorkerLoop();
  void Submit(std::function<void()> task);

  ObjectStore* inner_;
  HedgeOptions options_;

  // Latency sample window for the quantile derivation: a fixed-size ring of
  // recent read latencies (wall micros). Small enough to scan on demand.
  mutable std::mutex window_mu_;
  std::vector<Micros> window_;
  size_t window_next_ = 0;
  uint64_t window_count_ = 0;

  // Minimal internal worker pool. The shared ThreadPool is not reused here:
  // hedged waits must never be blocked behind the caller's own fan-out
  // tasks (priority inversion), so the hedging layer owns its threads.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // In-flight accounting for Quiesce().
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int inflight_ = 0;

  HedgeStats hedge_stats_;
  HedgeMetrics metrics_;
};

}  // namespace rottnest::objectstore

#endif  // ROTTNEST_OBJECTSTORE_HEDGING_STORE_H_
