#include "lake/deletion_vector.h"

#include <algorithm>

#include "compress/bitpack.h"

namespace rottnest::lake {

DeletionVector::DeletionVector(std::vector<uint64_t> rows)
    : rows_(std::move(rows)) {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool DeletionVector::Contains(uint64_t row) const {
  return std::binary_search(rows_.begin(), rows_.end(), row);
}

void DeletionVector::Union(const DeletionVector& other) {
  std::vector<uint64_t> merged;
  merged.reserve(rows_.size() + other.rows_.size());
  std::merge(rows_.begin(), rows_.end(), other.rows_.begin(),
             other.rows_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  rows_ = std::move(merged);
}

void DeletionVector::Serialize(Buffer* out) const {
  compress::DeltaEncodeSorted(rows_, out);
}

Status DeletionVector::Deserialize(Slice input, DeletionVector* out) {
  Decoder dec(input);
  ROTTNEST_RETURN_NOT_OK(compress::DeltaDecodeSorted(&dec, &out->rows_));
  if (!dec.exhausted()) {
    return Status::Corruption("trailing bytes in deletion vector");
  }
  // DeltaDecodeSorted guarantees non-decreasing; reject duplicates.
  for (size_t i = 1; i < out->rows_.size(); ++i) {
    if (out->rows_[i] == out->rows_[i - 1]) {
      return Status::Corruption("duplicate row in deletion vector");
    }
  }
  return Status::OK();
}

}  // namespace rottnest::lake
