#include "lake/table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

#include "common/hash.h"
#include "format/reader.h"

namespace rottnest::lake {

namespace {

Json MakeAddAction(const DataFile& f) {
  Json::Object add;
  add["path"] = Json(f.path);
  add["rows"] = Json(static_cast<int64_t>(f.rows));
  add["bytes"] = Json(static_cast<int64_t>(f.bytes));
  add["dv"] = Json(f.dv_path);
  Json::Object action;
  action["add"] = Json(std::move(add));
  return Json(std::move(action));
}

Json MakeRemoveAction(const std::string& path) {
  Json::Object remove;
  remove["path"] = Json(path);
  Json::Object action;
  action["remove"] = Json(std::move(remove));
  return Json(std::move(action));
}

Status ParseAdd(const Json& add, DataFile* out) {
  ROTTNEST_RETURN_NOT_OK(add.GetString("path", &out->path));
  int64_t rows = 0, bytes = 0;
  ROTTNEST_RETURN_NOT_OK(add.GetInt("rows", &rows));
  ROTTNEST_RETURN_NOT_OK(add.GetInt("bytes", &bytes));
  out->rows = static_cast<uint64_t>(rows);
  out->bytes = static_cast<uint64_t>(bytes);
  ROTTNEST_RETURN_NOT_OK(add.GetString("dv", &out->dv_path));
  return Status::OK();
}

}  // namespace

Json SchemaToJson(const format::Schema& schema) {
  Json::Array cols;
  for (const format::ColumnSchema& c : schema.columns) {
    Json::Object col;
    col["name"] = Json(c.name);
    col["type"] = Json(static_cast<int64_t>(c.type));
    col["fixed_len"] = Json(static_cast<int64_t>(c.fixed_len));
    cols.push_back(Json(std::move(col)));
  }
  Json::Object meta;
  meta["columns"] = Json(std::move(cols));
  return Json(std::move(meta));
}

Status SchemaFromJson(const Json& j, format::Schema* out) {
  Json::Array cols;
  ROTTNEST_RETURN_NOT_OK(j.GetArray("columns", &cols));
  out->columns.clear();
  for (const Json& c : cols) {
    format::ColumnSchema col;
    ROTTNEST_RETURN_NOT_OK(c.GetString("name", &col.name));
    int64_t type = 0, fixed_len = 0;
    ROTTNEST_RETURN_NOT_OK(c.GetInt("type", &type));
    ROTTNEST_RETURN_NOT_OK(c.GetInt("fixed_len", &fixed_len));
    if (type < 0 ||
        type > static_cast<int64_t>(
                   format::PhysicalType::kFixedLenByteArray)) {
      return Status::Corruption("bad column type in schema");
    }
    col.type = static_cast<format::PhysicalType>(type);
    col.fixed_len = static_cast<uint32_t>(fixed_len);
    out->columns.push_back(std::move(col));
  }
  return Status::OK();
}

bool Snapshot::ContainsFile(const std::string& path) const {
  return FindFile(path) != nullptr;
}

const DataFile* Snapshot::FindFile(const std::string& path) const {
  for (const DataFile& f : files) {
    if (f.path == path) return &f;
  }
  return nullptr;
}

uint64_t Snapshot::TotalRows() const {
  uint64_t total = 0;
  for (const DataFile& f : files) total += f.rows;
  return total;
}

uint64_t Snapshot::TotalBytes() const {
  uint64_t total = 0;
  for (const DataFile& f : files) total += f.bytes;
  return total;
}

std::string Snapshot::DebugString() const {
  Json::Array arr;
  for (const DataFile& f : files) {
    arr.push_back(MakeAddAction(f));
  }
  Json::Object obj;
  obj["version"] = Json(static_cast<int64_t>(version));
  obj["schema"] = SchemaToJson(schema);
  obj["files"] = Json(std::move(arr));
  return Json(std::move(obj)).Dump();
}

Status CompactTableActions(const std::vector<Json>& in,
                           std::vector<Json>* out) {
  std::map<std::string, Json> live;  // path -> original add action
  Json meta;
  bool have_meta = false;
  std::vector<Json> unknown;
  for (const Json& a : in) {
    Json payload;
    if (a.Get("metaData", &payload)) {
      meta = a;  // Last metaData wins, mirroring replay order.
      have_meta = true;
    } else if (a.Get("add", &payload)) {
      std::string path;
      ROTTNEST_RETURN_NOT_OK(payload.GetString("path", &path));
      live[path] = a;
    } else if (a.Get("remove", &payload)) {
      std::string path;
      ROTTNEST_RETURN_NOT_OK(payload.GetString("path", &path));
      live.erase(path);
    } else {
      // Unknown action kinds pass through verbatim, in order — a reader
      // that understands them must see them after checkpointing too.
      unknown.push_back(a);
    }
  }
  out->clear();
  if (have_meta) out->push_back(std::move(meta));
  for (Json& a : unknown) out->push_back(std::move(a));
  for (auto& [path, a] : live) out->push_back(std::move(a));
  return Status::OK();
}

Table::Table(objectstore::ObjectStore* store, std::string root,
             format::Schema schema, format::WriterOptions writer_options)
    : store_(store),
      root_(std::move(root)),
      schema_(std::move(schema)),
      writer_options_(writer_options),
      log_(store, root_ + "/_log") {
  log_.SetCompactor(CompactTableActions);
}

Result<std::unique_ptr<Table>> Table::Create(
    objectstore::ObjectStore* store, std::string root, format::Schema schema,
    format::WriterOptions writer_options) {
  std::unique_ptr<Table> table(
      new Table(store, std::move(root), std::move(schema), writer_options));
  Json::Object action;
  action["metaData"] = SchemaToJson(table->schema_);
  Status s = table->log_.Commit(0, {Json(std::move(action))});
  if (s.IsAlreadyExists()) {
    return Status::AlreadyExists("table already exists at " + table->root_);
  }
  ROTTNEST_RETURN_NOT_OK(s);
  return table;
}

Result<std::unique_ptr<Table>> Table::Open(objectstore::ObjectStore* store,
                                           std::string root) {
  TxnLog log(store, root + "/_log");
  std::vector<Json> actions;
  Status s0 = log.ReadVersion(0, &actions);
  if (s0.IsNotFound()) {
    // Entry 0 may have been truncated by log retention; the schema then
    // lives in the checkpoint (the compactor preserves metaData).
    auto replayed = log.Replay(-1, &actions);
    if (!replayed.ok()) return s0;  // Genuinely no table here.
  } else {
    ROTTNEST_RETURN_NOT_OK(s0);
  }
  format::Schema schema;
  bool found = false;
  for (const Json& a : actions) {
    Json meta;
    if (a.Get("metaData", &meta)) {
      ROTTNEST_RETURN_NOT_OK(SchemaFromJson(meta, &schema));
      found = true;
    }
  }
  if (!found) return Status::Corruption("version 0 lacks table metadata");
  return std::unique_ptr<Table>(new Table(store, std::move(root),
                                          std::move(schema),
                                          format::WriterOptions{}));
}

std::string Table::NewObjectName(const char* dir, const char* ext) {
  // Unique across concurrent writer instances even under a frozen
  // simulated clock: mix instance identity and a process-wide counter.
  static std::atomic<uint64_t> process_counter{0};
  uint64_t id = Mix64(static_cast<uint64_t>(store_->clock().NowMicros())) ^
                Mix64(reinterpret_cast<uintptr_t>(this)) ^
                Mix64(++name_counter_ * 0x85eb +
                      process_counter.fetch_add(1)) ^
                Hash64(Slice(root_));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return root_ + "/" + dir + "/" + buf + ext;
}

Result<DataFile> Table::WriteDataFile(const format::RowBatch& batch) {
  Buffer file;
  format::FileMeta meta;
  ROTTNEST_RETURN_NOT_OK(
      format::WriteSingleFile(batch, writer_options_, &file, &meta));
  DataFile df;
  df.path = NewObjectName("data", ".lake");
  df.rows = meta.num_rows;
  df.bytes = file.size();
  ROTTNEST_RETURN_NOT_OK(store_->Put(df.path, Slice(file)));
  return df;
}

Result<Version> Table::Append(const format::RowBatch& batch) {
  ROTTNEST_RETURN_NOT_OK(batch.Validate());
  if (batch.schema.columns.size() != schema_.columns.size()) {
    return Status::InvalidArgument("batch schema mismatch");
  }
  ROTTNEST_ASSIGN_OR_RETURN(DataFile df, WriteDataFile(batch));
  return log_.CommitNext({MakeAddAction(df)});
}

Result<Snapshot> Table::GetSnapshot(Version version) {
  std::vector<Json> actions;
  auto replayed = log_.Replay(version, &actions);
  if (!replayed.ok()) return replayed.status();

  Snapshot snap;
  snap.version = replayed.value();
  snap.schema = schema_;
  std::map<std::string, DataFile> live;
  for (const Json& a : actions) {
    Json payload;
    if (a.Get("add", &payload)) {
      DataFile df;
      ROTTNEST_RETURN_NOT_OK(ParseAdd(payload, &df));
      live[df.path] = std::move(df);
    } else if (a.Get("remove", &payload)) {
      std::string path;
      ROTTNEST_RETURN_NOT_OK(payload.GetString("path", &path));
      live.erase(path);
    }
  }
  snap.files.reserve(live.size());
  for (auto& [path, df] : live) snap.files.push_back(std::move(df));
  return snap;
}

Status Table::ReadDeletionVector(const DataFile& file, DeletionVector* out) {
  *out = DeletionVector();
  if (file.dv_path.empty()) return Status::OK();
  Buffer body;
  ROTTNEST_RETURN_NOT_OK(store_->Get(file.dv_path, &body));
  return DeletionVector::Deserialize(Slice(body), out);
}

Result<Version> Table::CompactFiles(uint64_t small_file_bytes) {
  ROTTNEST_ASSIGN_OR_RETURN(Snapshot snap, GetSnapshot());
  std::vector<const DataFile*> small;
  for (const DataFile& f : snap.files) {
    if (f.bytes < small_file_bytes) small.push_back(&f);
  }
  if (small.size() < 2) return snap.version;

  // Read every column of every small file, drop deleted rows, concatenate.
  format::RowBatch merged;
  merged.schema = schema_;
  for (const format::ColumnSchema& col : schema_.columns) {
    merged.columns.push_back(format::MakeEmptyColumn(col));
  }
  for (const DataFile* f : small) {
    auto reader_r = format::FileReader::Open(store_, f->path, nullptr);
    if (!reader_r.ok()) return reader_r.status();
    DeletionVector dv;
    ROTTNEST_RETURN_NOT_OK(ReadDeletionVector(*f, &dv));
    for (size_t c = 0; c < schema_.columns.size(); ++c) {
      format::ColumnVector col;
      ROTTNEST_RETURN_NOT_OK(reader_r.value()->ReadColumn(c, nullptr, &col));
      if (dv.empty()) {
        merged.columns[c].AppendFrom(col);
        continue;
      }
      // Filter out deleted rows.
      format::ColumnVector kept = format::MakeEmptyColumn(schema_.columns[c]);
      for (size_t r = 0; r < col.size(); ++r) {
        if (dv.Contains(r)) continue;
        switch (col.type()) {
          case format::PhysicalType::kInt64:
            kept.ints().push_back(col.ints()[r]);
            break;
          case format::PhysicalType::kDouble:
            kept.doubles().push_back(col.doubles()[r]);
            break;
          case format::PhysicalType::kByteArray:
            kept.strings().push_back(col.strings()[r]);
            break;
          case format::PhysicalType::kFixedLenByteArray:
            kept.fixed().Append(col.fixed().at(r));
            break;
        }
      }
      merged.columns[c].AppendFrom(kept);
    }
  }

  ROTTNEST_ASSIGN_OR_RETURN(DataFile df, WriteDataFile(merged));
  std::vector<Json> actions;
  for (const DataFile* f : small) actions.push_back(MakeRemoveAction(f->path));
  actions.push_back(MakeAddAction(df));
  return log_.CommitNext(actions);
}

Result<Version> Table::DeleteWhere(
    const std::string& column,
    const std::function<bool(const format::ColumnVector&, size_t)>&
        predicate) {
  int col_idx = schema_.FindColumn(column);
  if (col_idx < 0) return Status::InvalidArgument("no such column: " + column);
  ROTTNEST_ASSIGN_OR_RETURN(Snapshot snap, GetSnapshot());

  std::vector<Json> actions;
  for (const DataFile& f : snap.files) {
    auto reader_r = format::FileReader::Open(store_, f.path, nullptr);
    if (!reader_r.ok()) return reader_r.status();
    format::ColumnVector col;
    ROTTNEST_RETURN_NOT_OK(
        reader_r.value()->ReadColumn(col_idx, nullptr, &col));
    std::vector<uint64_t> hits;
    for (size_t r = 0; r < col.size(); ++r) {
      if (predicate(col, r)) hits.push_back(r);
    }
    if (hits.empty()) continue;

    DeletionVector dv(std::move(hits));
    DeletionVector existing;
    ROTTNEST_RETURN_NOT_OK(ReadDeletionVector(f, &existing));
    dv.Union(existing);

    Buffer body;
    dv.Serialize(&body);
    DataFile updated = f;
    updated.dv_path = NewObjectName("dv", ".dv");
    ROTTNEST_RETURN_NOT_OK(store_->Put(updated.dv_path, Slice(body)));
    actions.push_back(MakeRemoveAction(f.path));
    actions.push_back(MakeAddAction(updated));
  }
  if (actions.empty()) return snap.version;
  return log_.CommitNext(actions);
}

Result<Version> Table::Checkpoint() { return log_.WriteCheckpoint(); }

Result<size_t> Table::TruncateLog(Version keep_versions) {
  return log_.Truncate(keep_versions);
}

Result<size_t> Table::Vacuum(Micros retention_micros) {
  ROTTNEST_ASSIGN_OR_RETURN(Snapshot snap, GetSnapshot());
  std::vector<objectstore::ObjectMeta> listing;
  ROTTNEST_RETURN_NOT_OK(store_->List(root_ + "/data/", &listing));
  std::vector<objectstore::ObjectMeta> dvs;
  ROTTNEST_RETURN_NOT_OK(store_->List(root_ + "/dv/", &dvs));
  listing.insert(listing.end(), dvs.begin(), dvs.end());

  // Referenced = live data files and their deletion vectors.
  auto referenced = [&](const std::string& key) {
    for (const DataFile& f : snap.files) {
      if (f.path == key || f.dv_path == key) return true;
    }
    return false;
  };

  Micros cutoff = store_->clock().NowMicros() - retention_micros;
  size_t removed = 0;
  for (const auto& obj : listing) {
    if (referenced(obj.key)) continue;
    if (obj.created_micros > cutoff) continue;  // Too young; may be in-flight.
    ROTTNEST_RETURN_NOT_OK(store_->Delete(obj.key));
    ++removed;
  }
  return removed;
}

}  // namespace rottnest::lake
