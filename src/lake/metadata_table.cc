#include "lake/metadata_table.h"

#include <map>

namespace rottnest::lake {

namespace {

Json EntryToJson(const IndexEntry& e) {
  Json::Object obj;
  obj["path"] = Json(e.index_path);
  obj["type"] = Json(e.index_type);
  obj["column"] = Json(e.column);
  Json::Array files;
  for (const std::string& f : e.covered_files) files.push_back(Json(f));
  obj["files"] = Json(std::move(files));
  obj["rows"] = Json(static_cast<int64_t>(e.rows));
  obj["created"] = Json(static_cast<int64_t>(e.created_micros));
  Json::Object action;
  action["addIndex"] = Json(std::move(obj));
  return Json(std::move(action));
}

Status EntryFromJson(const Json& obj, IndexEntry* out) {
  ROTTNEST_RETURN_NOT_OK(obj.GetString("path", &out->index_path));
  ROTTNEST_RETURN_NOT_OK(obj.GetString("type", &out->index_type));
  ROTTNEST_RETURN_NOT_OK(obj.GetString("column", &out->column));
  Json::Array files;
  ROTTNEST_RETURN_NOT_OK(obj.GetArray("files", &files));
  out->covered_files.clear();
  for (const Json& f : files) {
    if (!f.is_string()) return Status::Corruption("non-string covered file");
    out->covered_files.push_back(f.AsString());
  }
  int64_t rows = 0, created = 0;
  ROTTNEST_RETURN_NOT_OK(obj.GetInt("rows", &rows));
  ROTTNEST_RETURN_NOT_OK(obj.GetInt("created", &created));
  out->rows = static_cast<uint64_t>(rows);
  out->created_micros = created;
  return Status::OK();
}

}  // namespace

Status CompactMetaActions(const std::vector<Json>& in,
                          std::vector<Json>* out) {
  std::map<std::string, Json> live;  // index_path -> original addIndex
  std::vector<Json> unknown;
  for (const Json& a : in) {
    Json payload;
    std::string path;
    if (a.Get("addIndex", &payload)) {
      ROTTNEST_RETURN_NOT_OK(payload.GetString("path", &path));
      live[path] = a;
    } else if (a.Get("removeIndex", &payload)) {
      ROTTNEST_RETURN_NOT_OK(payload.GetString("path", &path));
      live.erase(path);
    } else {
      unknown.push_back(a);  // Forward compatibility: pass through.
    }
  }
  out->clear();
  for (Json& a : unknown) out->push_back(std::move(a));
  for (auto& [path, a] : live) out->push_back(std::move(a));
  return Status::OK();
}

Result<Version> MetadataTable::Update(const std::vector<IndexEntry>& added,
                                      const std::vector<std::string>& removed) {
  std::vector<Json> actions;
  for (const std::string& path : removed) {
    Json::Object rm;
    rm["path"] = Json(path);
    Json::Object action;
    action["removeIndex"] = Json(std::move(rm));
    actions.push_back(Json(std::move(action)));
  }
  for (const IndexEntry& e : added) actions.push_back(EntryToJson(e));
  return log_.CommitNext(actions);
}

Result<std::vector<IndexEntry>> MetadataTable::ReadAll() {
  std::vector<Json> actions;
  auto replayed = log_.Replay(-1, &actions);
  if (replayed.status().IsNotFound()) {
    return std::vector<IndexEntry>{};  // Empty registry.
  }
  if (!replayed.ok()) return replayed.status();

  std::map<std::string, IndexEntry> live;
  for (const Json& a : actions) {
    Json payload;
    if (a.Get("addIndex", &payload)) {
      IndexEntry e;
      ROTTNEST_RETURN_NOT_OK(EntryFromJson(payload, &e));
      live[e.index_path] = std::move(e);
    } else if (a.Get("removeIndex", &payload)) {
      std::string path;
      ROTTNEST_RETURN_NOT_OK(payload.GetString("path", &path));
      live.erase(path);
    }
  }
  std::vector<IndexEntry> result;
  result.reserve(live.size());
  for (auto& [path, e] : live) result.push_back(std::move(e));
  return result;
}

}  // namespace rottnest::lake
