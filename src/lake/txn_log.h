// Versioned transaction log on object storage, in the style of Delta Lake's
// _delta_log. A commit writes JSON-lines of actions to
// "<prefix>/<20-digit version>.json" with a conditional put; the first
// writer of a version wins and losers retry on the next version. Strong
// read-after-write consistency (provided by the object store) makes the
// latest version discoverable with a LIST.
//
// Cold-read cost is bounded by checkpoints (see lake/checkpoint.h): Replay
// resolves the newest usable checkpoint at or below the target version and
// reads only the log suffix past it, so recovery is O(commits since last
// checkpoint) instead of O(all commits). Truncate deletes pre-checkpoint
// entries; reads past the retention floor fail with a typed
// NotFound("version truncated ...") rather than a half-replayed state.
#ifndef ROTTNEST_LAKE_TXN_LOG_H_
#define ROTTNEST_LAKE_TXN_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "lake/checkpoint.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"

namespace rottnest::obs {
class Counter;
class MetricsRegistry;
}  // namespace rottnest::obs

namespace rottnest::lake {

/// Per-replay accounting, for tests and the metadata bench.
struct ReplayStats {
  uint64_t entry_gets = 0;        ///< Log-entry GETs issued.
  bool used_checkpoint = false;   ///< Replay started from a checkpoint.
  Version checkpoint_version = -1;
};

/// Pre-resolved `meta.*` metric handles (see obs/metrics.h); all null when
/// metrics are off. Shared across logs attached to one registry — the
/// metadata plane is reported as one surface.
struct LogMetrics {
  obs::Counter* checkpoint_writes = nullptr;
  obs::Counter* checkpoint_hits = nullptr;
  obs::Counter* checkpoint_misses = nullptr;
  obs::Counter* checkpoint_fallbacks = nullptr;
  obs::Counter* replay_gets = nullptr;
  obs::Counter* tail_probes = nullptr;
  obs::Counter* truncated_reads = nullptr;
};

/// Resolves the `meta.*` handle set (nullptr-safe).
LogMetrics ResolveLogMetrics(obs::MetricsRegistry* registry);

/// Versioned action log under `prefix` in `store`.
class TxnLog {
 public:
  /// Neither argument is owned; `store` must outlive the log.
  TxnLog(objectstore::ObjectStore* store, std::string prefix)
      : store_(store), prefix_(std::move(prefix)), ckpt_(store, prefix_) {}

  /// Attempts to commit `actions` as `version`. Fails with AlreadyExists if
  /// another writer committed that version first.
  Status Commit(Version version, const std::vector<Json>& actions);

  /// Commits `actions` at the next available version, retrying on
  /// conflicts. Each conflict re-lists the log to land on the real tail
  /// (not a blind probe), backing off per the commit policy (see
  /// SetCommitBackoff). Returns the committed version.
  Result<Version> CommitNext(const std::vector<Json>& actions);

  /// Configures contention backoff for CommitNext. `policy` shapes the
  /// waits; `sleep` performs them (pass objectstore::SimulatedSleeper in
  /// simulations so backoff advances simulated time, or leave empty for an
  /// eager retry loop).
  void SetCommitBackoff(objectstore::RetryPolicy policy,
                        objectstore::SleepFn sleep) {
    commit_policy_ = policy;
    sleep_ = std::move(sleep);
  }

  /// Highest committed version, or NotFound if the log is empty. Uses the
  /// last tail this instance observed as a probe hint (see the overload).
  Result<Version> LatestVersion();

  /// Like LatestVersion, but probes forward from `hint` (a version the
  /// caller believes committed) with HEADs instead of LISTing the whole
  /// log prefix. A hint miss — entry absent (e.g. truncated) or the tail
  /// more than a probe window ahead — falls back to the full LIST.
  Result<Version> LatestVersion(Version hint);

  /// Reads the actions of one version. A malformed or short body fails
  /// with Corruption naming the offending key.
  Status ReadVersion(Version version, std::vector<Json>* actions);

  /// Reads all actions of versions [0, version] in commit order, seeding
  /// from the newest usable checkpoint at or below the target when one
  /// exists (equivalent by the ActionCompactor contract). version < 0
  /// means latest. Returns the version actually read. Reading a version
  /// below the retention floor fails with NotFound("version truncated...").
  Result<Version> Replay(Version version, std::vector<Json>* actions,
                         ReplayStats* stats = nullptr);

  /// Writes a checkpoint of the log's compacted state at the current
  /// latest version and advances the `_last_checkpoint` pointer. Returns
  /// the checkpointed version. Safe under concurrent commits: the
  /// checkpoint names the version it replayed, never a moving tail.
  /// `overwrite` replaces an existing (possibly rotten) checkpoint object
  /// at that version in place — the Repair path.
  Result<Version> WriteCheckpoint(bool overwrite = false);

  /// Deletes log entries superseded by the newest checkpoint, keeping at
  /// least the `keep_versions` most recent versions. The retention floor
  /// in the `_last_checkpoint` pointer moves first (crash-safe: a partial
  /// delete pass is indistinguishable from a finished one to readers).
  /// Returns the number of entries deleted. InvalidArgument if no
  /// checkpoint exists yet.
  Result<size_t> Truncate(Version keep_versions);

  /// Installs the action compactor used by WriteCheckpoint (see
  /// lake/checkpoint.h). Not thread-safe; install before concurrent use.
  void SetCompactor(ActionCompactor compactor) {
    compactor_ = std::move(compactor);
  }

  /// Disables checkpoint consultation in Replay (full replay from 0) —
  /// for equivalence tests and the metadata bench.
  void set_use_checkpoints(bool on) {
    use_checkpoints_.store(on, std::memory_order_relaxed);
  }

  /// Starts mirroring checkpoint/replay counters into `registry` under
  /// `meta.*` (pass nullptr to stop). Attach before concurrent use.
  void AttachMetrics(obs::MetricsRegistry* registry) {
    metrics_ = ResolveLogMetrics(registry);
  }

  Checkpointer& checkpointer() { return ckpt_; }

  const std::string& prefix() const { return prefix_; }

 private:
  std::string KeyFor(Version version) const;

  /// Like LatestVersion but returns -1 (not an error) for an empty log.
  Result<Version> LatestVersionOrMinusOne(Version hint);

  void NoteTail(Version version);

  objectstore::ObjectStore* store_;
  std::string prefix_;
  Checkpointer ckpt_;
  ActionCompactor compactor_;
  objectstore::RetryPolicy commit_policy_;
  objectstore::SleepFn sleep_;
  std::atomic<Version> tail_hint_{-1};
  std::atomic<bool> use_checkpoints_{true};
  LogMetrics metrics_;
};

}  // namespace rottnest::lake

#endif  // ROTTNEST_LAKE_TXN_LOG_H_
