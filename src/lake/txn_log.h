// Versioned transaction log on object storage, in the style of Delta Lake's
// _delta_log. A commit writes JSON-lines of actions to
// "<prefix>/<20-digit version>.json" with a conditional put; the first
// writer of a version wins and losers retry on the next version. Strong
// read-after-write consistency (provided by the object store) makes the
// latest version discoverable with a LIST.
#ifndef ROTTNEST_LAKE_TXN_LOG_H_
#define ROTTNEST_LAKE_TXN_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"

namespace rottnest::lake {

/// A table/log version number. Version 0 is the first commit.
using Version = int64_t;

/// Versioned action log under `prefix` in `store`.
class TxnLog {
 public:
  /// Neither argument is owned; `store` must outlive the log.
  TxnLog(objectstore::ObjectStore* store, std::string prefix)
      : store_(store), prefix_(std::move(prefix)) {}

  /// Attempts to commit `actions` as `version`. Fails with AlreadyExists if
  /// another writer committed that version first.
  Status Commit(Version version, const std::vector<Json>& actions);

  /// Commits `actions` at the next available version, retrying on
  /// conflicts. Each conflict re-lists the log to land on the real tail
  /// (not a blind probe), backing off per the commit policy (see
  /// SetCommitBackoff). Returns the committed version.
  Result<Version> CommitNext(const std::vector<Json>& actions);

  /// Configures contention backoff for CommitNext. `policy` shapes the
  /// waits; `sleep` performs them (pass objectstore::SimulatedSleeper in
  /// simulations so backoff advances simulated time, or leave empty for an
  /// eager retry loop).
  void SetCommitBackoff(objectstore::RetryPolicy policy,
                        objectstore::SleepFn sleep) {
    commit_policy_ = policy;
    sleep_ = std::move(sleep);
  }

  /// Highest committed version, or NotFound if the log is empty.
  Result<Version> LatestVersion();

  /// Reads the actions of one version.
  Status ReadVersion(Version version, std::vector<Json>* actions);

  /// Reads all actions of versions [0, version] in commit order.
  /// version < 0 means latest. Returns the version actually read.
  Result<Version> Replay(Version version, std::vector<Json>* actions);

  const std::string& prefix() const { return prefix_; }

 private:
  std::string KeyFor(Version version) const;

  /// Like LatestVersion but returns -1 (not an error) for an empty log.
  Result<Version> LatestVersionOrMinusOne();

  objectstore::ObjectStore* store_;
  std::string prefix_;
  objectstore::RetryPolicy commit_policy_;
  objectstore::SleepFn sleep_;
};

}  // namespace rottnest::lake

#endif  // ROTTNEST_LAKE_TXN_LOG_H_
