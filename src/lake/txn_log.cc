#include "lake/txn_log.h"

#include <cctype>
#include <cstdio>

#include "obs/metrics.h"

namespace rottnest::lake {

namespace {

constexpr int kMaxCommitRetries = 32;

/// Forward HEAD probes past the hint before giving up and LISTing — a
/// burst of more than this many unseen commits falls back to the LIST.
constexpr int kMaxTailProbes = 16;

/// Parses a log-entry basename ("<20 digits>.json" exactly — checkpoint
/// objects share the prefix but carry a ".checkpoint.json" suffix).
bool ParseEntryBasename(const std::string& base, Version* version) {
  if (base.size() != 25 || base.compare(20, 5, ".json") != 0) return false;
  for (int i = 0; i < 20; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(base[i]))) return false;
  }
  *version = std::strtoll(base.c_str(), nullptr, 10);
  return true;
}

}  // namespace

LogMetrics ResolveLogMetrics(obs::MetricsRegistry* registry) {
  LogMetrics m;
  if (!registry) return m;
  m.checkpoint_writes = registry->GetCounter("meta.checkpoint.writes");
  m.checkpoint_hits = registry->GetCounter("meta.checkpoint.hits");
  m.checkpoint_misses = registry->GetCounter("meta.checkpoint.misses");
  m.checkpoint_fallbacks = registry->GetCounter("meta.checkpoint.fallbacks");
  m.replay_gets = registry->GetCounter("meta.replay_gets");
  m.tail_probes = registry->GetCounter("meta.tail_probes");
  m.truncated_reads = registry->GetCounter("meta.truncated_reads");
  return m;
}

std::string TxnLog::KeyFor(Version version) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld",
                static_cast<long long>(version));
  return prefix_ + "/" + buf + ".json";
}

void TxnLog::NoteTail(Version version) {
  Version cur = tail_hint_.load(std::memory_order_relaxed);
  while (version > cur &&
         !tail_hint_.compare_exchange_weak(cur, version,
                                           std::memory_order_relaxed)) {
  }
}

Status TxnLog::Commit(Version version, const std::vector<Json>& actions) {
  std::string body;
  for (const Json& a : actions) {
    body += a.Dump();
    body.push_back('\n');
  }
  Status s = store_->PutIfAbsent(KeyFor(version), Slice(body));
  if (s.ok()) NoteTail(version);
  return s;
}

Result<Version> TxnLog::CommitNext(const std::vector<Json>& actions) {
  ROTTNEST_ASSIGN_OR_RETURN(
      Version latest,
      LatestVersionOrMinusOne(tail_hint_.load(std::memory_order_relaxed)));
  Version candidate = latest + 1;
  Random rng(commit_policy_.jitter_seed ^ Hash64(Slice(prefix_)));
  for (int attempt = 0; attempt < kMaxCommitRetries; ++attempt) {
    Status s = Commit(candidate, actions);
    if (s.ok()) return candidate;
    if (!s.IsAlreadyExists()) return s;
    // Lost the race for `candidate`. Back off (contention signal), then
    // re-resolve the real tail rather than probing versions blindly
    // — under heavy contention a blind `latest + 1 + attempt` walk issues
    // one failed conditional put per intervening commit.
    if (sleep_) {
      sleep_(commit_policy_.BackoffFor(attempt + 1, &rng));
    }
    ROTTNEST_ASSIGN_OR_RETURN(latest, LatestVersionOrMinusOne(candidate));
    candidate = std::max(candidate + 1, latest + 1);
  }
  return Status::Aborted("commit contention exceeded retry budget");
}

Result<Version> TxnLog::LatestVersion() {
  return LatestVersion(tail_hint_.load(std::memory_order_relaxed));
}

Result<Version> TxnLog::LatestVersion(Version hint) {
  ROTTNEST_ASSIGN_OR_RETURN(Version v, LatestVersionOrMinusOne(hint));
  if (v < 0) return Status::NotFound("empty log: " + prefix_);
  return v;
}

Result<Version> TxnLog::LatestVersionOrMinusOne(Version hint) {
  if (hint >= 0) {
    objectstore::ObjectMeta meta;
    Status h = store_->Head(KeyFor(hint), &meta);
    obs::Increment(metrics_.tail_probes);
    if (h.ok()) {
      Version v = hint;
      for (int probe = 0; probe < kMaxTailProbes; ++probe) {
        Status next = store_->Head(KeyFor(v + 1), &meta);
        obs::Increment(metrics_.tail_probes);
        if (next.IsNotFound()) {
          NoteTail(v);
          return v;
        }
        ROTTNEST_RETURN_NOT_OK(next);
        ++v;
      }
      // Tail moved more than a probe window past the hint: LIST instead.
    } else if (!h.IsNotFound()) {
      return h;
    }
    // Hint entry absent (e.g. truncated by retention): fall back to LIST.
  }
  std::vector<objectstore::ObjectMeta> listing;
  ROTTNEST_RETURN_NOT_OK(store_->List(prefix_ + "/", &listing));
  Version latest = -1;
  for (const auto& obj : listing) {
    // Keys are zero-padded so lexicographic order == numeric order; parse
    // the basename defensively anyway.
    size_t slash = obj.key.rfind('/');
    std::string base = obj.key.substr(slash + 1);
    Version v = -1;
    // A checkpoint proves its version committed even after the entry was
    // truncated — a fully truncated log must still report its true tail,
    // or the next commit would try to reuse a burned version number.
    if (!ParseEntryBasename(base, &v) &&
        !Checkpointer::ParseCheckpointKey(base, &v)) {
      continue;
    }
    if (v > latest) latest = v;
  }
  if (latest >= 0) NoteTail(latest);
  return latest;
}

Status TxnLog::ReadVersion(Version version, std::vector<Json>* actions) {
  const std::string key = KeyFor(version);
  Buffer body;
  ROTTNEST_RETURN_NOT_OK(store_->Get(key, &body));
  actions->clear();
  std::string text(body.begin(), body.end());
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      // Malformed or short body (torn write, bit rot): surface as typed
      // Corruption naming the key, never a raw parse error.
      return Status::Corruption("malformed log entry " + key + ": " +
                                parsed.status().message());
    }
    actions->push_back(std::move(parsed.value()));
  }
  return Status::OK();
}

Result<Version> TxnLog::Replay(Version version, std::vector<Json>* actions,
                               ReplayStats* stats) {
  actions->clear();
  if (version < 0) {
    auto latest = LatestVersion();
    if (!latest.ok()) return latest.status();
    version = latest.value();
  }
  Version start = 0;
  CheckpointPointer ptr;
  if (use_checkpoints_.load(std::memory_order_relaxed)) {
    bool fell_back = false;
    auto found = ckpt_.FindUsable(version, &ptr, &fell_back);
    if (found.ok()) {
      *actions = std::move(found.value().actions);
      start = found.value().version + 1;
      if (stats) {
        stats->used_checkpoint = true;
        stats->checkpoint_version = found.value().version;
      }
      obs::Increment(metrics_.checkpoint_hits);
    } else if (found.status().IsNotFound()) {
      obs::Increment(metrics_.checkpoint_misses);
    } else {
      // Store-level failure while consulting checkpoints: degrade to full
      // replay rather than failing the read (never wrong, only slower).
      fell_back = true;
    }
    if (fell_back) obs::Increment(metrics_.checkpoint_fallbacks);
  }
  // A readable pointer always names a version >= 0; use it to distinguish
  // "entry removed by retention" from "version never committed".
  const bool have_ptr = ptr.version >= 0;
  for (Version v = start; v <= version; ++v) {
    std::vector<Json> batch;
    Status s = ReadVersion(v, &batch);
    if (stats) ++stats->entry_gets;
    obs::Increment(metrics_.replay_gets);
    if (s.IsNotFound() && have_ptr && ptr.truncated_before > v) {
      obs::Increment(metrics_.truncated_reads);
      return Status::NotFound(
          "version truncated: " + KeyFor(v) +
          " removed by log retention (truncated_before=" +
          std::to_string(ptr.truncated_before) + ")");
    }
    ROTTNEST_RETURN_NOT_OK(s);
    for (Json& j : batch) actions->push_back(std::move(j));
  }
  NoteTail(version);
  return version;
}

Result<Version> TxnLog::WriteCheckpoint(bool overwrite) {
  std::vector<Json> actions;
  ROTTNEST_ASSIGN_OR_RETURN(Version version, Replay(-1, &actions));
  std::vector<Json> compacted;
  if (compactor_) {
    ROTTNEST_RETURN_NOT_OK(compactor_(actions, &compacted));
  } else {
    compacted = std::move(actions);
  }
  ROTTNEST_RETURN_NOT_OK(overwrite ? ckpt_.Rewrite(version, compacted)
                                   : ckpt_.Write(version, compacted));
  obs::Increment(metrics_.checkpoint_writes);
  return version;
}

Result<size_t> TxnLog::Truncate(Version keep_versions) {
  if (keep_versions < 0) {
    return Status::InvalidArgument("keep_versions must be >= 0");
  }
  ROTTNEST_ASSIGN_OR_RETURN(Version latest, LatestVersion());
  auto pr = ckpt_.ReadPointer();
  if (!pr.ok() || pr.value().version < 0) {
    return Status::InvalidArgument(
        "cannot truncate " + prefix_ +
        " without a checkpoint (write one first)");
  }
  CheckpointPointer ptr = pr.value();
  // Never delete entries the newest checkpoint does not cover, and keep
  // the most recent `keep_versions` entries for bounded time travel.
  Version desired = latest - keep_versions + 1;
  Version floor = std::min(ptr.version + 1, desired);
  if (desired < ptr.version + 1) {
    // The retention window reaches below the newest checkpoint. A version v
    // is replayable only from a checkpoint at or below it, so the floor must
    // land on a checkpoint boundary: pick the newest checkpoint cv <= desired
    // and stop at cv + 1 (version cv itself stays readable checkpoint-only).
    // No such checkpoint means nothing can be safely deleted yet.
    ROTTNEST_ASSIGN_OR_RETURN(std::vector<Version> ckpts, ckpt_.List());
    Version seed = -1;
    for (Version cv : ckpts) {
      if (cv <= desired && cv > seed) seed = cv;
    }
    if (seed < 0) return size_t{0};
    floor = std::min(seed + 1, desired);
  }
  if (floor <= 0 || floor <= ptr.truncated_before) return size_t{0};
  // Retention floor moves FIRST: once it lands, readers classify missing
  // entries below it as truncated, so a crash mid-delete leaves the log
  // fully readable (some entries just die later).
  ROTTNEST_RETURN_NOT_OK(ckpt_.AdvancePointer(ptr.version, floor));
  std::vector<objectstore::ObjectMeta> listing;
  ROTTNEST_RETURN_NOT_OK(store_->List(prefix_ + "/", &listing));
  size_t deleted = 0;
  for (const auto& obj : listing) {
    size_t slash = obj.key.rfind('/');
    Version v = -1;
    if (!ParseEntryBasename(obj.key.substr(slash + 1), &v)) continue;
    if (v >= floor) continue;
    ROTTNEST_RETURN_NOT_OK(store_->Delete(obj.key));
    ++deleted;
  }
  return deleted;
}

}  // namespace rottnest::lake
