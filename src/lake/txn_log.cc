#include "lake/txn_log.h"

#include <cstdio>

namespace rottnest::lake {

namespace {
constexpr int kMaxCommitRetries = 32;
}  // namespace

std::string TxnLog::KeyFor(Version version) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld",
                static_cast<long long>(version));
  return prefix_ + "/" + buf + ".json";
}

Status TxnLog::Commit(Version version, const std::vector<Json>& actions) {
  std::string body;
  for (const Json& a : actions) {
    body += a.Dump();
    body.push_back('\n');
  }
  return store_->PutIfAbsent(KeyFor(version), Slice(body));
}

Result<Version> TxnLog::CommitNext(const std::vector<Json>& actions) {
  ROTTNEST_ASSIGN_OR_RETURN(Version latest, LatestVersionOrMinusOne());
  Version candidate = latest + 1;
  Random rng(commit_policy_.jitter_seed ^ Hash64(Slice(prefix_)));
  for (int attempt = 0; attempt < kMaxCommitRetries; ++attempt) {
    Status s = Commit(candidate, actions);
    if (s.ok()) return candidate;
    if (!s.IsAlreadyExists()) return s;
    // Lost the race for `candidate`. Back off (contention signal), then
    // re-list to land on the real tail rather than probing versions blindly
    // — under heavy contention a blind `latest + 1 + attempt` walk issues
    // one failed conditional put per intervening commit.
    if (sleep_) {
      sleep_(commit_policy_.BackoffFor(attempt + 1, &rng));
    }
    ROTTNEST_ASSIGN_OR_RETURN(latest, LatestVersionOrMinusOne());
    candidate = std::max(candidate + 1, latest + 1);
  }
  return Status::Aborted("commit contention exceeded retry budget");
}

Result<Version> TxnLog::LatestVersion() {
  ROTTNEST_ASSIGN_OR_RETURN(Version v, LatestVersionOrMinusOne());
  if (v < 0) return Status::NotFound("empty log: " + prefix_);
  return v;
}

Result<Version> TxnLog::LatestVersionOrMinusOne() {
  std::vector<objectstore::ObjectMeta> listing;
  ROTTNEST_RETURN_NOT_OK(store_->List(prefix_ + "/", &listing));
  Version latest = -1;
  for (const auto& obj : listing) {
    // Keys are zero-padded so lexicographic order == numeric order; parse
    // the basename defensively anyway.
    size_t slash = obj.key.rfind('/');
    std::string base = obj.key.substr(slash + 1);
    if (base.size() < 6 || base.compare(base.size() - 5, 5, ".json") != 0) {
      continue;
    }
    Version v = std::strtoll(base.c_str(), nullptr, 10);
    if (v > latest) latest = v;
  }
  return latest;
}

Status TxnLog::ReadVersion(Version version, std::vector<Json>* actions) {
  Buffer body;
  ROTTNEST_RETURN_NOT_OK(store_->Get(KeyFor(version), &body));
  actions->clear();
  std::string text(body.begin(), body.end());
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    ROTTNEST_ASSIGN_OR_RETURN(Json j, Json::Parse(line));
    actions->push_back(std::move(j));
  }
  return Status::OK();
}

Result<Version> TxnLog::Replay(Version version, std::vector<Json>* actions) {
  actions->clear();
  if (version < 0) {
    auto latest = LatestVersion();
    if (!latest.ok()) return latest.status();
    version = latest.value();
  }
  for (Version v = 0; v <= version; ++v) {
    std::vector<Json> batch;
    ROTTNEST_RETURN_NOT_OK(ReadVersion(v, &batch));
    for (Json& j : batch) actions->push_back(std::move(j));
  }
  return version;
}

}  // namespace rottnest::lake
