// The Rottnest metadata table (paper §IV): a transactional record of which
// index files exist and which Parquet data files each one covers. The paper
// implements it as a Delta table; here it shares the same TxnLog machinery
// as the data lake, giving the same transactional insert/delete semantics.
#ifndef ROTTNEST_LAKE_METADATA_TABLE_H_
#define ROTTNEST_LAKE_METADATA_TABLE_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "lake/txn_log.h"

namespace rottnest::lake {

/// One committed index file.
struct IndexEntry {
  std::string index_path;  ///< Object key of the index file.
  std::string index_type;  ///< "trie", "fm", "ivfpq", or "keyword".
  std::string column;      ///< Indexed column name.
  std::vector<std::string> covered_files;  ///< Data files it indexes.
  uint64_t rows = 0;                       ///< Rows covered.
  Micros created_micros = 0;               ///< Commit-time store clock.
};

/// The registry's ActionCompactor: reconciles addIndex/removeIndex into
/// the live entry set, preserving unknown actions in order.
Status CompactMetaActions(const std::vector<Json>& in,
                          std::vector<Json>* out);

/// Transactional index registry under `<prefix>/_meta`.
class MetadataTable {
 public:
  MetadataTable(objectstore::ObjectStore* store, const std::string& prefix)
      : store_(store), log_(store, prefix + "/_meta") {
    log_.SetCompactor(CompactMetaActions);
  }

  /// Atomically inserts `added` and deletes the entries whose index_path is
  /// in `removed`. One commit — concurrent calls serialize through the log.
  Result<Version> Update(const std::vector<IndexEntry>& added,
                         const std::vector<std::string>& removed);

  /// All currently committed entries.
  Result<std::vector<IndexEntry>> ReadAll();

  /// Checkpoints the registry log (see Table::Checkpoint).
  Result<Version> Checkpoint() { return log_.WriteCheckpoint(); }

  /// Truncates the registry log (see Table::TruncateLog).
  Result<size_t> TruncateLog(Version keep_versions) {
    return log_.Truncate(keep_versions);
  }

  /// Mirrors the log's `meta.*` counters into `registry` (nullptr stops).
  void AttachMetrics(obs::MetricsRegistry* registry) {
    log_.AttachMetrics(registry);
  }

  TxnLog& log() { return log_; }

 private:
  objectstore::ObjectStore* store_;
  TxnLog log_;
};

}  // namespace rottnest::lake

#endif  // ROTTNEST_LAKE_METADATA_TABLE_H_
