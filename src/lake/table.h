// The data lake table: Parquet-style immutable data files + a transaction
// log, supporting append, snapshot reads (time travel), file compaction,
// row deletes via deletion vectors, and vacuum — every operation the
// Rottnest protocol must stay consistent against (paper §IV).
#ifndef ROTTNEST_LAKE_TABLE_H_
#define ROTTNEST_LAKE_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "format/types.h"
#include "format/writer.h"
#include "lake/deletion_vector.h"
#include "lake/txn_log.h"
#include "objectstore/object_store.h"

namespace rottnest::lake {

/// One live data file in a snapshot.
struct DataFile {
  std::string path;     ///< Object key of the data file.
  uint64_t rows = 0;    ///< Total rows (before deletion-vector filtering).
  uint64_t bytes = 0;   ///< Object size.
  std::string dv_path;  ///< Deletion-vector object key; empty if none.
};

/// A point-in-time view of the table: the manifest the paper's `search`
/// plans against.
struct Snapshot {
  Version version = -1;
  format::Schema schema;
  std::vector<DataFile> files;

  /// True if `path` is a live data file in this snapshot.
  bool ContainsFile(const std::string& path) const;

  /// The DataFile for `path`, or nullptr.
  const DataFile* FindFile(const std::string& path) const;

  uint64_t TotalRows() const;
  uint64_t TotalBytes() const;

  /// Canonical byte-stable serialization (version, schema, files in path
  /// order) — the equivalence oracle for replay-from-0 vs checkpoint+suffix.
  std::string DebugString() const;
};

/// A transactional table rooted at `<root>/` in an object store:
///   <root>/_log/<version>.json   transaction log
///   <root>/data/<id>.lake        data files
///   <root>/dv/<id>.dv            deletion vectors
class Table {
 public:
  /// Creates a new table (commits version 0 with the schema).
  static Result<std::unique_ptr<Table>> Create(
      objectstore::ObjectStore* store, std::string root,
      format::Schema schema,
      format::WriterOptions writer_options = format::WriterOptions{});

  /// Opens an existing table (reads the schema from the log).
  static Result<std::unique_ptr<Table>> Open(objectstore::ObjectStore* store,
                                             std::string root);

  /// Appends a batch as one new data file. Returns the committed version.
  Result<Version> Append(const format::RowBatch& batch);

  /// Reads the snapshot at `version` (< 0 means latest).
  Result<Snapshot> GetSnapshot(Version version = -1);

  /// Merges data files smaller than `small_file_bytes` into one file
  /// (dropping rows masked by deletion vectors). No-op if fewer than two
  /// qualify. Returns the committed version, or the current latest if
  /// nothing was compacted.
  Result<Version> CompactFiles(uint64_t small_file_bytes);

  /// Deletes rows where `predicate(column_value_index)` is true, evaluated
  /// over `column`; commits per-file deletion vectors. Returns the version.
  Result<Version> DeleteWhere(
      const std::string& column,
      const std::function<bool(const format::ColumnVector&, size_t)>&
          predicate);

  /// Physically removes data/dv objects that are not referenced by the
  /// latest snapshot and are older than `retention_micros` (store clock).
  /// Returns the number of objects removed.
  Result<size_t> Vacuum(Micros retention_micros);

  /// Writes a checkpoint of the reconciled table state at the current
  /// latest version (see lake/checkpoint.h); cold GetSnapshot then reads
  /// checkpoint + suffix instead of replaying from 0. Returns the
  /// checkpointed version.
  Result<Version> Checkpoint();

  /// Deletes log entries covered by the newest checkpoint, keeping at
  /// least the `keep_versions` most recent. Time travel below the floor
  /// fails with a typed NotFound("version truncated ..."). Returns the
  /// number of entries deleted; InvalidArgument without a checkpoint.
  Result<size_t> TruncateLog(Version keep_versions);

  /// Mirrors the log's `meta.*` counters into `registry` (nullptr stops).
  void AttachMetrics(obs::MetricsRegistry* registry) {
    log_.AttachMetrics(registry);
  }

  /// Loads the deletion vector of `file` (empty vector if none).
  Status ReadDeletionVector(const DataFile& file, DeletionVector* out);

  objectstore::ObjectStore* store() { return store_; }
  const std::string& root() const { return root_; }
  const format::Schema& schema() const { return schema_; }
  const format::WriterOptions& writer_options() const {
    return writer_options_;
  }
  TxnLog& log() { return log_; }

 private:
  Table(objectstore::ObjectStore* store, std::string root,
        format::Schema schema, format::WriterOptions writer_options);

  /// Writes `batch` as a data file object and returns its DataFile record.
  Result<DataFile> WriteDataFile(const format::RowBatch& batch);

  std::string NewObjectName(const char* dir, const char* ext);

  objectstore::ObjectStore* store_;
  std::string root_;
  format::Schema schema_;
  format::WriterOptions writer_options_;
  TxnLog log_;
  uint64_t name_counter_ = 0;
};

/// The table's ActionCompactor: reconciles add/remove into the live file
/// set, keeps the latest metaData, and preserves unknown actions in order
/// (forward compatibility). Replay-equivalent to the input for any suffix.
Status CompactTableActions(const std::vector<Json>& in,
                           std::vector<Json>* out);

/// Serializes a schema into the log's metaData action payload.
Json SchemaToJson(const format::Schema& schema);

/// Inverse of SchemaToJson.
Status SchemaFromJson(const Json& j, format::Schema* out);

}  // namespace rottnest::lake

#endif  // ROTTNEST_LAKE_TABLE_H_
