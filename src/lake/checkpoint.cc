#include "lake/checkpoint.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"

namespace rottnest::lake {

namespace {

constexpr char kPointerBasename[] = "_last_checkpoint";
constexpr char kCheckpointSuffix[] = ".checkpoint.json";

std::string VersionBasename(Version version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld", static_cast<long long>(version));
  return buf;
}

/// Checksum over the action stream, independent of the enclosing JSON
/// framing: each action's canonical dump (sorted keys), newline-joined —
/// the same bytes a log entry holding these actions would contain.
std::string ActionsChecksum(const std::vector<Json>& actions) {
  std::string payload;
  for (const Json& a : actions) {
    payload += a.Dump();
    payload.push_back('\n');
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Hash64(Slice(payload))));
  return buf;
}

}  // namespace

Checkpointer::Checkpointer(objectstore::ObjectStore* store,
                           std::string log_prefix)
    : store_(store),
      prefix_(std::move(log_prefix)),
      pointer_key_(prefix_ + "/" + kPointerBasename) {}

std::string Checkpointer::KeyFor(Version version) const {
  return prefix_ + "/" + VersionBasename(version) + kCheckpointSuffix;
}

bool Checkpointer::ParseCheckpointKey(const std::string& key,
                                      Version* version) {
  size_t slash = key.rfind('/');
  std::string base =
      slash == std::string::npos ? key : key.substr(slash + 1);
  constexpr size_t kSuffixLen = sizeof(".checkpoint.json") - 1;
  if (base.size() != 20 + kSuffixLen ||
      base.compare(20, kSuffixLen, kCheckpointSuffix) != 0) {
    return false;
  }
  for (int i = 0; i < 20; ++i) {
    if (base[i] < '0' || base[i] > '9') return false;
  }
  *version = std::strtoll(base.c_str(), nullptr, 10);
  return true;
}

std::string Checkpointer::EncodeBody(
    Version version, const std::vector<Json>& actions) const {
  Json::Array arr;
  arr.reserve(actions.size());
  for (const Json& a : actions) arr.push_back(a);
  Json::Object obj;
  obj["version"] = Json(static_cast<int64_t>(version));
  obj["count"] = Json(static_cast<int64_t>(actions.size()));
  obj["checksum"] = Json(ActionsChecksum(actions));
  obj["actions"] = Json(std::move(arr));
  return Json(std::move(obj)).Dump();
}

Status Checkpointer::Write(Version version,
                           const std::vector<Json>& actions) {
  std::string body = EncodeBody(version, actions);
  Status s = store_->PutIfAbsent(KeyFor(version), Slice(body));
  // AlreadyExists: a concurrent checkpointer landed the same version. Both
  // wrote equivalent state (same log prefix), so treat as success.
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  return AdvancePointer(version, /*truncated_before=*/-1);
}

Status Checkpointer::Rewrite(Version version,
                             const std::vector<Json>& actions) {
  std::string body = EncodeBody(version, actions);
  ROTTNEST_RETURN_NOT_OK(store_->Put(KeyFor(version), Slice(body)));
  return AdvancePointer(version, /*truncated_before=*/-1);
}

Result<CheckpointData> Checkpointer::Read(Version version) const {
  const std::string key = KeyFor(version);
  Buffer body;
  ROTTNEST_RETURN_NOT_OK(store_->Get(key, &body));
  auto parsed = Json::Parse(std::string(body.begin(), body.end()));
  if (!parsed.ok()) {
    return Status::Corruption("checkpoint " + key + ": " +
                              parsed.status().message());
  }
  const Json& doc = parsed.value();
  int64_t stored_version = -1, count = -1;
  std::string checksum;
  if (!doc.GetInt("version", &stored_version).ok() ||
      !doc.GetInt("count", &count).ok() ||
      !doc.GetString("checksum", &checksum).ok()) {
    return Status::Corruption("checkpoint " + key + ": missing header field");
  }
  if (stored_version != version) {
    return Status::Corruption("checkpoint " + key + ": header names version " +
                              std::to_string(stored_version));
  }
  Json::Array arr;
  if (Status s = doc.GetArray("actions", &arr); !s.ok()) {
    return Status::Corruption("checkpoint " + key + ": " + s.message());
  }
  if (static_cast<int64_t>(arr.size()) != count) {
    return Status::Corruption("checkpoint " + key + ": action count " +
                              std::to_string(arr.size()) + " != header " +
                              std::to_string(count));
  }
  CheckpointData data;
  data.version = version;
  data.actions.assign(arr.begin(), arr.end());
  if (ActionsChecksum(data.actions) != checksum) {
    return Status::Corruption("checkpoint " + key + ": checksum mismatch");
  }
  return data;
}

Result<CheckpointPointer> Checkpointer::ReadPointer() const {
  Buffer body;
  ROTTNEST_RETURN_NOT_OK(store_->Get(pointer_key_, &body));
  auto parsed = Json::Parse(std::string(body.begin(), body.end()));
  if (!parsed.ok()) {
    return Status::Corruption("checkpoint pointer " + pointer_key_ + ": " +
                              parsed.status().message());
  }
  CheckpointPointer ptr;
  int64_t v = -1, t = 0;
  if (!parsed.value().GetInt("version", &v).ok() ||
      !parsed.value().GetInt("truncated_before", &t).ok()) {
    return Status::Corruption("checkpoint pointer " + pointer_key_ +
                              ": missing field");
  }
  ptr.version = v;
  ptr.truncated_before = t;
  return ptr;
}

Status Checkpointer::AdvancePointer(Version version,
                                    Version truncated_before) {
  // Monotonic merge with whatever is there: a stale writer can never move
  // the pointer backwards (a regressed pointer would only be slower, but
  // a regressed retention floor could mask truncation from readers).
  CheckpointPointer cur;
  auto existing = ReadPointer();
  if (existing.ok()) cur = existing.value();
  CheckpointPointer next;
  next.version = std::max(cur.version, version);
  next.truncated_before = std::max(cur.truncated_before, truncated_before);
  Json::Object obj;
  obj["version"] = Json(static_cast<int64_t>(next.version));
  obj["truncated_before"] = Json(static_cast<int64_t>(next.truncated_before));
  std::string body = Json(std::move(obj)).Dump();
  return store_->Put(pointer_key_, Slice(body));
}

Result<std::vector<Version>> Checkpointer::List() const {
  std::vector<objectstore::ObjectMeta> listing;
  ROTTNEST_RETURN_NOT_OK(store_->List(prefix_ + "/", &listing));
  std::vector<Version> versions;
  for (const auto& obj : listing) {
    Version v = -1;
    if (ParseCheckpointKey(obj.key, &v)) versions.push_back(v);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

Status Checkpointer::Delete(Version version) {
  return store_->Delete(KeyFor(version));
}

Result<CheckpointData> Checkpointer::FindUsable(
    Version max_version, CheckpointPointer* pointer_out,
    bool* fell_back) const {
  if (fell_back) *fell_back = false;
  auto ptr = ReadPointer();
  if (ptr.status().IsNotFound()) {
    // No pointer was ever written: assume no checkpoints. This keeps the
    // steady non-checkpointed path at one extra GET (no LIST) and is safe —
    // an orphan checkpoint missed here only costs replay time.
    return Status::NotFound("no checkpoint under " + prefix_);
  }
  bool pointer_usable = ptr.ok() && ptr.value().version >= 0;
  bool pointer_fault = !ptr.ok();  // Torn/corrupt pointer.
  if (ptr.ok() && pointer_out) *pointer_out = ptr.value();
  if (pointer_usable &&
      (max_version < 0 || ptr.value().version <= max_version)) {
    auto data = Read(ptr.value().version);
    if (data.ok()) return data;
    // Pointed-to checkpoint missing or rotten: fall back to the walk.
    pointer_fault = true;
  }
  // Walk reasons: a faulted pointer path, or legitimate time travel below
  // the newest checkpoint — only the former counts as a fallback.
  if (fell_back) *fell_back = pointer_fault;
  auto listed = List();
  if (!listed.ok()) return listed.status();
  const std::vector<Version>& versions = listed.value();
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (max_version >= 0 && *it > max_version) continue;
    auto data = Read(*it);
    if (data.ok()) return data;
  }
  return Status::NotFound("no usable checkpoint under " + prefix_);
}

}  // namespace rottnest::lake
