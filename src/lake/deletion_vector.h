// Deletion vectors: per-data-file sets of deleted row indexes, stored as
// separate objects (as in Delta Lake / Iceberg v2). Data files stay
// immutable; a delete commits a new table version where the file carries a
// deletion-vector reference.
#ifndef ROTTNEST_LAKE_DELETION_VECTOR_H_
#define ROTTNEST_LAKE_DELETION_VECTOR_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace rottnest::lake {

/// A sorted set of deleted row indexes within one data file.
class DeletionVector {
 public:
  DeletionVector() = default;

  /// Builds from row indexes (deduplicated and sorted internally).
  explicit DeletionVector(std::vector<uint64_t> rows);

  bool Contains(uint64_t row) const;
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<uint64_t>& rows() const { return rows_; }

  /// Set-union with another vector (merging successive deletes).
  void Union(const DeletionVector& other);

  void Serialize(Buffer* out) const;
  static Status Deserialize(Slice input, DeletionVector* out);

 private:
  std::vector<uint64_t> rows_;
};

}  // namespace rottnest::lake

#endif  // ROTTNEST_LAKE_DELETION_VECTOR_H_
