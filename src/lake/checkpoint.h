// Crash-safe checkpoints for the transaction log (metadata plane).
//
// A checkpoint is a single JSON object at "<prefix>/<version>.checkpoint.json"
// holding the log's compacted action state at that version plus a Hash64
// checksum (same integrity discipline as index component files). A pointer
// object "<prefix>/_last_checkpoint" names the newest checkpoint and the log
// retention floor. Write ordering is crash-safe by construction:
//
//   1. the checkpoint object lands via PutIfAbsent (atomic, first writer
//      wins, a concurrent writer at the same version is benign);
//   2. only then does the pointer move (a plain overwrite Put that never
//      regresses either field).
//
// A crash between the two leaves an orphan checkpoint the LIST fallback can
// still discover; a torn/corrupt/missing checkpoint or pointer degrades to
// full replay — readers are never wrong, only slower. Log truncation uses the
// reverse ordering (pointer's retention floor first, then entry deletes) so a
// reader can always distinguish "version truncated by retention" from a lost
// object.
#ifndef ROTTNEST_LAKE_CHECKPOINT_H_
#define ROTTNEST_LAKE_CHECKPOINT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "objectstore/object_store.h"

namespace rottnest::lake {

using Version = int64_t;

/// Rewrites a replayed action stream into an equivalent compacted one
/// (reconciled adds/removes, latest metaData, unknown actions preserved in
/// order for forward compatibility). Must satisfy: for any suffix S,
/// replay(compact(A) + S) == replay(A + S).
using ActionCompactor =
    std::function<Status(const std::vector<Json>&, std::vector<Json>*)>;

/// A validated checkpoint: the compacted action state at `version`.
struct CheckpointData {
  Version version = -1;
  std::vector<Json> actions;
};

/// The "_last_checkpoint" pointer contents.
struct CheckpointPointer {
  Version version = -1;         ///< Newest checkpoint (or -1 if none named).
  Version truncated_before = 0; ///< Log entries below this may be deleted.
};

/// Reads and writes checkpoint objects under one log prefix. Stateless apart
/// from the store handle; safe to use from concurrent readers/writers.
class Checkpointer {
 public:
  /// `store` is not owned and must outlive the checkpointer.
  Checkpointer(objectstore::ObjectStore* store, std::string log_prefix);

  /// Object key of the checkpoint at `version`.
  std::string KeyFor(Version version) const;

  const std::string& pointer_key() const { return pointer_key_; }

  /// Writes the checkpoint object (PutIfAbsent; a concurrent identical
  /// writer's AlreadyExists is success) and then advances the pointer.
  Status Write(Version version, const std::vector<Json>& actions);

  /// Overwrites the checkpoint object in place (repair path for a rotten
  /// checkpoint at the current tail) and re-advances the pointer.
  Status Rewrite(Version version, const std::vector<Json>& actions);

  /// Reads and validates one checkpoint. Corruption (with the offending
  /// key) on parse/checksum/shape mismatch.
  Result<CheckpointData> Read(Version version) const;

  /// Reads the pointer. NotFound if absent, Corruption if unparseable.
  Result<CheckpointPointer> ReadPointer() const;

  /// Moves the pointer monotonically: neither field ever regresses. Pass
  /// `truncated_before` < 0 to keep the current retention floor.
  Status AdvancePointer(Version version, Version truncated_before);

  /// Best usable checkpoint at or below `max_version` (< 0 = unbounded).
  /// Tries the pointer first (one GET on the steady path); a torn pointer
  /// or rotten pointed-to checkpoint falls back to a LIST walk over all
  /// checkpoint objects, newest first. Never returns Corruption — an
  /// unusable checkpoint is skipped, and NotFound means "replay from 0".
  /// `pointer_out` (may be null) receives the pointer when it was readable;
  /// `fell_back` (may be null) is set when the pointer path was unusable.
  Result<CheckpointData> FindUsable(Version max_version,
                                    CheckpointPointer* pointer_out,
                                    bool* fell_back) const;

  /// Versions of all checkpoint objects under the prefix (sorted ascending;
  /// includes orphans and rotten ones — existence only, no validation).
  Result<std::vector<Version>> List() const;

  /// Deletes the checkpoint object at `version` (idempotent).
  Status Delete(Version version);

  /// True if `key` is a checkpoint object key under this prefix; fills
  /// `version` from the basename.
  static bool ParseCheckpointKey(const std::string& key, Version* version);

 private:
  std::string EncodeBody(Version version,
                         const std::vector<Json>& actions) const;

  objectstore::ObjectStore* store_;
  std::string prefix_;
  std::string pointer_key_;
};

}  // namespace rottnest::lake

#endif  // ROTTNEST_LAKE_CHECKPOINT_H_
