#include "core/rottnest.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <map>
#include <regex>
#include <set>

#include "common/hash.h"
#include "core/obs_internal.h"
#include "format/reader.h"
#include "index/ivfpq/kmeans.h"
#include "index/keyword/keyword_index.h"
#include "index/trie/trie_index.h"

namespace rottnest::core {

namespace {

using format::ColumnSchema;
using format::ColumnVector;
using format::PageFetch;
using format::PageId;
using format::PageTable;
using format::PhysicalType;
using index::ComponentFileReader;
using index::IndexType;
using lake::DataFile;
using lake::IndexEntry;
using lake::Snapshot;

/// Extracts value `row` of a decoded column as raw bytes.
std::string ValueAt(const ColumnVector& col, size_t row) {
  switch (col.type()) {
    case PhysicalType::kByteArray:
      return col.strings()[row];
    case PhysicalType::kFixedLenByteArray:
      return col.fixed().at(row).ToString();
    case PhysicalType::kInt64: {
      int64_t v = col.ints()[row];
      return std::string(reinterpret_cast<const char*>(&v), 8);
    }
    case PhysicalType::kDouble: {
      double v = col.doubles()[row];
      return std::string(reinterpret_cast<const char*>(&v), 8);
    }
  }
  return {};
}

/// Caches deletion vectors per data file during one search.
class DvCache {
 public:
  DvCache(lake::Table* table, const Snapshot& snapshot)
      : table_(table), snapshot_(snapshot) {}

  /// True if (file, row) is deleted in the snapshot.
  Result<bool> IsDeleted(const std::string& file, uint64_t row) {
    auto it = cache_.find(file);
    if (it == cache_.end()) {
      const DataFile* df = snapshot_.FindFile(file);
      lake::DeletionVector dv;
      if (df != nullptr) {
        ROTTNEST_RETURN_NOT_OK(table_->ReadDeletionVector(*df, &dv));
      }
      it = cache_.emplace(file, std::move(dv)).first;
    }
    return it->second.Contains(row);
  }

 private:
  lake::Table* table_;
  const Snapshot& snapshot_;
  std::map<std::string, lake::DeletionVector> cache_;
};

}  // namespace

struct Rottnest::Plan {
  Snapshot snapshot;
  std::vector<IndexEntry> indexes;
  std::vector<DataFile> unindexed;
  int column_index = -1;
};

namespace {

/// Applies the structured-attribute ScanRange (paper §VI): prunes row
/// groups via min/max statistics and verifies the attribute in situ for
/// candidate rows. One instance per search; caches readers and attribute
/// chunks per (file, row group).
class RangeFilter {
 public:
  RangeFilter(objectstore::ObjectStore* store, const format::Schema& schema,
              const std::optional<ScanRange>& range)
      : store_(store) {
    if (!range.has_value()) return;
    col_idx_ = schema.FindColumn(range->column);
    range_ = *range;
    active_ = true;
  }

  bool active() const { return active_; }

  Status Validate() const {
    if (active_ && col_idx_ < 0) {
      return Status::InvalidArgument("no such range column: " +
                                     range_.column);
    }
    return Status::OK();
  }

  /// True if row group `rg` of the file may contain rows in range.
  bool RowGroupMayMatch(const format::RowGroupMeta& rg) const {
    if (!active_) return true;
    const format::ColumnChunkMeta& cc = rg.columns[col_idx_];
    if (!cc.has_stats) return true;
    return cc.min <= range_.max && cc.max >= range_.min;
  }

  /// True if row `row` (file-global) of `file` is inside the range.
  /// Reads (and caches) the attribute chunk of the containing row group.
  Result<bool> RowInRange(const std::string& file, uint64_t row,
                          objectstore::IoTrace* trace) {
    if (!active_) return true;
    ROTTNEST_ASSIGN_OR_RETURN(format::FileReader * reader, Reader(file, trace));
    const format::FileMeta& meta = reader->meta();
    // Find the row group containing `row`.
    size_t g = 0;
    while (g + 1 < meta.row_groups.size() &&
           meta.row_groups[g + 1].first_row <= row) {
      ++g;
    }
    const format::RowGroupMeta& rg = meta.row_groups[g];
    if (!RowGroupMayMatch(rg)) return false;
    auto key = std::make_pair(file, g);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      format::ColumnVector col;
      ROTTNEST_RETURN_NOT_OK(
          reader->ReadColumnChunk(g, col_idx_, trace, &col));
      it = chunks_.emplace(key, std::move(col)).first;
    }
    return range_.Contains(it->second.ints()[row - rg.first_row]);
  }

  /// Drops matches outside the range.
  Status FilterMatches(std::vector<RowMatch>* matches,
                       objectstore::IoTrace* trace) {
    if (!active_) return Status::OK();
    std::vector<RowMatch> kept;
    kept.reserve(matches->size());
    for (RowMatch& m : *matches) {
      ROTTNEST_ASSIGN_OR_RETURN(bool in, RowInRange(m.file, m.row, trace));
      if (in) kept.push_back(std::move(m));
    }
    *matches = std::move(kept);
    return Status::OK();
  }

 private:
  Result<format::FileReader*> Reader(const std::string& file,
                                     objectstore::IoTrace* trace) {
    auto it = readers_.find(file);
    if (it == readers_.end()) {
      ROTTNEST_ASSIGN_OR_RETURN(std::unique_ptr<format::FileReader> r,
                                format::FileReader::Open(store_, file,
                                                         trace));
      it = readers_.emplace(file, std::move(r)).first;
    }
    return it->second.get();
  }

  objectstore::ObjectStore* store_;
  bool active_ = false;
  int col_idx_ = -1;
  ScanRange range_;
  std::map<std::string, std::unique_ptr<format::FileReader>> readers_;
  std::map<std::pair<std::string, size_t>, format::ColumnVector> chunks_;
};

/// Extracts the longest regex-free literal run from an ECMAScript regex —
/// the substring every match must contain, suitable for FM-index location.
std::string LongestRegexLiteral(const std::string& pattern) {
  std::string best, current;
  auto flush = [&] {
    // A literal directly before a quantifier is not guaranteed (e.g. the
    // 'o' in "fo*"); drop its last char from the guaranteed run.
    if (current.size() > best.size()) best = current;
    current.clear();
  };
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    switch (c) {
      case '\\':
        // Escaped char: a guaranteed literal only for escaped punctuation.
        if (i + 1 < pattern.size() && !std::isalnum(static_cast<unsigned char>(
                                          pattern[i + 1]))) {
          current.push_back(pattern[i + 1]);
          ++i;
        } else {
          ++i;
          flush();
        }
        break;
      case '*':
      case '+':
      case '?':
      case '{':
        // Quantifier: the preceding char was optional/repeated.
        if (!current.empty()) current.pop_back();
        flush();
        // Skip the {...} body.
        while (c == '{' && i + 1 < pattern.size() && pattern[i] != '}') ++i;
        break;
      case '|':
        // Alternation invalidates any guarantee: nothing is required.
        return std::string();
      case '.':
      case '[':
      case ']':
      case '(':
      case ')':
      case '^':
      case '$':
        flush();
        // Skip character classes wholesale.
        if (c == '[') {
          while (i + 1 < pattern.size() && pattern[i] != ']') ++i;
        }
        break;
      default:
        current.push_back(c);
    }
  }
  flush();
  return best;
}

/// Graceful-degradation bookkeeping (one instance per search): index files
/// that fail to open or query — missing object, truncated tail, checksum
/// mismatch — are skipped and their covered files demoted to the brute-scan
/// path, so a corrupt index degrades performance instead of failing the
/// query. The degradation is reported through SearchResult.
class DegradedIndexes {
 public:
  void RecordSuccess(const IndexEntry& e) {
    ok_covered_.insert(e.covered_files.begin(), e.covered_files.end());
  }

  void RecordFailure(const IndexEntry& e, Status status,
                     SearchResult* result) {
    failures_.emplace_back(&e, std::move(status));
    ++result->indexes_degraded;
    result->degraded_indexes.push_back(e.index_path);
  }

  /// Snapshot files whose only index coverage failed — these must be
  /// scanned unconditionally so the result set matches a fault-free query.
  std::vector<const DataFile*> FilesToScan(const Snapshot& snapshot) const {
    std::vector<const DataFile*> out;
    std::set<std::string> emitted;
    for (const auto& [e, status] : failures_) {
      for (const std::string& f : e->covered_files) {
        if (ok_covered_.count(f) != 0) continue;  // Still covered elsewhere.
        const DataFile* df = snapshot.FindFile(f);
        if (df == nullptr) continue;
        if (emitted.insert(f).second) out.push_back(df);
      }
    }
    return out;
  }

  /// The failures with their statuses, for Rottnest::HandleSearchFailures.
  const std::vector<std::pair<const IndexEntry*, Status>>& failures() const {
    return failures_;
  }

 private:
  std::set<std::string> ok_covered_;
  std::vector<std::pair<const IndexEntry*, Status>> failures_;
};

/// The failures the tail-tolerance contract degrades into a partial result
/// rather than a hard error or a brute-scan fallback: an expired deadline
/// (keeping going is exactly what the deadline forbids) and an unavailable
/// dependency (circuit breaker open or store down — scanning through the
/// same broken store would only dig the hole deeper). Everything else keeps
/// its existing handling: Corruption/NotFound degrade with a scan fallback,
/// other codes fail the query.
bool IsCutShort(const Status& s) {
  return s.IsDeadlineExceeded() || s.IsUnavailable();
}

/// Records `what` (an index object key or a phase name) as cut short. The
/// first cut supplies partial_reason; later ones only extend the list.
void MarkCutShort(SearchResult* result, std::string what, const Status& s) {
  result->partial = true;
  result->cut_short.push_back(std::move(what));
  if (result->partial_reason.empty()) result->partial_reason = s.ToString();
}

/// Scans one file's column row by row, honoring the RangeFilter's row-group
/// pruning and per-row attribute check. `visit(row, value)` runs for rows
/// passing the range. *scanned reports whether any row group was read. The
/// operation deadline is checked per row group (page batch), so one huge
/// file cannot blow past the time budget.
Status ScanFileRows(
    objectstore::ObjectStore* store, const std::string& file, int col_idx,
    RangeFilter* rf, const Deadline& deadline, objectstore::IoTrace* trace,
    bool* scanned,
    const std::function<Status(uint64_t, const std::string&)>& visit) {
  *scanned = false;
  ROTTNEST_ASSIGN_OR_RETURN(
      std::unique_ptr<format::FileReader> reader,
      format::FileReader::Open(store, file, trace));
  const format::FileMeta& meta = reader->meta();
  for (size_t g = 0; g < meta.row_groups.size(); ++g) {
    ROTTNEST_RETURN_NOT_OK(deadline.Check("scan"));
    const format::RowGroupMeta& rg = meta.row_groups[g];
    if (!rf->RowGroupMayMatch(rg)) continue;  // Min/max pruning.
    ColumnVector col;
    ROTTNEST_RETURN_NOT_OK(reader->ReadColumnChunk(g, col_idx, trace, &col));
    *scanned = true;
    for (size_t r = 0; r < col.size(); ++r) {
      uint64_t row = rg.first_row + r;
      if (rf->active()) {
        ROTTNEST_ASSIGN_OR_RETURN(bool in, rf->RowInRange(file, row, trace));
        if (!in) continue;
      }
      ROTTNEST_RETURN_NOT_OK(visit(row, ValueAt(col, r)));
    }
  }
  return Status::OK();
}

/// Runs `task(i, trace_i)` for every applicable index of a plan
/// concurrently on `pool` — fan-out ACROSS indexes, on top of whatever
/// within-index parallelism each task already uses. `max_width` bounds the
/// concurrency (0 = all n at once, the §V-B default); at a bound the
/// per-task IoTraces are merged in waves of `max_width` chains, otherwise
/// zipped via MergeParallel, so the recorded dependent-round depth honestly
/// reflects the width actually run — the deepest single chain at full
/// width, not the sum over indexes (§V-B: width is cheap, depth is not).
/// When `op` is tracing, every task also gets a `label(i)` child span under
/// the op root carrying its trace totals as exclusive I/O; spans are
/// created and attributed in plan order on the calling thread, so the span
/// tree is deterministic regardless of how the tasks interleave. Statuses
/// come back positionally so the caller can apply its degraded-index
/// policy per entry in plan order.
///
/// `deadline` is the operation deadline: every task re-installs a copy as
/// its pool thread's ambient deadline (thread-locals do not follow work
/// onto pool threads), so the store stack below — retry backoff, hedging —
/// observes it; a task whose start finds the deadline already expired is
/// cut short with DeadlineExceeded without running, so an expired fan-out
/// drains at task granularity instead of paying n full index queries.
std::vector<Status> FanOutIndexQueries(
    ThreadPool* pool, size_t n, size_t max_width, const Deadline& deadline,
    objectstore::IoTrace* trace, internal::OpObs* op,
    const std::function<std::string(size_t)>& label,
    const std::function<Status(size_t, objectstore::IoTrace*)>& task) {
  std::vector<Status> statuses(n);
  if (n == 0) return statuses;
  auto guarded_task = [&](size_t i, objectstore::IoTrace* t) -> Status {
    ROTTNEST_RETURN_NOT_OK(deadline.Check("index query"));
    ScopedOpDeadline ambient(deadline);
    return task(i, t);
  };
  const bool spans = op != nullptr && op->tracing();
  if (n == 1 && !spans) {  // Nothing concurrent to model; record into parent.
    statuses[0] = guarded_task(0, trace);
    return statuses;
  }
  std::vector<obs::SpanId> span_ids;
  if (spans) {
    span_ids.reserve(n);
    Micros now = op->NowMicros();
    for (size_t i = 0; i < n; ++i) {
      span_ids.push_back(
          op->tracer()->StartSpan(label(i), op->root_id(), now));
    }
  }
  const bool need_children = trace != nullptr || spans;
  std::vector<objectstore::IoTrace> children(need_children ? n : 0);
  const size_t width = max_width == 0 ? n : std::min(max_width, n);
  auto run = [&](size_t i) {
    statuses[i] = guarded_task(i, need_children ? &children[i] : nullptr);
  };
  if (n == 1) {
    run(0);
  } else if (width >= n) {
    pool->ParallelFor(n, run);
  } else {
    pool->ParallelFor(n, width, run);
  }
  if (spans) {
    Micros now = op->NowMicros();
    for (size_t i = 0; i < n; ++i) {
      op->Attribute(span_ids[i], internal::SpanIoFromTrace(children[i]));
      op->tracer()->EndSpan(span_ids[i], now);
    }
  }
  if (trace != nullptr) {
    if (width >= n) {
      std::vector<const objectstore::IoTrace*> ptrs;
      ptrs.reserve(children.size());
      for (const auto& c : children) ptrs.push_back(&c);
      trace->MergeParallel(ptrs);
    } else {
      internal::MergeWaves(trace, children, width);
    }
  }
  return statuses;
}

/// Resolved fan-out width of a search (reported in Stats::parallelism).
size_t ResolvedFanOut(size_t n, size_t max_width) {
  if (n == 0) return 1;
  return max_width == 0 ? n : std::min(max_width, n);
}

/// Fills SearchResult::stats at the end of a search: physical store deltas
/// (requests, bytes, cache/retry/fault events) from the op's snapshots,
/// IoTrace-derived depth and S3 projections when the caller traced, wall
/// time, and the resolved fan-out width.
void FinishSearchStats(const SearchOptions& opts, const internal::OpObs& op,
                       std::chrono::steady_clock::time_point wall_start,
                       size_t fanout, SearchResult* result) {
  op.FillDeltaStats(&result->stats);
  if (opts.trace != nullptr) {
    objectstore::S3Model s3;
    result->stats.io_depth = opts.trace->depth();
    result->stats.simulated_latency_ms = opts.trace->ProjectedLatencyMs(s3);
    result->stats.simulated_cost_usd = opts.trace->RequestCostUsd(s3);
  }
  result->stats.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  result->stats.parallelism = fanout;
}

/// The deadline a search runs under: a pre-resolved absolute deadline
/// (SearchOptions::deadline, the serving path — resolved at SUBMIT time so
/// queue wait already counted against it) takes precedence over a
/// budget-derived one computed here (the direct-call path).
Deadline ResolveSearchDeadline(const SearchOptions& opts, const Clock* clock) {
  if (!opts.deadline.infinite()) return opts.deadline;
  return Deadline::After(clock, opts.time_budget_micros);
}

}  // namespace

namespace internal {

// Merges per-item IoTraces into `trace` the way the maintenance pipeline
// actually overlaps them: waves of `parallelism` concurrent chains, waves
// paid sequentially. At width 1 this degenerates to appending every chain
// back to back, so the recorded depth — and the projected latency derived
// from it — honestly reflects the resolved pipeline width. Width changes
// the trace, never the bytes; request/byte totals are width-invariant.
void MergeWaves(objectstore::IoTrace* trace,
                const std::vector<objectstore::IoTrace>& children,
                size_t parallelism) {
  if (trace == nullptr) return;
  if (parallelism == 0) parallelism = 1;
  for (size_t begin = 0; begin < children.size(); begin += parallelism) {
    size_t end = std::min(children.size(), begin + parallelism);
    std::vector<const objectstore::IoTrace*> wave;
    wave.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) wave.push_back(&children[i]);
    trace->MergeParallel(wave);
  }
}

}  // namespace internal

Rottnest::Rottnest(objectstore::ObjectStore* store, lake::Table* table,
                   RottnestOptions options)
    : store_(store),
      table_(table),
      options_(std::move(options)),
      metadata_(store, options_.index_dir),
      pool_(options_.num_threads) {
  if (options_.cache_bytes > 0) {
    objectstore::CacheOptions copts;
    copts.capacity_bytes = options_.cache_bytes;
    copts.shards = options_.cache_shards;
    copts.cache_heads = options_.cache_heads;
    cache_store_ =
        std::make_unique<objectstore::CachingStore>(store_, copts);
  }
}

void Rottnest::InvalidateCachedIndex(const std::string& key) {
  if (cache_store_ != nullptr) cache_store_->Invalidate(key);
}

size_t Rottnest::HandleSearchFailures(
    const SearchOptions& opts,
    const std::vector<std::pair<const IndexEntry*, Status>>& failed) {
  if (failed.empty()) return 0;
  std::vector<std::string> quarantine;
  for (const auto& [entry, status] : failed) {
    // A checksum mismatch may have come off the client cache — drop the
    // poisoned blocks so the next read observes the bucket, not the cache.
    if (status.IsCorruption()) InvalidateCachedIndex(entry->index_path);
    if (opts.auto_quarantine &&
        (status.IsCorruption() || status.IsNotFound())) {
      quarantine.push_back(entry->index_path);
    }
  }
  if (quarantine.empty()) return 0;
  // Best-effort: losing the CommitNext race just leaves quarantining to
  // the next degraded query (or Scrub + Repair).
  auto committed = metadata_.Update({}, quarantine);
  return committed.ok() ? quarantine.size() : 0;
}

std::string Rottnest::NewIndexName() {
  // Names must be unique across concurrent clients (the §IV-D proof
  // assumes uploaded files are owned exclusively by one process), so mix
  // in per-instance and process-wide entropy, not just the clock.
  static std::atomic<uint64_t> process_counter{0};
  uint64_t id = Mix64(static_cast<uint64_t>(store_->clock().NowMicros())) ^
                Mix64(reinterpret_cast<uintptr_t>(this)) ^
                Mix64(++name_counter_ * 0x9e37 +
                      process_counter.fetch_add(1)) ^
                Hash64(Slice(options_.index_dir));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return options_.index_dir + "/" + buf + ".index";
}

// ---------------------------------------------------------------------------
// maintenance plumbing

Rottnest::MaintenancePlan Rottnest::ResolveMaintenance(
    const MaintenanceOptions& opts, Micros start) const {
  MaintenancePlan plan;
  plan.parallelism = opts.parallelism != 0 ? opts.parallelism
                     : options_.num_threads != 0 ? options_.num_threads
                                                 : 1;
  plan.byte_budget = opts.byte_budget;
  Micros budget = opts.time_budget_micros != 0 ? opts.time_budget_micros
                                               : options_.index_timeout_micros;
  plan.deadline = start + budget;
  return plan;
}

void Rottnest::FinishMaintenanceStats(
    objectstore::IoTrace* local, const MaintenanceOptions& opts,
    const MaintenancePlan& plan,
    std::chrono::steady_clock::time_point wall_start,
    const internal::OpObs* op, MaintenanceStats* stats) const {
  objectstore::S3Model s3;
  if (op != nullptr) op->FillResilienceStats(stats);
  stats->gets = local->total_gets();
  stats->lists = local->total_lists();
  stats->bytes_read = local->total_bytes();
  stats->io_depth = local->depth();
  stats->simulated_latency_ms = local->ProjectedLatencyMs(s3);
  stats->simulated_cost_usd = local->RequestCostUsd(s3);
  stats->wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  stats->parallelism = plan.parallelism;
  stats->dry_run = opts.dry_run;
  // Single-child MergeParallel = sequential append of this op's rounds.
  if (opts.trace != nullptr) opts.trace->MergeParallel({local});
}

// ---------------------------------------------------------------------------
// index

namespace {

/// One data file's extracted index inputs, produced off-thread by the
/// staging stage of the Index pipeline. Page ids are file-relative; the
/// consumer offsets them by the file's first page-table id when folding
/// into the builders.
struct StagedFile {
  format::FileMeta meta;
  uint64_t staged_bytes = 0;  ///< Rough footprint, for the byte budget.
  std::vector<std::pair<index::Key128, PageId>> trie_postings;
  std::vector<Buffer> fm_page_texts;  ///< One prepared text per page.
  std::vector<float> vectors;         ///< Row-major.
  std::vector<std::pair<PageId, uint32_t>> vector_locations;
  /// One sorted, deduplicated token set per page (keyword index).
  std::vector<std::vector<std::string>> keyword_page_tokens;
};

/// Stage one data file: download + decode its column chunks and extract
/// the per-page index inputs (keys / prepared texts / vectors). Pure apart
/// from object-store reads, so any thread may run it; all ordering happens
/// at the consumer. The deadline is checked per column chunk (page batch),
/// not per file, so one huge file cannot blow past the time budget.
Status StageFile(objectstore::ObjectStore* store, const DataFile& f,
                 int col_idx, IndexType type, Micros deadline,
                 objectstore::IoTrace* trace, StagedFile* out) {
  if (store->clock().NowMicros() >= deadline) {
    return Status::Aborted("index operation exceeded timeout");
  }
  // If the file was garbage-collected meanwhile, abort and retry later
  // (paper §IV-A step 2).
  auto reader_r = format::FileReader::Open(store, f.path, trace);
  if (!reader_r.ok()) {
    if (reader_r.status().IsNotFound()) {
      return Status::Aborted("data file vanished during indexing: " + f.path);
    }
    return reader_r.status();
  }
  auto& reader = *reader_r.value();
  out->meta = reader.meta();

  PageId page = 0;
  for (size_t g = 0; g < reader.meta().row_groups.size(); ++g) {
    if (store->clock().NowMicros() >= deadline) {
      return Status::Aborted("index operation exceeded timeout");
    }
    const auto& rg = reader.meta().row_groups[g];
    // Read the whole chunk once and split by page boundaries.
    ColumnVector chunk;
    ROTTNEST_RETURN_NOT_OK(reader.ReadColumnChunk(g, col_idx, trace, &chunk));
    size_t value_index = 0;
    for (const format::PageMeta& pm : rg.columns[col_idx].pages) {
      switch (type) {
        case IndexType::kTrie:
          for (uint32_t i = 0; i < pm.num_values; ++i) {
            std::string v = ValueAt(chunk, value_index + i);
            out->trie_postings.emplace_back(index::KeyFromValue(Slice(v)),
                                            page);
          }
          break;
        case IndexType::kFm: {
          std::vector<std::string> values;
          values.reserve(pm.num_values);
          for (uint32_t i = 0; i < pm.num_values; ++i) {
            values.push_back(ValueAt(chunk, value_index + i));
          }
          Buffer prepared;
          index::FmIndexBuilder::PreparePageText(values, &prepared);
          out->fm_page_texts.push_back(std::move(prepared));
          break;
        }
        case IndexType::kIvfPq:
          for (uint32_t i = 0; i < pm.num_values; ++i) {
            Slice v = chunk.fixed().at(value_index + i);
            const float* vec = index::VectorFromValue(v);
            out->vectors.insert(out->vectors.end(), vec,
                                vec + v.size() / sizeof(float));
            out->vector_locations.emplace_back(page, i);
          }
          break;
        case IndexType::kKeyword: {
          std::vector<std::string> values;
          values.reserve(pm.num_values);
          for (uint32_t i = 0; i < pm.num_values; ++i) {
            values.push_back(ValueAt(chunk, value_index + i));
          }
          std::vector<std::string> tokens;
          index::KeywordIndexBuilder::PreparePageTokens(values, &tokens);
          out->keyword_page_tokens.push_back(std::move(tokens));
          break;
        }
      }
      ++page;
      value_index += pm.num_values;
    }
  }

  uint64_t bytes =
      out->trie_postings.size() * sizeof(std::pair<index::Key128, PageId>) +
      out->vectors.size() * sizeof(float) +
      out->vector_locations.size() * sizeof(std::pair<PageId, uint32_t>);
  for (const Buffer& b : out->fm_page_texts) bytes += b.size();
  for (const std::vector<std::string>& toks : out->keyword_page_tokens) {
    for (const std::string& t : toks) bytes += t.size() + sizeof(std::string);
  }
  out->staged_bytes = std::max<uint64_t>(bytes, 1);
  return Status::OK();
}

}  // namespace

Result<IndexReport> Rottnest::BuildIndexFile(
    const std::string& column, IndexType type,
    const std::vector<DataFile>& files, const MaintenancePlan& plan,
    objectstore::IoTrace* trace, internal::OpObs* op) {
  int col_idx = table_->schema().FindColumn(column);
  if (col_idx < 0) return Status::InvalidArgument("no such column: " + column);
  const ColumnSchema& col_schema = table_->schema().columns[col_idx];

  PageTable pages;
  index::TrieIndexBuilder trie_builder(column);
  index::FmIndexBuilder fm_builder(column, options_.fm);
  index::KeywordIndexBuilder keyword_builder(column);
  std::unique_ptr<index::IvfPqIndexBuilder> ivf_builder;
  uint32_t dim = 0;
  if (type == IndexType::kIvfPq) {
    if (col_schema.type != PhysicalType::kFixedLenByteArray ||
        col_schema.fixed_len % 4 != 0) {
      return Status::InvalidArgument("vector index needs float fixed-len");
    }
    dim = col_schema.fixed_len / 4;
    ivf_builder = std::make_unique<index::IvfPqIndexBuilder>(column, dim,
                                                             options_.ivfpq);
  }

  // Producer/consumer pipeline: up to plan.parallelism threads (the caller
  // plus pool helpers) stage files — download + decompress + extract — while
  // the calling thread folds staged files into the builders STRICTLY in
  // file order, so the builders see exactly the serial feed and the emitted
  // object is byte-identical at any thread count. Files are claimed in
  // order; a byte budget stalls staging ahead of the consumer, except for
  // the head-of-line file, which is always admitted so progress is
  // guaranteed. Each staging records into its own IoTrace; the per-file
  // traces are merged below in waves of plan.parallelism concurrent chains
  // (MergeWaves), so depth honestly tracks the pipeline width.
  const size_t n = files.size();
  std::vector<StagedFile> staged(n);
  std::vector<objectstore::IoTrace> child_traces(n);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<char> done(n, 0);

  struct PipelineState {
    std::mutex mu;
    std::condition_variable cv;
    size_t next_claim = 0;
    size_t next_consume = 0;
    uint64_t staged_bytes = 0;
    bool quit = false;
    size_t active_helpers = 0;
  } pipe;

  auto stage_one = [&](size_t i) {
    StagedFile sf;
    Status s = StageFile(store_, files[i], col_idx, type, plan.deadline,
                         &child_traces[i], &sf);
    std::lock_guard<std::mutex> lock(pipe.mu);
    staged[i] = std::move(sf);
    statuses[i] = std::move(s);
    done[i] = 1;
    pipe.staged_bytes += staged[i].staged_bytes;
    pipe.cv.notify_all();
  };

  auto helper_loop = [&] {
    for (;;) {
      size_t i;
      {
        std::unique_lock<std::mutex> lock(pipe.mu);
        pipe.cv.wait(lock, [&] {
          if (pipe.quit || pipe.next_claim >= n) return true;
          // Budget admission; the head-of-line file is always admitted.
          return plan.byte_budget == 0 ||
                 pipe.staged_bytes < plan.byte_budget ||
                 pipe.next_claim == pipe.next_consume;
        });
        if (pipe.quit || pipe.next_claim >= n) {
          --pipe.active_helpers;
          pipe.cv.notify_all();
          return;
        }
        i = pipe.next_claim++;
      }
      stage_one(i);
    }
  };

  size_t helpers = 0;
  if (n > 1 && plan.parallelism > 1) {
    helpers = std::min({plan.parallelism - 1, n - 1, pool_.num_threads()});
    pipe.active_helpers = helpers;
    for (size_t h = 0; h < helpers; ++h) pool_.Submit(helper_loop);
  }
  // The helpers reference this stack frame: every exit path below must run
  // this join first.
  auto join_helpers = [&] {
    std::unique_lock<std::mutex> lock(pipe.mu);
    pipe.quit = true;
    pipe.cv.notify_all();
    pipe.cv.wait(lock, [&] { return pipe.active_helpers == 0; });
  };

  IndexReport report;
  Status pipeline_status = Status::OK();
  for (size_t i = 0; i < n; ++i) {
    // Stage inline if no helper has claimed file i yet — the consumer
    // never blocks behind an unclaimed head-of-line file (and this is the
    // whole loop when parallelism == 1).
    bool stage_inline = false;
    {
      std::lock_guard<std::mutex> lock(pipe.mu);
      if (pipe.next_claim == i) {
        pipe.next_claim = i + 1;
        stage_inline = true;
      }
    }
    if (stage_inline) stage_one(i);
    {
      std::unique_lock<std::mutex> lock(pipe.mu);
      pipe.cv.wait(lock, [&] { return done[i] != 0; });
    }
    if (!statuses[i].ok()) {
      pipeline_status = statuses[i];
      break;
    }

    // Fold into the builders in file order.
    StagedFile& sf = staged[i];
    PageId first_page = pages.AddFile(files[i].path, sf.meta, col_idx);
    switch (type) {
      case IndexType::kTrie:
        for (const auto& [key, page] : sf.trie_postings) {
          trie_builder.Add(key, first_page + page);
        }
        break;
      case IndexType::kFm:
        for (const Buffer& text : sf.fm_page_texts) {
          fm_builder.AddPreparedPage(Slice(text));
        }
        break;
      case IndexType::kIvfPq:
        for (size_t v = 0; v < sf.vector_locations.size(); ++v) {
          ivf_builder->Add(sf.vectors.data() + v * dim,
                           first_page + sf.vector_locations[v].first,
                           sf.vector_locations[v].second);
        }
        break;
      case IndexType::kKeyword:
        for (size_t p = 0; p < sf.keyword_page_tokens.size(); ++p) {
          for (std::string& term : sf.keyword_page_tokens[p]) {
            keyword_builder.Add(std::move(term),
                                first_page + static_cast<PageId>(p));
          }
        }
        break;
    }
    report.covered_files.push_back(files[i].path);
    report.rows += files[i].rows;

    // Release the byte budget and wake stalled stagers.
    {
      std::lock_guard<std::mutex> lock(pipe.mu);
      pipe.staged_bytes -= sf.staged_bytes;
      pipe.next_consume = i + 1;
      pipe.cv.notify_all();
    }
    staged[i] = StagedFile();  // Free the staged payload eagerly.
  }
  if (helpers > 0) join_helpers();

  // Merge per-file traces in file order — also on failure, so aborted ops
  // still account for the IO they did. Waves of plan.parallelism chains
  // overlap; serial builds pay the chains back to back. The span tree
  // mirrors the same structure: one `stage:<file>` child per staged file,
  // carrying its chain's trace totals as exclusive I/O. (No enclosing
  // phase span around the pipeline — the staging I/O is already claimed by
  // the stage spans, and a phase delta would claim it a second time.)
  internal::MergeWaves(trace, child_traces, plan.parallelism);
  if (op != nullptr && op->tracing()) {
    Micros now = op->NowMicros();
    for (size_t i = 0; i < n; ++i) {
      obs::SpanId sid = op->tracer()->StartSpan("stage:" + files[i].path,
                                                op->root_id(), now);
      op->Attribute(sid, internal::SpanIoFromTrace(child_traces[i]));
      op->tracer()->EndSpan(sid, now);
    }
  }
  ROTTNEST_RETURN_NOT_OK(pipeline_status);

  Buffer image;
  {
    internal::OpPhase phase(op, "build");
    ThreadPool* finish_pool = plan.parallelism > 1 ? &pool_ : nullptr;
    switch (type) {
      case IndexType::kTrie:
        ROTTNEST_RETURN_NOT_OK(
            trie_builder.Finish(pages, finish_pool, &image));
        break;
      case IndexType::kFm:
        ROTTNEST_RETURN_NOT_OK(fm_builder.Finish(pages, finish_pool, &image));
        break;
      case IndexType::kIvfPq:
        ROTTNEST_RETURN_NOT_OK(
            ivf_builder->Finish(pages, finish_pool, &image));
        break;
      case IndexType::kKeyword:
        ROTTNEST_RETURN_NOT_OK(
            keyword_builder.Finish(pages, finish_pool, &image));
        break;
    }
  }
  if (store_->clock().NowMicros() >= plan.deadline) {
    return Status::Aborted("index operation exceeded timeout");
  }

  // Upload, then commit (upload-before-commit preserves Existence).
  report.index_path = NewIndexName();
  {
    internal::OpPhase phase(op, "upload");
    ROTTNEST_RETURN_NOT_OK(store_->Put(report.index_path, Slice(image)));
  }
  return report;
}

Result<IndexReport> Rottnest::Index(const std::string& column, IndexType type,
                                    const MaintenanceOptions& opts) {
  auto wall_start = std::chrono::steady_clock::now();
  Micros start = store_->clock().NowMicros();
  MaintenancePlan plan = ResolveMaintenance(opts, start);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "index");
  objectstore::IoTrace local;

  // Plan: snapshot files not yet indexed for (column, type). Cost model:
  // one manifest read + one metadata-table read.
  std::vector<DataFile> fresh;
  uint64_t fresh_rows = 0;
  {
    internal::OpPhase phase(&op, "plan");
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(Snapshot snapshot, table_->GetSnapshot());
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> entries,
                              metadata_.ReadAll());
    std::set<std::string> indexed;
    for (const IndexEntry& e : entries) {
      if (e.column != column || e.index_type != IndexTypeName(type)) continue;
      indexed.insert(e.covered_files.begin(), e.covered_files.end());
    }
    for (const DataFile& f : snapshot.files) {
      if (indexed.count(f.path) == 0) {
        fresh.push_back(f);
        fresh_rows += f.rows;
      }
    }
  }
  IndexReport report;
  if (fresh.empty()) {  // Nothing to do.
    FinishMaintenanceStats(&local, opts, plan, wall_start, &op,
                           &report.stats);
    return report;
  }
  if (type == IndexType::kIvfPq &&
      fresh_rows < options_.min_vector_index_rows) {
    return Status::Aborted(
        "below vector index minimum size; leave to brute-force scan");
  }
  if (opts.dry_run) {
    for (const DataFile& f : fresh) report.covered_files.push_back(f.path);
    report.rows = fresh_rows;
    FinishMaintenanceStats(&local, opts, plan, wall_start, &op,
                           &report.stats);
    return report;
  }

  ROTTNEST_ASSIGN_OR_RETURN(
      report, BuildIndexFile(column, type, fresh, plan, &local, &op));

  // Commit.
  {
    internal::OpPhase phase(&op, "commit");
    IndexEntry entry;
    entry.index_path = report.index_path;
    entry.index_type = IndexTypeName(type);
    entry.column = column;
    entry.covered_files = report.covered_files;
    entry.rows = report.rows;
    entry.created_micros = store_->clock().NowMicros();
    auto committed = metadata_.Update({entry}, {});
    if (!committed.ok()) return committed.status();
  }
  FinishMaintenanceStats(&local, opts, plan, wall_start, &op, &report.stats);
  return report;
}

// ---------------------------------------------------------------------------
// search

Status Rottnest::MakePlan(const std::string& column, IndexType type,
                          lake::Version snapshot_version,
                          objectstore::IoTrace* trace, Plan* out) {
  // Plan cost model: one manifest read + one metadata-table read.
  if (trace != nullptr) trace->RecordList();
  ROTTNEST_ASSIGN_OR_RETURN(out->snapshot,
                            table_->GetSnapshot(snapshot_version));
  if (trace != nullptr) trace->RecordList();
  ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> entries,
                            metadata_.ReadAll());

  out->column_index = table_->schema().FindColumn(column);
  if (out->column_index < 0) {
    return Status::InvalidArgument("no such column: " + column);
  }

  std::set<std::string> covered;
  for (const IndexEntry& e : entries) {
    if (e.column != column || e.index_type != IndexTypeName(type)) continue;
    // An index is relevant iff it covers at least one live snapshot file.
    bool relevant = false;
    for (const std::string& f : e.covered_files) {
      if (out->snapshot.ContainsFile(f)) {
        relevant = true;
        covered.insert(f);
      }
    }
    if (relevant) out->indexes.push_back(e);
  }
  for (const DataFile& f : out->snapshot.files) {
    if (covered.count(f.path) == 0) out->unindexed.push_back(f);
  }
  return Status::OK();
}

Status Rottnest::ProbePages(const std::vector<PageFetch>& fetches,
                            const ColumnSchema& column_schema,
                            objectstore::IoTrace* trace,
                            std::vector<ColumnVector>* out) {
  return format::ReadPages(read_store(), fetches, column_schema, &pool_,
                           trace, out);
}

namespace {

/// Per-query miss log ("Cracking Vector Search Indexes", PAPERS.md): how
/// many snapshot data files the planner found covered by NO index of the
/// queried kind. Recorded on every search so a future query-adaptive
/// Index/Compact can prioritize hot uncovered partitions. `result` may be
/// null (counting queries have no SearchResult surface).
void RecordUncovered(const SearchOptions& opts, size_t uncovered,
                     SearchResult* result) {
  if (result != nullptr) result->stats.uncovered_files = uncovered;
  if (uncovered > 0 && opts.obs != nullptr && opts.obs->metrics != nullptr) {
    opts.obs->metrics->GetCounter("op.search.uncovered_files")
        ->Add(uncovered);
  }
}

}  // namespace

Result<SearchResult> Rottnest::ExecUuid(const std::string& column,
                                        Slice value, size_t k,
                                        const SearchOptions& opts) {
  objectstore::IoTrace* trace = opts.trace;
  auto wall_start = std::chrono::steady_clock::now();
  // End-to-end deadline (0 = none, submit-time absolute wins — see
  // ResolveSearchDeadline). Admission/overload policy lives in the serving
  // layer; a direct call runs unadmitted.
  Deadline deadline = ResolveSearchDeadline(opts, &store_->clock());
  ScopedOpDeadline ambient(deadline);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "search_uuid");
  Plan plan;
  {
    internal::OpPhase phase(&op, "plan");
    ROTTNEST_RETURN_NOT_OK(
        MakePlan(column, IndexType::kTrie, opts.snapshot, trace, &plan));
  }
  const ColumnSchema& col_schema =
      table_->schema().columns[plan.column_index];
  RangeFilter rf(read_store(), table_->schema(), opts.range);
  ROTTNEST_RETURN_NOT_OK(rf.Validate());
  index::Key128 key = index::KeyFromValue(value);

  SearchResult result;
  RecordUncovered(opts, plan.unindexed.size(), &result);
  DvCache dvs(table_, plan.snapshot);
  std::set<std::pair<std::string, uint64_t>> seen;

  // Fan out: query the applicable index files concurrently, each task
  // collecting page fetches (filtered to the snapshot) into its own slot,
  // then aggregate in plan order. A failing index degrades to scanning its
  // covered files (below) rather than failing the whole query.
  std::vector<std::vector<PageFetch>> per_index(plan.indexes.size());
  std::vector<Status> statuses = FanOutIndexQueries(
      &pool_, plan.indexes.size(), opts.parallelism, deadline, trace, &op,
      [&](size_t i) { return "index:" + plan.indexes[i].index_path; },
      [&](size_t i, objectstore::IoTrace* t) -> Status {
        const IndexEntry& entry = plan.indexes[i];
        ROTTNEST_ASSIGN_OR_RETURN(
            std::unique_ptr<ComponentFileReader> reader,
            ComponentFileReader::Open(read_store(), entry.index_path, t));
        std::vector<PageId> hits;
        ROTTNEST_RETURN_NOT_OK(
            index::TrieQuery(reader.get(), &pool_, t, key, &hits));
        if (hits.empty()) return Status::OK();
        PageTable pages;
        ROTTNEST_RETURN_NOT_OK(
            index::LoadPageTable(reader.get(), &pool_, t, &pages));
        for (PageId p : hits) {
          // Filter postings pointing outside the snapshot (paper §IV-B
          // step 2).
          if (!plan.snapshot.ContainsFile(pages.file_of(p))) continue;
          per_index[i].push_back(pages.MakeFetch(p));
        }
        return Status::OK();
      });
  std::vector<PageFetch> fetches;
  DegradedIndexes degraded;
  size_t indexes_cut = 0;
  for (size_t i = 0; i < plan.indexes.size(); ++i) {
    if (statuses[i].ok()) {
      degraded.RecordSuccess(plan.indexes[i]);
      fetches.insert(fetches.end(), per_index[i].begin(),
                     per_index[i].end());
    } else if (IsCutShort(statuses[i])) {
      // Deadline/breaker cuts degrade to a partial result, NOT to the
      // brute-scan fallback a corrupt index gets.
      MarkCutShort(&result, plan.indexes[i].index_path, statuses[i]);
      ++indexes_cut;
    } else {
      degraded.RecordFailure(plan.indexes[i], statuses[i], &result);
    }
  }
  result.indexes_queried =
      plan.indexes.size() - result.indexes_degraded - indexes_cut;
  result.indexes_quarantined =
      HandleSearchFailures(opts, degraded.failures());

  // In-situ probing: verify candidate pages against the actual value.
  {
    internal::OpPhase phase(&op, "probe");
    auto probe = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("probe"));
      std::vector<ColumnVector> probed;
      ROTTNEST_RETURN_NOT_OK(ProbePages(fetches, col_schema, trace, &probed));
      result.pages_probed = fetches.size();
      for (size_t i = 0; i < fetches.size(); ++i) {
        for (size_t r = 0; r < probed[i].size(); ++r) {
          std::string v = ValueAt(probed[i], r);
          if (Slice(v) == value) {
            uint64_t row = fetches[i].page.first_row + r;
            ROTTNEST_ASSIGN_OR_RETURN(bool deleted,
                                      dvs.IsDeleted(fetches[i].key, row));
            if (deleted) continue;
            if (seen.insert({fetches[i].key, row}).second) {
              result.matches.push_back({fetches[i].key, row, v, 0});
            }
          }
        }
      }
      return rf.FilterMatches(&result.matches, trace);
    };
    Status probe_status = probe();
    if (IsCutShort(probe_status)) {
      MarkCutShort(&result, "probe", probe_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(probe_status);
    }
  }

  {
    internal::OpPhase phase(&op, "scan");
    // Degraded fallback: files whose only index coverage failed are
    // scanned unconditionally (a fault-free query would have consulted
    // their index regardless of k).
    auto scan_for_value = [&](const std::string& file) -> Status {
      bool scanned = false;
      ROTTNEST_RETURN_NOT_OK(ScanFileRows(
          read_store(), file, plan.column_index, &rf, deadline, trace,
          &scanned,
          [&](uint64_t row, const std::string& v) -> Status {
            if (!(Slice(v) == value)) return Status::OK();
            ROTTNEST_ASSIGN_OR_RETURN(bool deleted, dvs.IsDeleted(file, row));
            if (deleted) return Status::OK();
            if (seen.insert({file, row}).second) {
              result.matches.push_back({file, row, v, 0});
            }
            return Status::OK();
          }));
      if (scanned) ++result.files_scanned;
      return Status::OK();
    };
    auto scan = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("scan"));
      for (const DataFile* f : degraded.FilesToScan(plan.snapshot)) {
        ROTTNEST_RETURN_NOT_OK(scan_for_value(f->path));
      }
      // Unindexed fallback: scan only if the exact-match top-k is
      // unsatisfied.
      if (result.matches.size() < k) {
        for (const DataFile& f : plan.unindexed) {
          ROTTNEST_RETURN_NOT_OK(scan_for_value(f.path));
          if (result.matches.size() >= k) break;
        }
      }
      return Status::OK();
    };
    Status scan_status = scan();
    if (IsCutShort(scan_status)) {
      MarkCutShort(&result, "scan", scan_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(scan_status);
    }
  }
  if (result.matches.size() > k) result.matches.resize(k);
  FinishSearchStats(opts, op, wall_start,
                    ResolvedFanOut(plan.indexes.size(), opts.parallelism),
                    &result);
  return result;
}

Result<SearchResult> Rottnest::ExecSubstring(const std::string& column,
                                             const std::string& pattern,
                                             size_t k,
                                             const SearchOptions& opts) {
  objectstore::IoTrace* trace = opts.trace;
  auto wall_start = std::chrono::steady_clock::now();
  Deadline deadline = ResolveSearchDeadline(opts, &store_->clock());
  ScopedOpDeadline ambient(deadline);
  internal::OpObs op(store_, cache_store_.get(), opts.obs,
                     "search_substring");
  Plan plan;
  {
    internal::OpPhase phase(&op, "plan");
    ROTTNEST_RETURN_NOT_OK(
        MakePlan(column, IndexType::kFm, opts.snapshot, trace, &plan));
  }
  const ColumnSchema& col_schema =
      table_->schema().columns[plan.column_index];
  RangeFilter rf(read_store(), table_->schema(), opts.range);
  ROTTNEST_RETURN_NOT_OK(rf.Validate());

  SearchResult result;
  RecordUncovered(opts, plan.unindexed.size(), &result);
  DvCache dvs(table_, plan.snapshot);
  std::set<std::pair<std::string, uint64_t>> seen;

  // Fan out across the applicable FM-indexes (same shape as SearchUuid):
  // per-task fetch slots, plan-order aggregation, per-entry degradation.
  std::vector<std::vector<PageFetch>> per_index(plan.indexes.size());
  std::vector<Status> statuses = FanOutIndexQueries(
      &pool_, plan.indexes.size(), opts.parallelism, deadline, trace, &op,
      [&](size_t i) { return "index:" + plan.indexes[i].index_path; },
      [&](size_t i, objectstore::IoTrace* t) -> Status {
        const IndexEntry& entry = plan.indexes[i];
        ROTTNEST_ASSIGN_OR_RETURN(
            std::unique_ptr<ComponentFileReader> reader,
            ComponentFileReader::Open(read_store(), entry.index_path, t));
        std::vector<PageId> hits;
        // Locate generously beyond k: occurrences cluster within pages.
        ROTTNEST_RETURN_NOT_OK(index::FmLocatePages(
            reader.get(), &pool_, t, Slice(pattern), 4 * k + 16, &hits));
        if (hits.empty()) return Status::OK();
        PageTable pages;
        ROTTNEST_RETURN_NOT_OK(
            index::LoadPageTable(reader.get(), &pool_, t, &pages));
        for (PageId p : hits) {
          if (!plan.snapshot.ContainsFile(pages.file_of(p))) continue;
          per_index[i].push_back(pages.MakeFetch(p));
        }
        return Status::OK();
      });
  std::vector<PageFetch> fetches;
  DegradedIndexes degraded;
  size_t indexes_cut = 0;
  for (size_t i = 0; i < plan.indexes.size(); ++i) {
    if (statuses[i].ok()) {
      degraded.RecordSuccess(plan.indexes[i]);
      fetches.insert(fetches.end(), per_index[i].begin(),
                     per_index[i].end());
    } else if (IsCutShort(statuses[i])) {
      // Deadline/breaker cuts degrade to a partial result, NOT to the
      // brute-scan fallback a corrupt index gets.
      MarkCutShort(&result, plan.indexes[i].index_path, statuses[i]);
      ++indexes_cut;
    } else {
      degraded.RecordFailure(plan.indexes[i], statuses[i], &result);
    }
  }
  result.indexes_queried =
      plan.indexes.size() - result.indexes_degraded - indexes_cut;
  result.indexes_quarantined =
      HandleSearchFailures(opts, degraded.failures());

  {
    internal::OpPhase phase(&op, "probe");
    auto probe = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("probe"));
      std::vector<ColumnVector> probed;
      ROTTNEST_RETURN_NOT_OK(ProbePages(fetches, col_schema, trace, &probed));
      result.pages_probed = fetches.size();
      for (size_t i = 0; i < fetches.size(); ++i) {
        for (size_t r = 0; r < probed[i].size(); ++r) {
          std::string v = ValueAt(probed[i], r);
          if (v.find(pattern) == std::string::npos) continue;
          uint64_t row = fetches[i].page.first_row + r;
          ROTTNEST_ASSIGN_OR_RETURN(bool deleted,
                                    dvs.IsDeleted(fetches[i].key, row));
          if (deleted) continue;
          if (seen.insert({fetches[i].key, row}).second) {
            result.matches.push_back({fetches[i].key, row, v, 0});
          }
        }
      }
      return rf.FilterMatches(&result.matches, trace);
    };
    Status probe_status = probe();
    if (IsCutShort(probe_status)) {
      MarkCutShort(&result, "probe", probe_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(probe_status);
    }
  }

  {
    internal::OpPhase phase(&op, "scan");
    // Degraded fallback first (unconditional), then the unindexed
    // fallback (only if top-k is unsatisfied).
    auto scan_for_pattern = [&](const std::string& file) -> Status {
      bool scanned = false;
      ROTTNEST_RETURN_NOT_OK(ScanFileRows(
          read_store(), file, plan.column_index, &rf, deadline, trace,
          &scanned,
          [&](uint64_t row, const std::string& v) -> Status {
            if (v.find(pattern) == std::string::npos) return Status::OK();
            ROTTNEST_ASSIGN_OR_RETURN(bool deleted, dvs.IsDeleted(file, row));
            if (deleted) return Status::OK();
            if (seen.insert({file, row}).second) {
              result.matches.push_back({file, row, v, 0});
            }
            return Status::OK();
          }));
      if (scanned) ++result.files_scanned;
      return Status::OK();
    };
    auto scan = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("scan"));
      for (const DataFile* f : degraded.FilesToScan(plan.snapshot)) {
        ROTTNEST_RETURN_NOT_OK(scan_for_pattern(f->path));
      }
      if (result.matches.size() < k) {
        for (const DataFile& f : plan.unindexed) {
          ROTTNEST_RETURN_NOT_OK(scan_for_pattern(f.path));
          if (result.matches.size() >= k) break;
        }
      }
      return Status::OK();
    };
    Status scan_status = scan();
    if (IsCutShort(scan_status)) {
      MarkCutShort(&result, "scan", scan_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(scan_status);
    }
  }
  if (result.matches.size() > k) result.matches.resize(k);
  FinishSearchStats(opts, op, wall_start,
                    ResolvedFanOut(plan.indexes.size(), opts.parallelism),
                    &result);
  return result;
}

Result<SearchResult> Rottnest::ExecVector(const std::string& column,
                                          const float* query, uint32_t dim,
                                          size_t k,
                                          const SearchOptions& opts) {
  objectstore::IoTrace* trace = opts.trace;
  auto wall_start = std::chrono::steady_clock::now();
  Deadline deadline = ResolveSearchDeadline(opts, &store_->clock());
  ScopedOpDeadline ambient(deadline);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "search_vector");
  // Per-query knobs default from the client's IvfPqOptions (v2 API).
  const uint32_t nprobe = opts.params.vector.nprobe != 0
                              ? opts.params.vector.nprobe
                              : options_.ivfpq.default_nprobe;
  const uint32_t refine = opts.params.vector.refine != 0
                              ? opts.params.vector.refine
                              : options_.ivfpq.default_refine;
  Plan plan;
  {
    internal::OpPhase phase(&op, "plan");
    ROTTNEST_RETURN_NOT_OK(
        MakePlan(column, IndexType::kIvfPq, opts.snapshot, trace, &plan));
  }
  const ColumnSchema& col_schema =
      table_->schema().columns[plan.column_index];
  if (col_schema.fixed_len != dim * 4) {
    return Status::InvalidArgument("query dim does not match column");
  }
  RangeFilter rf(read_store(), table_->schema(), opts.range);
  ROTTNEST_RETURN_NOT_OK(rf.Validate());

  SearchResult result;
  RecordUncovered(opts, plan.unindexed.size(), &result);
  DvCache dvs(table_, plan.snapshot);

  // Gather approximate candidates across all index files — one fan-out
  // task per index, aggregated in plan order so the global refine cut is
  // deterministic.
  struct Cand {
    std::string file;
    PageId page_in_table;
    PageFetch fetch;
    uint32_t row_in_page;
    float approx;
  };
  std::vector<std::vector<Cand>> per_index(plan.indexes.size());
  std::vector<Status> statuses = FanOutIndexQueries(
      &pool_, plan.indexes.size(), opts.parallelism, deadline, trace, &op,
      [&](size_t i) { return "index:" + plan.indexes[i].index_path; },
      [&](size_t i, objectstore::IoTrace* t) -> Status {
        const IndexEntry& entry = plan.indexes[i];
        ROTTNEST_ASSIGN_OR_RETURN(
            std::unique_ptr<ComponentFileReader> reader,
            ComponentFileReader::Open(read_store(), entry.index_path, t));
        std::vector<index::VectorCandidate> hits;
        ROTTNEST_RETURN_NOT_OK(index::IvfPqSearch(reader.get(), &pool_, t,
                                                  query, dim, nprobe, refine,
                                                  &hits));
        if (hits.empty()) return Status::OK();
        PageTable pages;
        ROTTNEST_RETURN_NOT_OK(
            index::LoadPageTable(reader.get(), &pool_, t, &pages));
        for (const auto& h : hits) {
          if (!plan.snapshot.ContainsFile(pages.file_of(h.page))) continue;
          per_index[i].push_back({pages.file_of(h.page), h.page,
                                  pages.MakeFetch(h.page), h.row_in_page,
                                  h.approx_dist});
        }
        return Status::OK();
      });
  std::vector<Cand> candidates;
  DegradedIndexes degraded;
  size_t indexes_cut = 0;
  for (size_t i = 0; i < plan.indexes.size(); ++i) {
    if (statuses[i].ok()) {
      degraded.RecordSuccess(plan.indexes[i]);
      candidates.insert(candidates.end(), per_index[i].begin(),
                        per_index[i].end());
    } else if (IsCutShort(statuses[i])) {
      MarkCutShort(&result, plan.indexes[i].index_path, statuses[i]);
      ++indexes_cut;
    } else {
      degraded.RecordFailure(plan.indexes[i], statuses[i], &result);
    }
  }
  result.indexes_queried =
      plan.indexes.size() - result.indexes_degraded - indexes_cut;
  result.indexes_quarantined =
      HandleSearchFailures(opts, degraded.failures());

  // Keep the globally best `refine` candidates for exact reranking.
  std::sort(candidates.begin(), candidates.end(),
            [](const Cand& a, const Cand& b) { return a.approx < b.approx; });
  if (candidates.size() > refine) candidates.resize(refine);

  std::set<std::pair<std::string, uint64_t>> seen;
  std::vector<RowMatch> matches;
  {
    internal::OpPhase phase(&op, "probe");
    auto probe = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("probe"));
      // Fetch candidate pages (deduplicated) in one round.
      std::map<std::pair<std::string, uint64_t>, size_t> fetch_index;
      std::vector<PageFetch> fetches;
      for (const Cand& c : candidates) {
        auto key = std::make_pair(c.fetch.key, c.fetch.page.offset);
        if (fetch_index.emplace(key, fetches.size()).second) {
          fetches.push_back(c.fetch);
        }
      }
      std::vector<ColumnVector> probed;
      ROTTNEST_RETURN_NOT_OK(ProbePages(fetches, col_schema, trace, &probed));
      result.pages_probed = fetches.size();

      for (const Cand& c : candidates) {
        size_t fi = fetch_index.at({c.fetch.key, c.fetch.page.offset});
        if (c.row_in_page >= probed[fi].size()) continue;
        Slice raw = probed[fi].fixed().at(c.row_in_page);
        float dist =
            index::SquaredL2(query, index::VectorFromValue(raw), dim);
        uint64_t row = c.fetch.page.first_row + c.row_in_page;
        ROTTNEST_ASSIGN_OR_RETURN(bool deleted, dvs.IsDeleted(c.file, row));
        if (deleted) continue;
        if (!seen.insert({c.file, row}).second) continue;
        matches.push_back({c.file, row, raw.ToString(), dist});
      }
      return rf.FilterMatches(&matches, trace);
    };
    Status probe_status = probe();
    if (IsCutShort(probe_status)) {
      MarkCutShort(&result, "probe", probe_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(probe_status);
    }
  }

  {
    internal::OpPhase phase(&op, "scan");
    // Scoring queries must rank ALL data: unindexed files are always
    // scanned exhaustively (paper §IV-B step 3), and so are files whose
    // only index coverage degraded.
    auto scan = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("scan"));
      std::vector<const DataFile*> to_scan;
      for (const DataFile& f : plan.unindexed) to_scan.push_back(&f);
      for (const DataFile* f : degraded.FilesToScan(plan.snapshot)) {
        to_scan.push_back(f);
      }
      for (const DataFile* f : to_scan) {
        const std::string& path = f->path;
        bool scanned = false;
        ROTTNEST_RETURN_NOT_OK(ScanFileRows(
            read_store(), path, plan.column_index, &rf, deadline, trace,
            &scanned,
            [&](uint64_t row, const std::string& v) -> Status {
              float dist = index::SquaredL2(
                  query, reinterpret_cast<const float*>(v.data()), dim);
              ROTTNEST_ASSIGN_OR_RETURN(bool deleted,
                                        dvs.IsDeleted(path, row));
              if (deleted) return Status::OK();
              if (!seen.insert({path, row}).second) return Status::OK();
              matches.push_back({path, row, v, dist});
              return Status::OK();
            }));
        if (scanned) ++result.files_scanned;
      }
      return Status::OK();
    };
    Status scan_status = scan();
    if (IsCutShort(scan_status)) {
      MarkCutShort(&result, "scan", scan_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(scan_status);
    }
  }

  std::sort(matches.begin(), matches.end(),
            [](const RowMatch& a, const RowMatch& b) {
              return a.distance < b.distance;
            });
  if (matches.size() > k) matches.resize(k);
  result.matches = std::move(matches);
  FinishSearchStats(opts, op, wall_start,
                    ResolvedFanOut(plan.indexes.size(), opts.parallelism),
                    &result);
  return result;
}

Result<SearchResult> Rottnest::ExecRegex(const std::string& column,
                                         const std::string& pattern,
                                         size_t k,
                                         const SearchOptions& opts) {
  std::regex re;
  // <regex> throws on bad patterns; confine it here and convert to Status
  // (library code is otherwise exception-free).
  try {
    re.assign(pattern, std::regex::ECMAScript);
  } catch (const std::regex_error& e) {
    return Status::InvalidArgument(std::string("bad regex: ") + e.what());
  }

  std::string literal = LongestRegexLiteral(pattern);
  if (literal.size() >= 3) {
    // Locate the guaranteed literal through the FM-index, then verify the
    // full regex in situ on every candidate (the literal-prefilter strategy
    // of production log search).
    SearchOptions inner = opts;
    ROTTNEST_ASSIGN_OR_RETURN(
        SearchResult candidates,
        ExecSubstring(column, literal, std::max(k * 8, k + 32), inner));
    SearchResult result;
    result.indexes_queried = candidates.indexes_queried;
    result.files_scanned = candidates.files_scanned;
    result.pages_probed = candidates.pages_probed;
    result.indexes_degraded = candidates.indexes_degraded;
    result.degraded_indexes = std::move(candidates.degraded_indexes);
    result.stats = candidates.stats;
    result.indexes_quarantined = candidates.indexes_quarantined;
    result.partial = candidates.partial;
    result.cut_short = std::move(candidates.cut_short);
    result.partial_reason = std::move(candidates.partial_reason);
    for (RowMatch& m : candidates.matches) {
      if (std::regex_search(m.value, re)) {
        result.matches.push_back(std::move(m));
        if (result.matches.size() >= k) break;
      }
    }
    return result;
  }

  // No usable literal: brute-force scan every file in the snapshot.
  auto wall_start = std::chrono::steady_clock::now();
  Deadline deadline = ResolveSearchDeadline(opts, &store_->clock());
  ScopedOpDeadline ambient(deadline);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "search_regex");
  Plan plan;
  {
    internal::OpPhase phase(&op, "plan");
    ROTTNEST_RETURN_NOT_OK(
        MakePlan(column, IndexType::kFm, opts.snapshot, opts.trace, &plan));
  }
  RangeFilter rf(read_store(), table_->schema(), opts.range);
  ROTTNEST_RETURN_NOT_OK(rf.Validate());
  DvCache dvs(table_, plan.snapshot);
  SearchResult result;
  RecordUncovered(opts, plan.unindexed.size(), &result);
  {
    internal::OpPhase phase(&op, "scan");
    auto scan = [&]() -> Status {
      for (const DataFile& f : plan.snapshot.files) {
        bool scanned = false;
        ROTTNEST_RETURN_NOT_OK(ScanFileRows(
            read_store(), f.path, plan.column_index, &rf, deadline,
            opts.trace, &scanned,
            [&](uint64_t row, const std::string& v) -> Status {
              if (result.matches.size() >= k) return Status::OK();
              if (!std::regex_search(v, re)) return Status::OK();
              ROTTNEST_ASSIGN_OR_RETURN(bool deleted,
                                        dvs.IsDeleted(f.path, row));
              if (deleted) return Status::OK();
              result.matches.push_back({f.path, row, v, 0});
              return Status::OK();
            }));
        if (scanned) ++result.files_scanned;
        if (result.matches.size() >= k) break;
      }
      return Status::OK();
    };
    Status scan_status = scan();
    if (IsCutShort(scan_status)) {
      MarkCutShort(&result, "scan", scan_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(scan_status);
    }
  }
  FinishSearchStats(opts, op, wall_start, 1, &result);
  return result;
}

Result<SearchResult> Rottnest::ExecKeyword(const std::string& column,
                                           const std::vector<std::string>& terms,
                                           size_t k,
                                           const SearchOptions& opts) {
  // Normalize the query through the SAME tokenizer the build used. Each
  // term must normalize to exactly one token — "foo bar" as one term is a
  // malformed query, not an AND of two.
  const bool require_all = opts.params.keyword.mode == KeywordMode::kAnd;
  if (terms.empty()) {
    return Status::InvalidArgument("keyword query needs at least one term");
  }
  std::vector<std::string> norm;
  norm.reserve(terms.size());
  for (const std::string& t : terms) {
    std::string one;
    if (!index::NormalizeTerm(Slice(t), &one)) {
      return Status::InvalidArgument(
          "keyword term must normalize to exactly one token: '" + t + "'");
    }
    norm.push_back(std::move(one));
  }
  std::sort(norm.begin(), norm.end());
  norm.erase(std::unique(norm.begin(), norm.end()), norm.end());
  if (norm.size() > opts.params.keyword.max_terms) {
    return Status::InvalidArgument("keyword query exceeds max_terms");
  }

  objectstore::IoTrace* trace = opts.trace;
  auto wall_start = std::chrono::steady_clock::now();
  Deadline deadline = ResolveSearchDeadline(opts, &store_->clock());
  ScopedOpDeadline ambient(deadline);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "search_keyword");
  Plan plan;
  {
    internal::OpPhase phase(&op, "plan");
    ROTTNEST_RETURN_NOT_OK(
        MakePlan(column, IndexType::kKeyword, opts.snapshot, trace, &plan));
  }
  const ColumnSchema& col_schema =
      table_->schema().columns[plan.column_index];
  RangeFilter rf(read_store(), table_->schema(), opts.range);
  ROTTNEST_RETURN_NOT_OK(rf.Validate());

  // The in-situ verification predicate: a row matches when its token set
  // contains every (AND) / any (OR) query term. Page hits are a superset
  // signal — a page holds many rows — so verification is what makes the
  // matches exact.
  auto row_matches = [&](const std::string& v) {
    std::vector<std::string> toks;
    index::Tokenize(Slice(v), &toks);
    std::sort(toks.begin(), toks.end());
    if (require_all) {
      for (const std::string& t : norm) {
        if (!std::binary_search(toks.begin(), toks.end(), t)) return false;
      }
      return true;
    }
    for (const std::string& t : norm) {
      if (std::binary_search(toks.begin(), toks.end(), t)) return true;
    }
    return false;
  };

  SearchResult result;
  RecordUncovered(opts, plan.unindexed.size(), &result);
  DvCache dvs(table_, plan.snapshot);
  std::set<std::pair<std::string, uint64_t>> seen;

  // Fan out across the applicable keyword indexes (same shape as
  // SearchUuid): per-task fetch slots, plan-order aggregation, per-entry
  // degradation.
  std::vector<std::vector<PageFetch>> per_index(plan.indexes.size());
  std::vector<Status> statuses = FanOutIndexQueries(
      &pool_, plan.indexes.size(), opts.parallelism, deadline, trace, &op,
      [&](size_t i) { return "index:" + plan.indexes[i].index_path; },
      [&](size_t i, objectstore::IoTrace* t) -> Status {
        const IndexEntry& entry = plan.indexes[i];
        ROTTNEST_ASSIGN_OR_RETURN(
            std::unique_ptr<ComponentFileReader> reader,
            ComponentFileReader::Open(read_store(), entry.index_path, t));
        std::vector<PageId> hits;
        ROTTNEST_RETURN_NOT_OK(index::KeywordQueryMany(
            reader.get(), &pool_, t, norm, require_all, &hits));
        if (hits.empty()) return Status::OK();
        PageTable pages;
        ROTTNEST_RETURN_NOT_OK(
            index::LoadPageTable(reader.get(), &pool_, t, &pages));
        for (PageId p : hits) {
          if (!plan.snapshot.ContainsFile(pages.file_of(p))) continue;
          per_index[i].push_back(pages.MakeFetch(p));
        }
        return Status::OK();
      });
  std::vector<PageFetch> fetches;
  DegradedIndexes degraded;
  size_t indexes_cut = 0;
  for (size_t i = 0; i < plan.indexes.size(); ++i) {
    if (statuses[i].ok()) {
      degraded.RecordSuccess(plan.indexes[i]);
      fetches.insert(fetches.end(), per_index[i].begin(),
                     per_index[i].end());
    } else if (IsCutShort(statuses[i])) {
      // Deadline/breaker cuts degrade to a partial result, NOT to the
      // brute-scan fallback a corrupt index gets.
      MarkCutShort(&result, plan.indexes[i].index_path, statuses[i]);
      ++indexes_cut;
    } else {
      degraded.RecordFailure(plan.indexes[i], statuses[i], &result);
    }
  }
  result.indexes_queried =
      plan.indexes.size() - result.indexes_degraded - indexes_cut;
  result.indexes_quarantined =
      HandleSearchFailures(opts, degraded.failures());

  {
    internal::OpPhase phase(&op, "probe");
    auto probe = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("probe"));
      std::vector<ColumnVector> probed;
      ROTTNEST_RETURN_NOT_OK(ProbePages(fetches, col_schema, trace, &probed));
      result.pages_probed = fetches.size();
      for (size_t i = 0; i < fetches.size(); ++i) {
        for (size_t r = 0; r < probed[i].size(); ++r) {
          std::string v = ValueAt(probed[i], r);
          if (!row_matches(v)) continue;
          uint64_t row = fetches[i].page.first_row + r;
          ROTTNEST_ASSIGN_OR_RETURN(bool deleted,
                                    dvs.IsDeleted(fetches[i].key, row));
          if (deleted) continue;
          if (seen.insert({fetches[i].key, row}).second) {
            result.matches.push_back({fetches[i].key, row, v, 0});
          }
        }
      }
      return rf.FilterMatches(&result.matches, trace);
    };
    Status probe_status = probe();
    if (IsCutShort(probe_status)) {
      MarkCutShort(&result, "probe", probe_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(probe_status);
    }
  }

  {
    internal::OpPhase phase(&op, "scan");
    // Degraded fallback first (unconditional), then the unindexed
    // fallback (only if top-k is unsatisfied).
    auto scan_for_terms = [&](const std::string& file) -> Status {
      bool scanned = false;
      ROTTNEST_RETURN_NOT_OK(ScanFileRows(
          read_store(), file, plan.column_index, &rf, deadline, trace,
          &scanned,
          [&](uint64_t row, const std::string& v) -> Status {
            if (!row_matches(v)) return Status::OK();
            ROTTNEST_ASSIGN_OR_RETURN(bool deleted, dvs.IsDeleted(file, row));
            if (deleted) return Status::OK();
            if (seen.insert({file, row}).second) {
              result.matches.push_back({file, row, v, 0});
            }
            return Status::OK();
          }));
      if (scanned) ++result.files_scanned;
      return Status::OK();
    };
    auto scan = [&]() -> Status {
      ROTTNEST_RETURN_NOT_OK(deadline.Check("scan"));
      for (const DataFile* f : degraded.FilesToScan(plan.snapshot)) {
        ROTTNEST_RETURN_NOT_OK(scan_for_terms(f->path));
      }
      if (result.matches.size() < k) {
        for (const DataFile& f : plan.unindexed) {
          ROTTNEST_RETURN_NOT_OK(scan_for_terms(f.path));
          if (result.matches.size() >= k) break;
        }
      }
      return Status::OK();
    };
    Status scan_status = scan();
    if (IsCutShort(scan_status)) {
      MarkCutShort(&result, "scan", scan_status);
    } else {
      ROTTNEST_RETURN_NOT_OK(scan_status);
    }
  }
  if (result.matches.size() > k) result.matches.resize(k);
  FinishSearchStats(opts, op, wall_start,
                    ResolvedFanOut(plan.indexes.size(), opts.parallelism),
                    &result);
  return result;
}

Result<uint64_t> Rottnest::ExecCount(const std::string& column,
                                     const std::string& pattern,
                                     const SearchOptions& opts) {
  if (opts.range.has_value()) {
    return Status::NotSupported(
        "CountSubstring does not support ScanRange; use SearchSubstring");
  }
  internal::OpObs op(store_, cache_store_.get(), opts.obs,
                     "count_substring");
  Plan plan;
  {
    internal::OpPhase phase(&op, "plan");
    ROTTNEST_RETURN_NOT_OK(
        MakePlan(column, IndexType::kFm, opts.snapshot, opts.trace, &plan));
  }

  RecordUncovered(opts, plan.unindexed.size(), nullptr);

  // An index count is exact only when everything it covers is live and
  // deletion-free; otherwise those files are counted by scanning.
  std::set<std::string> scan_files;
  for (const DataFile& f : plan.unindexed) scan_files.insert(f.path);

  // Partition first (pure plan state, no IO): an index can answer exactly
  // only when everything it covers is live and deletion-free.
  std::vector<const IndexEntry*> exact_entries;
  for (const IndexEntry& entry : plan.indexes) {
    bool exact = true;
    for (const std::string& f : entry.covered_files) {
      const DataFile* df = plan.snapshot.FindFile(f);
      if (df == nullptr || !df->dv_path.empty()) {
        exact = false;
        break;
      }
    }
    if (!exact) {
      for (const std::string& f : entry.covered_files) {
        if (plan.snapshot.ContainsFile(f)) scan_files.insert(f);
      }
      continue;
    }
    exact_entries.push_back(&entry);
  }

  // Fan out the FM-index backward-search counts across the exact indexes.
  // No deadline: a count has no partial-result surface — it is exact or it
  // is an error — so the tail-tolerance contract does not apply here and
  // time_budget_micros is deliberately not plumbed through.
  std::vector<uint64_t> counts(exact_entries.size(), 0);
  std::vector<Status> statuses = FanOutIndexQueries(
      &pool_, exact_entries.size(), opts.parallelism, Deadline(), opts.trace,
      &op,
      [&](size_t i) { return "index:" + exact_entries[i]->index_path; },
      [&](size_t i, objectstore::IoTrace* t) -> Status {
        ROTTNEST_ASSIGN_OR_RETURN(
            std::unique_ptr<ComponentFileReader> reader,
            ComponentFileReader::Open(read_store(),
                                      exact_entries[i]->index_path, t));
        return index::FmCount(reader.get(), &pool_, t, Slice(pattern),
                              &counts[i]);
      });

  uint64_t total = 0;
  std::set<std::string> exact_counted;   // Files counted via an index.
  std::set<std::string> degraded_files;  // Covered by failed indexes only.
  std::vector<std::pair<const IndexEntry*, Status>> failed;
  for (size_t i = 0; i < exact_entries.size(); ++i) {
    const IndexEntry& entry = *exact_entries[i];
    if (!statuses[i].ok()) {
      // Degrade an unreadable index to scanning its covered files.
      for (const std::string& f : entry.covered_files) {
        if (plan.snapshot.ContainsFile(f)) degraded_files.insert(f);
      }
      failed.emplace_back(&entry, statuses[i]);
      continue;
    }
    total += counts[i];
    exact_counted.insert(entry.covered_files.begin(),
                         entry.covered_files.end());
  }
  HandleSearchFailures(opts, failed);
  // Files already counted through a healthy index must not be re-counted by
  // the degraded-scan path.
  for (const std::string& f : degraded_files) {
    if (exact_counted.count(f) == 0) scan_files.insert(f);
  }

  // Scan path: exact occurrence counting with deletion vectors applied.
  internal::OpPhase scan_phase(&op, "scan");
  DvCache dvs(table_, plan.snapshot);
  for (const std::string& file : scan_files) {
    auto reader_r = format::FileReader::Open(read_store(), file, opts.trace);
    if (!reader_r.ok()) return reader_r.status();
    ColumnVector col;
    ROTTNEST_RETURN_NOT_OK(
        reader_r.value()->ReadColumn(plan.column_index, opts.trace, &col));
    for (size_t r = 0; r < col.size(); ++r) {
      ROTTNEST_ASSIGN_OR_RETURN(bool deleted, dvs.IsDeleted(file, r));
      if (deleted) continue;
      const std::string& v = col.strings()[r];
      size_t pos = 0;
      while ((pos = v.find(pattern, pos)) != std::string::npos) {
        ++total;
        ++pos;
      }
    }
  }
  return total;
}

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kUuid:
      return "uuid";
    case QueryKind::kSubstring:
      return "substring";
    case QueryKind::kRegex:
      return "regex";
    case QueryKind::kVector:
      return "vector";
    case QueryKind::kKeyword:
      return "keyword";
    case QueryKind::kCount:
      return "count";
  }
  return "unknown";
}

Result<QueryResponse> Rottnest::Execute(const Query& q) {
  QueryResponse resp;
  resp.kind = q.kind;
  switch (q.kind) {
    case QueryKind::kUuid: {
      ROTTNEST_ASSIGN_OR_RETURN(
          resp.result, ExecUuid(q.column, Slice(q.needle), q.k, q.options));
      return resp;
    }
    case QueryKind::kSubstring: {
      ROTTNEST_ASSIGN_OR_RETURN(
          resp.result, ExecSubstring(q.column, q.needle, q.k, q.options));
      return resp;
    }
    case QueryKind::kRegex: {
      ROTTNEST_ASSIGN_OR_RETURN(
          resp.result, ExecRegex(q.column, q.needle, q.k, q.options));
      return resp;
    }
    case QueryKind::kVector: {
      if (q.vector.empty()) {
        return Status::InvalidArgument(
            "vector query requires a non-empty query vector");
      }
      ROTTNEST_ASSIGN_OR_RETURN(
          resp.result,
          ExecVector(q.column, q.vector.data(),
                     static_cast<uint32_t>(q.vector.size()), q.k, q.options));
      return resp;
    }
    case QueryKind::kKeyword: {
      if (q.terms.empty()) {
        return Status::InvalidArgument(
            "keyword query requires at least one term");
      }
      ROTTNEST_ASSIGN_OR_RETURN(
          resp.result, ExecKeyword(q.column, q.terms, q.k, q.options));
      return resp;
    }
    case QueryKind::kCount: {
      ROTTNEST_ASSIGN_OR_RETURN(resp.count,
                                ExecCount(q.column, q.needle, q.options));
      return resp;
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

// The classic per-kind methods: thin Query-building wrappers over Execute,
// so both spellings of the API share one code path (and one contract).

Result<SearchResult> Rottnest::SearchUuid(const std::string& column,
                                          Slice value, size_t k,
                                          const SearchOptions& opts) {
  ROTTNEST_ASSIGN_OR_RETURN(
      QueryResponse resp, Execute(Query::Uuid(column, value.ToString(), k, opts)));
  return std::move(resp.result);
}

Result<SearchResult> Rottnest::SearchSubstring(const std::string& column,
                                               const std::string& pattern,
                                               size_t k,
                                               const SearchOptions& opts) {
  ROTTNEST_ASSIGN_OR_RETURN(QueryResponse resp,
                            Execute(Query::Substring(column, pattern, k, opts)));
  return std::move(resp.result);
}

Result<SearchResult> Rottnest::SearchVector(const std::string& column,
                                            const float* query, uint32_t dim,
                                            size_t k,
                                            const SearchOptions& opts) {
  ROTTNEST_ASSIGN_OR_RETURN(
      QueryResponse resp,
      Execute(Query::Vector(column, std::vector<float>(query, query + dim), k,
                            opts)));
  return std::move(resp.result);
}

Result<SearchResult> Rottnest::SearchKeyword(const std::string& column,
                                             const std::vector<std::string>& terms,
                                             size_t k,
                                             const SearchOptions& opts) {
  ROTTNEST_ASSIGN_OR_RETURN(
      QueryResponse resp,
      Execute(Query::MakeKeyword(column, terms, opts.params.keyword.mode, k,
                                 opts)));
  return std::move(resp.result);
}

Result<SearchResult> Rottnest::SearchRegex(const std::string& column,
                                           const std::string& pattern,
                                           size_t k,
                                           const SearchOptions& opts) {
  ROTTNEST_ASSIGN_OR_RETURN(QueryResponse resp,
                            Execute(Query::Regex(column, pattern, k, opts)));
  return std::move(resp.result);
}

Result<uint64_t> Rottnest::CountSubstring(const std::string& column,
                                          const std::string& pattern,
                                          const SearchOptions& opts) {
  ROTTNEST_ASSIGN_OR_RETURN(QueryResponse resp,
                            Execute(Query::Count(column, pattern, opts)));
  return resp.count;
}

Result<std::vector<IndexDescription>> Rottnest::DescribeIndexes(
    const SearchOptions& opts) {
  // Same plan-state cost model as a search: metadata table + manifest.
  internal::OpObs op(store_, cache_store_.get(), opts.obs,
                     "describe_indexes");
  if (opts.trace != nullptr) opts.trace->RecordList();
  ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> entries,
                            metadata_.ReadAll());
  if (opts.trace != nullptr) opts.trace->RecordList();
  ROTTNEST_ASSIGN_OR_RETURN(Snapshot snapshot,
                            table_->GetSnapshot(opts.snapshot));
  std::vector<IndexDescription> result;
  result.reserve(entries.size());
  for (IndexEntry& e : entries) {
    IndexDescription d;
    objectstore::ObjectMeta meta;
    ROTTNEST_RETURN_NOT_OK(read_store()->Head(e.index_path, &meta));
    d.bytes = meta.size;
    for (const std::string& f : e.covered_files) {
      if (snapshot.ContainsFile(f)) {
        d.covers_live_files = true;
        break;
      }
    }
    d.entry = std::move(e);
    result.push_back(std::move(d));
  }
  return result;
}

// ---------------------------------------------------------------------------
// compact

Result<CompactReport> Rottnest::Compact(const std::string& column,
                                        IndexType type,
                                        const MaintenanceOptions& opts) {
  auto wall_start = std::chrono::steady_clock::now();
  Micros start = store_->clock().NowMicros();
  MaintenancePlan plan = ResolveMaintenance(opts, start);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "compact");
  objectstore::IoTrace local;

  // Plan: bin-pack all small index files of (column, type) into one merge.
  std::vector<IndexEntry> small;
  {
    internal::OpPhase phase(&op, "plan");
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> entries,
                              metadata_.ReadAll());
    for (const IndexEntry& e : entries) {
      if (e.column != column || e.index_type != IndexTypeName(type)) continue;
      objectstore::ObjectMeta meta;
      ROTTNEST_RETURN_NOT_OK(store_->Head(e.index_path, &meta));
      if (meta.size < opts.small_index_bytes) small.push_back(e);
    }
  }
  CompactReport report;
  if (small.size() < 2) {
    FinishMaintenanceStats(&local, opts, plan, wall_start, &op,
                           &report.stats);
    return report;
  }

  // Deterministic merge order. ReadAll orders entries by index path, and
  // index object names are randomized — so two processes compacting
  // identical logical state would otherwise merge in different orders and
  // emit different (equally valid) bytes. Sort by commit time, then first
  // covered file, then path, so the output depends only on logical state.
  std::sort(small.begin(), small.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              if (a.created_micros != b.created_micros) {
                return a.created_micros < b.created_micros;
              }
              const std::string& fa =
                  a.covered_files.empty() ? a.index_path : a.covered_files[0];
              const std::string& fb =
                  b.covered_files.empty() ? b.index_path : b.covered_files[0];
              if (fa != fb) return fa < fb;
              return a.index_path < b.index_path;
            });

  if (opts.dry_run) {
    for (const IndexEntry& e : small) report.replaced.push_back(e.index_path);
    FinishMaintenanceStats(&local, opts, plan, wall_start, &op,
                           &report.stats);
    return report;
  }

  // Open every input and prefetch its components concurrently (one IoTrace
  // per input, merged as parallel chains). Prefetching stops once the
  // cumulative input size exceeds the byte budget; unprefetched inputs are
  // instead streamed leaf-by-leaf during the merge.
  const size_t k = small.size();
  std::vector<std::unique_ptr<ComponentFileReader>> readers(k);
  std::vector<objectstore::IoTrace> child_traces(k);
  std::vector<Status> open_statuses(k, Status::OK());
  std::vector<char> prefetch(k, 0);
  {
    uint64_t cumulative = 0;
    for (size_t i = 0; i < k; ++i) {
      objectstore::ObjectMeta meta;
      if (store_->Head(small[i].index_path, &meta).ok()) {
        cumulative += meta.size;
      }
      prefetch[i] =
          (plan.byte_budget == 0 || cumulative <= plan.byte_budget) ? 1 : 0;
    }
  }
  pool_.ParallelFor(k, plan.parallelism, [&](size_t i) {
    auto r = ComponentFileReader::Open(store_, small[i].index_path,
                                       &child_traces[i]);
    if (!r.ok()) {
      open_statuses[i] = r.status();
      return;
    }
    readers[i] = std::move(r).value();
    if (prefetch[i]) {
      std::vector<Buffer> ignored;
      open_statuses[i] = readers[i]->ReadComponents(
          readers[i]->ComponentNames(), nullptr, &child_traces[i], &ignored);
    }
  });
  internal::MergeWaves(&local, child_traces, plan.parallelism);
  if (op.tracing()) {  // One `input:<path>` span per prefetched merge input.
    Micros now = op.NowMicros();
    for (size_t i = 0; i < k; ++i) {
      obs::SpanId sid = op.tracer()->StartSpan(
          "input:" + small[i].index_path, op.root_id(), now);
      op.Attribute(sid, internal::SpanIoFromTrace(child_traces[i]));
      op.tracer()->EndSpan(sid, now);
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (!open_statuses[i].ok()) return open_statuses[i];
  }
  std::vector<ComponentFileReader*> raw_readers;
  raw_readers.reserve(k);
  for (const auto& r : readers) raw_readers.push_back(r.get());

  // Merge (streaming; prefetched components are cache hits, so a fully
  // prefetched merge performs no further rounds).
  ThreadPool* merge_pool = plan.parallelism > 1 ? &pool_ : nullptr;
  Buffer merged;
  {
    internal::OpPhase phase(&op, "merge");
    switch (type) {
      case IndexType::kTrie:
        ROTTNEST_RETURN_NOT_OK(index::TrieMerge(raw_readers, merge_pool,
                                                &local, column, &merged));
        break;
      case IndexType::kFm:
        ROTTNEST_RETURN_NOT_OK(index::FmMerge(raw_readers, merge_pool,
                                              &local, column, options_.fm,
                                              &merged));
        break;
      case IndexType::kIvfPq:
        ROTTNEST_RETURN_NOT_OK(index::IvfPqMerge(raw_readers, merge_pool,
                                                 &local, column, &merged));
        break;
      case IndexType::kKeyword:
        ROTTNEST_RETURN_NOT_OK(index::KeywordMerge(raw_readers, merge_pool,
                                                   &local, column, &merged));
        break;
    }
  }
  if (store_->clock().NowMicros() >= plan.deadline) {
    return Status::Aborted("compact operation exceeded timeout");
  }

  internal::OpPhase commit_phase(&op, "commit");
  // Upload, then commit the swap transactionally.
  report.merged_path = NewIndexName();
  ROTTNEST_RETURN_NOT_OK(store_->Put(report.merged_path, Slice(merged)));

  IndexEntry merged_entry;
  merged_entry.index_path = report.merged_path;
  merged_entry.index_type = IndexTypeName(type);
  merged_entry.column = column;
  uint64_t rows = 0;
  for (const IndexEntry& e : small) {
    merged_entry.covered_files.insert(merged_entry.covered_files.end(),
                                      e.covered_files.begin(),
                                      e.covered_files.end());
    rows += e.rows;
    report.replaced.push_back(e.index_path);
  }
  merged_entry.rows = rows;
  merged_entry.created_micros = store_->clock().NowMicros();
  auto committed = metadata_.Update({merged_entry}, report.replaced);
  if (!committed.ok()) return committed.status();
  commit_phase.End();
  FinishMaintenanceStats(&local, opts, plan, wall_start, &op, &report.stats);
  return report;
}

// ---------------------------------------------------------------------------
// vacuum

Result<VacuumReport> Rottnest::Vacuum(lake::Version min_snapshot,
                                      const MaintenanceOptions& opts) {
  auto wall_start = std::chrono::steady_clock::now();
  Micros start = store_->clock().NowMicros();
  MaintenancePlan plan = ResolveMaintenance(opts, start);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "vacuum");
  objectstore::IoTrace local;
  VacuumReport report;

  std::vector<std::string> remove;
  std::set<std::string> keep;
  {
    internal::OpPhase phase(&op, "plan");
    // Plan: data files live in any snapshot >= min_snapshot.
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(Snapshot latest, table_->GetSnapshot());
    std::set<std::string> active;
    for (lake::Version v = std::max<lake::Version>(min_snapshot, 0);
         v <= latest.version; ++v) {
      local.RecordList();
      auto snap = table_->GetSnapshot(v);
      if (!snap.ok()) return snap.status();
      for (const DataFile& f : snap.value().files) active.insert(f.path);
    }

    // Greedy cover: repeatedly keep the index file covering the most
    // not-yet covered active data files; stop when coverage cannot grow.
    // Coverage is tracked per (column, index_type): an fm index on one
    // column cannot shadow a trie on another just because both span the
    // same data files — treating them as interchangeable would vacuum away
    // a live index (which ReadAll's name-sorted order made
    // nondeterministic to boot).
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> entries,
                              metadata_.ReadAll());
    auto cover_key = [](const IndexEntry& e, const std::string& f) {
      return e.column + '\x1f' + e.index_type + '\x1f' + f;
    };
    std::set<std::string> covered;
    for (;;) {
      const IndexEntry* best = nullptr;
      size_t best_gain = 0;
      for (const IndexEntry& e : entries) {
        if (keep.count(e.index_path)) continue;
        size_t gain = 0;
        for (const std::string& f : e.covered_files) {
          if (active.count(f) != 0 && covered.count(cover_key(e, f)) == 0) {
            ++gain;
          }
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = &e;
        }
      }
      if (best == nullptr) break;
      keep.insert(best->index_path);
      for (const std::string& f : best->covered_files) {
        if (active.count(f)) covered.insert(cover_key(*best, f));
      }
    }
    for (const IndexEntry& e : entries) {
      if (keep.count(e.index_path) == 0) remove.push_back(e.index_path);
    }
  }

  // Commit: delete metadata rows for unselected entries (reported but not
  // applied under dry_run).
  internal::OpPhase commit_phase(&op, "commit");
  report.removed_entries = remove;
  report.metadata_entries_removed = remove.size();
  if (!remove.empty() && !opts.dry_run) {
    auto committed = metadata_.Update({}, remove);
    if (!committed.ok()) return committed.status();
  }

  // Remove: physically delete index objects that are unreferenced AND older
  // than the index timeout (younger ones may be uncommitted in-flight
  // uploads — the timeout rule of §IV-C/§IV-D).
  std::set<std::string> referenced;
  if (opts.dry_run) {
    // Metadata was not updated: the post-commit reference set is `keep`.
    referenced = keep;
  } else {
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> remaining,
                              metadata_.ReadAll());
    for (const IndexEntry& e : remaining) referenced.insert(e.index_path);
  }

  local.RecordList();
  std::vector<objectstore::ObjectMeta> listing;
  ROTTNEST_RETURN_NOT_OK(store_->List(options_.index_dir + "/", &listing));
  Micros cutoff =
      store_->clock().NowMicros() - options_.index_timeout_micros;
  std::vector<std::string> deletable;
  for (const auto& obj : listing) {
    // Only touch index files; the metadata table lives under _meta/.
    if (obj.key.size() < 6 ||
        obj.key.compare(obj.key.size() - 6, 6, ".index") != 0) {
      continue;
    }
    if (referenced.count(obj.key) != 0) continue;
    if (obj.created_micros > cutoff) continue;
    deletable.push_back(obj.key);
  }
  if (opts.dry_run) {
    report.deleted_objects = deletable;
    report.objects_deleted = deletable.size();
    FinishMaintenanceStats(&local, opts, plan, wall_start, &op,
                           &report.stats);
    return report;
  }
  commit_phase.End();

  {
    internal::OpPhase phase(&op, "delete");
    // Physical deletes are independent: fan out on the pipeline width.
    std::vector<Status> delete_statuses(deletable.size(), Status::OK());
    pool_.ParallelFor(deletable.size(), plan.parallelism, [&](size_t i) {
      delete_statuses[i] = store_->Delete(deletable[i]);
    });
    for (size_t i = 0; i < deletable.size(); ++i) {
      if (!delete_statuses[i].ok()) return delete_statuses[i];
      report.deleted_objects.push_back(deletable[i]);
      ++report.objects_deleted;
    }
  }
  FinishMaintenanceStats(&local, opts, plan, wall_start, &op, &report.stats);
  return report;
}

// CheckInvariants, Scrub and Repair live in scrub.cc.

}  // namespace rottnest::core
