#include "core/admission.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace rottnest::core {

namespace {
// EWMA smoothing for observed service times: new = α·sample + (1-α)·old.
constexpr double kEwmaAlpha = 0.2;
// Queue waiters poll at this cadence so deadline expiry (possibly driven by
// a SimulatedClock no cv can watch) is noticed promptly.
constexpr auto kWaitSlice = std::chrono::microseconds(500);
}  // namespace

AdmissionMetrics ResolveAdmissionMetrics(obs::MetricsRegistry* registry,
                                         const std::string& name) {
  AdmissionMetrics m;
  if (registry == nullptr) return m;
  const std::string p = "admission." + name + ".";
  m.admitted = registry->GetCounter(p + "admitted");
  m.queued = registry->GetCounter(p + "queued");
  m.shed_queue_full = registry->GetCounter(p + "shed_queue_full");
  m.shed_deadline = registry->GetCounter(p + "shed_deadline");
  m.expired_waiting = registry->GetCounter(p + "expired_waiting");
  m.running = registry->GetGauge(p + "running");
  m.waiting = registry->GetGauge(p + "waiting");
  return m;
}

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->Release(admitted_at_);
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(const Clock* clock,
                                         AdmissionOptions options)
    : clock_(clock),
      options_(options),
      ewma_service_micros_(
          static_cast<double>(options.initial_service_micros)) {}

void AdmissionController::AttachMetrics(obs::MetricsRegistry* registry,
                                        const std::string& name) {
  metrics_ = ResolveAdmissionMetrics(registry, name);
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

Micros AdmissionController::EwmaServiceMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<Micros>(ewma_service_micros_);
}

Result<AdmissionTicket> AdmissionController::Admit(const Deadline& deadline) {
  if (!enabled()) return AdmissionTicket();
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < options_.max_concurrent) {
    ++running_;
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.admitted);
    obs::Set(metrics_.running, running_);
    return AdmissionTicket(this, clock_->NowMicros());
  }
  if (waiting_ >= options_.max_queue) {
    stats_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.shed_queue_full);
    return Status::ResourceExhausted("admission queue full (" +
                                     std::to_string(waiting_) + " waiting)");
  }
  // Deadline-aware shed: with `waiting_` callers ahead of us and slots
  // freeing roughly every service-time/max_concurrent, a caller whose
  // remaining budget is smaller than its predicted wait is doomed — reject
  // it NOW so it can route elsewhere, instead of queueing dead work.
  if (!deadline.infinite()) {
    Micros predicted_wait = static_cast<Micros>(
        ewma_service_micros_ * (waiting_ + 1) /
        std::max(1, options_.max_concurrent));
    if (predicted_wait > deadline.remaining_micros()) {
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.shed_deadline);
      return Status::ResourceExhausted(
          "predicted queue wait exceeds deadline budget");
    }
  }
  ++waiting_;
  stats_.queued.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.queued);
  obs::Set(metrics_.waiting, waiting_);
  while (running_ >= options_.max_concurrent) {
    if (deadline.expired()) {
      --waiting_;
      obs::Set(metrics_.waiting, waiting_);
      stats_.expired_waiting.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.expired_waiting);
      return Status::DeadlineExceeded("deadline expired in admission queue");
    }
    cv_.wait_for(lock, kWaitSlice);
  }
  --waiting_;
  ++running_;
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.admitted);
  obs::Set(metrics_.running, running_);
  obs::Set(metrics_.waiting, waiting_);
  return AdmissionTicket(this, clock_->NowMicros());
}

Status AdmissionController::NoteArrival(const Deadline& deadline) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  // In the engine model every noted request sits in the engine queue until
  // a wave picks it, so `waiting_` also covers requests Admit would have
  // started instantly. An arrival that still fits under the concurrency cap
  // is about to be waved with no meaningful wait — admit it unchecked, like
  // Admit's free-slot fast path; only the excess beyond the cap is QUEUE.
  const int queue_len = running_ + waiting_ - options_.max_concurrent;
  if (queue_len >= 0) {
    if (queue_len >= options_.max_queue) {
      stats_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics_.shed_queue_full);
      return Status::ResourceExhausted("admission queue full (" +
                                       std::to_string(queue_len) +
                                       " waiting)");
    }
    // Same doomed-work rule as Admit: with queue_len requests ahead and
    // slots freeing every service-time/max_concurrent, a budget smaller
    // than the predicted wait is dead on arrival.
    if (!deadline.infinite()) {
      Micros predicted_wait = static_cast<Micros>(
          ewma_service_micros_ * (queue_len + 1) /
          std::max(1, options_.max_concurrent));
      if (predicted_wait > deadline.remaining_micros()) {
        stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
        obs::Increment(metrics_.shed_deadline);
        return Status::ResourceExhausted(
            "predicted queue wait exceeds deadline budget");
      }
    }
  }
  ++waiting_;
  stats_.queued.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.queued);
  obs::Set(metrics_.waiting, waiting_);
  return Status::OK();
}

AdmissionTicket AdmissionController::StartScheduled() {
  if (!enabled()) return AdmissionTicket();
  std::lock_guard<std::mutex> lock(mu_);
  --waiting_;
  ++running_;
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.admitted);
  obs::Set(metrics_.running, running_);
  obs::Set(metrics_.waiting, waiting_);
  return AdmissionTicket(this, clock_->NowMicros());
}

void AdmissionController::CancelArrival(bool expired_in_queue) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  --waiting_;
  obs::Set(metrics_.waiting, waiting_);
  if (expired_in_queue) {
    stats_.expired_waiting.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics_.expired_waiting);
  }
}

void AdmissionController::Release(Micros admitted_at) {
  Micros service = clock_->NowMicros() - admitted_at;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    if (service >= 0) {
      ewma_service_micros_ = kEwmaAlpha * static_cast<double>(service) +
                             (1 - kEwmaAlpha) * ewma_service_micros_;
    }
    obs::Set(metrics_.running, running_);
  }
  cv_.notify_one();
}

}  // namespace rottnest::core
