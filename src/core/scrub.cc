// Anti-entropy: Scrub (deep parallel audit), Repair (quarantine + rebuild
// + orphan GC) and the Scrub-based CheckInvariants (see DESIGN.md §4f).
//
// Scrub never fails fast: every problem becomes a ScrubFinding and the
// audit keeps going, so one rotten object cannot hide another. Repair
// heals in an order that keeps every crash prefix legal under the paper's
// invariants: quarantine is one atomic metadata commit (Existence is
// preserved — entries are only ever *removed*), re-indexing is the
// ordinary crash-safe Index protocol (upload before commit), and orphan
// deletion reuses Vacuum's timeout rule (only unreferenced objects older
// than the protocol window are touched).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>

#include "core/obs_internal.h"
#include "core/rottnest.h"
#include "format/reader.h"
#include "index/trie/trie_index.h"

namespace rottnest::core {

namespace {

using index::ComponentFileReader;
using lake::IndexEntry;

/// Shared deep-verify byte budget: admission control across the parallel
/// per-index audit tasks. 0 at construction = unbounded.
class ByteBudget {
 public:
  explicit ByteBudget(uint64_t budget)
      : bounded_(budget != 0), left_(static_cast<int64_t>(budget)) {}

  /// True if `bytes` more may be fetched (and reserves them).
  bool Admit(uint64_t bytes) {
    if (!bounded_) return true;
    int64_t prev = left_.fetch_sub(static_cast<int64_t>(bytes),
                                   std::memory_order_relaxed);
    return prev >= static_cast<int64_t>(bytes);
  }

 private:
  bool bounded_;
  std::atomic<int64_t> left_;
};

}  // namespace

const char* ScrubFindingKindName(ScrubFindingKind k) {
  switch (k) {
    case ScrubFindingKind::kMissingIndex:
      return "missing-index";
    case ScrubFindingKind::kCorruptIndex:
      return "corrupt-index";
    case ScrubFindingKind::kCorruptComponent:
      return "corrupt-component";
    case ScrubFindingKind::kUnreadableIndex:
      return "unreadable-index";
    case ScrubFindingKind::kInconsistentPageTable:
      return "inconsistent-page-table";
    case ScrubFindingKind::kOrphanObject:
      return "orphan-object";
    case ScrubFindingKind::kCorruptCheckpoint:
      return "corrupt-checkpoint";
    case ScrubFindingKind::kDanglingCheckpoint:
      return "dangling-checkpoint";
    case ScrubFindingKind::kOrphanCheckpoint:
      return "orphan-checkpoint";
  }
  return "unknown";
}

namespace {

/// Audits one log's checkpoints: pointer readable, pointed-to checkpoint
/// valid, every checkpoint object parseable, orphans flagged as warnings
/// (a crash between the checkpoint PutIfAbsent and the pointer move
/// legally strands one). Appends findings; never fails fast.
void AuditCheckpoints(lake::TxnLog* log, ScrubReport* report) {
  lake::Checkpointer& ckpt = log->checkpointer();
  auto listed = ckpt.List();
  std::vector<lake::Version> versions =
      listed.ok() ? listed.value() : std::vector<lake::Version>{};
  report->checkpoints_checked += versions.size();

  auto add = [&](ScrubFindingKind kind, ScrubSeverity severity,
                 std::string path, std::string detail) {
    ScrubFinding f;
    f.kind = kind;
    f.severity = severity;
    f.index_path = std::move(path);
    f.detail = std::move(detail);
    report->findings.push_back(std::move(f));
  };

  lake::Version pointed = -1;
  auto ptr = ckpt.ReadPointer();
  if (ptr.ok()) {
    pointed = ptr.value().version;
    if (pointed >= 0) {
      auto data = ckpt.Read(pointed);
      if (data.status().IsNotFound()) {
        add(ScrubFindingKind::kDanglingCheckpoint, ScrubSeverity::kError,
            ckpt.KeyFor(pointed),
            "_last_checkpoint names a missing checkpoint object");
      } else if (!data.ok()) {
        add(ScrubFindingKind::kCorruptCheckpoint, ScrubSeverity::kError,
            ckpt.KeyFor(pointed), data.status().message());
      }
    }
  } else if (!ptr.status().IsNotFound()) {
    // Pointer present but unreadable: readers fall back to the LIST walk
    // (or full replay) — flag it so Repair re-points.
    add(ScrubFindingKind::kDanglingCheckpoint, ScrubSeverity::kError,
        ckpt.pointer_key(), ptr.status().message());
  } else if (!versions.empty()) {
    // Checkpoints exist but no pointer was ever written — all orphans
    // (crash after PutIfAbsent, before the first pointer move).
    for (lake::Version v : versions) {
      add(ScrubFindingKind::kOrphanCheckpoint, ScrubSeverity::kWarning,
          ckpt.KeyFor(v), "checkpoint exists but _last_checkpoint does not");
    }
    return;
  }

  for (lake::Version v : versions) {
    if (v == pointed) continue;  // Audited through the pointer above.
    auto data = ckpt.Read(v);
    if (!data.ok()) {
      add(ScrubFindingKind::kCorruptCheckpoint, ScrubSeverity::kError,
          ckpt.KeyFor(v), data.status().message());
    } else {
      add(ScrubFindingKind::kOrphanCheckpoint, ScrubSeverity::kWarning,
          ckpt.KeyFor(v), "valid checkpoint not named by _last_checkpoint");
    }
  }
}

}  // namespace

Result<ScrubReport> Rottnest::Scrub(const ScrubOptions& opts) {
  auto wall_start = std::chrono::steady_clock::now();
  Micros start = store_->clock().NowMicros();
  MaintenanceOptions mopts;
  static_cast<CommonOptions&>(mopts) = opts;  // Shared CommonOptions base.
  MaintenancePlan plan = ResolveMaintenance(mopts, start);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "scrub");
  objectstore::IoTrace local;
  ScrubReport report;

  std::vector<IndexEntry> entries;
  {
    internal::OpPhase phase(&op, "plan");
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(entries, metadata_.ReadAll());
  }
  report.indexes_checked = entries.size();

  // Audit every committed index concurrently; each task appends findings
  // to its own slot and records IO into its own trace, so aggregation is
  // deterministic in entry order regardless of scheduling. All reads go
  // through store_, not the cache: an audit must observe the bucket.
  ByteBudget budget(opts.byte_budget);
  std::atomic<uint64_t> components_verified{0};
  std::atomic<uint64_t> components_skipped{0};
  std::atomic<uint64_t> bytes_verified{0};
  std::vector<std::vector<ScrubFinding>> per_entry(entries.size());
  std::vector<objectstore::IoTrace> child_traces(entries.size());
  // One `audit:<path>` span per entry, mirroring the wave-merged traces;
  // created and attributed in entry order on the calling thread.
  std::vector<obs::SpanId> audit_spans;
  if (op.tracing()) {
    audit_spans.reserve(entries.size());
    Micros span_now = op.NowMicros();
    for (const IndexEntry& e : entries) {
      audit_spans.push_back(op.tracer()->StartSpan("audit:" + e.index_path,
                                                   op.root_id(), span_now));
    }
  }
  pool_.ParallelFor(entries.size(), plan.parallelism, [&](size_t i) {
    const IndexEntry& e = entries[i];
    std::vector<ScrubFinding>& out = per_entry[i];
    objectstore::IoTrace* t = &child_traces[i];
    auto add = [&](ScrubFindingKind kind, std::string component,
                   std::string detail) {
      ScrubFinding f;
      f.kind = kind;
      f.severity = ScrubSeverity::kError;
      f.index_path = e.index_path;
      f.component = std::move(component);
      f.detail = std::move(detail);
      f.column = e.column;
      f.index_type = e.index_type;
      out.push_back(std::move(f));
    };

    // Existence (invariant 1): the committed object is in the bucket.
    objectstore::ObjectMeta meta;
    Status head = store_->Head(e.index_path, &meta);
    if (!head.ok()) {
      add(head.IsNotFound() ? ScrubFindingKind::kMissingIndex
                            : ScrubFindingKind::kUnreadableIndex,
          "", head.ToString());
      return;
    }

    // Structure: magic, directory checksum, directory parse. Components in
    // the open tail read are payload-checksummed here too.
    auto reader_r = ComponentFileReader::Open(store_, e.index_path, t);
    if (!reader_r.ok()) {
      const Status& s = reader_r.status();
      add(s.IsCorruption()  ? ScrubFindingKind::kCorruptIndex
          : s.IsNotFound()  ? ScrubFindingKind::kMissingIndex
                            : ScrubFindingKind::kUnreadableIndex,
          "", s.ToString());
      return;
    }
    ComponentFileReader* reader = reader_r.value().get();

    // Consistency: the embedded page table names exactly the covered set.
    format::PageTable pages;
    Status pt = index::LoadPageTable(reader, nullptr, t, &pages);
    if (!pt.ok()) {
      add(ScrubFindingKind::kCorruptComponent, "pagetable", pt.ToString());
    } else {
      std::set<std::string> in_table(pages.files().begin(),
                                     pages.files().end());
      std::set<std::string> in_entry(e.covered_files.begin(),
                                     e.covered_files.end());
      if (in_table != in_entry) {
        add(ScrubFindingKind::kInconsistentPageTable, "",
            "page table names do not match covered_files");
      }
    }

    // Deep verification: re-fetch every component payload not already
    // verified in the tail and check its directory checksum, under the
    // shared byte budget. Collects ALL damage, never fails fast.
    if (opts.deep) {
      std::vector<std::string> to_verify;
      for (const index::ComponentInfo& c : reader->Components()) {
        if (c.verified_at_open) {
          components_verified.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!budget.Admit(c.compressed_size)) {
          components_skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        to_verify.push_back(c.name);
      }
      std::vector<index::ComponentDamage> damage;
      uint64_t fetched = 0;
      Status v = reader->VerifyComponents(to_verify, t, &damage, &fetched);
      bytes_verified.fetch_add(fetched, std::memory_order_relaxed);
      if (!v.ok()) {
        add(ScrubFindingKind::kUnreadableIndex, "", v.ToString());
      } else {
        components_verified.fetch_add(to_verify.size() - damage.size(),
                                      std::memory_order_relaxed);
        for (index::ComponentDamage& d : damage) {
          add(ScrubFindingKind::kCorruptComponent, d.name,
              d.status.ToString());
        }
      }
    }
  });
  internal::MergeWaves(&local, child_traces, plan.parallelism);
  if (op.tracing()) {
    Micros span_now = op.NowMicros();
    for (size_t i = 0; i < entries.size(); ++i) {
      op.Attribute(audit_spans[i],
                   internal::SpanIoFromTrace(child_traces[i]));
      op.tracer()->EndSpan(audit_spans[i], span_now);
    }
  }

  for (size_t i = 0; i < entries.size(); ++i) {
    bool corrupt = false;
    for (ScrubFinding& f : per_entry[i]) {
      corrupt |= f.kind == ScrubFindingKind::kCorruptIndex ||
                 f.kind == ScrubFindingKind::kCorruptComponent;
      report.findings.push_back(std::move(f));
    }
    // A corruption verdict may have been served out of the client cache
    // before this audit ran; drop the poisoned blocks either way.
    if (corrupt) InvalidateCachedIndex(entries[i].index_path);
  }

  // Orphans: index objects in the bucket with no metadata entry. Legal
  // (an in-flight Index uploads before committing; crashes strand them),
  // so a warning — Repair deletes only past the protocol grace period.
  {
    internal::OpPhase phase(&op, "orphans");
    std::set<std::string> referenced;
    for (const IndexEntry& e : entries) referenced.insert(e.index_path);
    local.RecordList();
    std::vector<objectstore::ObjectMeta> listing;
    ROTTNEST_RETURN_NOT_OK(store_->List(options_.index_dir + "/", &listing));
    Micros now = store_->clock().NowMicros();
    for (const auto& obj : listing) {
      if (obj.key.size() < 6 ||
          obj.key.compare(obj.key.size() - 6, 6, ".index") != 0) {
        continue;
      }
      if (referenced.count(obj.key) != 0) continue;
      ScrubFinding f;
      f.kind = ScrubFindingKind::kOrphanObject;
      f.severity = ScrubSeverity::kWarning;
      f.index_path = obj.key;
      f.detail = "index object not referenced by the metadata table";
      f.age_micros = now > obj.created_micros ? now - obj.created_micros : 0;
      report.findings.push_back(std::move(f));
    }
  }

  // Metadata-plane checkpoints (deep audits only — the shallow
  // CheckInvariants path keeps its pre-checkpoint cost and semantics).
  // Both logs are audited: the lake table's and the index registry's.
  if (opts.deep) {
    internal::OpPhase phase(&op, "checkpoints");
    local.RecordList();
    AuditCheckpoints(&table_->log(), &report);
    AuditCheckpoints(&metadata_.log(), &report);
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const ScrubFinding& a, const ScrubFinding& b) {
              if (a.index_path != b.index_path) {
                return a.index_path < b.index_path;
              }
              if (a.kind != b.kind) {
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              }
              return a.component < b.component;
            });
  report.components_verified = components_verified.load();
  report.components_skipped = components_skipped.load();
  report.bytes_verified = bytes_verified.load();
  FinishMaintenanceStats(&local, mopts, plan, wall_start, &op,
                         &report.stats);
  return report;
}

Result<RepairReport> Rottnest::Repair(const ScrubReport& scrub,
                                      const RepairOptions& opts) {
  auto wall_start = std::chrono::steady_clock::now();
  Micros start = store_->clock().NowMicros();
  MaintenanceOptions mopts;
  static_cast<CommonOptions&>(mopts) = opts;  // Shared CommonOptions base.
  mopts.dry_run = opts.dry_run;
  MaintenancePlan plan = ResolveMaintenance(mopts, start);
  internal::OpObs op(store_, cache_store_.get(), opts.obs, "repair");
  objectstore::IoTrace local;
  RepairReport report;

  // Step 1 — quarantine: remove every damaged entry from the metadata
  // table in ONE transactional commit. The report's paths are re-checked
  // against current metadata, so a stale report (another repairer won the
  // race) quarantines nothing and the call stays idempotent.
  std::set<std::string> damaged;
  // The rebuild targets come from the FINDINGS, not from current metadata:
  // if a previous Repair attempt crashed after its quarantine commit, the
  // damaged entry is no longer in the table, but the report still knows
  // which (column, type) lost coverage — so a retry converges.
  std::set<std::pair<std::string, std::string>> affected;
  for (const ScrubFinding& f : scrub.findings) {
    if (f.severity == ScrubSeverity::kError &&
        f.kind != ScrubFindingKind::kOrphanObject) {
      damaged.insert(f.index_path);
      if (!f.column.empty()) affected.insert({f.column, f.index_type});
    }
  }
  {
    internal::OpPhase phase(&op, "quarantine");
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> entries,
                              metadata_.ReadAll());
    std::vector<std::string> quarantine;
    for (const IndexEntry& e : entries) {
      if (damaged.count(e.index_path) == 0) continue;
      quarantine.push_back(e.index_path);
    }
    if (opts.quarantine && !quarantine.empty()) {
      if (!opts.dry_run) {
        auto committed = metadata_.Update({}, quarantine);
        if (!committed.ok()) return committed.status();
        for (const std::string& path : quarantine) InvalidateCachedIndex(path);
      }
      report.quarantined = quarantine;
    }
  }

  // Step 2 — rebuild: re-Index each affected (column, type); the files the
  // quarantined entries covered are now uncovered, so the ordinary Index
  // protocol (upload before commit, timeout guard) re-covers them. A crash
  // here strands at most an orphan upload — exactly the state step 3 and
  // Vacuum already know how to collect.
  if (opts.reindex && !opts.dry_run) {
    // The nested Index calls open their own root spans; re-parent them
    // under the repair root, and mark the whole window's counter delta as
    // attributed elsewhere so the repair root does not claim it again.
    obs::ObsContext nested;
    if (opts.obs != nullptr) {
      nested = *opts.obs;
      nested.parent = op.root_id();
    }
    internal::OpSnapshot before_reindex = op.Snap();
    for (const auto& [column, type_name] : affected) {
      index::IndexType type;
      if (!index::IndexTypeFromName(type_name, &type)) continue;
      MaintenanceOptions iopts;
      iopts.parallelism = opts.parallelism;
      iopts.trace = &local;
      iopts.obs = opts.obs != nullptr ? &nested : nullptr;
      auto rebuilt = Index(column, type, iopts);
      if (!rebuilt.ok()) {
        // Timeouts / vanished files abort the protocol cleanly; a retry of
        // Repair (or plain Index) finishes the job.
        if (rebuilt.status().IsAborted()) continue;
        return rebuilt.status();
      }
      if (!rebuilt.value().index_path.empty()) {
        report.rebuilt.push_back(rebuilt.value().index_path);
        report.rebuilt_rows += rebuilt.value().rows;
      }
    }
    op.AttributeElsewhere(before_reindex);
  }

  // Step 3 — orphan GC, by Vacuum's rule: delete index objects that are
  // unreferenced AND older than the grace period. Referenced-ness is
  // re-read post-rebuild so a concurrent commit can never lose an object.
  if (opts.gc_orphans) {
    internal::OpPhase phase(&op, "gc");
    Micros grace = opts.orphan_grace_micros != 0
                       ? opts.orphan_grace_micros
                       : options_.index_timeout_micros;
    local.RecordList();
    ROTTNEST_ASSIGN_OR_RETURN(std::vector<IndexEntry> remaining,
                              metadata_.ReadAll());
    std::set<std::string> referenced;
    for (const IndexEntry& e : remaining) referenced.insert(e.index_path);
    Micros cutoff = store_->clock().NowMicros() - grace;
    std::vector<std::string> deletable;
    for (const ScrubFinding& f : scrub.findings) {
      if (f.kind != ScrubFindingKind::kOrphanObject) continue;
      if (referenced.count(f.index_path) != 0) continue;
      objectstore::ObjectMeta meta;
      Status head = store_->Head(f.index_path, &meta);
      if (!head.ok()) continue;  // Already gone: nothing to collect.
      if (meta.created_micros > cutoff) continue;
      deletable.push_back(f.index_path);
    }
    if (opts.dry_run) {
      report.orphans_deleted = deletable;
    } else {
      std::vector<Status> statuses(deletable.size(), Status::OK());
      pool_.ParallelFor(deletable.size(), plan.parallelism, [&](size_t i) {
        statuses[i] = store_->Delete(deletable[i]);
      });
      for (size_t i = 0; i < deletable.size(); ++i) {
        if (!statuses[i].ok()) return statuses[i];
        report.orphans_deleted.push_back(deletable[i]);
      }
    }
  }

  // Step 4 — checkpoint rebuild: a rotten or dangling metadata-plane
  // checkpoint is healed by replaying the log (readers already skip the
  // bad object, so the replay is correct) and writing a fresh checkpoint
  // at the current tail — overwriting in place when the damage sits at
  // the tail version — then deleting superseded rotten objects. A crash
  // anywhere in this step leaves a state Scrub still understands.
  if (opts.rebuild_checkpoints && !opts.dry_run) {
    internal::OpPhase phase(&op, "checkpoints");
    const std::string lake_prefix = table_->log().prefix() + "/";
    const std::string meta_prefix = metadata_.log().prefix() + "/";
    bool lake_damaged = false, meta_damaged = false;
    std::vector<std::pair<lake::TxnLog*, lake::Version>> rotten;
    for (const ScrubFinding& f : scrub.findings) {
      if (f.kind != ScrubFindingKind::kCorruptCheckpoint &&
          f.kind != ScrubFindingKind::kDanglingCheckpoint) {
        continue;
      }
      lake::TxnLog* log = nullptr;
      if (f.index_path.compare(0, lake_prefix.size(), lake_prefix) == 0) {
        log = &table_->log();
        lake_damaged = true;
      } else if (f.index_path.compare(0, meta_prefix.size(), meta_prefix) ==
                 0) {
        log = &metadata_.log();
        meta_damaged = true;
      }
      lake::Version v = -1;
      if (log != nullptr &&
          f.kind == ScrubFindingKind::kCorruptCheckpoint &&
          lake::Checkpointer::ParseCheckpointKey(f.index_path, &v)) {
        rotten.emplace_back(log, v);
      }
    }
    auto rebuild = [&](lake::TxnLog* log) -> Status {
      auto fresh = log->WriteCheckpoint(/*overwrite=*/true);
      if (!fresh.ok()) return fresh.status();
      report.checkpoints_rebuilt.push_back(
          log->checkpointer().KeyFor(fresh.value()));
      return Status::OK();
    };
    if (lake_damaged) ROTTNEST_RETURN_NOT_OK(rebuild(&table_->log()));
    if (meta_damaged) ROTTNEST_RETURN_NOT_OK(rebuild(&metadata_.log()));
    for (auto& [log, v] : rotten) {
      const std::string key = log->checkpointer().KeyFor(v);
      bool rewritten_in_place =
          std::find(report.checkpoints_rebuilt.begin(),
                    report.checkpoints_rebuilt.end(),
                    key) != report.checkpoints_rebuilt.end();
      if (rewritten_in_place) continue;
      ROTTNEST_RETURN_NOT_OK(log->checkpointer().Delete(v));
    }
  }

  FinishMaintenanceStats(&local, mopts, plan, wall_start, &op,
                         &report.stats);
  return report;
}

Status Rottnest::CheckInvariants(const SearchOptions& opts) {
  ScrubOptions sopts;
  static_cast<CommonOptions&>(sopts) = opts;  // Forward trace/obs/limits.
  sopts.deep = false;  // Structural audit — the old CheckInvariants depth.
  ROTTNEST_ASSIGN_OR_RETURN(ScrubReport report, Scrub(sopts));
  if (report.clean()) return Status::OK();
  std::string msg = "invariant violations:";
  for (const ScrubFinding& f : report.findings) {
    if (f.severity != ScrubSeverity::kError) continue;
    msg += std::string("\n  [") + ScrubFindingKindName(f.kind) + "] " +
           f.index_path;
    if (!f.component.empty()) msg += " (" + f.component + ")";
    msg += ": " + f.detail;
  }
  return Status::Internal(msg);
}

}  // namespace rottnest::core
