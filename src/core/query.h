// The unified query-side API of the Rottnest client: the option/result
// types shared by every search kind, plus the typed `Query`/`QueryResponse`
// variant that is the single entry point of the serving layer
// (`Rottnest::Execute`, `serve::QueryEngine::Execute`).
//
// One `Query` names a kind (UUID / substring / regex / vector / keyword /
// count), the target column, the needle (query vector, or term list), the
// match budget `k` and a full `SearchOptions`; one `QueryResponse` carries
// either a `SearchResult` (the search kinds) or a count. The classic
// `Rottnest::Search*` methods are thin wrappers that build a `Query`, call
// `Execute`, and unpack the response — so every knob, deadline and stat
// surface behaves identically whether a caller goes through the typed API
// or the convenience methods.
//
// Per-kind knobs live in `SearchOptions::params` (`SearchParams`), one
// sub-struct per kind that has any: `params.vector` (nprobe/refine) and
// `params.keyword` (boolean mode, term cap). Kinds ignore the other kinds'
// params, so one `SearchOptions` value can serve a mixed workload.
#ifndef ROTTNEST_CORE_QUERY_H_
#define ROTTNEST_CORE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "lake/txn_log.h"
#include "objectstore/io_trace.h"
#include "obs/obs_context.h"
#include "obs/stats.h"

namespace rottnest::core {

/// One verified search hit.
struct RowMatch {
  std::string file;    ///< Data file object key.
  uint64_t row = 0;    ///< File-global row index.
  std::string value;   ///< The matched column value (raw bytes).
  float distance = 0;  ///< Exact distance (vector search only).
};

/// Knobs shared by EVERY options struct of the v2 API — searches,
/// maintenance (Index/Compact/Vacuum) and anti-entropy (Scrub/Repair) all
/// derive their options from this base, so the cross-cutting concerns have
/// exactly one spelling:
///
///   parallelism        — fan-out / pipeline width (0 = client default);
///   byte_budget        — bounded-memory staging / prefetch / verification;
///   time_budget_micros — per-call deadline override;
///   trace              — IoTrace access-pattern recording;
///   obs                — the opt-in observability context (metrics
///                        registry + hierarchical span tracer + store-stack
///                        stat hooks). nullptr = observability off, and
///                        every instrumented path is allocation-free.
struct CommonOptions {
  /// Parallel width: index fan-out for searches, staging/prefetch pipeline
  /// width for maintenance. 0 = the operation's natural default (full
  /// index fan-out for searches, RottnestOptions::num_threads for
  /// maintenance); 1 = fully serial. Maintenance output bytes are
  /// identical at ANY setting.
  size_t parallelism = 0;
  /// Cap on bytes staged ahead of the consumer (Index), prefetched
  /// (Compact) or deep-verified (Scrub). 0 = unbounded. The head-of-line
  /// item is always admitted, so any budget still makes progress.
  uint64_t byte_budget = 0;
  /// Maintenance: overrides RottnestOptions::index_timeout_micros for this
  /// call (0 = use the client default). Searches: an END-TO-END deadline —
  /// 0 means no deadline at all (searches have no implicit timeout). On
  /// expiry the query stops cooperatively at page-batch granularity and
  /// returns a structured partial result (SearchResult::partial/cut_short)
  /// instead of hanging or erroring. Enforced per page batch.
  Micros time_budget_micros = 0;
  /// Access-pattern recording. Per-item parallel chains are merged in
  /// waves of `parallelism` concurrent chains (waves sequential), so the
  /// recorded depth — and the simulated latency derived from it — reflects
  /// the width actually requested. Request/byte totals are width-invariant.
  objectstore::IoTrace* trace = nullptr;
  /// Observability: when non-null, the operation emits registry metrics,
  /// opens a root span (under obs->parent) with phase/fan-out children
  /// carrying exclusive per-span I/O, and fills the retry/fault fields of
  /// its obs::Stats from the context's stat hooks.
  obs::ObsContext* obs = nullptr;
};

/// Search outcome plus plan accounting (used by the TCO benches).
struct SearchResult {
  std::vector<RowMatch> matches;
  size_t indexes_queried = 0;
  size_t files_scanned = 0;   ///< Unindexed files brute-scanned.
  size_t pages_probed = 0;    ///< In-situ page reads.
  /// Graceful degradation: index files that could not be read (missing,
  /// truncated, checksum mismatch) are skipped and their covered files
  /// answered through the brute-scan path instead of failing the query.
  size_t indexes_degraded = 0;                ///< Unreadable indexes skipped.
  std::vector<std::string> degraded_indexes;  ///< Their object keys.
  /// The unified cost surface (obs::Stats): physical request/byte totals,
  /// cache deltas, retries/faults absorbed below the query, wall time and —
  /// when `opts.trace` is set — the IoTrace-derived depth and simulated S3
  /// latency/cost projections. (The pre-obs `cache_hits`/`cache_misses`
  /// top-level aliases are gone; read `stats.cache_hits` etc.)
  obs::Stats stats;
  /// Degraded indexes removed from the metadata table by this query
  /// (only with SearchOptions::auto_quarantine; best-effort).
  size_t indexes_quarantined = 0;
  /// Tail-tolerance degradation surface (mirrors the corrupt-index
  /// contract above): when the operation deadline expires mid-query or a
  /// store's circuit breaker is open, the query returns what it has
  /// instead of hanging or failing. `partial` is set, `cut_short` lists
  /// the index children (by object key) — or phases, for the scan/probe
  /// stages — that were stopped early, and `partial_reason` says why.
  /// Unlike corrupt-index degradation, cut-short children get NO brute-
  /// scan fallback: the deadline is exactly the promise not to keep going.
  /// A partial result may be missing matches; matches present are still
  /// verified exact.
  bool partial = false;
  std::vector<std::string> cut_short;
  std::string partial_reason;
};

/// An inclusive range predicate on an int64 column (e.g. a timestamp),
/// the paper's "structured attribute" filter (§VI): searches prune data
/// files and row groups via the format's min/max statistics and verify the
/// attribute in situ for every match.
struct ScanRange {
  std::string column;
  int64_t min = INT64_MIN;
  int64_t max = INT64_MAX;

  bool Contains(int64_t v) const { return v >= min && v <= max; }
};

/// Vector (ANN) search parameters. Zero means "use the client's
/// IvfPqOptions default" (default_nprobe / default_refine).
struct VectorSearchParams {
  uint32_t nprobe = 0;  ///< Inverted lists probed.
  uint32_t refine = 0;  ///< Candidates exactly reranked in situ.
};

/// Boolean combinator for keyword queries.
enum class KeywordMode {
  kAnd,  ///< Rows must contain every term.
  kOr,   ///< Rows must contain at least one term.
};

/// Keyword (inverted-index) search parameters.
struct KeywordSearchParams {
  KeywordMode mode = KeywordMode::kAnd;
  /// Cap on distinct normalized terms per query; queries exceeding it are
  /// rejected with InvalidArgument rather than silently truncated.
  size_t max_terms = 8;
};

/// Per-kind parameter block, folded into SearchOptions so every search
/// kind has one signature. Each kind reads only its own sub-struct.
struct SearchParams {
  VectorSearchParams vector;    ///< kVector only.
  KeywordSearchParams keyword;  ///< kKeyword only.
};

/// Optional knobs common to all search calls (the one options argument of
/// the v2 API — see the rottnest.h header comment). `parallelism` bounds
/// the index fan-out width (0 = all applicable indexes concurrently, the
/// default §V-B behaviour); trace/obs live in CommonOptions.
struct SearchOptions : CommonOptions {
  lake::Version snapshot{-1};              ///< -1 = latest.
  std::optional<ScanRange> range;          ///< Structured-attribute filter.
  SearchParams params;                     ///< Per-kind knobs.
  /// When a query degrades on a corrupt or missing index, also remove that
  /// index from the metadata table (transactional CommitNext), so later
  /// queries re-plan without it and Index can re-cover the files. Safe
  /// because indexes are disposable; best-effort — a lost race with a
  /// concurrent committer leaves quarantining to the next query or Scrub.
  bool auto_quarantine = false;
  /// Pre-resolved ABSOLUTE deadline, taking precedence over
  /// `time_budget_micros` when set (non-infinite). This is how the serving
  /// layer makes queue wait count against the budget: the engine resolves
  /// the deadline at SUBMIT time, so by the time the query starts planning
  /// the clock has already been running — a budget-derived deadline
  /// computed at execution start would silently restart it. Direct callers
  /// normally leave this default and use `time_budget_micros`.
  Deadline deadline;
};

/// The query kinds of the unified API — one per Search*/Count* entry point.
enum class QueryKind {
  kUuid,       ///< Exact match on a high-cardinality column (trie index).
  kSubstring,  ///< Exact substring search (FM-index).
  kRegex,      ///< Literal-prefiltered regex search.
  kVector,     ///< IVF-PQ ANN with in-situ exact rerank.
  kKeyword,    ///< Boolean AND/OR over terms (inverted index).
  kCount,      ///< Substring occurrence count (no page fetches).
};

const char* QueryKindName(QueryKind kind);

/// One typed query: the single unit of work of the serving layer. Build
/// with the factory helpers (`Query::Uuid(...)` etc.) or aggregate-style.
struct Query {
  QueryKind kind = QueryKind::kUuid;
  std::string column;
  /// The needle: exact value bytes (kUuid), substring pattern
  /// (kSubstring/kCount) or regex pattern (kRegex). Unused for
  /// kVector/kKeyword.
  std::string needle;
  std::vector<float> vector;        ///< The query vector (kVector only).
  std::vector<std::string> terms;   ///< The query terms (kKeyword only).
  size_t k = 10;              ///< Match budget (ignored by kCount).
  SearchOptions options;
  /// Serving-layer scheduling key: which tenant's fair queue this query
  /// joins ("" = the default tenant). Ignored by direct Rottnest::Execute.
  std::string tenant;

  static Query Uuid(std::string column, std::string value, size_t k,
                    SearchOptions options = {}) {
    Query q;
    q.kind = QueryKind::kUuid;
    q.column = std::move(column);
    q.needle = std::move(value);
    q.k = k;
    q.options = std::move(options);
    return q;
  }
  static Query Substring(std::string column, std::string pattern, size_t k,
                         SearchOptions options = {}) {
    Query q;
    q.kind = QueryKind::kSubstring;
    q.column = std::move(column);
    q.needle = std::move(pattern);
    q.k = k;
    q.options = std::move(options);
    return q;
  }
  static Query Regex(std::string column, std::string pattern, size_t k,
                     SearchOptions options = {}) {
    Query q;
    q.kind = QueryKind::kRegex;
    q.column = std::move(column);
    q.needle = std::move(pattern);
    q.k = k;
    q.options = std::move(options);
    return q;
  }
  static Query Vector(std::string column, std::vector<float> query, size_t k,
                      SearchOptions options = {}) {
    Query q;
    q.kind = QueryKind::kVector;
    q.column = std::move(column);
    q.vector = std::move(query);
    q.k = k;
    q.options = std::move(options);
    return q;
  }
  static Query MakeKeyword(std::string column, std::vector<std::string> terms,
                           KeywordMode mode, size_t k,
                           SearchOptions options = {}) {
    Query q;
    q.kind = QueryKind::kKeyword;
    q.column = std::move(column);
    q.terms = std::move(terms);
    q.k = k;
    q.options = std::move(options);
    q.options.params.keyword.mode = mode;
    return q;
  }
  static Query Count(std::string column, std::string pattern,
                     SearchOptions options = {}) {
    Query q;
    q.kind = QueryKind::kCount;
    q.column = std::move(column);
    q.needle = std::move(pattern);
    q.options = std::move(options);
    return q;
  }
};

/// The typed response: `result` for the search kinds, `count` for kCount.
struct QueryResponse {
  QueryKind kind = QueryKind::kUuid;
  SearchResult result;
  uint64_t count = 0;
};

}  // namespace rottnest::core

#endif  // ROTTNEST_CORE_QUERY_H_
