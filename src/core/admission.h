// Admission control for the query path: the seed of the multi-tenant
// serving layer (ROADMAP item 1). A fixed concurrency cap plus a bounded
// wait queue, with deadline-aware shedding — a query that would blow its
// deadline just WAITING is rejected immediately with ResourceExhausted
// instead of queueing doomed work (the "don't serve the dead" rule from
// overload-control literature).
//
// Sizing signals:
//   * max_concurrent: searches running at once; excess callers queue.
//   * max_queue: callers allowed to wait; beyond that, immediate shed.
//   * predicted wait: queue_position × EWMA(service time). If a caller's
//     deadline budget is smaller, it is shed on arrival — an instant,
//     honest "try later" beats a slow DeadlineExceeded.
//
// Deterministic under SimulatedClock: waiting uses short real cv waits but
// all decisions (shed, expire) read the injected clock.
#ifndef ROTTNEST_CORE_ADMISSION_H_
#define ROTTNEST_CORE_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/deadline.h"
#include "common/status.h"

namespace rottnest::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace rottnest::obs

namespace rottnest::core {

struct AdmissionOptions {
  /// Operations allowed to run concurrently. 0 disables admission control
  /// entirely (Admit always succeeds and tracks nothing).
  int max_concurrent = 0;
  /// Callers allowed to wait for a slot; arrivals beyond this shed.
  int max_queue = 16;
  /// Seed for the service-time EWMA before any operation completes.
  Micros initial_service_micros = 50'000;
};

/// Pre-resolved metric handles mirroring AdmissionStats.
struct AdmissionMetrics {
  obs::Counter* admitted = nullptr;
  obs::Counter* queued = nullptr;
  obs::Counter* shed_queue_full = nullptr;
  obs::Counter* shed_deadline = nullptr;
  obs::Counter* expired_waiting = nullptr;
  obs::Gauge* running = nullptr;
  obs::Gauge* waiting = nullptr;
};

/// Resolves the `admission.<name>.*` handle set (nullptr-safe).
AdmissionMetrics ResolveAdmissionMetrics(obs::MetricsRegistry* registry,
                                         const std::string& name);

/// Cumulative admission accounting.
struct AdmissionStats {
  std::atomic<uint64_t> admitted{0};         ///< Ops granted a slot.
  std::atomic<uint64_t> queued{0};           ///< Ops that had to wait first.
  std::atomic<uint64_t> shed_queue_full{0};  ///< Rejected: queue at cap.
  std::atomic<uint64_t> shed_deadline{0};    ///< Rejected: predicted wait
                                             ///< exceeds deadline budget.
  std::atomic<uint64_t> expired_waiting{0};  ///< Deadline died in the queue.
};

class AdmissionController;

/// RAII slot handle: releases the slot (and feeds the service-time EWMA)
/// on destruction. Move-only.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionController* controller, Micros admitted_at)
      : controller_(controller), admitted_at_(admitted_at) {}
  AdmissionTicket(AdmissionTicket&& o) noexcept
      : controller_(o.controller_), admitted_at_(o.admitted_at_) {
    o.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& o) noexcept {
    Release();
    controller_ = o.controller_;
    admitted_at_ = o.admitted_at_;
    o.controller_ = nullptr;
    return *this;
  }
  ~AdmissionTicket() { Release(); }

  void Release();

 private:
  AdmissionController* controller_ = nullptr;
  Micros admitted_at_ = 0;
};

/// Thread-safe concurrency gate. Admit() blocks (bounded by the caller's
/// deadline) until a slot frees; the returned ticket releases it.
class AdmissionController {
 public:
  /// `clock` must outlive the controller.
  AdmissionController(const Clock* clock, AdmissionOptions options);

  /// Acquires a slot or explains why not:
  ///   OK                 — slot held; destroy/Release the ticket when done.
  ///   ResourceExhausted  — shed: queue full, or the predicted wait would
  ///                        exceed `deadline`'s remaining budget.
  ///   DeadlineExceeded   — the deadline expired while waiting in queue.
  Result<AdmissionTicket> Admit(const Deadline& deadline);

  // ---- Engine-owned-queue protocol (serve::QueryEngine) ----------------
  // The serving layer owns the WAIT QUEUE itself (per-tenant fair queues,
  // wave batching) but reuses this controller as the admission POLICY:
  // shed decisions, queue/slot accounting, the service-time EWMA and the
  // admission.* metrics. Lifecycle of one queued request:
  //
  //   NoteArrival(dl)  -> OK: counted waiting; or typed shed (never blocks)
  //   StartScheduled() -> the scheduler picked it: waiting -> running,
  //                       returns the RAII ticket (release feeds the EWMA)
  //   CancelArrival()  -> it died in the engine queue instead (deadline
  //                       expiry, shutdown) without ever running.
  //
  // The caller must keep running() <= max_concurrent itself (the engine
  // does: waves are serialized and sized to the concurrency cap).

  /// Non-blocking arrival decision for an externally-owned queue: applies
  /// the same shed rules as Admit (queue cap, predicted-wait vs deadline)
  /// and on OK counts the request as waiting.
  Status NoteArrival(const Deadline& deadline);

  /// Converts one noted arrival into a running slot (scheduler's pick).
  AdmissionTicket StartScheduled();

  /// Drops one noted arrival that never ran. `expired_in_queue` marks a
  /// deadline death (counted in AdmissionStats::expired_waiting).
  void CancelArrival(bool expired_in_queue);

  const AdmissionStats& admission_stats() const { return stats_; }
  const AdmissionOptions& options() const { return options_; }
  bool enabled() const { return options_.max_concurrent > 0; }

  int running() const;
  int waiting() const;

  /// Smoothed observed service time (for tests and sizing).
  Micros EwmaServiceMicros() const;

  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& name = "search");

 private:
  friend class AdmissionTicket;
  void Release(Micros admitted_at);

  const Clock* clock_;
  AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int running_ = 0;
  int waiting_ = 0;
  double ewma_service_micros_;

  AdmissionStats stats_;
  AdmissionMetrics metrics_;
};

}  // namespace rottnest::core

#endif  // ROTTNEST_CORE_ADMISSION_H_
