// Rottnest client (paper §IV): the four-API protocol — `index`, `search`,
// `compact`, `vacuum` — that keeps lightweight secondary indices consistent
// with a data lake *on demand*, using only strong read-after-write
// consistency and a global store clock. The two invariants:
//
//   Existence   — every index file referenced by the metadata table is
//                 present in the bucket (upload-before-commit;
//                 commit-before-delete + timeout guard in vacuum);
//   Consistency — an index file correctly indexes its data files if they
//                 still exist (both are immutable).
//
// Search plans against a snapshot: indexed files are answered through the
// index files + in-situ page probes; postings referring to files outside
// the snapshot are filtered; unindexed files fall back to scanning.
#ifndef ROTTNEST_CORE_ROTTNEST_H_
#define ROTTNEST_CORE_ROTTNEST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "index/component_file.h"
#include "index/fm/fm_index.h"
#include "index/ivfpq/ivfpq_index.h"
#include "lake/metadata_table.h"
#include "lake/table.h"
#include "objectstore/io_trace.h"

namespace rottnest::core {

/// Client configuration.
struct RottnestOptions {
  std::string index_dir;  ///< Object-store prefix for index files.
  /// Protocol timeout (paper §IV-A step 4): index/compact runs exceeding it
  /// abort; vacuum may physically delete uncommitted objects older than it.
  Micros index_timeout_micros = 10LL * 60 * 1'000'000;
  /// Vector indexing aborts below this row count in favour of brute force
  /// (paper footnote 2).
  uint64_t min_vector_index_rows = 0;
  index::FmOptions fm;
  index::IvfPqOptions ivfpq;
  size_t num_threads = 8;
};

/// One verified search hit.
struct RowMatch {
  std::string file;    ///< Data file object key.
  uint64_t row = 0;    ///< File-global row index.
  std::string value;   ///< The matched column value (raw bytes).
  float distance = 0;  ///< Exact distance (vector search only).
};

/// Search outcome plus plan accounting (used by the TCO benches).
struct SearchResult {
  std::vector<RowMatch> matches;
  size_t indexes_queried = 0;
  size_t files_scanned = 0;   ///< Unindexed files brute-scanned.
  size_t pages_probed = 0;    ///< In-situ page reads.
  /// Graceful degradation: index files that could not be read (missing,
  /// truncated, checksum mismatch) are skipped and their covered files
  /// answered through the brute-scan path instead of failing the query.
  size_t indexes_degraded = 0;                ///< Unreadable indexes skipped.
  std::vector<std::string> degraded_indexes;  ///< Their object keys.
};

/// Outcome of one `Index` call.
struct IndexReport {
  std::string index_path;  ///< Empty if nothing new to index.
  std::vector<std::string> covered_files;
  uint64_t rows = 0;
};

/// Outcome of one `Compact` call.
struct CompactReport {
  std::string merged_path;  ///< Empty if nothing was compacted.
  std::vector<std::string> replaced;
};

/// Outcome of one `Vacuum` call.
struct VacuumReport {
  size_t metadata_entries_removed = 0;
  size_t objects_deleted = 0;
};

/// An inclusive range predicate on an int64 column (e.g. a timestamp),
/// the paper's "structured attribute" filter (§VI): searches prune data
/// files and row groups via the format's min/max statistics and verify the
/// attribute in situ for every match.
struct ScanRange {
  std::string column;
  int64_t min = INT64_MIN;
  int64_t max = INT64_MAX;

  bool Contains(int64_t v) const { return v >= min && v <= max; }
};

/// Optional knobs common to all search calls.
struct SearchOptions {
  lake::Version snapshot = -1;             ///< -1 = latest.
  objectstore::IoTrace* trace = nullptr;   ///< Access-pattern recording.
  std::optional<ScanRange> range;          ///< Structured-attribute filter.
};

/// One committed index entry plus its physical size — `DescribeIndexes`.
struct IndexDescription {
  lake::IndexEntry entry;
  uint64_t bytes = 0;
  bool covers_live_files = false;  ///< Any covered file in latest snapshot.
};

/// The Rottnest client. Instances are cheap; every call re-plans against
/// the current state, so independent processes can run index / search /
/// compact / vacuum concurrently (the paper's deployment model).
class Rottnest {
 public:
  /// `store` and `table` must outlive the client.
  Rottnest(objectstore::ObjectStore* store, lake::Table* table,
           RottnestOptions options);

  /// Indexes data files of the latest snapshot not yet covered for
  /// (column, type). No-op (empty index_path) when nothing is new.
  Result<IndexReport> Index(const std::string& column, index::IndexType type);

  /// Exact-match search on a high-cardinality column via the trie index.
  /// Returns up to k verified matches.
  Result<SearchResult> SearchUuid(const std::string& column, Slice value,
                                  size_t k, lake::Version snapshot = -1,
                                  objectstore::IoTrace* trace = nullptr);

  /// Exact substring search via the FM-index.
  Result<SearchResult> SearchSubstring(const std::string& column,
                                       const std::string& pattern, size_t k,
                                       lake::Version snapshot = -1,
                                       objectstore::IoTrace* trace = nullptr);

  /// Approximate nearest-neighbour search via IVF-PQ with in-situ
  /// refinement: `nprobe` lists probed, `refine` full vectors fetched and
  /// reranked exactly. Unindexed files are always scanned (scoring query).
  Result<SearchResult> SearchVector(const std::string& column,
                                    const float* query, uint32_t dim,
                                    size_t k, uint32_t nprobe,
                                    uint32_t refine,
                                    lake::Version snapshot = -1,
                                    objectstore::IoTrace* trace = nullptr);

  /// Search overloads with full options (snapshot, tracing, and the
  /// structured-attribute ScanRange filter).
  Result<SearchResult> SearchUuid(const std::string& column, Slice value,
                                  size_t k, const SearchOptions& opts);
  Result<SearchResult> SearchSubstring(const std::string& column,
                                       const std::string& pattern, size_t k,
                                       const SearchOptions& opts);
  Result<SearchResult> SearchVector(const std::string& column,
                                    const float* query, uint32_t dim,
                                    size_t k, uint32_t nprobe,
                                    uint32_t refine,
                                    const SearchOptions& opts);

  /// Regex search over a text column. The longest literal run (>= 3
  /// chars) inside the pattern is located through the FM-index and every
  /// candidate is verified in situ with std::regex (ECMAScript). Patterns
  /// without a usable literal fall back to brute-force scanning — the same
  /// strategy production log-search systems use.
  Result<SearchResult> SearchRegex(const std::string& column,
                                   const std::string& pattern, size_t k,
                                   const SearchOptions& opts = {});

  /// Counts occurrences of `pattern` across the snapshot without fetching
  /// any data pages — FM-index backward search over indexed files plus a
  /// scan of unindexed ones. The paper's LLM-corpus-exploration workload
  /// ("is this eval set leaked, and how often?") in one call. The count is
  /// of substring occurrences, not rows.
  Result<uint64_t> CountSubstring(const std::string& column,
                                  const std::string& pattern,
                                  const SearchOptions& opts = {});

  /// Lists committed index entries with their object sizes and liveness —
  /// an EXPLAIN-style introspection aid.
  Result<std::vector<IndexDescription>> DescribeIndexes();

  /// LSM-style index compaction: merges committed index files of
  /// (column, type) smaller than `small_index_bytes` into one.
  Result<CompactReport> Compact(const std::string& column,
                                index::IndexType type,
                                uint64_t small_index_bytes);

  /// Garbage collection (paper §IV-C): keeps a greedy minimal set of index
  /// files covering the data files of snapshots >= `min_snapshot`, removes
  /// the rest from the metadata table, then physically deletes index
  /// objects that are unreferenced AND older than the index timeout.
  Result<VacuumReport> Vacuum(lake::Version min_snapshot);

  /// Verifies the Existence invariant (and basic consistency) — used by
  /// protocol crash tests after every injected failure.
  Status CheckInvariants();

  lake::MetadataTable& metadata() { return metadata_; }
  const RottnestOptions& options() const { return options_; }

 private:
  struct Plan;

  /// Builds one index file covering `files` and returns its object key.
  Result<IndexReport> BuildIndexFile(
      const std::string& column, index::IndexType type,
      const std::vector<lake::DataFile>& files);

  /// Computes which committed index entries apply to the snapshot and
  /// which snapshot files are unindexed.
  Status MakePlan(const std::string& column, index::IndexType type,
                  lake::Version snapshot_version,
                  objectstore::IoTrace* trace, Plan* out);

  /// Reads the data pages named by `fetches` and returns decoded values,
  /// one inner vector per page.
  Status ProbePages(const std::vector<format::PageFetch>& fetches,
                    const format::ColumnSchema& column_schema,
                    objectstore::IoTrace* trace,
                    std::vector<format::ColumnVector>* out);

  std::string NewIndexName();

  objectstore::ObjectStore* store_;
  lake::Table* table_;
  RottnestOptions options_;
  lake::MetadataTable metadata_;
  ThreadPool pool_;
  uint64_t name_counter_ = 0;
};

}  // namespace rottnest::core

#endif  // ROTTNEST_CORE_ROTTNEST_H_
