// Rottnest client (paper §IV): the four-API protocol — `index`, `search`,
// `compact`, `vacuum` — that keeps lightweight secondary indices consistent
// with a data lake *on demand*, using only strong read-after-write
// consistency and a global store clock. The two invariants:
//
//   Existence   — every index file referenced by the metadata table is
//                 present in the bucket (upload-before-commit;
//                 commit-before-delete + timeout guard in vacuum);
//   Consistency — an index file correctly indexes its data files if they
//                 still exist (both are immutable).
//
// Search plans against a snapshot: indexed files are answered through the
// index files + in-situ page probes; postings referring to files outside
// the snapshot are filtered; unindexed files fall back to scanning.
//
// ## The unified Query API (v3) and the stable v2 search methods
//
// The single typed entry point of the query side is
//
//   Execute(Query) -> QueryResponse
//
// where `Query` (core/query.h) is a variant over the six query kinds —
// UUID / substring / regex / vector / keyword / count — carrying the
// column, the needle (query vector, or term list), `k` and one
// `SearchOptions`. The serving layer (`serve::QueryEngine`) consumes
// exactly this API. The classic per-kind methods are thin wrappers over
// Execute:
//
//   SearchUuid(column, value, k, opts)        — trie exact match
//   SearchSubstring(column, pattern, k, opts) — FM-index substring
//   SearchRegex(column, pattern, k, opts)     — literal-prefiltered regex
//   SearchVector(column, query, dim, k, opts) — IVF-PQ ANN + in-situ rerank
//   SearchKeyword(column, terms, k, opts)     — boolean AND/OR keyword
//   CountSubstring(column, pattern, opts)     — occurrence counting
//   DescribeIndexes(opts)                     — EXPLAIN-style introspection
//   CheckInvariants(opts)                     — protocol invariant audit
//
// Every entry point takes exactly one optional `SearchOptions` argument
// carrying the cross-cutting knobs — snapshot pin, IoTrace recording, the
// structured-attribute ScanRange filter, and the per-kind parameter block
// (`SearchOptions::params`: `params.vector` defaulting from
// `IvfPqOptions`, `params.keyword` for the boolean mode and term cap). The
// pre-v2 positional `(snapshot, trace)` overloads are gone; there is
// exactly one public signature per search kind. Introspection shares the
// same shape:
// `DescribeIndexes` computes liveness against `opts.snapshot` and
// `CheckInvariants` records its reads into `opts.trace` (its existence
// probes intentionally bypass the client cache — an audit must observe the
// bucket, not the cache).
//
// Direct calls are UNADMITTED: overload policy (admission control, fair
// scheduling, batching) lives in the serving layer's `ServeOptions`, not
// here — a single-tenant embedding pays nothing for it.
//
// ## The v2 maintenance API
//
// The write-side mirrors the search shape: every maintenance entry point
// takes exactly one optional `MaintenanceOptions` argument —
//
//   Index(column, type, opts)   — cover fresh snapshot files
//   Compact(column, type, opts) — LSM-style small-index merge
//   Vacuum(min_snapshot, opts)  — metadata GC + physical deletion
//
// carrying the cross-cutting maintenance knobs: `parallelism` (pipeline
// width; output bytes are identical at ANY setting), `byte_budget`
// (bounded-memory staging/prefetch), `time_budget_micros` (overrides the
// client timeout; enforced per page batch, not per file), `dry_run`
// (plan + report without mutating anything) and an `IoTrace*`. Each report
// carries `MaintenanceStats`: request/byte totals, dependent-round depth
// (parallel chains merged via the MergeParallel max-depth convention) and
// the simulated S3 latency/cost those imply. The pre-v2 positional
// signatures (`Compact(column, type, small_index_bytes)`) are gone.
//
// Internally `Index` runs a producer/consumer pipeline: worker threads
// stage per-file column extraction (download + decompress + key/text/vector
// extraction) while the calling thread folds staged files into the index
// builders strictly in file order — so the emitted index object is
// byte-identical to the serial build. `Compact` prefetches its inputs
// concurrently (up to `byte_budget`) and streams the merge.
//
// ## Caching & fan-out (the query hot path)
//
// With `RottnestOptions::cache_bytes > 0` the client routes every
// index-component, footer and data-page read through a process-wide sharded
// read-through LRU (`objectstore::CachingStore`) — sound because index and
// data files are immutable — and repeated queries touch the object store
// only for snapshot/metadata state. Searches additionally fan out across
// the applicable index files of a plan on the client thread pool, so the
// dependent-GET depth of a multi-index snapshot is the depth of ONE index
// chain, not their sum (§V-B). Per-query cache accounting is reported in
// `SearchResult`; aggregate counters live in the cache's `IoStats`.
#ifndef ROTTNEST_CORE_ROTTNEST_H_
#define ROTTNEST_CORE_ROTTNEST_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/query.h"
#include "index/component_file.h"
#include "index/fm/fm_index.h"
#include "index/ivfpq/ivfpq_index.h"
#include "lake/metadata_table.h"
#include "lake/table.h"
#include "objectstore/caching_store.h"
#include "objectstore/io_trace.h"
#include "obs/obs_context.h"
#include "obs/stats.h"

namespace rottnest::core {

namespace internal {
class OpObs;  // Per-operation instrumentation glue (core/obs_internal.h).
}  // namespace internal

/// Client configuration.
struct RottnestOptions {
  std::string index_dir;  ///< Object-store prefix for index files.
  /// Protocol timeout (paper §IV-A step 4): index/compact runs exceeding it
  /// abort; vacuum may physically delete uncommitted objects older than it.
  Micros index_timeout_micros = 10LL * 60 * 1'000'000;
  /// Vector indexing aborts below this row count in favour of brute force
  /// (paper footnote 2).
  uint64_t min_vector_index_rows = 0;
  index::FmOptions fm;
  index::IvfPqOptions ivfpq;
  size_t num_threads = 8;
  /// Byte budget for the client-side read-through cache over index
  /// components, file footers and data pages (0 = caching off). Safe at any
  /// size: the cached objects are immutable, so entries never go stale —
  /// they only age out of the LRU.
  uint64_t cache_bytes = 0;
  /// Shards of the cache (mutex-per-shard; contention knob, not capacity).
  size_t cache_shards = 16;
  /// Also cache Head() metadata (CacheOptions::cache_heads). Disable when
  /// an exact GET-path reconciliation is wanted: with heads uncached the
  /// cache's hit/miss/coalesced/wave counters cover byte reads only, so
  /// per-query traced GETs reconcile exactly against them (the serving
  /// bench's invariant).
  bool cache_heads = true;
};
// NOTE: the pre-serve admission knobs (`max_concurrent_searches`,
// `max_queued_searches`) moved to serve::ServeOptions — overload policy
// lives in the serving layer; direct Search* calls are unadmitted.

// RowMatch, CommonOptions, SearchResult, ScanRange, SearchParams (the
// per-kind VectorSearchParams/KeywordSearchParams block), SearchOptions
// and the typed Query/QueryResponse variant live in core/query.h (included
// above) — the query-side API is one header.

/// Optional knobs common to all maintenance calls (the one options
/// argument of the v2 write-side API — see the header comment). The
/// cross-cutting knobs live in CommonOptions.
struct MaintenanceOptions : CommonOptions {
  /// Plan and report (covered files, rows, merge inputs, deletions)
  /// without writing objects or committing metadata.
  bool dry_run = false;
  /// Compact only: merge committed index files smaller than this.
  uint64_t small_index_bytes = UINT64_MAX;
};

/// IO/cost accounting attached to every maintenance report — the unified
/// obs::Stats surface (the pre-obs MaintenanceStats fields are a strict
/// subset, so existing `.stats.gets` call sites keep compiling).
using MaintenanceStats = obs::Stats;

/// Outcome of one `Index` call.
struct IndexReport {
  std::string index_path;  ///< Empty if nothing new to index (or dry run).
  std::vector<std::string> covered_files;
  uint64_t rows = 0;
  MaintenanceStats stats;
};

/// Outcome of one `Compact` call.
struct CompactReport {
  std::string merged_path;  ///< Empty if nothing was compacted (or dry run).
  std::vector<std::string> replaced;
  MaintenanceStats stats;
};

/// Outcome of one `Vacuum` call.
struct VacuumReport {
  size_t metadata_entries_removed = 0;
  size_t objects_deleted = 0;
  std::vector<std::string> removed_entries;  ///< Index paths GC'd from metadata.
  std::vector<std::string> deleted_objects;  ///< Object keys physically deleted.
  MaintenanceStats stats;
};

/// How bad one Scrub finding is.
enum class ScrubSeverity {
  kWarning,  ///< Legal but untidy state (e.g. an uncommitted orphan object).
  kError,    ///< Invariant violation: queries over this index degrade.
};

/// What kind of damage a Scrub finding describes.
enum class ScrubFindingKind {
  kMissingIndex,          ///< Committed entry, object absent (Existence).
  kCorruptIndex,          ///< Directory/magic/structure fails to open.
  kCorruptComponent,      ///< A component payload fails its Hash64 checksum.
  kUnreadableIndex,       ///< Open failed for a non-corruption reason (IO).
  kInconsistentPageTable, ///< Page table names files outside covered set.
  kOrphanObject,          ///< Index object in the bucket, not in metadata.
  kCorruptCheckpoint,     ///< Checkpoint object fails parse/checksum (rot).
  kDanglingCheckpoint,    ///< _last_checkpoint names a missing/unusable
                          ///< checkpoint, or is itself unparseable.
  kOrphanCheckpoint,      ///< Valid checkpoint not named by the pointer —
                          ///< a legal crash residue (warning).
};

const char* ScrubFindingKindName(ScrubFindingKind k);

/// One finding of a Scrub audit.
struct ScrubFinding {
  ScrubFindingKind kind = ScrubFindingKind::kCorruptIndex;
  ScrubSeverity severity = ScrubSeverity::kError;
  std::string index_path;  ///< The index object concerned.
  std::string component;   ///< Blamed component (kCorruptComponent only).
  std::string detail;      ///< Human-readable explanation.
  /// The damaged entry's (column, index type), from its metadata entry —
  /// what Repair re-Indexes. Empty for orphan findings. Carrying these in
  /// the finding (not re-derived from metadata at Repair time) makes a
  /// retried Repair converge even when a crashed attempt already
  /// quarantined the entry.
  std::string column;
  std::string index_type;
  Micros age_micros = 0;   ///< Object age at scrub time (orphans only).
};

/// Knobs for Scrub. parallelism = indexes audited concurrently;
/// byte_budget = deep verification stops re-fetching component payloads
/// once this many bytes have been read (components already verified in the
/// open tail read are free and never skipped).
struct ScrubOptions : CommonOptions {
  /// Re-fetch and checksum every component payload (the expensive part).
  /// false = structural audit only: existence, directory, page table.
  bool deep = true;
};

/// Outcome of one Scrub: ALL findings, not just the first.
struct ScrubReport {
  std::vector<ScrubFinding> findings;  ///< Sorted; empty = pristine.
  size_t indexes_checked = 0;
  size_t checkpoints_checked = 0;  ///< Checkpoint objects audited (deep).
  size_t components_verified = 0;
  size_t components_skipped = 0;  ///< Deep checks skipped by byte_budget.
  uint64_t bytes_verified = 0;
  MaintenanceStats stats;

  /// True when no finding is an error (warnings — orphans — allowed).
  bool clean() const {
    for (const auto& f : findings) {
      if (f.severity == ScrubSeverity::kError) return false;
    }
    return true;
  }
};

/// Knobs for Repair (parallelism = rebuild/delete fan-out width).
struct RepairOptions : CommonOptions {
  bool quarantine = true;      ///< Remove damaged entries from metadata.
  bool reindex = true;         ///< Re-Index columns uncovered by quarantine.
  bool gc_orphans = true;      ///< Delete orphan objects past the grace period.
  /// Rebuild rotten/dangling metadata-plane checkpoints from the log.
  bool rebuild_checkpoints = true;
  /// Orphans younger than this are left alone — they may be an in-flight
  /// Index upload that has not committed yet. 0 = the client's
  /// index_timeout_micros (the same guard Vacuum uses).
  Micros orphan_grace_micros = 0;
  bool dry_run = false;        ///< Plan and report without mutating anything.
};

/// Outcome of one Repair.
struct RepairReport {
  std::vector<std::string> quarantined;      ///< Entries removed from metadata.
  std::vector<std::string> rebuilt;          ///< New index objects committed.
  std::vector<std::string> orphans_deleted;  ///< Orphan objects deleted.
  /// Fresh checkpoint objects written over rotten/dangling ones.
  std::vector<std::string> checkpoints_rebuilt;
  uint64_t rebuilt_rows = 0;
  MaintenanceStats stats;
};

/// One committed index entry plus its physical size — `DescribeIndexes`.
struct IndexDescription {
  lake::IndexEntry entry;
  uint64_t bytes = 0;
  bool covers_live_files = false;  ///< Any covered file in latest snapshot.
};

/// The Rottnest client. Instances are cheap; every call re-plans against
/// the current state, so independent processes can run index / search /
/// compact / vacuum concurrently (the paper's deployment model).
class Rottnest {
 public:
  /// `store` and `table` must outlive the client.
  Rottnest(objectstore::ObjectStore* store, lake::Table* table,
           RottnestOptions options);

  /// Indexes data files of the latest snapshot not yet covered for
  /// (column, type). No-op (empty index_path) when nothing is new. Runs
  /// the parallel staging pipeline described in the header comment; the
  /// index object is byte-identical at any `opts.parallelism`.
  Result<IndexReport> Index(const std::string& column, index::IndexType type,
                            const MaintenanceOptions& opts = {});

  /// The single typed entry point of the query side: dispatches `q` to the
  /// matching search/count implementation and wraps the outcome in a
  /// QueryResponse. Every Search*/Count* method below is a thin wrapper
  /// over this. Unadmitted — overload policy lives in serve::QueryEngine,
  /// which consumes exactly this API.
  Result<QueryResponse> Execute(const Query& q);

  /// Exact-match search on a high-cardinality column via the trie index.
  /// Returns up to k verified matches.
  Result<SearchResult> SearchUuid(const std::string& column, Slice value,
                                  size_t k, const SearchOptions& opts = {});

  /// Exact substring search via the FM-index.
  Result<SearchResult> SearchSubstring(const std::string& column,
                                       const std::string& pattern, size_t k,
                                       const SearchOptions& opts = {});

  /// Approximate nearest-neighbour search via IVF-PQ with in-situ
  /// refinement: `opts.params.vector.nprobe` lists probed,
  /// `opts.params.vector.refine` full vectors fetched and reranked exactly
  /// (0 = the IvfPqOptions defaults). Unindexed files are always scanned
  /// (scoring query).
  Result<SearchResult> SearchVector(const std::string& column,
                                    const float* query, uint32_t dim,
                                    size_t k, const SearchOptions& opts = {});

  /// Boolean keyword search over a text column via the tokenized inverted
  /// index: rows containing every term (`opts.params.keyword.mode` =
  /// kAnd, the default) or any term (kOr). Terms are normalized through
  /// the index tokenizer; each must normalize to exactly one token, and at
  /// most `opts.params.keyword.max_terms` distinct terms are accepted.
  /// Every candidate row is verified in situ, so matches are exact.
  Result<SearchResult> SearchKeyword(const std::string& column,
                                     const std::vector<std::string>& terms,
                                     size_t k, const SearchOptions& opts = {});

  /// Regex search over a text column. The longest literal run (>= 3
  /// chars) inside the pattern is located through the FM-index and every
  /// candidate is verified in situ with std::regex (ECMAScript). Patterns
  /// without a usable literal fall back to brute-force scanning — the same
  /// strategy production log-search systems use.
  Result<SearchResult> SearchRegex(const std::string& column,
                                   const std::string& pattern, size_t k,
                                   const SearchOptions& opts = {});

  /// Counts occurrences of `pattern` across the snapshot without fetching
  /// any data pages — FM-index backward search over indexed files plus a
  /// scan of unindexed ones. The paper's LLM-corpus-exploration workload
  /// ("is this eval set leaked, and how often?") in one call. The count is
  /// of substring occurrences, not rows.
  Result<uint64_t> CountSubstring(const std::string& column,
                                  const std::string& pattern,
                                  const SearchOptions& opts = {});

  /// Lists committed index entries with their object sizes and liveness —
  /// an EXPLAIN-style introspection aid. Liveness is computed against
  /// `opts.snapshot` (-1 = latest); plan-state reads are recorded into
  /// `opts.trace`.
  Result<std::vector<IndexDescription>> DescribeIndexes(
      const SearchOptions& opts = {});

  /// LSM-style index compaction: merges committed index files of
  /// (column, type) smaller than `opts.small_index_bytes` into one. Merge
  /// inputs are ordered deterministically (by commit time, then coverage,
  /// then path), prefetched concurrently up to `opts.byte_budget`, and
  /// streamed through bounded-memory merges.
  Result<CompactReport> Compact(const std::string& column,
                                index::IndexType type,
                                const MaintenanceOptions& opts = {});

  /// Garbage collection (paper §IV-C): keeps a greedy minimal set of index
  /// files covering the data files of snapshots >= `min_snapshot`, removes
  /// the rest from the metadata table, then physically deletes index
  /// objects that are unreferenced AND older than the index timeout.
  /// Physical deletes fan out on `opts.parallelism`.
  Result<VacuumReport> Vacuum(lake::Version min_snapshot,
                              const MaintenanceOptions& opts = {});

  /// Anti-entropy audit: checks every committed index for existence,
  /// directory integrity, (deep) all component payload checksums and
  /// page-table↔metadata consistency, and lists orphaned index objects.
  /// Never fails fast — every problem becomes a ScrubFinding with a
  /// severity; the call itself only errors when the audit cannot run at
  /// all (metadata unreadable). Indexes are audited concurrently on
  /// `opts.parallelism` threads with wave-merged IoTraces, like Compact.
  /// Existence and component reads deliberately bypass the client cache —
  /// an audit must observe the bucket. Cached blocks of any index found
  /// corrupt are invalidated as a side effect.
  Result<ScrubReport> Scrub(const ScrubOptions& opts = {});

  /// Heals the findings of a Scrub: (1) quarantines damaged index entries
  /// — one transactional CommitNext removing them from the metadata table,
  /// so searches fall back to brute scans of the uncovered files; (2)
  /// re-`Index`es each affected (column, type), re-covering those files
  /// with fresh index objects; (3) deletes orphan objects older than the
  /// grace period (Vacuum's timeout rule). The order makes every prefix
  /// crash-safe: quarantine is one atomic commit, re-indexing is the
  /// ordinary crash-safe Index protocol, and orphan deletion only touches
  /// objects provably outside the protocol window.
  Result<RepairReport> Repair(const ScrubReport& report,
                              const RepairOptions& opts = {});

  /// Verifies the Existence invariant (and basic consistency) — used by
  /// protocol crash tests after every injected failure. Implemented on
  /// Scrub (shallow audit): reports ALL violations joined into one Status
  /// instead of failing on the first. Shares the SearchOptions plumbing
  /// (`opts.trace` records the audit's reads); the invariants themselves
  /// are global, so `opts.snapshot` does not narrow them, and existence
  /// probes deliberately bypass the client cache. Orphan warnings — legal
  /// under the protocol — do not fail the check.
  Status CheckInvariants(const SearchOptions& opts = {});

  lake::MetadataTable& metadata() { return metadata_; }
  lake::Table* table() { return table_; }
  const RottnestOptions& options() const { return options_; }

  /// The client-side cache, or nullptr when cache_bytes == 0. Exposes
  /// hit/miss/evict/bytes counters through its IoStats; the non-const
  /// overload additionally allows AttachMetrics(&registry).
  const objectstore::CachingStore* cache() const {
    return cache_store_.get();
  }
  objectstore::CachingStore* cache() { return cache_store_.get(); }

  /// The client's shared thread pool — the serving layer runs its GET
  /// waves on it so one process has ONE compute pool (searches nest their
  /// own fan-outs on the same pool; ParallelFor is nested-safe).
  ThreadPool* pool() { return &pool_; }

  /// The store clock (deadlines, admission EWMA, latency accounting).
  const Clock& clock() const { return store_->clock(); }

 private:
  struct Plan;

  /// Per-call maintenance knobs after defaulting against RottnestOptions.
  struct MaintenancePlan {
    size_t parallelism = 1;
    uint64_t byte_budget = 0;  ///< 0 = unbounded.
    Micros deadline = 0;       ///< Absolute store-clock deadline.
  };
  MaintenancePlan ResolveMaintenance(const MaintenanceOptions& opts,
                                     Micros start) const;

  /// Fills `stats` from the op-local trace + wall clock + the op's
  /// cache/retry/fault deltas (`op` may be null) and appends the local
  /// trace to `opts.trace` (if any).
  void FinishMaintenanceStats(objectstore::IoTrace* local,
                              const MaintenanceOptions& opts,
                              const MaintenancePlan& plan,
                              std::chrono::steady_clock::time_point wall_start,
                              const internal::OpObs* op,
                              MaintenanceStats* stats) const;

  /// Builds one index file covering `files` and returns its object key.
  /// Stages per-file extraction on up to `plan.parallelism` threads while
  /// the calling thread feeds builders in file order (see header comment).
  /// Per-file staging spans and build/upload phases attach to `op` (may be
  /// null).
  Result<IndexReport> BuildIndexFile(const std::string& column,
                                     index::IndexType type,
                                     const std::vector<lake::DataFile>& files,
                                     const MaintenancePlan& plan,
                                     objectstore::IoTrace* trace,
                                     internal::OpObs* op);

  /// Computes which committed index entries apply to the snapshot and
  /// which snapshot files are unindexed.
  Status MakePlan(const std::string& column, index::IndexType type,
                  lake::Version snapshot_version,
                  objectstore::IoTrace* trace, Plan* out);

  /// Reads the data pages named by `fetches` and returns decoded values,
  /// one inner vector per page.
  Status ProbePages(const std::vector<format::PageFetch>& fetches,
                    const format::ColumnSchema& column_schema,
                    objectstore::IoTrace* trace,
                    std::vector<format::ColumnVector>* out);

  std::string NewIndexName();

  /// The store immutable reads go through: the cache when enabled, the raw
  /// store otherwise. Metadata/txn-log reads and writes stay on `store_`.
  objectstore::ObjectStore* read_store() {
    return cache_store_ != nullptr
               ? static_cast<objectstore::ObjectStore*>(cache_store_.get())
               : store_;
  }

  /// Post-fan-out handling of per-index failures: invalidates poisoned
  /// cache entries for corrupt indexes and, with opts.auto_quarantine,
  /// removes corrupt/missing entries from the metadata table. Returns how
  /// many entries were quarantined.
  size_t HandleSearchFailures(
      const SearchOptions& opts,
      const std::vector<std::pair<const lake::IndexEntry*, Status>>& failed);

  /// Invalidates every cached block of `key` (no-op when caching is off).
  void InvalidateCachedIndex(const std::string& key);

  // The per-kind implementations Execute dispatches to (the public
  // Search*/Count* methods are Query-building wrappers over Execute).
  Result<SearchResult> ExecUuid(const std::string& column, Slice value,
                                size_t k, const SearchOptions& opts);
  Result<SearchResult> ExecSubstring(const std::string& column,
                                     const std::string& pattern, size_t k,
                                     const SearchOptions& opts);
  Result<SearchResult> ExecVector(const std::string& column,
                                  const float* query, uint32_t dim, size_t k,
                                  const SearchOptions& opts);
  Result<SearchResult> ExecRegex(const std::string& column,
                                 const std::string& pattern, size_t k,
                                 const SearchOptions& opts);
  Result<SearchResult> ExecKeyword(const std::string& column,
                                   const std::vector<std::string>& terms,
                                   size_t k, const SearchOptions& opts);
  Result<uint64_t> ExecCount(const std::string& column,
                             const std::string& pattern,
                             const SearchOptions& opts);

  objectstore::ObjectStore* store_;
  lake::Table* table_;
  RottnestOptions options_;
  std::unique_ptr<objectstore::CachingStore> cache_store_;
  lake::MetadataTable metadata_;
  ThreadPool pool_;
  uint64_t name_counter_ = 0;
};

namespace internal {

/// Merges per-item IoTraces into `trace` in waves of `parallelism`
/// concurrent chains (waves sequential) — the convention every parallel
/// maintenance op (Index, Compact, Vacuum, Scrub) uses so the recorded
/// depth honestly reflects the requested width while request/byte totals
/// stay width-invariant. Shared between rottnest.cc and scrub.cc.
void MergeWaves(objectstore::IoTrace* trace,
                const std::vector<objectstore::IoTrace>& children,
                size_t parallelism);

}  // namespace internal

}  // namespace rottnest::core

#endif  // ROTTNEST_CORE_ROTTNEST_H_
