// Internal instrumentation helpers shared by rottnest.cc and scrub.cc —
// the glue between one Rottnest operation and its ObsContext (DESIGN.md
// §4g). Not part of the public API.
//
// The attribution model: every span carries I/O EXCLUSIVE of its
// descendants, so summing SpanIo over a whole tree telescopes to the
// operation's total physical IoStats delta.
//   * Serial phases (plan, probe, commit, ...) are measured as
//     before/after deltas of the operation counters — phases within one
//     operation are serial, so the deltas telescope exactly.
//   * Fan-out children carry their per-task IoTrace totals. A traced total
//     can only UNDER-claim the physical counters (failed attempts are
//     retried below the trace, untraced metadata reads stay with the
//     parent), never over-claim them — except through the client cache,
//     whose hits satisfy traced reads without physical requests. The root
//     keeps the saturating remainder, so the tree aggregate is exact
//     whenever the cache is off and an upper bound otherwise.
#ifndef ROTTNEST_CORE_OBS_INTERNAL_H_
#define ROTTNEST_CORE_OBS_INTERNAL_H_

#include <atomic>
#include <string>

#include "objectstore/caching_store.h"
#include "objectstore/fault_injection.h"
#include "objectstore/io_trace.h"
#include "objectstore/retry.h"
#include "obs/obs_context.h"
#include "obs/stats.h"

namespace rottnest::core::internal {

/// Converts an op-local IoTrace's totals into exclusive span I/O (the
/// accounting a fan-out child claims for itself).
inline obs::SpanIo SpanIoFromTrace(const objectstore::IoTrace& t) {
  obs::SpanIo io;
  io.gets = t.total_gets();
  io.lists = t.total_lists();
  io.bytes_read = t.total_bytes();
  io.compute_micros = t.compute_micros();
  return io;
}

/// Point-in-time snapshot of every counter an operation attributes deltas
/// from: the physical store IoStats, the client cache's cache events, and
/// the ObsContext's optional retry/fault stat hooks.
struct OpSnapshot {
  uint64_t gets = 0, puts = 0, lists = 0, deletes = 0, heads = 0;
  uint64_t bytes_read = 0, bytes_written = 0;
  uint64_t cache_hits = 0, cache_misses = 0;
  uint64_t retries = 0, faults = 0;
};

/// Instruments ONE Rottnest operation: bumps the `op.<name>.count`
/// registry counter, opens the root span (under obs->parent), and
/// attributes counter deltas to spans per the model above. Null-safe: with
/// a null ObsContext (or one without a tracer) every span path is a no-op
/// and nothing allocates; the counter snapshots are plain atomic loads.
class OpObs {
 public:
  OpObs(const objectstore::ObjectStore* store,
        const objectstore::CachingStore* cache, const obs::ObsContext* obs,
        const char* name)
      : store_(store), cache_(cache), clock_(&store->clock()) {
    if (obs != nullptr) {
      tracer_ = obs->tracer;
      retry_stats_ = obs->retry_stats;
      fault_stats_ = obs->fault_stats;
      if (obs->metrics != nullptr) {
        obs->metrics->GetCounter(std::string("op.") + name + ".count")
            ->Increment();
      }
      root_ = obs::ScopedSpan(tracer_, clock_, name, obs->parent);
    }
    begin_ = Snap();
  }
  OpObs(const OpObs&) = delete;
  OpObs& operator=(const OpObs&) = delete;
  ~OpObs() { Finish(); }

  bool tracing() const { return tracer_ != nullptr; }
  obs::Tracer* tracer() { return tracer_; }
  obs::SpanId root_id() const { return root_.id(); }
  Micros NowMicros() const { return clock_->NowMicros(); }

  OpSnapshot Snap() const {
    OpSnapshot s;
    const objectstore::IoStats& io = store_->stats();
    s.gets = io.gets.load(std::memory_order_relaxed);
    s.puts = io.puts.load(std::memory_order_relaxed);
    s.lists = io.lists.load(std::memory_order_relaxed);
    s.deletes = io.deletes.load(std::memory_order_relaxed);
    s.heads = io.heads.load(std::memory_order_relaxed);
    s.bytes_read = io.bytes_read.load(std::memory_order_relaxed);
    s.bytes_written = io.bytes_written.load(std::memory_order_relaxed);
    if (cache_ != nullptr) {
      const objectstore::IoStats& c = cache_->stats();
      s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
      s.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
    }
    if (retry_stats_ != nullptr) {
      s.retries = retry_stats_->retries.load(std::memory_order_relaxed);
    }
    if (fault_stats_ != nullptr) {
      const objectstore::FaultStats& f = *fault_stats_;
      s.faults =
          f.transient_injected.load(std::memory_order_relaxed) +
          f.ambiguous_injected.load(std::memory_order_relaxed) +
          f.scheduled_injected.load(std::memory_order_relaxed) +
          f.crash_refusals.load(std::memory_order_relaxed) +
          f.corrupt_reads_injected.load(std::memory_order_relaxed) +
          f.truncations_injected.load(std::memory_order_relaxed) +
          f.rot_injected.load(std::memory_order_relaxed);
    }
    return s;
  }

  static obs::SpanIo Delta(const OpSnapshot& a, const OpSnapshot& b) {
    obs::SpanIo d;
    d.gets = b.gets - a.gets;
    d.puts = b.puts - a.puts;
    d.lists = b.lists - a.lists;
    d.deletes = b.deletes - a.deletes;
    d.heads = b.heads - a.heads;
    d.bytes_read = b.bytes_read - a.bytes_read;
    d.bytes_written = b.bytes_written - a.bytes_written;
    d.cache_hits = b.cache_hits - a.cache_hits;
    d.cache_misses = b.cache_misses - a.cache_misses;
    d.retries = b.retries - a.retries;
    d.faults = b.faults - a.faults;
    return d;
  }

  /// Credits `io` exclusively to span `id` and remembers it as attributed,
  /// so the root's remainder in Finish() does not count it again.
  void Attribute(obs::SpanId id, const obs::SpanIo& io) {
    if (tracer_ == nullptr) return;
    tracer_->AddIo(id, io);
    attributed_.Add(io);
  }

  /// Marks the counter delta since `before` as attributed by NESTED
  /// operations' own spans (Repair's rebuilt Index calls): excluded from
  /// the root's remainder without crediting any span here.
  void AttributeElsewhere(const OpSnapshot& before) {
    if (tracer_ == nullptr) return;
    attributed_.Add(Delta(before, Snap()));
  }

  /// Fills the delta-derived fields of `stats`: physical request/byte
  /// totals plus cache/retry/fault deltas. Works with observability off
  /// (hook-less fields stay zero). No allocation.
  void FillDeltaStats(obs::Stats* stats) const {
    OpSnapshot now = Snap();
    stats->gets = now.gets - begin_.gets;
    stats->lists = now.lists - begin_.lists;
    stats->bytes_read = now.bytes_read - begin_.bytes_read;
    FillResilienceStats(stats);
  }

  /// Fills only the cache/retry/fault deltas (maintenance ops take their
  /// request totals from the width-invariant op-local IoTrace instead).
  void FillResilienceStats(obs::Stats* stats) const {
    OpSnapshot now = Snap();
    stats->cache_hits = now.cache_hits - begin_.cache_hits;
    stats->cache_misses = now.cache_misses - begin_.cache_misses;
    stats->retries = now.retries - begin_.retries;
    stats->faults = now.faults - begin_.faults;
  }

  /// Ends the root span, crediting it with the remainder of the op's total
  /// delta no child span claimed (saturating per field — see the header
  /// comment for why children can under- but not over-claim, cache aside).
  void Finish() {
    if (finished_) return;
    finished_ = true;
    if (tracer_ == nullptr) return;
    obs::SpanIo total = Delta(begin_, Snap());
    root_.AddIo(total.MinusSaturating(attributed_));
    root_.End();
  }

 private:
  const objectstore::ObjectStore* store_;
  const objectstore::CachingStore* cache_;
  const Clock* clock_;
  obs::Tracer* tracer_ = nullptr;
  const objectstore::RetryStats* retry_stats_ = nullptr;
  const objectstore::FaultStats* fault_stats_ = nullptr;
  obs::ScopedSpan root_;
  OpSnapshot begin_;
  obs::SpanIo attributed_;
  bool finished_ = false;
};

/// RAII serial phase of an operation: one child span under the root whose
/// exclusive I/O is the operation counters' delta across the phase. Only
/// valid for phases that do not overlap other spans' I/O (phases within
/// one op run serially on the op's thread).
class OpPhase {
 public:
  OpPhase(OpObs* op, const char* name) : op_(op) {
    if (op_ == nullptr || !op_->tracing()) {
      op_ = nullptr;
      return;
    }
    begin_ = op_->Snap();
    id_ = op_->tracer()->StartSpan(name, op_->root_id(), op_->NowMicros());
  }
  OpPhase(const OpPhase&) = delete;
  OpPhase& operator=(const OpPhase&) = delete;
  ~OpPhase() { End(); }

  void End() {
    if (op_ == nullptr) return;
    op_->Attribute(id_, OpObs::Delta(begin_, op_->Snap()));
    op_->tracer()->EndSpan(id_, op_->NowMicros());
    op_ = nullptr;
  }

 private:
  OpObs* op_ = nullptr;
  obs::SpanId id_ = obs::kNoSpan;
  OpSnapshot begin_;
};

}  // namespace rottnest::core::internal

#endif  // ROTTNEST_CORE_OBS_INTERNAL_H_
