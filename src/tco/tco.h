// TCO evaluation framework (paper §VI): total cost of ownership of the
// three approaches — copy-data, brute-force, and Rottnest — as a function
// of operating duration (months) and total normalized query count, plus the
// phase-diagram computation behind Figs 7, 9, 11 and 12.
#ifndef ROTTNEST_TCO_TCO_H_
#define ROTTNEST_TCO_TCO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rottnest::tco {

/// AWS price constants used throughout the evaluation (us-east-1,
/// on-demand, 2024/25 price book — the paper's configuration).
struct Pricing {
  double r6i_4xlarge_hourly = 1.008;   ///< Brute-force worker (16 vCPU).
  double r6g_large_hourly = 0.1008;    ///< Copy-data cluster node.
  double r6g_xlarge_hourly = 0.2016;   ///< LanceDB node (vector).
  double s3_gb_month = 0.023;          ///< Object-storage $/GB-month.
  double ebs_gb_month = 0.08;          ///< gp3 EBS $/GB-month (copy data).
  double s3_get_per_million = 0.40;
  double hours_per_month = 730.0;
};

/// The six model parameters of §VI (all USD).
struct CostParams {
  double cpm_i = 0;   ///< Copy-data: $/month (always-on cluster + EBS x3).
  double cpm_bf = 0;  ///< Brute force: $/month (S3 storage of the data).
  double cpq_bf = 0;  ///< Brute force: $/query.
  double ic_r = 0;    ///< Rottnest: one-time indexing cost.
  double cpm_r = 0;   ///< Rottnest: $/month (data + index storage).
  double cpq_r = 0;   ///< Rottnest: $/query.
};

/// The three contenders.
enum class Approach : int {
  kCopyData = 0,
  kBruteForce = 1,
  kRottnest = 2,
};

const char* ApproachName(Approach a);

/// TCO of each approach at (months, queries), per the §VI formulas.
double TcoCopyData(const CostParams& p, double months, double queries);
double TcoBruteForce(const CostParams& p, double months, double queries);
double TcoRottnest(const CostParams& p, double months, double queries);

/// The approach with the lowest TCO at (months, queries).
Approach Winner(const CostParams& p, double months, double queries);

/// A log-log grid of winners: the phase diagram of Figs 7/9.
struct PhaseDiagram {
  std::vector<double> months;   ///< Grid columns (log-spaced).
  std::vector<double> queries;  ///< Grid rows (log-spaced).
  std::vector<Approach> winner; ///< Row-major [query][month].

  Approach At(size_t qi, size_t mi) const {
    return winner[qi * months.size() + mi];
  }
};

/// Computes the winner grid over months in [m_lo, m_hi] and queries in
/// [q_lo, q_hi], both log-spaced with the given resolution.
PhaseDiagram ComputePhaseDiagram(const CostParams& p, double m_lo,
                                 double m_hi, size_t m_steps, double q_lo,
                                 double q_hi, size_t q_steps);

/// Phase boundaries at one month column: the query counts where the winner
/// changes (e.g. brute-force -> Rottnest -> copy-data), found by bisection.
struct Boundaries {
  double months = 0;
  /// Query count above which Rottnest beats brute force (or +inf if never,
  /// 0 if always).
  double bf_to_rottnest = 0;
  /// Query count above which copy-data beats Rottnest (+inf if never).
  double rottnest_to_copy = 0;
};

Boundaries ComputeBoundaries(const CostParams& p, double months,
                             double q_lo = 1e-2, double q_hi = 1e12);

/// Earliest operating time (months) at which Rottnest wins anywhere on the
/// query axis — the "break-even" onset (e.g. the ~1-2 days of §VII-B1).
double RottnestOnsetMonths(const CostParams& p, double q_lo = 1e-2,
                           double q_hi = 1e12);

/// Width (in orders of magnitude of query count) of the Rottnest-optimal
/// band at `months` — the "spans 4 orders of magnitude" metric.
double RottnestBandOrders(const CostParams& p, double months);

/// Renders an ASCII phase diagram (one char per cell: C/B/R).
std::string RenderPhaseDiagram(const PhaseDiagram& diagram);

/// CSV rows "months,queries,winner" for external plotting.
std::string PhaseDiagramCsv(const PhaseDiagram& diagram);

// -- Parameter derivation -----------------------------------------------------

/// Inputs measured from the simulation; converted into CostParams.
struct MeasuredWorkload {
  double data_bytes = 0;          ///< Compressed data size on S3.
  double index_bytes = 0;         ///< Rottnest index size on S3.
  double rottnest_query_s = 0;    ///< Projected single-instance latency.
  double rottnest_gets_per_query = 0;
  /// Per-query brute-force latency AT TARGET SCALE (compute it with
  /// baseline::BruteForceScanSeconds on the scaled byte count; it is NOT
  /// multiplied by scale_factor).
  double brute_force_query_s = 0;
  size_t brute_force_workers = 8;
  double index_build_s = 0;       ///< Compute time to build + compact.
  double copy_memory_bytes = 0;   ///< RAM footprint of the dedicated copy.
  bool vector_service = false;    ///< Copy-data uses r6g.xlarge (LanceDB).
};

/// Derives the §VI cost parameters from measurements, scaled so that the
/// modeled dataset represents `scale_factor` x the measured one (costs that
/// are linear in data size scale; cpq_r stays constant post-compaction, the
/// §VII-D2 observation).
CostParams DeriveCostParams(const MeasuredWorkload& m, const Pricing& price,
                            double scale_factor = 1.0);

/// §VII-D3: the S3 request-rate throughput ceiling on Rottnest QPS.
double RottnestMaxQps(double gets_per_query,
                      double max_get_rps_per_prefix = 5500.0);

}  // namespace rottnest::tco

#endif  // ROTTNEST_TCO_TCO_H_
