#include "tco/tco.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rottnest::tco {

namespace {
constexpr double kGb = 1e9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* ApproachName(Approach a) {
  switch (a) {
    case Approach::kCopyData:
      return "copy-data";
    case Approach::kBruteForce:
      return "brute-force";
    case Approach::kRottnest:
      return "rottnest";
  }
  return "unknown";
}

double TcoCopyData(const CostParams& p, double months, double queries) {
  (void)queries;  // Folded into the always-on cluster cost.
  return p.cpm_i * months;
}

double TcoBruteForce(const CostParams& p, double months, double queries) {
  return p.cpm_bf * months + p.cpq_bf * queries;
}

double TcoRottnest(const CostParams& p, double months, double queries) {
  return p.ic_r + p.cpm_r * months + p.cpq_r * queries;
}

Approach Winner(const CostParams& p, double months, double queries) {
  double copy = TcoCopyData(p, months, queries);
  double bf = TcoBruteForce(p, months, queries);
  double rn = TcoRottnest(p, months, queries);
  if (rn <= bf && rn <= copy) return Approach::kRottnest;
  if (bf <= copy) return Approach::kBruteForce;
  return Approach::kCopyData;
}

PhaseDiagram ComputePhaseDiagram(const CostParams& p, double m_lo,
                                 double m_hi, size_t m_steps, double q_lo,
                                 double q_hi, size_t q_steps) {
  PhaseDiagram d;
  for (size_t i = 0; i < m_steps; ++i) {
    double t = m_steps == 1 ? 0 : static_cast<double>(i) / (m_steps - 1);
    d.months.push_back(m_lo * std::pow(m_hi / m_lo, t));
  }
  for (size_t i = 0; i < q_steps; ++i) {
    double t = q_steps == 1 ? 0 : static_cast<double>(i) / (q_steps - 1);
    d.queries.push_back(q_lo * std::pow(q_hi / q_lo, t));
  }
  d.winner.resize(m_steps * q_steps);
  for (size_t qi = 0; qi < q_steps; ++qi) {
    for (size_t mi = 0; mi < m_steps; ++mi) {
      d.winner[qi * m_steps + mi] = Winner(p, d.months[mi], d.queries[qi]);
    }
  }
  return d;
}

Boundaries ComputeBoundaries(const CostParams& p, double months, double q_lo,
                             double q_hi) {
  Boundaries b;
  b.months = months;

  // Rottnest vs brute force: TCO difference is linear in queries —
  //   (ic_r + cpm_r m) - cpm_bf m = (cpq_bf - cpq_r) q  at the boundary.
  double fixed_gap = (p.ic_r + p.cpm_r * months) - p.cpm_bf * months;
  double per_query_gain = p.cpq_bf - p.cpq_r;
  if (per_query_gain <= 0) {
    b.bf_to_rottnest = fixed_gap <= 0 ? 0 : kInf;
  } else if (fixed_gap <= 0) {
    b.bf_to_rottnest = 0;  // Rottnest cheaper even at zero queries.
  } else {
    b.bf_to_rottnest = fixed_gap / per_query_gain;
  }

  // Rottnest vs copy-data: cpm_i m = ic_r + cpm_r m + cpq_r q.
  double budget = p.cpm_i * months - p.ic_r - p.cpm_r * months;
  if (p.cpq_r <= 0) {
    b.rottnest_to_copy = budget >= 0 ? kInf : 0;
  } else if (budget < 0) {
    b.rottnest_to_copy = 0;  // Copy-data already cheaper at zero queries.
  } else {
    b.rottnest_to_copy = budget / p.cpq_r;
  }
  (void)q_lo;
  (void)q_hi;
  return b;
}

double RottnestOnsetMonths(const CostParams& p, double q_lo, double q_hi) {
  // Scan log-spaced months for the first where a Rottnest-winning query
  // count exists.
  for (double m = 1e-3; m <= 1e3; m *= 1.02) {
    Boundaries b = ComputeBoundaries(p, m, q_lo, q_hi);
    if (b.bf_to_rottnest < b.rottnest_to_copy &&
        b.bf_to_rottnest < kInf) {
      // Verify with an actual winner evaluation mid-band.
      double q = b.bf_to_rottnest == 0
                     ? std::min(1.0, b.rottnest_to_copy / 2)
                     : b.bf_to_rottnest * 1.01;
      if (Winner(p, m, q) == Approach::kRottnest) return m;
    }
  }
  return kInf;
}

double RottnestBandOrders(const CostParams& p, double months) {
  Boundaries b = ComputeBoundaries(p, months);
  double lo = std::max(b.bf_to_rottnest, 1.0);
  double hi = b.rottnest_to_copy;
  if (!(hi > lo)) return 0;
  if (hi == kInf) return kInf;
  return std::log10(hi / lo);
}

std::string RenderPhaseDiagram(const PhaseDiagram& d) {
  // Rows top-down from the highest query count (like the paper's axes).
  std::string out;
  for (size_t qi = d.queries.size(); qi-- > 0;) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%8.1e | ", d.queries[qi]);
    out += buf;
    for (size_t mi = 0; mi < d.months.size(); ++mi) {
      switch (d.At(qi, mi)) {
        case Approach::kCopyData:
          out += 'C';
          break;
        case Approach::kBruteForce:
          out += 'B';
          break;
        case Approach::kRottnest:
          out += 'R';
          break;
      }
    }
    out += '\n';
  }
  out += "  queries +-";
  out.append(d.months.size(), '-');
  out += "\n            months ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2g .. %.2g\n", d.months.front(),
                d.months.back());
  out += buf;
  return out;
}

std::string PhaseDiagramCsv(const PhaseDiagram& d) {
  std::string out = "months,queries,winner\n";
  for (size_t qi = 0; qi < d.queries.size(); ++qi) {
    for (size_t mi = 0; mi < d.months.size(); ++mi) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%.6g,%.6g,%s\n", d.months[mi],
                    d.queries[qi], ApproachName(d.At(qi, mi)));
      out += buf;
    }
  }
  return out;
}

CostParams DeriveCostParams(const MeasuredWorkload& m, const Pricing& price,
                            double scale_factor) {
  CostParams p;
  double data_gb = m.data_bytes * scale_factor / kGb;
  double index_gb = m.index_bytes * scale_factor / kGb;

  // Copy-data: 3 always-on nodes sized to hold the copy (one node per
  // 256 GB of copy, min 3 replicas as in the paper's 3-node clusters) plus
  // EBS for 3 index replicas.
  double node_hourly =
      m.vector_service ? price.r6g_xlarge_hourly : price.r6g_large_hourly;
  double copy_gb = m.copy_memory_bytes * scale_factor / kGb;
  double nodes = std::max(3.0, std::ceil(copy_gb / 256.0) * 3.0);
  p.cpm_i = nodes * node_hourly * price.hours_per_month +
            3.0 * copy_gb * price.ebs_gb_month;

  // Brute force: S3 storage of the compressed data; queries on the worker
  // cluster (latency x cluster hourly cost), scan work scaling with data.
  p.cpm_bf = data_gb * price.s3_gb_month;
  double bf_cluster_hourly =
      static_cast<double>(m.brute_force_workers) * price.r6i_4xlarge_hourly;
  p.cpq_bf = m.brute_force_query_s * bf_cluster_hourly / 3600.0;

  // Rottnest: index build compute (single instance), storage of data +
  // index, single-instance queries. Post-compaction query latency is
  // ~scale-invariant (§VII-D2), so cpq_r does NOT scale.
  p.ic_r = m.index_build_s * scale_factor * price.r6i_4xlarge_hourly / 3600.0;
  p.cpm_r = (data_gb + index_gb) * price.s3_gb_month;
  p.cpq_r = m.rottnest_query_s * price.r6i_4xlarge_hourly / 3600.0 +
            m.rottnest_gets_per_query * price.s3_get_per_million / 1e6;
  return p;
}

double RottnestMaxQps(double gets_per_query, double max_get_rps_per_prefix) {
  if (gets_per_query <= 0) return kInf;
  return max_get_rps_per_prefix / gets_per_query;
}

}  // namespace rottnest::tco
