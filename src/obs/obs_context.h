// ObsContext: the one opt-in handle callers thread through SearchOptions /
// MaintenanceOptions / ScrubOptions to turn observability on — no global
// state anywhere. A default-constructed options struct carries obs ==
// nullptr and every instrumented path stays allocation-free (verified by
// bench/micro_kernels.cc).
//
// The context bundles:
//   * metrics — the registry operation- and store-level counters land in;
//   * tracer  — the span tree of each operation run under this context;
//   * parent  — span to parent new ROOT spans under, which is how
//               cross-operation nesting works (Repair parents the Index
//               root spans of its rebuilds under its own repair span);
//   * retry_stats / fault_stats — optional hooks into the store stack's
//     RetryingStore/FaultInjectingStore counters, so per-op Stats can
//     report the retries absorbed and faults injected below it.
#ifndef ROTTNEST_OBS_OBS_CONTEXT_H_
#define ROTTNEST_OBS_OBS_CONTEXT_H_

#include "obs/metrics.h"
#include "obs/span.h"

namespace rottnest::objectstore {
struct RetryStats;
struct FaultStats;
}  // namespace rottnest::objectstore

namespace rottnest::obs {

struct ObsContext {
  MetricsRegistry* metrics = nullptr;  ///< May be null (spans only).
  Tracer* tracer = nullptr;            ///< May be null (metrics only).
  /// Span new root spans attach under (kNoSpan = true roots). Operations
  /// that invoke other operations re-point this at their own span.
  SpanId parent = kNoSpan;
  /// Optional stat hooks from the store stack, for Stats::retries/faults.
  const objectstore::RetryStats* retry_stats = nullptr;
  const objectstore::FaultStats* fault_stats = nullptr;
};

}  // namespace rottnest::obs

#endif  // ROTTNEST_OBS_OBS_CONTEXT_H_
