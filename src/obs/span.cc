#include "obs/span.h"

#include <algorithm>

namespace rottnest::obs {

void SpanIo::Add(const SpanIo& o) {
  gets += o.gets;
  puts += o.puts;
  lists += o.lists;
  deletes += o.deletes;
  heads += o.heads;
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  retries += o.retries;
  faults += o.faults;
  compute_micros += o.compute_micros;
}

namespace {
uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }
}  // namespace

SpanIo SpanIo::MinusSaturating(const SpanIo& o) const {
  SpanIo r;
  r.gets = SatSub(gets, o.gets);
  r.puts = SatSub(puts, o.puts);
  r.lists = SatSub(lists, o.lists);
  r.deletes = SatSub(deletes, o.deletes);
  r.heads = SatSub(heads, o.heads);
  r.bytes_read = SatSub(bytes_read, o.bytes_read);
  r.bytes_written = SatSub(bytes_written, o.bytes_written);
  r.cache_hits = SatSub(cache_hits, o.cache_hits);
  r.cache_misses = SatSub(cache_misses, o.cache_misses);
  r.retries = SatSub(retries, o.retries);
  r.faults = SatSub(faults, o.faults);
  r.compute_micros =
      compute_micros > o.compute_micros ? compute_micros - o.compute_micros
                                        : 0;
  return r;
}

bool SpanIo::IsZero() const {
  return requests() == 0 && bytes_read == 0 && bytes_written == 0 &&
         cache_hits == 0 && cache_misses == 0 && retries == 0 &&
         faults == 0 && compute_micros == 0;
}

Json SpanIo::ToJson() const {
  Json::Object o;
  o["gets"] = Json(gets);
  o["puts"] = Json(puts);
  o["lists"] = Json(lists);
  o["deletes"] = Json(deletes);
  o["heads"] = Json(heads);
  o["bytes_read"] = Json(bytes_read);
  o["bytes_written"] = Json(bytes_written);
  o["cache_hits"] = Json(cache_hits);
  o["cache_misses"] = Json(cache_misses);
  o["retries"] = Json(retries);
  o["faults"] = Json(faults);
  o["compute_micros"] = Json(compute_micros);
  return Json(std::move(o));
}

SpanId Tracer::StartSpan(std::string name, SpanId parent, Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanData s;
  s.name = std::move(name);
  s.id = static_cast<SpanId>(spans_.size());
  s.parent = parent;
  s.start_micros = now;
  s.end_micros = now;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id, Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  SpanData& s = spans_[static_cast<size_t>(id)];
  s.end_micros = std::max(s.start_micros, now);
  s.ended = true;
}

void Tracer::AddIo(SpanId id, const SpanIo& io) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  spans_[static_cast<size_t>(id)].io.Add(io);
}

std::vector<SpanData> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

SpanIo Tracer::AggregateIo() const {
  std::lock_guard<std::mutex> lock(mu_);
  SpanIo total;
  for (const SpanData& s : spans_) total.Add(s.io);
  return total;
}

Json Tracer::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json::Array arr;
  arr.reserve(spans_.size());
  for (const SpanData& s : spans_) {
    Json::Object o;
    o["id"] = Json(s.id);
    o["parent"] = Json(s.parent);
    o["name"] = Json(s.name);
    o["start_micros"] = Json(s.start_micros);
    o["end_micros"] = Json(s.end_micros);
    o["io"] = s.io.ToJson();
    arr.push_back(Json(std::move(o)));
  }
  Json::Object root;
  root["spans"] = Json(std::move(arr));
  return Json(std::move(root));
}

std::string Tracer::DumpTree() const {
  std::vector<SpanData> spans = Spans();
  // Children of each span, in id order (ids are append order, so this is
  // also creation order).
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    SpanId p = spans[i].parent;
    if (p >= 0 && static_cast<size_t>(p) < spans.size()) {
      children[static_cast<size_t>(p)].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out;
  // Iterative preorder walk (spans can nest arbitrarily deep).
  struct Frame {
    size_t span;
    size_t depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const SpanData& s = spans[f.span];
    out.append(f.depth * 2, ' ');
    out += s.name;
    out += " [" + std::to_string(s.end_micros - s.start_micros) + "us";
    if (!s.io.IsZero()) {
      out += ", " + std::to_string(s.io.requests()) + " req, " +
             std::to_string(s.io.bytes_read) + " B";
      if (s.io.cache_hits != 0 || s.io.cache_misses != 0) {
        out += ", cache " + std::to_string(s.io.cache_hits) + "/" +
               std::to_string(s.io.cache_hits + s.io.cache_misses);
      }
      if (s.io.retries != 0) {
        out += ", " + std::to_string(s.io.retries) + " retries";
      }
      if (s.io.faults != 0) {
        out += ", " + std::to_string(s.io.faults) + " faults";
      }
    }
    out += "]\n";
    const auto& kids = children[f.span];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return out;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

}  // namespace rottnest::obs
