// obs::Stats — the ONE cost surface every Rottnest operation reports
// (DESIGN.md §4g). Searches, maintenance ops (Index/Compact/Vacuum) and
// anti-entropy (Scrub/Repair) all attach this same aggregate to their
// results, replacing the bespoke per-report stat structs that had drifted
// apart: io (requests/bytes plus the IoTrace-derived depth and S3
// latency/cost projection), cache accounting, retry/fault absorption and
// timings, in one flat struct with one JSON exporter.
#ifndef ROTTNEST_OBS_STATS_H_
#define ROTTNEST_OBS_STATS_H_

#include <cstdint>

#include "common/clock.h"
#include "common/json.h"

namespace rottnest::obs {

/// IO/cost accounting attached to every operation result. Fields default to
/// zero; an operation fills what it can measure (e.g. io_depth and the
/// simulated projections need an IoTrace, cache fields need the client
/// cache, retries/faults need the ObsContext stat hooks).
struct Stats {
  // --- io ---
  uint64_t gets = 0;
  uint64_t lists = 0;
  uint64_t bytes_read = 0;
  /// Dependent-request depth: parallel chains overlap in waves of
  /// `parallelism`, so depth shrinks as the pipeline widens.
  size_t io_depth = 0;
  /// End-to-end simulated latency (S3Model: rounds + compute) and request
  /// cost for this operation's reads.
  double simulated_latency_ms = 0;
  double simulated_cost_usd = 0;
  // --- cache ---
  /// Per-operation client-cache deltas (0 when the cache is off). Under
  /// concurrent operations on one client these are deltas of shared
  /// counters, so an op may be attributed a neighbour's hits — accounting,
  /// not correctness.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // --- resilience ---
  /// Retries absorbed and faults injected below this operation, measured as
  /// deltas of the ObsContext's RetryStats/FaultStats hooks (0 without an
  /// ObsContext wiring them up).
  uint64_t retries = 0;
  uint64_t faults = 0;
  // --- planner ---
  /// Snapshot data files the planner found covered by NO index of the
  /// queried kind (searches only). The miss signal a future query-adaptive
  /// Index/Compact prioritizes hot partitions by; also exported as the
  /// `op.search.uncovered_files` counter.
  uint64_t uncovered_files = 0;
  // --- timings / shape ---
  /// Measured wall-clock of the call.
  uint64_t wall_micros = 0;
  size_t parallelism = 0;  ///< Resolved pipeline/fan-out width actually used.
  bool dry_run = false;

  Json ToJson() const;
};

}  // namespace rottnest::obs

#endif  // ROTTNEST_OBS_STATS_H_
