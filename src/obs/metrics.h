// MetricsRegistry: the process-wide (or per-test) metric substrate of the
// observability layer (DESIGN.md §4g).
//
// Three instrument kinds, all lock-free to EMIT once resolved:
//   * Counter   — monotonic uint64 (requests, bytes, faults);
//   * Gauge     — settable int64 (resident cache bytes, queue depth);
//   * Histogram — log-linear distribution (per-GET bytes, latencies) with
//                 deterministic quantiles: octaves (powers of two) split
//                 into linear sub-buckets, so Record() is a couple of shifts
//                 and one atomic add, and Quantile() returns the lower bound
//                 of the target bucket — a pure function of the recorded
//                 multiset, independent of arrival order or thread count.
//
// Registration (name → instrument) is sharded by name hash with one mutex
// per shard; callers resolve a handle once (AttachMetrics-style) and emit
// through the raw pointer forever after — handles are never invalidated.
// Everything is null-safe by convention: instrumented code holds possibly
// null handles and skips emission when observability is off, adding zero
// allocations to the hot path (verified by bench/micro_kernels.cc).
//
// Exporters: SnapshotJson() (common/json objects keep keys sorted, so the
// dump is byte-stable for identical contents — the determinism tests diff
// snapshots across thread widths) and DumpText() for humans.
#ifndef ROTTNEST_OBS_METRICS_H_
#define ROTTNEST_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"

namespace rottnest::obs {

/// Monotonic counter. Thread-safe, lock-free.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Settable gauge. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-linear histogram over uint64 values. Bucket layout: one bucket for
/// zero, then kSubBuckets linear sub-buckets per octave [2^o, 2^(o+1)).
/// Record() is wait-free; Count/Sum/Quantile read the atomics directly, so
/// a snapshot taken while emitters run is approximate (each field is
/// individually consistent) — quiesce emitters for exact reads.
class Histogram {
 public:
  static constexpr size_t kOctaves = 48;     ///< Covers up to 2^48 - 1.
  static constexpr size_t kSubBuckets = 8;   ///< Linear splits per octave.
  static constexpr size_t kBuckets = 1 + kOctaves * kSubBuckets + 1;

  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// The smallest value representable by the bucket holding the q-th
  /// (q in [0, 1]) recorded value — deterministic for a given multiset.
  uint64_t Quantile(double q) const;

  /// {count, sum, p50, p95, p99} — the exporter payload.
  Json ToJson() const;

 private:
  static size_t BucketFor(uint64_t v);
  static uint64_t BucketLowerBound(size_t b);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Lock-sharded name → instrument registry. Getters return a stable handle,
/// registering the instrument on first use; emission through the handle
/// never takes the registry lock. Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  /// sorted — Dump() of the result is byte-stable for identical contents.
  Json SnapshotJson() const;

  /// Human-readable listing, one instrument per line, sorted by name.
  std::string DumpText() const;

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& ShardFor(const std::string& name);

  std::array<Shard, kShards> shards_;
};

/// Null-safe emission helpers: instrumented hot paths hold possibly null
/// handles and pay one branch when observability is off.
inline void Add(Counter* c, uint64_t n) {
  if (c != nullptr) c->Add(n);
}
inline void Increment(Counter* c) {
  if (c != nullptr) c->Add(1);
}
inline void Record(Histogram* h, uint64_t v) {
  if (h != nullptr) h->Record(v);
}
inline void Set(Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}

}  // namespace rottnest::obs

#endif  // ROTTNEST_OBS_METRICS_H_
