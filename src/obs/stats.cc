#include "obs/stats.h"

namespace rottnest::obs {

Json Stats::ToJson() const {
  Json::Object o;
  o["gets"] = Json(gets);
  o["lists"] = Json(lists);
  o["bytes_read"] = Json(bytes_read);
  o["io_depth"] = Json(static_cast<uint64_t>(io_depth));
  o["simulated_latency_ms"] = Json(simulated_latency_ms);
  o["simulated_cost_usd"] = Json(simulated_cost_usd);
  o["cache_hits"] = Json(cache_hits);
  o["cache_misses"] = Json(cache_misses);
  o["retries"] = Json(retries);
  o["faults"] = Json(faults);
  o["uncovered_files"] = Json(uncovered_files);
  o["wall_micros"] = Json(wall_micros);
  o["parallelism"] = Json(static_cast<uint64_t>(parallelism));
  o["dry_run"] = Json(dry_run);
  return Json(std::move(o));
}

}  // namespace rottnest::obs
