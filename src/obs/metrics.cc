#include "obs/metrics.h"

#include <bit>
#include <cmath>

namespace rottnest::obs {

size_t Histogram::BucketFor(uint64_t v) {
  if (v == 0) return 0;
  size_t octave = static_cast<size_t>(std::bit_width(v)) - 1;
  if (octave >= kOctaves) return kBuckets - 1;  // Overflow bucket.
  // v in [2^octave, 2^(octave+1)): the offset above the octave base is
  // < 2^octave, so (offset * kSubBuckets) >> octave is always < kSubBuckets.
  size_t sub = static_cast<size_t>(
      ((v - (uint64_t{1} << octave)) * kSubBuckets) >> octave);
  return 1 + octave * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(size_t b) {
  if (b == 0) return 0;
  if (b >= kBuckets - 1) return uint64_t{1} << kOctaves;
  size_t octave = (b - 1) / kSubBuckets;
  size_t sub = (b - 1) % kSubBuckets;
  uint64_t base = uint64_t{1} << octave;
  return base + ((base * sub) / kSubBuckets);
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target value, 1-based: ceil(q * total), at least 1.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketLowerBound(b);
  }
  return BucketLowerBound(kBuckets - 1);
}

Json Histogram::ToJson() const {
  Json::Object o;
  o["count"] = Json(Count());
  o["sum"] = Json(Sum());
  o["p50"] = Json(Quantile(0.50));
  o["p95"] = Json(Quantile(0.95));
  o["p99"] = Json(Quantile(0.99));
  return Json(std::move(o));
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Json MetricsRegistry::SnapshotJson() const {
  // Json objects are std::map-backed, so collecting across shards lands in
  // sorted name order regardless of shard layout.
  Json::Object counters, gauges, histograms;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) {
      counters[name] = Json(c->value());
    }
    for (const auto& [name, g] : shard.gauges) {
      gauges[name] = Json(g->value());
    }
    for (const auto& [name, h] : shard.histograms) {
      histograms[name] = h->ToJson();
    }
  }
  Json::Object root;
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  return Json(std::move(root));
}

std::string MetricsRegistry::DumpText() const {
  Json snap = SnapshotJson();
  std::string out;
  for (const auto& [name, c] : snap.AsObject().at("counters").AsObject()) {
    out += name + " = " + std::to_string(c.AsInt()) + "\n";
  }
  for (const auto& [name, g] : snap.AsObject().at("gauges").AsObject()) {
    out += name + " = " + std::to_string(g.AsInt()) + " (gauge)\n";
  }
  for (const auto& [name, h] : snap.AsObject().at("histograms").AsObject()) {
    const Json::Object& o = h.AsObject();
    out += name + " = {count " + std::to_string(o.at("count").AsInt()) +
           ", sum " + std::to_string(o.at("sum").AsInt()) + ", p50 " +
           std::to_string(o.at("p50").AsInt()) + ", p95 " +
           std::to_string(o.at("p95").AsInt()) + ", p99 " +
           std::to_string(o.at("p99").AsInt()) + "}\n";
  }
  return out;
}

}  // namespace rottnest::obs
