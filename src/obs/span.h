// Hierarchical span tracer: the "where did this operation's cost go"
// half of the observability layer (DESIGN.md §4g).
//
// A Span is one phase of one logical operation — "plan", "index:<path>",
// "probe" — with an explicit parent handle, so spans nest correctly even
// when children are created across a ThreadPool fan-out: the parent id is
// captured by value before the fan-out and every task attaches under it,
// regardless of which thread runs it. SpanIds are indices into a single
// append-only vector, which gives two cheap invariants the tests lean on:
// a parent's id is always smaller than its children's, and creating spans
// upfront in plan order (before launching tasks) makes the tree shape
// deterministic at any thread width.
//
// Each span carries a SpanIo: the I/O EXCLUSIVELY attributed to that span
// (never including descendants), so summing SpanIo over every span of a
// tree telescopes to the whole operation's I/O — the reconciliation
// property the integration tests assert against IoStats. Serial phases are
// measured as before/after IoStats deltas; fan-out children carry their
// per-task IoTrace totals and the enclosing span keeps the remainder.
//
// Timestamps come from the caller-provided Clock — under SimulatedClock a
// span tree is bit-for-bit reproducible; wall time lives in obs::Stats,
// never here.
#ifndef ROTTNEST_OBS_SPAN_H_
#define ROTTNEST_OBS_SPAN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"

namespace rottnest::obs {

using SpanId = int64_t;
inline constexpr SpanId kNoSpan = -1;

/// I/O and fault accounting exclusively attributed to one span.
struct SpanIo {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t lists = 0;
  uint64_t deletes = 0;
  uint64_t heads = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t retries = 0;
  uint64_t faults = 0;
  int64_t compute_micros = 0;

  void Add(const SpanIo& o);
  /// Per-field saturating subtraction (never wraps below zero): used to
  /// compute the remainder a fan-out wrapper keeps after its children took
  /// their per-task shares.
  SpanIo MinusSaturating(const SpanIo& o) const;
  uint64_t requests() const {
    return gets + puts + lists + deletes + heads;
  }
  bool IsZero() const;
  Json ToJson() const;
};

/// One recorded span. `end_micros < start_micros` never happens; an
/// unfinished span has end_micros == start_micros at snapshot time.
struct SpanData {
  std::string name;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  ///< kNoSpan = a root span.
  Micros start_micros = 0;
  Micros end_micros = 0;
  bool ended = false;
  SpanIo io;  ///< Exclusive — descendants' io is NOT included.
};

/// Collects the span forest of one ObsContext. Thread-safe: fan-out tasks
/// may start/end/annotate spans concurrently. Span handles (ids) stay valid
/// for the Tracer's lifetime.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under `parent` (kNoSpan = root) at store-clock time
  /// `now`. Returns its id.
  SpanId StartSpan(std::string name, SpanId parent, Micros now);

  void EndSpan(SpanId id, Micros now);

  /// Folds `io` into the span's exclusive accounting.
  void AddIo(SpanId id, const SpanIo& io);

  std::vector<SpanData> Spans() const;
  size_t span_count() const;

  /// Sum of every span's exclusive SpanIo — the tree-aggregate the
  /// reconciliation tests compare against IoStats.
  SpanIo AggregateIo() const;

  /// {"spans": [{id, parent, name, start, end, io...} ...]} in id order —
  /// byte-stable for identical trees.
  Json SnapshotJson() const;

  /// Indented human-readable tree, children under parents in id order.
  std::string DumpTree() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<SpanData> spans_;
};

/// RAII span. Null-safe: with a null tracer every method is a no-op and the
/// constructor performs no allocation (the name stays a const char* unless
/// a span is actually opened).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, const Clock* clock, const char* name,
             SpanId parent) {
    if (tracer == nullptr) return;
    tracer_ = tracer;
    clock_ = clock;
    id_ = tracer->StartSpan(name, parent, clock->NowMicros());
  }
  ScopedSpan(ScopedSpan&& o) noexcept { *this = std::move(o); }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    tracer_ = o.tracer_;
    clock_ = o.clock_;
    id_ = o.id_;
    o.tracer_ = nullptr;
    o.id_ = kNoSpan;
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { End(); }

  /// Ends the span now (idempotent; the destructor calls it too).
  void End() {
    if (tracer_ == nullptr) return;
    tracer_->EndSpan(id_, clock_->NowMicros());
    tracer_ = nullptr;
  }

  void AddIo(const SpanIo& io) {
    if (tracer_ != nullptr) tracer_->AddIo(id_, io);
  }

  /// The span's id, for parenting children. kNoSpan when tracing is off.
  SpanId id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;
  const Clock* clock_ = nullptr;
  SpanId id_ = kNoSpan;
};

}  // namespace rottnest::obs

#endif  // ROTTNEST_OBS_SPAN_H_
