// Data-page encoding: the minimal unit of IO in the columnar format.
//
// A page stores up to ~target_page_bytes of raw values for one column,
// compressed independently — so a reader can fetch and decode any single
// page without touching the rest of the file (paper §V-A).
//
// On-disk page layout:
//   varint  num_values
//   varint  uncompressed_size
//   varint  compressed_size
//   byte    codec
//   fixed64 checksum of the compressed payload
//   payload bytes
#ifndef ROTTNEST_FORMAT_PAGE_H_
#define ROTTNEST_FORMAT_PAGE_H_

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "compress/lz.h"
#include "format/types.h"

namespace rottnest::format {

/// Serializes values [begin, end) of `column` into an encoded+compressed
/// page appended to `out`. Returns the page's size in bytes.
size_t EncodePage(const ColumnVector& column, size_t begin, size_t end,
                  compress::Codec codec, Buffer* out);

/// Decodes one page (starting at the beginning of `page_bytes`) into a
/// ColumnVector of the alternative for `col`. `consumed` (optional)
/// receives the page's total encoded length.
Status DecodePage(Slice page_bytes, const ColumnSchema& col,
                  ColumnVector* out, size_t* consumed = nullptr);

/// Raw (uncompressed, unencoded) payload size of values [begin, end) — used
/// by the writer to split chunks into pages of bounded raw size.
size_t RawValuesSize(const ColumnVector& column, size_t begin, size_t end);

}  // namespace rottnest::format

#endif  // ROTTNEST_FORMAT_PAGE_H_
