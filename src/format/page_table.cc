#include "format/page_table.h"

namespace rottnest::format {

PageId PageTable::AddFile(const std::string& file_key, const FileMeta& meta,
                          size_t column_index) {
  PageId first = static_cast<PageId>(entries_.size());
  uint32_t file_index = static_cast<uint32_t>(files_.size());
  files_.push_back(file_key);
  file_first_page_.push_back(first);
  for (const RowGroupMeta& rg : meta.row_groups) {
    const ColumnChunkMeta& cc = rg.columns[column_index];
    for (const PageMeta& p : cc.pages) {
      PageEntry e;
      e.file_index = file_index;
      e.offset = p.offset;
      e.size = p.size;
      e.num_values = p.num_values;
      e.first_row = p.first_row;
      entries_.push_back(e);
    }
  }
  return first;
}

std::pair<PageId, PageId> PageTable::FilePageRange(uint32_t file_index) const {
  PageId begin = file_first_page_[file_index];
  PageId end = file_index + 1 < file_first_page_.size()
                   ? file_first_page_[file_index + 1]
                   : static_cast<PageId>(entries_.size());
  return {begin, end};
}

Result<PageId> PageTable::PageOfRow(uint32_t file_index, uint64_t row) const {
  auto [begin, end] = FilePageRange(file_index);
  // Pages of a file are ordered by first_row; binary search the last page
  // with first_row <= row.
  PageId lo = begin, hi = end;
  while (lo < hi) {
    PageId mid = lo + (hi - lo) / 2;
    if (entries_[mid].first_row <= row) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == begin) return Status::NotFound("row before first page");
  PageId candidate = lo - 1;
  const PageEntry& e = entries_[candidate];
  if (row >= e.first_row + e.num_values) {
    return Status::NotFound("row past last page of file");
  }
  return candidate;
}

void PageTable::Serialize(Buffer* out) const {
  PutVarint64(out, files_.size());
  for (const std::string& f : files_) PutLengthPrefixedString(out, f);
  for (PageId p : file_first_page_) PutVarint64(out, p);
  PutVarint64(out, entries_.size());
  for (const PageEntry& e : entries_) {
    PutVarint32(out, e.file_index);
    PutVarint64(out, e.offset);
    PutVarint32(out, e.size);
    PutVarint32(out, e.num_values);
    PutVarint64(out, e.first_row);
  }
}

Status PageTable::Deserialize(Decoder* dec, PageTable* out) {
  out->files_.clear();
  out->entries_.clear();
  out->file_first_page_.clear();
  uint64_t num_files;
  ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&num_files));
  for (uint64_t i = 0; i < num_files; ++i) {
    std::string f;
    ROTTNEST_RETURN_NOT_OK(dec->GetLengthPrefixedString(&f));
    out->files_.push_back(std::move(f));
  }
  for (uint64_t i = 0; i < num_files; ++i) {
    uint64_t first;
    ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&first));
    out->file_first_page_.push_back(static_cast<PageId>(first));
  }
  uint64_t num_entries;
  ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&num_entries));
  out->entries_.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    PageEntry e;
    ROTTNEST_RETURN_NOT_OK(dec->GetVarint32(&e.file_index));
    ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&e.offset));
    ROTTNEST_RETURN_NOT_OK(dec->GetVarint32(&e.size));
    ROTTNEST_RETURN_NOT_OK(dec->GetVarint32(&e.num_values));
    ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&e.first_row));
    if (e.file_index >= out->files_.size()) {
      return Status::Corruption("page entry references unknown file");
    }
    out->entries_.push_back(e);
  }
  return Status::OK();
}

PageId PageTable::Absorb(const PageTable& other) {
  PageId id_offset = static_cast<PageId>(entries_.size());
  uint32_t file_offset = static_cast<uint32_t>(files_.size());
  files_.insert(files_.end(), other.files_.begin(), other.files_.end());
  for (PageId first : other.file_first_page_) {
    file_first_page_.push_back(first + id_offset);
  }
  for (PageEntry e : other.entries_) {
    e.file_index += file_offset;
    entries_.push_back(e);
  }
  return id_offset;
}

}  // namespace rottnest::format
