// Columnar file writer. Buffers row batches and produces the complete file
// image (magic, row groups of page-compressed column chunks, footer).
#ifndef ROTTNEST_FORMAT_WRITER_H_
#define ROTTNEST_FORMAT_WRITER_H_

#include <cstdint>

#include "compress/lz.h"
#include "format/metadata.h"
#include "format/types.h"

namespace rottnest::format {

/// Writer knobs. The defaults mirror common Parquet writer behaviour at a
/// laptop-friendly scale: pages cut at ~1MB of raw values, row groups at
/// ~16MB raw.
struct WriterOptions {
  size_t target_page_bytes = 1 << 20;        ///< Raw bytes per page.
  size_t target_row_group_bytes = 16 << 20;  ///< Raw bytes per row group.
  compress::Codec codec = compress::Codec::kLz;
};

/// Accumulates batches and emits one file. Single-threaded use.
class FileWriter {
 public:
  FileWriter(Schema schema, WriterOptions options);

  /// Appends a batch (validated against the schema).
  Status Append(const RowBatch& batch);

  /// Flushes pending rows and finalizes the footer. The writer cannot be
  /// reused afterwards. On success `file` holds the complete file bytes and
  /// meta() describes them.
  Status Finish(Buffer* file);

  /// Valid after Finish.
  const FileMeta& meta() const { return meta_; }

 private:
  void FlushRowGroup();

  Schema schema_;
  WriterOptions options_;
  std::vector<ColumnVector> pending_;  ///< Buffered values per column.
  size_t pending_raw_bytes_ = 0;
  uint64_t rows_written_ = 0;
  Buffer file_;
  FileMeta meta_;
  bool finished_ = false;
};

/// Convenience: writes `batch` as a single file.
Status WriteSingleFile(const RowBatch& batch, const WriterOptions& options,
                       Buffer* file, FileMeta* meta);

}  // namespace rottnest::format

#endif  // ROTTNEST_FORMAT_WRITER_H_
