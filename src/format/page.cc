#include "format/page.h"

#include "common/coding.h"
#include "common/hash.h"

namespace rottnest::format {

namespace {

// Plain encodings, one per physical type.

void EncodeValues(const ColumnVector& column, size_t begin, size_t end,
                  Buffer* out) {
  switch (column.type()) {
    case PhysicalType::kInt64:
      for (size_t i = begin; i < end; ++i) {
        PutFixed64(out, static_cast<uint64_t>(column.ints()[i]));
      }
      break;
    case PhysicalType::kDouble:
      for (size_t i = begin; i < end; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &column.doubles()[i], 8);
        PutFixed64(out, bits);
      }
      break;
    case PhysicalType::kByteArray:
      for (size_t i = begin; i < end; ++i) {
        PutLengthPrefixedString(out, column.strings()[i]);
      }
      break;
    case PhysicalType::kFixedLenByteArray: {
      const FlatFixed& f = column.fixed();
      const uint8_t* start = f.data.data() + begin * f.elem_size;
      out->insert(out->end(), start, start + (end - begin) * f.elem_size);
      break;
    }
  }
}

Status DecodeValues(Slice raw, const ColumnSchema& col, size_t num_values,
                    ColumnVector* out) {
  *out = MakeEmptyColumn(col);
  Decoder dec(raw);
  switch (col.type) {
    case PhysicalType::kInt64: {
      auto& v = out->ints();
      v.reserve(num_values);
      for (size_t i = 0; i < num_values; ++i) {
        uint64_t bits = 0;
        ROTTNEST_RETURN_NOT_OK(dec.GetFixed64(&bits));
        v.push_back(static_cast<int64_t>(bits));
      }
      break;
    }
    case PhysicalType::kDouble: {
      auto& v = out->doubles();
      v.reserve(num_values);
      for (size_t i = 0; i < num_values; ++i) {
        uint64_t bits = 0;
        ROTTNEST_RETURN_NOT_OK(dec.GetFixed64(&bits));
        double d;
        std::memcpy(&d, &bits, 8);
        v.push_back(d);
      }
      break;
    }
    case PhysicalType::kByteArray: {
      auto& v = out->strings();
      v.reserve(num_values);
      for (size_t i = 0; i < num_values; ++i) {
        std::string s;
        ROTTNEST_RETURN_NOT_OK(dec.GetLengthPrefixedString(&s));
        v.push_back(std::move(s));
      }
      break;
    }
    case PhysicalType::kFixedLenByteArray: {
      FlatFixed& f = out->fixed();
      size_t bytes = num_values * col.fixed_len;
      Slice data;
      ROTTNEST_RETURN_NOT_OK(dec.GetBytes(bytes, &data));
      f.data = data.ToBuffer();
      break;
    }
  }
  if (!dec.exhausted()) {
    return Status::Corruption("trailing bytes in decoded page");
  }
  return Status::OK();
}

}  // namespace

size_t RawValuesSize(const ColumnVector& column, size_t begin, size_t end) {
  switch (column.type()) {
    case PhysicalType::kInt64:
    case PhysicalType::kDouble:
      return (end - begin) * 8;
    case PhysicalType::kByteArray: {
      size_t total = 0;
      for (size_t i = begin; i < end; ++i) {
        total += column.strings()[i].size() + 2;  // ~varint overhead
      }
      return total;
    }
    case PhysicalType::kFixedLenByteArray:
      return (end - begin) * column.fixed().elem_size;
  }
  return 0;
}

size_t EncodePage(const ColumnVector& column, size_t begin, size_t end,
                  compress::Codec codec, Buffer* out) {
  Buffer raw;
  EncodeValues(column, begin, end, &raw);
  Buffer compressed = compress::Compress(codec, Slice(raw));
  // Fall back to stored if compression did not help.
  compress::Codec used = codec;
  if (compressed.size() >= raw.size()) {
    compressed = raw;
    used = compress::Codec::kNone;
  }
  size_t start = out->size();
  PutVarint64(out, end - begin);
  PutVarint64(out, raw.size());
  PutVarint64(out, compressed.size());
  out->push_back(static_cast<uint8_t>(used));
  PutFixed64(out, Hash64(Slice(compressed)));
  out->insert(out->end(), compressed.begin(), compressed.end());
  return out->size() - start;
}

Status DecodePage(Slice page_bytes, const ColumnSchema& col,
                  ColumnVector* out, size_t* consumed) {
  Decoder dec(page_bytes);
  uint64_t num_values, uncompressed_size, compressed_size;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&num_values));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&uncompressed_size));
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&compressed_size));
  if (dec.exhausted()) return Status::Corruption("truncated page header");
  uint8_t codec_byte = page_bytes[dec.position()];
  Decoder dec2(page_bytes.Subslice(dec.position() + 1,
                                   page_bytes.size() - dec.position() - 1));
  uint64_t checksum = 0;
  ROTTNEST_RETURN_NOT_OK(dec2.GetFixed64(&checksum));
  Slice payload;
  ROTTNEST_RETURN_NOT_OK(dec2.GetBytes(compressed_size, &payload));
  if (Hash64(payload) != checksum) {
    return Status::Corruption("page checksum mismatch");
  }
  if (codec_byte > static_cast<uint8_t>(compress::Codec::kLz)) {
    return Status::Corruption("unknown page codec");
  }
  Buffer raw;
  ROTTNEST_RETURN_NOT_OK(compress::Decompress(
      static_cast<compress::Codec>(codec_byte), payload, uncompressed_size,
      &raw));
  ROTTNEST_RETURN_NOT_OK(DecodeValues(Slice(raw), col, num_values, out));
  if (consumed != nullptr) {
    *consumed = dec.position() + 1 + dec2.position();
  }
  return Status::OK();
}

}  // namespace rottnest::format
