// Schema and in-memory column representations for the columnar file format
// (a faithful simplification of Parquet: files -> row groups -> column
// chunks -> compressed data pages, with a footer carrying all metadata).
#ifndef ROTTNEST_FORMAT_TYPES_H_
#define ROTTNEST_FORMAT_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace rottnest::format {

/// Physical storage type of a column.
enum class PhysicalType : uint8_t {
  kInt64 = 0,             ///< 64-bit signed integers (timestamps, ids).
  kDouble = 1,            ///< 64-bit floats.
  kByteArray = 2,         ///< Variable-length byte strings (text, blobs).
  kFixedLenByteArray = 3, ///< Fixed-size values (UUIDs, embedding vectors).
};

const char* PhysicalTypeName(PhysicalType t);

/// One column's declaration.
struct ColumnSchema {
  std::string name;
  PhysicalType type = PhysicalType::kInt64;
  /// Element size in bytes; only meaningful for kFixedLenByteArray
  /// (e.g. 16 for UUIDs, 512 for 128-dim float32 vectors).
  uint32_t fixed_len = 0;
};

/// An ordered list of columns.
struct Schema {
  std::vector<ColumnSchema> columns;

  /// Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Fixed-length values stored back-to-back in a flat buffer.
struct FlatFixed {
  Buffer data;
  uint32_t elem_size = 0;

  size_t size() const { return elem_size == 0 ? 0 : data.size() / elem_size; }
  Slice at(size_t i) const {
    return Slice(data.data() + i * elem_size, elem_size);
  }
  void Append(Slice value) {
    data.insert(data.end(), value.data(), value.data() + value.size());
  }
  bool operator==(const FlatFixed& o) const {
    return elem_size == o.elem_size && data == o.data;
  }
};

/// In-memory values of one column (or a slice of one). Variant alternatives
/// correspond 1:1 to PhysicalType.
class ColumnVector {
 public:
  using Ints = std::vector<int64_t>;
  using Doubles = std::vector<double>;
  using Strings = std::vector<std::string>;

  ColumnVector() : values_(Ints{}) {}
  explicit ColumnVector(Ints v) : values_(std::move(v)) {}
  explicit ColumnVector(Doubles v) : values_(std::move(v)) {}
  explicit ColumnVector(Strings v) : values_(std::move(v)) {}
  explicit ColumnVector(FlatFixed v) : values_(std::move(v)) {}

  PhysicalType type() const {
    switch (values_.index()) {
      case 0:
        return PhysicalType::kInt64;
      case 1:
        return PhysicalType::kDouble;
      case 2:
        return PhysicalType::kByteArray;
      default:
        return PhysicalType::kFixedLenByteArray;
    }
  }

  size_t size() const {
    if (auto* v = std::get_if<Ints>(&values_)) return v->size();
    if (auto* v = std::get_if<Doubles>(&values_)) return v->size();
    if (auto* v = std::get_if<Strings>(&values_)) return v->size();
    return std::get<FlatFixed>(values_).size();
  }

  const Ints& ints() const { return std::get<Ints>(values_); }
  Ints& ints() { return std::get<Ints>(values_); }
  const Doubles& doubles() const { return std::get<Doubles>(values_); }
  Doubles& doubles() { return std::get<Doubles>(values_); }
  const Strings& strings() const { return std::get<Strings>(values_); }
  Strings& strings() { return std::get<Strings>(values_); }
  const FlatFixed& fixed() const { return std::get<FlatFixed>(values_); }
  FlatFixed& fixed() { return std::get<FlatFixed>(values_); }

  /// Appends all values of `other` (same alternative) to this vector.
  void AppendFrom(const ColumnVector& other);

  bool operator==(const ColumnVector& o) const { return values_ == o.values_; }

 private:
  std::variant<Ints, Doubles, Strings, FlatFixed> values_;
};

/// Creates an empty ColumnVector of the right alternative for `col`.
ColumnVector MakeEmptyColumn(const ColumnSchema& col);

/// A batch of rows: one ColumnVector per schema column, equal lengths.
struct RowBatch {
  Schema schema;
  std::vector<ColumnVector> columns;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }

  /// Verifies column count/types/lengths match the schema.
  Status Validate() const;
};

}  // namespace rottnest::format

#endif  // ROTTNEST_FORMAT_TYPES_H_
