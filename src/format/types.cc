#include "format/types.h"

namespace rottnest::format {

const char* PhysicalTypeName(PhysicalType t) {
  switch (t) {
    case PhysicalType::kInt64:
      return "int64";
    case PhysicalType::kDouble:
      return "double";
    case PhysicalType::kByteArray:
      return "byte_array";
    case PhysicalType::kFixedLenByteArray:
      return "fixed_len_byte_array";
  }
  return "unknown";
}

void ColumnVector::AppendFrom(const ColumnVector& other) {
  switch (type()) {
    case PhysicalType::kInt64:
      ints().insert(ints().end(), other.ints().begin(), other.ints().end());
      break;
    case PhysicalType::kDouble:
      doubles().insert(doubles().end(), other.doubles().begin(),
                       other.doubles().end());
      break;
    case PhysicalType::kByteArray:
      strings().insert(strings().end(), other.strings().begin(),
                       other.strings().end());
      break;
    case PhysicalType::kFixedLenByteArray:
      fixed().data.insert(fixed().data.end(), other.fixed().data.begin(),
                          other.fixed().data.end());
      break;
  }
}

ColumnVector MakeEmptyColumn(const ColumnSchema& col) {
  switch (col.type) {
    case PhysicalType::kInt64:
      return ColumnVector(ColumnVector::Ints{});
    case PhysicalType::kDouble:
      return ColumnVector(ColumnVector::Doubles{});
    case PhysicalType::kByteArray:
      return ColumnVector(ColumnVector::Strings{});
    case PhysicalType::kFixedLenByteArray: {
      FlatFixed f;
      f.elem_size = col.fixed_len;
      return ColumnVector(std::move(f));
    }
  }
  return ColumnVector(ColumnVector::Ints{});
}

Status RowBatch::Validate() const {
  if (columns.size() != schema.columns.size()) {
    return Status::InvalidArgument("column count does not match schema");
  }
  size_t rows = num_rows();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.columns[i].type) {
      return Status::InvalidArgument("column type mismatch at " +
                                     schema.columns[i].name);
    }
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("ragged columns in batch");
    }
    if (schema.columns[i].type == PhysicalType::kFixedLenByteArray &&
        columns[i].fixed().elem_size != schema.columns[i].fixed_len) {
      return Status::InvalidArgument("fixed_len mismatch at " +
                                     schema.columns[i].name);
    }
  }
  return Status::OK();
}

}  // namespace rottnest::format
