#include "format/reader.h"

#include <cstring>

#include "common/coding.h"
#include "format/page.h"
#include "objectstore/read_batch.h"

namespace rottnest::format {

namespace {

constexpr size_t kFooterTailBytes = 64 << 10;
constexpr size_t kFooterSuffix = 8;  // fixed32 length + 4-byte magic.

// Parses the footer from the last `tail.size()` bytes of a file. Sets
// *parsed=false (without error) when the footer extends beyond the tail, in
// which case *footer_start tells the caller what to fetch.
Status ParseFooterFromTail(Slice tail, uint64_t file_size, FileMeta* meta,
                           uint64_t* footer_start, bool* parsed) {
  *parsed = false;
  if (tail.size() < kFooterSuffix) {
    return Status::Corruption("file too small for footer");
  }
  const uint8_t* suffix = tail.data() + tail.size() - kFooterSuffix;
  if (std::memcmp(suffix + 4, kFileMagic, 4) != 0) {
    return Status::Corruption("bad trailing magic");
  }
  uint32_t footer_len = DecodeFixed32(suffix);
  if (footer_len + kFooterSuffix + 4 > file_size) {
    return Status::Corruption("footer length exceeds file size");
  }
  *footer_start = file_size - kFooterSuffix - footer_len;
  if (footer_len + kFooterSuffix > tail.size()) {
    return Status::OK();  // Caller must fetch [footer_start, ...) itself.
  }
  Slice footer = tail.Subslice(tail.size() - kFooterSuffix - footer_len,
                               footer_len);
  ROTTNEST_RETURN_NOT_OK(FileMeta::Deserialize(footer, meta));
  *parsed = true;
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<FileReader>> FileReader::Open(
    objectstore::ObjectStore* store, std::string key,
    objectstore::IoTrace* trace) {
  objectstore::ObjectMeta obj;
  ROTTNEST_RETURN_NOT_OK(store->Head(key, &obj));
  uint64_t tail_len = std::min<uint64_t>(obj.size, kFooterTailBytes);
  Buffer tail;
  if (trace != nullptr) trace->BeginRound();
  ROTTNEST_RETURN_NOT_OK(
      store->GetRange(key, obj.size - tail_len, tail_len, &tail));
  if (trace != nullptr) trace->RecordGet(tail.size());

  FileMeta meta;
  uint64_t footer_start = 0;
  bool parsed = false;
  ROTTNEST_RETURN_NOT_OK(
      ParseFooterFromTail(Slice(tail), obj.size, &meta, &footer_start,
                          &parsed));
  if (!parsed) {
    // Footer larger than the speculative tail read: fetch it exactly.
    Buffer footer;
    if (trace != nullptr) trace->BeginRound();
    ROTTNEST_RETURN_NOT_OK(store->GetRange(
        key, footer_start, obj.size - kFooterSuffix - footer_start, &footer));
    if (trace != nullptr) trace->RecordGet(footer.size());
    ROTTNEST_RETURN_NOT_OK(FileMeta::Deserialize(Slice(footer), &meta));
  }
  return std::unique_ptr<FileReader>(
      new FileReader(store, std::move(key), std::move(meta)));
}

Status FileReader::ReadColumnChunk(size_t row_group, size_t column,
                                   objectstore::IoTrace* trace,
                                   ColumnVector* out) {
  if (row_group >= meta_.row_groups.size()) {
    return Status::InvalidArgument("row group out of range");
  }
  const RowGroupMeta& rg = meta_.row_groups[row_group];
  if (column >= rg.columns.size()) {
    return Status::InvalidArgument("column out of range");
  }
  const ColumnChunkMeta& cc = rg.columns[column];
  Buffer chunk;
  if (trace != nullptr) trace->BeginRound();
  ROTTNEST_RETURN_NOT_OK(
      store_->GetRange(key_, cc.offset, cc.total_size, &chunk));
  if (trace != nullptr) trace->RecordGet(chunk.size());

  *out = MakeEmptyColumn(meta_.schema.columns[column]);
  size_t pos = 0;
  while (pos < chunk.size()) {
    ColumnVector page_values;
    size_t consumed = 0;
    ROTTNEST_RETURN_NOT_OK(DecodePage(
        Slice(chunk.data() + pos, chunk.size() - pos),
        meta_.schema.columns[column], &page_values, &consumed));
    out->AppendFrom(page_values);
    pos += consumed;
  }
  return Status::OK();
}

Status FileReader::ReadColumn(size_t column, objectstore::IoTrace* trace,
                              ColumnVector* out) {
  if (column >= meta_.schema.columns.size()) {
    return Status::InvalidArgument("column out of range");
  }
  *out = MakeEmptyColumn(meta_.schema.columns[column]);
  for (size_t g = 0; g < meta_.row_groups.size(); ++g) {
    ColumnVector chunk;
    ROTTNEST_RETURN_NOT_OK(ReadColumnChunk(g, column, trace, &chunk));
    out->AppendFrom(chunk);
  }
  return Status::OK();
}

Status ReadPages(objectstore::ObjectStore* store,
                 const std::vector<PageFetch>& pages,
                 const ColumnSchema& column_schema, ThreadPool* pool,
                 objectstore::IoTrace* trace, std::vector<ColumnVector>* out) {
  std::vector<objectstore::RangeRequest> requests;
  requests.reserve(pages.size());
  for (const PageFetch& pf : pages) {
    requests.push_back({pf.key, pf.page.offset, pf.page.size});
  }
  std::vector<Buffer> raw;
  ROTTNEST_RETURN_NOT_OK(
      objectstore::ReadBatch(store, requests, pool, trace, &raw));
  out->clear();
  out->resize(pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    ROTTNEST_RETURN_NOT_OK(
        DecodePage(Slice(raw[i]), column_schema, &(*out)[i]));
    if ((*out)[i].size() != pages[i].page.num_values) {
      return Status::Corruption("page value count mismatch");
    }
  }
  return Status::OK();
}

Status ParseFileMeta(Slice file, FileMeta* out) {
  if (file.size() < 4 + kFooterSuffix) {
    return Status::Corruption("file too small");
  }
  if (std::memcmp(file.data(), kFileMagic, 4) != 0) {
    return Status::Corruption("bad leading magic");
  }
  uint64_t footer_start = 0;
  bool parsed = false;
  ROTTNEST_RETURN_NOT_OK(
      ParseFooterFromTail(file, file.size(), out, &footer_start, &parsed));
  if (!parsed) return Status::Corruption("footer not contained in file");
  return Status::OK();
}

}  // namespace rottnest::format
