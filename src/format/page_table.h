// PageTable: the position map Rottnest keeps alongside its indices
// (paper §V-A, analogous to NoDB's positional maps). It assigns a dense id
// to every data page of one column across a set of files, and records each
// page's byte range — so index posting lists can point at pages and the
// search path can fetch them without ever reading a file footer.
#ifndef ROTTNEST_FORMAT_PAGE_TABLE_H_
#define ROTTNEST_FORMAT_PAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "format/metadata.h"
#include "format/reader.h"

namespace rottnest::format {

/// A dense page id within one PageTable.
using PageId = uint32_t;

/// One page's location: which file, which bytes, which rows.
struct PageEntry {
  uint32_t file_index = 0;   ///< Index into PageTable::files().
  uint64_t offset = 0;       ///< Byte offset of the page in the file.
  uint32_t size = 0;         ///< Encoded page size in bytes.
  uint32_t num_values = 0;   ///< Rows in the page.
  uint64_t first_row = 0;    ///< File-global row index of the first value.
};

/// Maps PageId -> PageEntry for one column over a set of data files.
class PageTable {
 public:
  PageTable() = default;

  /// Appends all pages of `column_index` in a file described by `meta`,
  /// registering `file_key`. Returns the PageId assigned to the file's
  /// first page (page ids are dense and contiguous per file).
  PageId AddFile(const std::string& file_key, const FileMeta& meta,
                 size_t column_index);

  size_t num_pages() const { return entries_.size(); }
  size_t num_files() const { return files_.size(); }
  const std::vector<std::string>& files() const { return files_; }
  const PageEntry& entry(PageId id) const { return entries_[id]; }
  const std::string& file_of(PageId id) const {
    return files_[entries_[id].file_index];
  }

  /// Page id range [begin, end) of pages belonging to files_[file_index].
  std::pair<PageId, PageId> FilePageRange(uint32_t file_index) const;

  /// The PageId containing file-global row `row` of files_[file_index], or
  /// an error if out of range.
  Result<PageId> PageOfRow(uint32_t file_index, uint64_t row) const;

  /// Builds a PageFetch for the page-granular reader.
  PageFetch MakeFetch(PageId id) const {
    const PageEntry& e = entries_[id];
    PageMeta pm;
    pm.offset = e.offset;
    pm.size = e.size;
    pm.num_values = e.num_values;
    pm.first_row = e.first_row;
    return PageFetch{files_[e.file_index], pm};
  }

  void Serialize(Buffer* out) const;
  static Status Deserialize(Decoder* dec, PageTable* out);

  /// Merges `other` into this table, returning the PageId offset added to
  /// all of `other`'s ids (used by index compaction).
  PageId Absorb(const PageTable& other);

 private:
  std::vector<std::string> files_;
  std::vector<PageEntry> entries_;
  /// First PageId of each file (parallel to files_), for range queries.
  std::vector<PageId> file_first_page_;
};

}  // namespace rottnest::format

#endif  // ROTTNEST_FORMAT_PAGE_TABLE_H_
