#include "format/metadata.h"

namespace rottnest::format {

void FileMeta::Serialize(Buffer* out) const {
  PutVarint64(out, schema.columns.size());
  for (const ColumnSchema& col : schema.columns) {
    PutLengthPrefixedString(out, col.name);
    out->push_back(static_cast<uint8_t>(col.type));
    PutVarint32(out, col.fixed_len);
  }
  PutVarint64(out, num_rows);
  PutVarint64(out, row_groups.size());
  for (const RowGroupMeta& rg : row_groups) {
    PutVarint64(out, rg.num_rows);
    PutVarint64(out, rg.first_row);
    PutVarint64(out, rg.columns.size());
    for (const ColumnChunkMeta& cc : rg.columns) {
      PutVarint64(out, cc.offset);
      PutVarint64(out, cc.total_size);
      out->push_back(cc.has_stats ? 1 : 0);
      if (cc.has_stats) {
        PutVarint64Signed(out, cc.min);
        PutVarint64Signed(out, cc.max);
      }
      PutVarint64(out, cc.pages.size());
      for (const PageMeta& p : cc.pages) {
        PutVarint64(out, p.offset);
        PutVarint32(out, p.size);
        PutVarint32(out, p.num_values);
        PutVarint64(out, p.first_row);
      }
    }
  }
}

Status FileMeta::Deserialize(Slice input, FileMeta* out) {
  Decoder dec(input);
  uint64_t num_cols;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&num_cols));
  out->schema.columns.clear();
  for (uint64_t i = 0; i < num_cols; ++i) {
    ColumnSchema col;
    ROTTNEST_RETURN_NOT_OK(dec.GetLengthPrefixedString(&col.name));
    if (dec.exhausted()) return Status::Corruption("truncated schema");
    Slice type_byte;
    ROTTNEST_RETURN_NOT_OK(dec.GetBytes(1, &type_byte));
    if (type_byte[0] > static_cast<uint8_t>(PhysicalType::kFixedLenByteArray)) {
      return Status::Corruption("bad column type");
    }
    col.type = static_cast<PhysicalType>(type_byte[0]);
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&col.fixed_len));
    out->schema.columns.push_back(std::move(col));
  }
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&out->num_rows));
  uint64_t num_groups;
  ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&num_groups));
  out->row_groups.clear();
  for (uint64_t g = 0; g < num_groups; ++g) {
    RowGroupMeta rg;
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&rg.num_rows));
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&rg.first_row));
    uint64_t cols;
    ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&cols));
    if (cols != num_cols) return Status::Corruption("row group column count");
    for (uint64_t c = 0; c < cols; ++c) {
      ColumnChunkMeta cc;
      ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&cc.offset));
      ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&cc.total_size));
      Slice flag;
      ROTTNEST_RETURN_NOT_OK(dec.GetBytes(1, &flag));
      cc.has_stats = flag[0] != 0;
      if (cc.has_stats) {
        ROTTNEST_RETURN_NOT_OK(dec.GetVarint64Signed(&cc.min));
        ROTTNEST_RETURN_NOT_OK(dec.GetVarint64Signed(&cc.max));
      }
      uint64_t num_pages;
      ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&num_pages));
      for (uint64_t p = 0; p < num_pages; ++p) {
        PageMeta pm;
        ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&pm.offset));
        ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&pm.size));
        ROTTNEST_RETURN_NOT_OK(dec.GetVarint32(&pm.num_values));
        ROTTNEST_RETURN_NOT_OK(dec.GetVarint64(&pm.first_row));
        cc.pages.push_back(pm);
      }
      rg.columns.push_back(std::move(cc));
    }
    out->row_groups.push_back(std::move(rg));
  }
  if (!dec.exhausted()) return Status::Corruption("trailing footer bytes");
  return Status::OK();
}

}  // namespace rottnest::format
