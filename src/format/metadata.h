// File metadata (the "footer"): schema, row groups, column chunks and
// per-page byte ranges, plus min/max statistics for predicate pushdown.
#ifndef ROTTNEST_FORMAT_METADATA_H_
#define ROTTNEST_FORMAT_METADATA_H_

#include <cstdint>
#include <vector>

#include "common/coding.h"
#include "format/types.h"

namespace rottnest::format {

/// Byte range and row range of one data page within its file.
struct PageMeta {
  uint64_t offset = 0;       ///< Absolute file offset of the page.
  uint32_t size = 0;         ///< Encoded page size in bytes (header+payload).
  uint32_t num_values = 0;   ///< Rows stored in this page.
  uint64_t first_row = 0;    ///< File-global row index of the first value.
};

/// One column's data within one row group.
struct ColumnChunkMeta {
  uint64_t offset = 0;      ///< File offset where the chunk's pages start.
  uint64_t total_size = 0;  ///< Bytes spanned by all pages of the chunk.
  bool has_stats = false;   ///< Min/max valid (kInt64 columns only).
  int64_t min = 0;
  int64_t max = 0;
  std::vector<PageMeta> pages;
};

/// One horizontal slice of the file.
struct RowGroupMeta {
  uint64_t num_rows = 0;
  uint64_t first_row = 0;  ///< File-global row index of the group's start.
  std::vector<ColumnChunkMeta> columns;
};

/// Everything a reader needs, stored at the end of the file.
struct FileMeta {
  Schema schema;
  std::vector<RowGroupMeta> row_groups;
  uint64_t num_rows = 0;

  void Serialize(Buffer* out) const;
  static Status Deserialize(Slice input, FileMeta* out);
};

/// File magic, present at both ends of every data file.
inline constexpr char kFileMagic[4] = {'R', 'N', 'F', '1'};

}  // namespace rottnest::format

#endif  // ROTTNEST_FORMAT_METADATA_H_
