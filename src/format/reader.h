// Readers for the columnar format.
//
// FileReader is the *traditional* reader: it opens the footer and reads
// whole column chunks (what Spark/Trino-style engines do — Fig 5 left).
//
// ReadPages is Rottnest's *custom page-granular* reader: given page byte
// ranges from a PageTable, it fetches exactly those pages with parallel
// range requests and bypasses the file footer entirely (Fig 5 right).
#ifndef ROTTNEST_FORMAT_READER_H_
#define ROTTNEST_FORMAT_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "format/metadata.h"
#include "format/types.h"
#include "objectstore/io_trace.h"
#include "objectstore/object_store.h"

namespace rottnest::format {

/// Footer-driven reader over a file in object storage.
class FileReader {
 public:
  /// Opens `key`: reads the footer (1 HEAD + 1-2 range GETs) and parses
  /// metadata. `trace` may be null.
  static Result<std::unique_ptr<FileReader>> Open(
      objectstore::ObjectStore* store, std::string key,
      objectstore::IoTrace* trace);

  const FileMeta& meta() const { return meta_; }
  const std::string& key() const { return key_; }

  /// Reads and decodes one whole column chunk (one range GET spanning all
  /// of the chunk's pages). This is the traditional access path.
  Status ReadColumnChunk(size_t row_group, size_t column,
                         objectstore::IoTrace* trace, ColumnVector* out);

  /// Reads an entire column across all row groups (full-column scan, as a
  /// brute-force engine would).
  Status ReadColumn(size_t column, objectstore::IoTrace* trace,
                    ColumnVector* out);

 private:
  FileReader(objectstore::ObjectStore* store, std::string key, FileMeta meta)
      : store_(store), key_(std::move(key)), meta_(std::move(meta)) {}

  objectstore::ObjectStore* store_;
  std::string key_;
  FileMeta meta_;
};

/// A page to fetch: where it lives and how to decode it.
struct PageFetch {
  std::string key;       ///< Object key of the data file.
  PageMeta page;         ///< Byte range and row range.
};

/// Fetches and decodes `pages` (one parallel round of range GETs, no footer
/// read). Results align positionally with `pages`.
Status ReadPages(objectstore::ObjectStore* store,
                 const std::vector<PageFetch>& pages,
                 const ColumnSchema& column_schema, ThreadPool* pool,
                 objectstore::IoTrace* trace, std::vector<ColumnVector>* out);

/// Parses a complete in-memory file image's footer (no object store) —
/// used right after writing, before upload.
Status ParseFileMeta(Slice file, FileMeta* out);

}  // namespace rottnest::format

#endif  // ROTTNEST_FORMAT_READER_H_
