#include "format/writer.h"

#include <algorithm>

#include "format/page.h"

namespace rottnest::format {

FileWriter::FileWriter(Schema schema, WriterOptions options)
    : schema_(std::move(schema)), options_(options) {
  for (const ColumnSchema& col : schema_.columns) {
    pending_.push_back(MakeEmptyColumn(col));
  }
  file_.insert(file_.end(), kFileMagic, kFileMagic + 4);
  meta_.schema = schema_;
}

Status FileWriter::Append(const RowBatch& batch) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  ROTTNEST_RETURN_NOT_OK(batch.Validate());
  if (batch.schema.columns.size() != schema_.columns.size()) {
    return Status::InvalidArgument("batch schema mismatch");
  }
  for (size_t c = 0; c < pending_.size(); ++c) {
    if (batch.columns[c].type() != schema_.columns[c].type) {
      return Status::InvalidArgument("batch column type mismatch");
    }
    pending_[c].AppendFrom(batch.columns[c]);
    pending_raw_bytes_ += RawValuesSize(batch.columns[c], 0,
                                        batch.columns[c].size());
  }
  while (pending_raw_bytes_ >= options_.target_row_group_bytes &&
         pending_[0].size() > 0) {
    FlushRowGroup();
  }
  return Status::OK();
}

void FileWriter::FlushRowGroup() {
  size_t total_rows = pending_[0].size();
  if (total_rows == 0) return;

  // Cut the group at target_row_group_bytes of raw data (all columns).
  size_t rows = total_rows;
  size_t acc = 0;
  for (size_t r = 0; r < total_rows; ++r) {
    for (const ColumnVector& col : pending_) {
      acc += RawValuesSize(col, r, r + 1);
    }
    if (acc >= options_.target_row_group_bytes) {
      rows = r + 1;
      break;
    }
  }

  RowGroupMeta rg;
  rg.num_rows = rows;
  rg.first_row = rows_written_;

  for (size_t c = 0; c < pending_.size(); ++c) {
    const ColumnVector& col = pending_[c];
    ColumnChunkMeta cc;
    cc.offset = file_.size();

    // Min/max statistics for integer columns (predicate pushdown).
    if (col.type() == PhysicalType::kInt64 && rows > 0) {
      cc.has_stats = true;
      cc.min = *std::min_element(col.ints().begin(),
                                 col.ints().begin() + rows);
      cc.max = *std::max_element(col.ints().begin(),
                                 col.ints().begin() + rows);
    }

    // Split the chunk into pages of bounded raw size. Pages are cut by
    // accumulating value sizes; a single huge value still gets its own page.
    size_t begin = 0;
    while (begin < rows) {
      size_t end = begin;
      size_t raw = 0;
      while (end < rows) {
        size_t value_size = RawValuesSize(col, end, end + 1);
        if (end > begin && raw + value_size > options_.target_page_bytes) {
          break;
        }
        raw += value_size;
        ++end;
      }
      PageMeta pm;
      pm.offset = file_.size();
      pm.num_values = static_cast<uint32_t>(end - begin);
      pm.first_row = rows_written_ + begin;
      size_t page_size = EncodePage(col, begin, end, options_.codec, &file_);
      pm.size = static_cast<uint32_t>(page_size);
      cc.pages.push_back(pm);
      begin = end;
    }
    cc.total_size = file_.size() - cc.offset;
    rg.columns.push_back(std::move(cc));
  }

  meta_.row_groups.push_back(std::move(rg));
  rows_written_ += rows;

  // Keep any rows beyond the cut for the next group.
  for (size_t c = 0; c < pending_.size(); ++c) {
    ColumnVector rest = MakeEmptyColumn(schema_.columns[c]);
    ColumnVector& col = pending_[c];
    switch (col.type()) {
      case PhysicalType::kInt64:
        rest.ints().assign(col.ints().begin() + rows, col.ints().end());
        break;
      case PhysicalType::kDouble:
        rest.doubles().assign(col.doubles().begin() + rows,
                              col.doubles().end());
        break;
      case PhysicalType::kByteArray:
        rest.strings().assign(
            std::make_move_iterator(col.strings().begin() + rows),
            std::make_move_iterator(col.strings().end()));
        break;
      case PhysicalType::kFixedLenByteArray:
        rest.fixed().data.assign(
            col.fixed().data.begin() + rows * col.fixed().elem_size,
            col.fixed().data.end());
        break;
    }
    col = std::move(rest);
  }
  pending_raw_bytes_ = 0;
  for (const ColumnVector& col : pending_) {
    pending_raw_bytes_ += RawValuesSize(col, 0, col.size());
  }
}

Status FileWriter::Finish(Buffer* file) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  while (pending_[0].size() > 0) FlushRowGroup();
  meta_.num_rows = rows_written_;

  Buffer footer;
  meta_.Serialize(&footer);
  file_.insert(file_.end(), footer.begin(), footer.end());
  PutFixed32(&file_, static_cast<uint32_t>(footer.size()));
  file_.insert(file_.end(), kFileMagic, kFileMagic + 4);

  *file = std::move(file_);
  finished_ = true;
  return Status::OK();
}

Status WriteSingleFile(const RowBatch& batch, const WriterOptions& options,
                       Buffer* file, FileMeta* meta) {
  FileWriter writer(batch.schema, options);
  ROTTNEST_RETURN_NOT_OK(writer.Append(batch));
  ROTTNEST_RETURN_NOT_OK(writer.Finish(file));
  if (meta != nullptr) *meta = writer.meta();
  return Status::OK();
}

}  // namespace rottnest::format
