#include "baseline/brute_force.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "format/reader.h"
#include "index/ivfpq/kmeans.h"

namespace rottnest::baseline {

using format::ColumnVector;
using format::PhysicalType;

double BruteForceScanSeconds(double total_bytes,
                             const BruteForceOptions& options,
                             const objectstore::S3Model& s3) {
  double w = static_cast<double>(std::max<size_t>(options.workers, 1));
  double streams = static_cast<double>(
      std::max<size_t>(options.streams_per_worker, 1));
  double per_worker_bytes = total_bytes / w;
  double chunks = std::max(1.0, per_worker_bytes / (128.0 * 1024 * 1024));
  double per_worker_bw = std::min(streams * s3.per_stream_mbps * 1e6,
                                  options.worker_nic_bytes_per_s);
  double read_s = std::ceil(chunks / streams) * s3.ttfb_ms / 1000.0 +
                  per_worker_bytes / per_worker_bw;
  double scan_s = per_worker_bytes / (options.scan_bytes_per_s * streams);
  return read_s + scan_s + options.coordination_overhead_s +
         options.per_worker_overhead_s * w;
}

BruteForceEngine::BruteForceEngine(objectstore::ObjectStore* store,
                                   lake::Table* table,
                                   BruteForceOptions options,
                                   const objectstore::S3Model& s3)
    : store_(store),
      table_(table),
      options_(options),
      s3_(s3),
      pool_(std::min<size_t>(options.workers, 32)) {}

Status BruteForceEngine::ScanColumn(
    const std::string& column,
    const std::function<void(const std::string&, uint64_t,
                             const format::ColumnVector&)>& visit,
    BruteForceResult* result) {
  int col_idx = table_->schema().FindColumn(column);
  if (col_idx < 0) return Status::InvalidArgument("no such column: " + column);
  ROTTNEST_ASSIGN_OR_RETURN(lake::Snapshot snap, table_->GetSnapshot());

  // Collect every (file, row group) scan task with its chunk size.
  struct Task {
    std::string file;
    size_t row_group;
    uint64_t first_row;
    uint64_t chunk_bytes;
  };
  std::vector<Task> tasks;
  std::vector<std::unique_ptr<format::FileReader>> readers;
  std::vector<size_t> task_reader;
  for (const lake::DataFile& f : snap.files) {
    ROTTNEST_ASSIGN_OR_RETURN(std::unique_ptr<format::FileReader> reader,
                              format::FileReader::Open(store_, f.path,
                                                       nullptr));
    const format::FileMeta& meta = reader->meta();
    for (size_t g = 0; g < meta.row_groups.size(); ++g) {
      tasks.push_back({f.path, g, meta.row_groups[g].first_row,
                       meta.row_groups[g].columns[col_idx].total_size});
      task_reader.push_back(readers.size());
    }
    readers.push_back(std::move(reader));
  }

  // Execute the scan (actual correctness path).
  std::mutex mu;
  Status first_error;
  uint64_t bytes = 0;
  pool_.ParallelFor(tasks.size(), [&](size_t t) {
    ColumnVector col;
    Status s = readers[task_reader[t]]->ReadColumnChunk(
        tasks[t].row_group, col_idx, nullptr, &col);
    std::lock_guard<std::mutex> lock(mu);
    if (!s.ok()) {
      if (first_error.ok()) first_error = s;
      return;
    }
    bytes += tasks[t].chunk_bytes;
    visit(tasks[t].file, tasks[t].first_row, col);
  });
  ROTTNEST_RETURN_NOT_OK(first_error);
  result->bytes_scanned = bytes;

  // Latency projection: chunks round-robin across W workers (one instance
  // each); a worker reads its chunks with `streams_per_worker` concurrent
  // S3 streams, capped by its NIC; scan CPU overlaps across its cores.
  size_t w = std::max<size_t>(options_.workers, 1);
  size_t streams = std::max<size_t>(options_.streams_per_worker, 1);
  std::vector<uint64_t> worker_bytes(w, 0);
  std::vector<uint64_t> worker_chunks(w, 0);
  for (size_t t = 0; t < tasks.size(); ++t) {
    worker_bytes[t % w] += tasks[t].chunk_bytes;
    worker_chunks[t % w] += 1;
  }
  double per_worker_bw =
      std::min(static_cast<double>(streams) * s3_.per_stream_mbps * 1e6,
               options_.worker_nic_bytes_per_s);
  double slowest = 0;
  for (size_t i = 0; i < w; ++i) {
    double rounds = std::ceil(static_cast<double>(worker_chunks[i]) /
                              static_cast<double>(streams));
    double read_s = rounds * s3_.ttfb_ms / 1000.0 +
                    static_cast<double>(worker_bytes[i]) / per_worker_bw;
    double scan_s = static_cast<double>(worker_bytes[i]) /
                    (options_.scan_bytes_per_s *
                     static_cast<double>(streams));
    slowest = std::max(slowest, read_s + scan_s);
  }
  result->projected_latency_s = slowest + options_.coordination_overhead_s +
                                options_.per_worker_overhead_s *
                                    static_cast<double>(w);
  return Status::OK();
}

Result<BruteForceResult> BruteForceEngine::SearchUuid(
    const std::string& column, Slice value, size_t k) {
  BruteForceResult result;
  std::mutex mu;
  ROTTNEST_RETURN_NOT_OK(ScanColumn(
      column,
      [&](const std::string& file, uint64_t first_row,
          const ColumnVector& col) {
        for (size_t r = 0; r < col.size(); ++r) {
          if (col.fixed().at(r) == value) {
            std::lock_guard<std::mutex> lock(mu);
            result.matches.push_back(
                {file, first_row + r, col.fixed().at(r).ToString(), 0});
          }
        }
      },
      &result));
  if (result.matches.size() > k) result.matches.resize(k);
  return result;
}

Result<BruteForceResult> BruteForceEngine::SearchSubstring(
    const std::string& column, const std::string& pattern, size_t k) {
  BruteForceResult result;
  std::mutex mu;
  ROTTNEST_RETURN_NOT_OK(ScanColumn(
      column,
      [&](const std::string& file, uint64_t first_row,
          const ColumnVector& col) {
        for (size_t r = 0; r < col.size(); ++r) {
          if (col.strings()[r].find(pattern) != std::string::npos) {
            std::lock_guard<std::mutex> lock(mu);
            result.matches.push_back(
                {file, first_row + r, col.strings()[r], 0});
          }
        }
      },
      &result));
  if (result.matches.size() > k) result.matches.resize(k);
  return result;
}

Result<BruteForceResult> BruteForceEngine::SearchVector(
    const std::string& column, const float* query, uint32_t dim, size_t k) {
  BruteForceResult result;
  std::mutex mu;
  std::vector<core::RowMatch> all;
  ROTTNEST_RETURN_NOT_OK(ScanColumn(
      column,
      [&](const std::string& file, uint64_t first_row,
          const ColumnVector& col) {
        std::vector<core::RowMatch> local;
        for (size_t r = 0; r < col.size(); ++r) {
          Slice raw = col.fixed().at(r);
          float d = index::SquaredL2(query, index::VectorFromValue(raw), dim);
          local.push_back({file, first_row + r, raw.ToString(), d});
        }
        // Keep only the local top-k before merging.
        if (local.size() > k) {
          std::partial_sort(local.begin(), local.begin() + k, local.end(),
                            [](const core::RowMatch& a,
                               const core::RowMatch& b) {
                              return a.distance < b.distance;
                            });
          local.resize(k);
        }
        std::lock_guard<std::mutex> lock(mu);
        all.insert(all.end(), local.begin(), local.end());
      },
      &result));
  std::sort(all.begin(), all.end(),
            [](const core::RowMatch& a, const core::RowMatch& b) {
              return a.distance < b.distance;
            });
  if (all.size() > k) all.resize(k);
  result.matches = std::move(all);
  return result;
}

}  // namespace rottnest::baseline
