// Copy-data baseline (paper §II-C1): a dedicated always-on search service
// (OpenSearch / LanceDB stand-in). The ETL step copies the snapshot into
// in-memory exact structures; queries are served from RAM at
// millisecond latencies. Its TCO contribution is the always-on cluster's
// monthly cost (tco::Pricing), not per-query cost.
#ifndef ROTTNEST_BASELINE_DEDICATED_SERVICE_H_
#define ROTTNEST_BASELINE_DEDICATED_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "core/rottnest.h"
#include "lake/table.h"

namespace rottnest::baseline {

/// In-memory exact search over a copied snapshot.
class DedicatedService {
 public:
  /// Copies (ETLs) the latest snapshot of `table` into memory.
  static Result<std::unique_ptr<DedicatedService>> Ingest(
      objectstore::ObjectStore* store, lake::Table* table,
      const std::string& uuid_column, const std::string& text_column,
      const std::string& vector_column, uint32_t vector_dim);

  /// Exact id lookup (hash map).
  std::vector<core::RowMatch> SearchUuid(Slice value, size_t k) const;

  /// Substring scan over RAM-resident text.
  std::vector<core::RowMatch> SearchSubstring(const std::string& pattern,
                                              size_t k) const;

  /// Exact k-NN over RAM-resident vectors (recall 1.0).
  std::vector<core::RowMatch> SearchVector(const float* query, uint32_t dim,
                                           size_t k) const;

  /// Bytes of RAM the copy occupies (drives the cluster sizing cost).
  uint64_t memory_bytes() const { return memory_bytes_; }
  uint64_t num_rows() const { return rows_.size(); }

 private:
  DedicatedService() = default;

  struct Row {
    std::string file;
    uint64_t row;
    std::string text;
    std::vector<float> vector;
  };

  std::vector<Row> rows_;
  std::multimap<std::string, size_t> uuid_index_;
  uint64_t memory_bytes_ = 0;
  uint32_t dim_ = 0;
};

}  // namespace rottnest::baseline

#endif  // ROTTNEST_BASELINE_DEDICATED_SERVICE_H_
