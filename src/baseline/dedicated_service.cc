#include "baseline/dedicated_service.h"

#include <algorithm>

#include "format/reader.h"
#include "index/ivfpq/kmeans.h"

namespace rottnest::baseline {

Result<std::unique_ptr<DedicatedService>> DedicatedService::Ingest(
    objectstore::ObjectStore* store, lake::Table* table,
    const std::string& uuid_column, const std::string& text_column,
    const std::string& vector_column, uint32_t vector_dim) {
  int uuid_idx = table->schema().FindColumn(uuid_column);
  int text_idx = table->schema().FindColumn(text_column);
  int vec_idx = table->schema().FindColumn(vector_column);
  if (uuid_idx < 0 || text_idx < 0 || vec_idx < 0) {
    return Status::InvalidArgument("missing column for ingestion");
  }

  std::unique_ptr<DedicatedService> svc(new DedicatedService());
  svc->dim_ = vector_dim;
  ROTTNEST_ASSIGN_OR_RETURN(lake::Snapshot snap, table->GetSnapshot());
  for (const lake::DataFile& f : snap.files) {
    ROTTNEST_ASSIGN_OR_RETURN(std::unique_ptr<format::FileReader> reader,
                              format::FileReader::Open(store, f.path,
                                                       nullptr));
    format::ColumnVector uuids, texts, vecs;
    ROTTNEST_RETURN_NOT_OK(reader->ReadColumn(uuid_idx, nullptr, &uuids));
    ROTTNEST_RETURN_NOT_OK(reader->ReadColumn(text_idx, nullptr, &texts));
    ROTTNEST_RETURN_NOT_OK(reader->ReadColumn(vec_idx, nullptr, &vecs));
    lake::DeletionVector dv;
    ROTTNEST_RETURN_NOT_OK(table->ReadDeletionVector(f, &dv));

    for (size_t r = 0; r < uuids.size(); ++r) {
      if (dv.Contains(r)) continue;
      Row row;
      row.file = f.path;
      row.row = r;
      row.text = texts.strings()[r];
      Slice raw = vecs.fixed().at(r);
      row.vector.resize(vector_dim);
      std::memcpy(row.vector.data(), raw.data(), vector_dim * 4);
      std::string id = uuids.fixed().at(r).ToString();
      svc->memory_bytes_ += id.size() + row.text.size() + vector_dim * 4 +
                            row.file.size() + 64;
      svc->uuid_index_.emplace(std::move(id), svc->rows_.size());
      svc->rows_.push_back(std::move(row));
    }
  }
  return svc;
}

std::vector<core::RowMatch> DedicatedService::SearchUuid(Slice value,
                                                         size_t k) const {
  std::vector<core::RowMatch> matches;
  auto [begin, end] = uuid_index_.equal_range(value.ToString());
  for (auto it = begin; it != end && matches.size() < k; ++it) {
    const Row& r = rows_[it->second];
    matches.push_back({r.file, r.row, value.ToString(), 0});
  }
  return matches;
}

std::vector<core::RowMatch> DedicatedService::SearchSubstring(
    const std::string& pattern, size_t k) const {
  std::vector<core::RowMatch> matches;
  for (const Row& r : rows_) {
    if (r.text.find(pattern) != std::string::npos) {
      matches.push_back({r.file, r.row, r.text, 0});
      if (matches.size() >= k) break;
    }
  }
  return matches;
}

std::vector<core::RowMatch> DedicatedService::SearchVector(
    const float* query, uint32_t dim, size_t k) const {
  std::vector<core::RowMatch> all;
  all.reserve(rows_.size());
  for (const Row& r : rows_) {
    float d = index::SquaredL2(query, r.vector.data(), dim);
    all.push_back({r.file, r.row, std::string(), d});
  }
  size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const core::RowMatch& a, const core::RowMatch& b) {
                      return a.distance < b.distance;
                    });
  all.resize(keep);
  return all;
}

}  // namespace rottnest::baseline
