// Brute-force baseline (paper §II-C2): a Spark-like engine that answers
// search queries by scanning entire column chunks across the snapshot with
// a cluster of W workers. Latency and cost are projected through the same
// S3 model as Rottnest: chunks are assigned round-robin; each worker issues
// its reads sequentially; workers run in parallel; a fixed coordination
// overhead models task scheduling — reproducing Fig 8a/8b's near-linear
// scaling that flattens once W approaches the chunk count.
#ifndef ROTTNEST_BASELINE_BRUTE_FORCE_H_
#define ROTTNEST_BASELINE_BRUTE_FORCE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/rottnest.h"
#include "lake/table.h"
#include "objectstore/io_trace.h"

namespace rottnest::baseline {

/// Cluster configuration and cost model.
struct BruteForceOptions {
  size_t workers = 8;
  /// Per-query fixed overhead: task scheduling + stragglers, seconds.
  double coordination_overhead_s = 0.4;
  /// Incremental coordination cost per worker (drives the scaling knee).
  double per_worker_overhead_s = 0.008;
  /// Scan throughput of one worker core after bytes arrive (bytes/s).
  double scan_bytes_per_s = 400e6;
  /// Concurrent S3 streams per worker (r6i.4xlarge: 16 vCPUs).
  size_t streams_per_worker = 16;
  /// Worker NIC limit (r6i.4xlarge: 12.5 Gbit/s).
  double worker_nic_bytes_per_s = 1.56e9;
};

/// Result of one brute-force query.
struct BruteForceResult {
  std::vector<core::RowMatch> matches;
  double projected_latency_s = 0;  ///< Under the S3 + cluster model.
  uint64_t bytes_scanned = 0;
};

/// Analytic scan-time projection for a dataset of `total_bytes` under the
/// cluster model (used to extrapolate measured runs to paper scale, where
/// transfer — not TTFB — dominates). Assumes ~128MB column chunks.
double BruteForceScanSeconds(double total_bytes,
                             const BruteForceOptions& options,
                             const objectstore::S3Model& s3);

/// Full-scan engine over one table snapshot.
class BruteForceEngine {
 public:
  BruteForceEngine(objectstore::ObjectStore* store, lake::Table* table,
                   BruteForceOptions options,
                   const objectstore::S3Model& s3 = objectstore::S3Model{});

  /// Exact match on `column` == value.
  Result<BruteForceResult> SearchUuid(const std::string& column, Slice value,
                                      size_t k);

  /// Substring containment scan.
  Result<BruteForceResult> SearchSubstring(const std::string& column,
                                           const std::string& pattern,
                                           size_t k);

  /// Exact k-NN scan (perfect recall).
  Result<BruteForceResult> SearchVector(const std::string& column,
                                        const float* query, uint32_t dim,
                                        size_t k);

 private:
  /// Scans every chunk of `column`, calling `visit(file, first_row, col)`
  /// per chunk, and fills the latency/bytes projection.
  Status ScanColumn(
      const std::string& column,
      const std::function<void(const std::string&, uint64_t,
                               const format::ColumnVector&)>& visit,
      BruteForceResult* result);

  objectstore::ObjectStore* store_;
  lake::Table* table_;
  BruteForceOptions options_;
  objectstore::S3Model s3_;
  ThreadPool pool_;
};

}  // namespace rottnest::baseline

#endif  // ROTTNEST_BASELINE_BRUTE_FORCE_H_
