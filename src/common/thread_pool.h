// Fixed-size thread pool used for parallel index builds, parallel object
// store reads ("width"), and brute-force scans.
#ifndef ROTTNEST_COMMON_THREAD_POOL_H_
#define ROTTNEST_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rottnest {

/// A simple FIFO thread pool. Tasks must not throw (library code is
/// exception-free); a throwing task terminates the process.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) : shutdown_(false) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// iterations complete. Iterations are claimed dynamically from a shared
  /// counter, and the CALLING thread participates in the claiming loop, so
  /// ParallelFor may be nested arbitrarily (a pool task may itself call
  /// ParallelFor — the search planner fans out per-index tasks whose index
  /// queries fan out component reads): even with every worker busy, the
  /// caller drains its own iterations and progress is guaranteed — the old
  /// submit-and-wait scheme deadlocked once blocked outer tasks occupied
  /// all workers.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    ParallelFor(n, workers_.size() + 1, fn);
  }

  /// Bounded variant: at most `max_parallelism` threads (the caller plus
  /// helpers) claim iterations — the maintenance pipeline's parallelism
  /// knob. `max_parallelism <= 1` degenerates to a plain serial loop on the
  /// calling thread.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    if (n == 1 || max_parallelism <= 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    struct State {
      std::atomic<size_t> next{0};
      std::atomic<size_t> done{0};
      size_t n = 0;
      const std::function<void(size_t)>* fn = nullptr;
      std::mutex mu;
      std::condition_variable cv;
    };
    auto state = std::make_shared<State>();
    state->n = n;
    state->fn = &fn;
    // Claims iterations until none remain. Late-arriving helpers (scheduled
    // behind other work) find the counter exhausted and exit without ever
    // touching `fn` — which is why the caller may safely return (and destroy
    // `fn`) as soon as all n iterations are DONE, not when all helpers ran.
    auto work = [](const std::shared_ptr<State>& st) {
      for (;;) {
        size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= st->n) return;
        (*st->fn)(i);
        if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->n) {
          std::lock_guard<std::mutex> lock(st->mu);
          st->cv.notify_all();
        }
      }
    };
    size_t helpers = std::min({workers_.size(), n - 1, max_parallelism - 1});
    for (size_t h = 0; h < helpers; ++h) {
      Submit([state, work] { work(state); });
    }
    work(state);
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->n;
    });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (shutdown_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool shutdown_;
};

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_THREAD_POOL_H_
