// Fixed-size thread pool used for parallel index builds, parallel object
// store reads ("width"), and brute-force scans.
#ifndef ROTTNEST_COMMON_THREAD_POOL_H_
#define ROTTNEST_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rottnest {

/// A simple FIFO thread pool. Tasks must not throw (library code is
/// exception-free); a throwing task terminates the process.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) : shutdown_(false) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// iterations complete. Iterations are distributed dynamically.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    std::mutex done_mu;
    std::condition_variable done_cv;
    size_t remaining = n;
    for (size_t i = 0; i < n; ++i) {
      Submit([&, i] {
        fn(i);
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (shutdown_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool shutdown_;
};

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_THREAD_POOL_H_
