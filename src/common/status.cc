#include "common/status.h"

namespace rottnest {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace rottnest
