// Deadline: a value-type cancellation token shared by every stage of one
// operation. Carries an absolute expiry on a Clock plus an explicit cancel
// flag; copies share the flag, so cancelling one copy cancels them all.
//
// A thread-local "ambient" deadline lets layers that were written before
// deadlines existed (RetryingStore's backoff loop, HedgingStore's hedge
// tasks) observe the operation deadline without threading a parameter
// through every ObjectStore signature: the operation entry point installs
// the deadline with ScopedOpDeadline, fan-out tasks re-install a copy on
// their worker thread, and any layer may consult CurrentDeadline(). The
// ambient value is stored BY VALUE so a hedge task that outlives its
// caller's frame never dereferences a dead stack slot.
#ifndef ROTTNEST_COMMON_DEADLINE_H_
#define ROTTNEST_COMMON_DEADLINE_H_

#include <atomic>
#include <limits>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace rottnest {

/// Absolute deadline + cooperative cancellation flag. Default-constructed
/// deadlines never expire and cannot be cancelled-by-expiry (Cancel() still
/// works). Cheap to copy; copies share the cancel flag.
class Deadline {
 public:
  static constexpr Micros kInfinite = std::numeric_limits<Micros>::max();

  /// Never expires; Cancel() is still honored.
  Deadline() = default;

  /// Expires when `clock->NowMicros() >= deadline_micros`.
  Deadline(const Clock* clock, Micros deadline_micros)
      : clock_(clock),
        deadline_micros_(deadline_micros),
        cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Convenience: expires `budget_micros` from now; budget <= 0 means no
  /// deadline (matches the CommonOptions::time_budget_micros contract on
  /// search paths, where 0 disables the budget).
  static Deadline After(const Clock* clock, Micros budget_micros) {
    if (clock == nullptr || budget_micros <= 0) return Deadline();
    return Deadline(clock, clock->NowMicros() + budget_micros);
  }

  bool infinite() const { return clock_ == nullptr; }

  /// True once the clock passed the deadline or Cancel() was called.
  bool expired() const {
    if (cancelled_ && cancelled_->load(std::memory_order_relaxed)) return true;
    if (clock_ == nullptr) return false;
    return clock_->NowMicros() >= deadline_micros_;
  }

  /// Micros until expiry; kInfinite for a default deadline, 0 if expired.
  Micros remaining_micros() const {
    if (cancelled_ && cancelled_->load(std::memory_order_relaxed)) return 0;
    if (clock_ == nullptr) return kInfinite;
    Micros left = deadline_micros_ - clock_->NowMicros();
    return left > 0 ? left : 0;
  }

  /// OK while live, DeadlineExceeded once expired.
  Status Check(const char* what = "operation") const {
    if (!expired()) return Status::OK();
    return Status::DeadlineExceeded(std::string(what) +
                                    " deadline expired before completion");
  }

  /// Cooperatively cancels every copy of this deadline.
  void Cancel() {
    if (cancelled_) cancelled_->store(true, std::memory_order_relaxed);
  }

  Micros deadline_micros() const { return deadline_micros_; }
  const Clock* clock() const { return clock_; }

 private:
  const Clock* clock_ = nullptr;
  Micros deadline_micros_ = kInfinite;
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

namespace internal {
inline Deadline& AmbientDeadlineSlot() {
  thread_local Deadline ambient;
  return ambient;
}
}  // namespace internal

/// The deadline installed on this thread by the innermost ScopedOpDeadline
/// (a by-value copy — safe to hold past the installer's frame). Infinite
/// when no operation deadline is active.
inline Deadline CurrentDeadline() { return internal::AmbientDeadlineSlot(); }

/// RAII: installs `d` as the thread's ambient deadline, restoring the
/// previous one on destruction. Fan-out tasks must install their own copy —
/// thread-locals do not follow work onto pool threads.
class ScopedOpDeadline {
 public:
  explicit ScopedOpDeadline(Deadline d)
      : saved_(internal::AmbientDeadlineSlot()) {
    internal::AmbientDeadlineSlot() = std::move(d);
  }
  ~ScopedOpDeadline() { internal::AmbientDeadlineSlot() = std::move(saved_); }

  ScopedOpDeadline(const ScopedOpDeadline&) = delete;
  ScopedOpDeadline& operator=(const ScopedOpDeadline&) = delete;

 private:
  Deadline saved_;
};

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_DEADLINE_H_
