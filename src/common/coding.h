// Little-endian fixed-width and varint encodings shared by the columnar
// format, index file layouts, and the transaction log.
#ifndef ROTTNEST_COMMON_CODING_H_
#define ROTTNEST_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace rottnest {

// -- Fixed-width little-endian -----------------------------------------------

inline void PutFixed32(Buffer* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) dst->push_back((value >> (8 * i)) & 0xff);
}

inline void PutFixed64(Buffer* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) dst->push_back((value >> (8 * i)) & 0xff);
}

inline uint32_t DecodeFixed32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);  // Host is little-endian on all supported targets.
  return v;
}

inline uint64_t DecodeFixed64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// -- Varint (LEB128) ----------------------------------------------------------

inline void PutVarint64(Buffer* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(value));
}

inline void PutVarint32(Buffer* dst, uint32_t value) {
  PutVarint64(dst, value);
}

/// Zig-zag maps signed to unsigned so small magnitudes stay short.
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

inline void PutVarint64Signed(Buffer* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

/// Stateful sequential decoder over a Slice. All Get* methods fail with
/// Corruption on truncated input rather than reading out of bounds.
class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input), pos_(0) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return input_.size() - pos_; }
  bool exhausted() const { return pos_ >= input_.size(); }

  Status GetFixed32(uint32_t* out) {
    if (remaining() < 4) return Truncated("fixed32");
    *out = DecodeFixed32(input_.data() + pos_);
    pos_ += 4;
    return Status::OK();
  }

  Status GetFixed64(uint64_t* out) {
    if (remaining() < 8) return Truncated("fixed64");
    *out = DecodeFixed64(input_.data() + pos_);
    pos_ += 8;
    return Status::OK();
  }

  Status GetVarint64(uint64_t* out) {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (exhausted()) return Truncated("varint64");
      uint8_t byte = input_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = result;
        return Status::OK();
      }
    }
    return Status::Corruption("varint64 overlong");
  }

  Status GetVarint32(uint32_t* out) {
    uint64_t v = 0;
    ROTTNEST_RETURN_NOT_OK(GetVarint64(&v));
    if (v > UINT32_MAX) return Status::Corruption("varint32 out of range");
    *out = static_cast<uint32_t>(v);
    return Status::OK();
  }

  Status GetVarint64Signed(int64_t* out) {
    uint64_t v = 0;
    ROTTNEST_RETURN_NOT_OK(GetVarint64(&v));
    *out = ZigZagDecode(v);
    return Status::OK();
  }

  /// Returns a view of the next `len` bytes and advances past them.
  Status GetBytes(size_t len, Slice* out) {
    if (remaining() < len) return Truncated("bytes");
    *out = input_.Subslice(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Varint length followed by that many bytes.
  Status GetLengthPrefixed(Slice* out) {
    uint64_t len;
    ROTTNEST_RETURN_NOT_OK(GetVarint64(&len));
    return GetBytes(len, out);
  }

  Status GetLengthPrefixedString(std::string* out) {
    Slice s;
    ROTTNEST_RETURN_NOT_OK(GetLengthPrefixed(&s));
    *out = s.ToString();
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  Slice input_;
  size_t pos_;
};

inline void PutLengthPrefixed(Buffer* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->insert(dst->end(), value.data(), value.data() + value.size());
}

inline void PutLengthPrefixedString(Buffer* dst, const std::string& value) {
  PutLengthPrefixed(dst, Slice(value));
}

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_CODING_H_
