// 64-bit non-cryptographic hashing (xxhash64-style mixing) used for page
// checksums, key hashing, and deterministic synthetic data generation.
#ifndef ROTTNEST_COMMON_HASH_H_
#define ROTTNEST_COMMON_HASH_H_

#include <cstdint>
#include <cstring>

#include "common/slice.h"

namespace rottnest {

/// Hashes `data` with the given seed. Stable across platforms and runs;
/// persisted checksums depend on this stability.
uint64_t Hash64(const uint8_t* data, size_t size, uint64_t seed = 0);

inline uint64_t Hash64(Slice s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// Finalizer-style mix of a single 64-bit value (splitmix64).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_HASH_H_
