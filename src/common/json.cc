#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rottnest {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text), pos_(0) {}

  Result<Json> Parse() {
    SkipWs();
    Json value;
    Status s = ParseValue(&value);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    if (pos_ >= text_.size()) return Status::Corruption("unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        ROTTNEST_RETURN_NOT_OK(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = Json(true);
          return Status::OK();
        }
        return Status::Corruption("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = Json(false);
          return Status::OK();
        }
        return Status::Corruption("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = Json(nullptr);
          return Status::OK();
        }
        return Status::Corruption("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::Corruption("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::Corruption("truncated \\u escape");
            }
            unsigned int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code |= h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code |= h - 'A' + 10;
              } else {
                return Status::Corruption("bad \\u escape");
              }
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Status::Corruption("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Status::Corruption("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid inside exponents, but lenient parsing is fine
        // for our own writer's output.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Status::Corruption("expected number");
    std::string token = text_.substr(start, pos_ - start);
    if (is_double) {
      *out = Json(std::strtod(token.c_str(), nullptr));
    } else {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec != std::errc()) return Status::Corruption("bad integer");
      (void)ptr;
      *out = Json(v);
    }
    return Status::OK();
  }

  Status ParseObject(Json* out) {
    Consume('{');
    Json::Object obj;
    SkipWs();
    if (Consume('}')) {
      *out = Json(std::move(obj));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      std::string key;
      ROTTNEST_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Status::Corruption("expected ':'");
      SkipWs();
      Json value;
      ROTTNEST_RETURN_NOT_OK(ParseValue(&value));
      obj.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Status::Corruption("expected ',' or '}'");
    }
    *out = Json(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(Json* out) {
    Consume('[');
    Json::Array arr;
    SkipWs();
    if (Consume(']')) {
      *out = Json(std::move(arr));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      Json value;
      ROTTNEST_RETURN_NOT_OK(ParseValue(&value));
      arr.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Status::Corruption("expected ',' or ']'");
    }
    *out = Json(std::move(arr));
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_;
};

void DumpTo(const Json& j, std::string* out);

void DumpObject(const Json::Object& obj, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : obj) {
    if (!first) out->push_back(',');
    first = false;
    AppendEscaped(k, out);
    out->push_back(':');
    DumpTo(v, out);
  }
  out->push_back('}');
}

void DumpArray(const Json::Array& arr, std::string* out) {
  out->push_back('[');
  bool first = true;
  for (const auto& v : arr) {
    if (!first) out->push_back(',');
    first = false;
    DumpTo(v, out);
  }
  out->push_back(']');
}

void DumpTo(const Json& j, std::string* out) {
  if (j.is_null()) {
    *out += "null";
  } else if (j.is_bool()) {
    *out += j.AsBool() ? "true" : "false";
  } else if (j.is_int()) {
    *out += std::to_string(j.AsInt());
  } else if (j.is_double()) {
    double d = j.AsDouble();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
    } else {
      *out += "null";  // JSON has no inf/nan.
    }
  } else if (j.is_string()) {
    AppendEscaped(j.AsString(), out);
  } else if (j.is_array()) {
    DumpArray(j.AsArray(), out);
  } else {
    DumpObject(j.AsObject(), out);
  }
}

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser p(text);
  return p.Parse();
}

Status Json::GetString(const std::string& key, std::string* out) const {
  Json v;
  if (!Get(key, &v) || !v.is_string()) {
    return Status::InvalidArgument("missing string field: " + key);
  }
  *out = v.AsString();
  return Status::OK();
}

Status Json::GetInt(const std::string& key, int64_t* out) const {
  Json v;
  if (!Get(key, &v) || !v.is_number()) {
    return Status::InvalidArgument("missing int field: " + key);
  }
  *out = v.AsInt();
  return Status::OK();
}

Status Json::GetBool(const std::string& key, bool* out) const {
  Json v;
  if (!Get(key, &v) || !v.is_bool()) {
    return Status::InvalidArgument("missing bool field: " + key);
  }
  *out = v.AsBool();
  return Status::OK();
}

Status Json::GetArray(const std::string& key, Array* out) const {
  Json v;
  if (!Get(key, &v) || !v.is_array()) {
    return Status::InvalidArgument("missing array field: " + key);
  }
  *out = v.AsArray();
  return Status::OK();
}

}  // namespace rottnest
