// Status and Result<T>: exception-free error handling, in the style of
// RocksDB's Status / Arrow's Result. All fallible library operations return
// one of these; exceptions are never thrown across API boundaries.
#ifndef ROTTNEST_COMMON_STATUS_H_
#define ROTTNEST_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rottnest {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,        ///< Object / key / file does not exist.
  kAlreadyExists = 2,   ///< Conditional put failed; version conflict.
  kInvalidArgument = 3, ///< Caller error: bad parameter or precondition.
  kCorruption = 4,      ///< Data failed validation (checksum, magic, bounds).
  kIOError = 5,         ///< Underlying storage failed.
  kAborted = 6,         ///< Operation aborted (timeout, conflict, injection).
  kNotSupported = 7,    ///< Operation not implemented for this configuration.
  kInternal = 8,        ///< Invariant violation inside the library.
  kUnavailable = 9,     ///< Transient storage fault (S3 503 SlowDown); safe
                        ///< to retry with backoff.
  kDeadlineExceeded = 10,  ///< Operation deadline expired before completion.
  kResourceExhausted = 11, ///< Admission control shed the request (overload).
};

/// Returns a human-readable name for `code` ("NotFound", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// A Status is cheap to copy (code + shared message string) and must be
/// checked by the caller; helper macros ROTTNEST_RETURN_NOT_OK and
/// ROTTNEST_ASSIGN_OR_RETURN keep call sites terse.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// The result of an operation that can fail or produce a T.
///
/// Holds either an error Status or a value. Accessing the value of an
/// errored Result aborts the process (assert), mirroring Arrow's
/// Result::ValueOrDie discipline; use ok()/status() to branch.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error Status: allows `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Error status, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// Moves the value out of the Result.
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& ValueOr(const T& fallback) const {
    return ok() ? std::get<T>(payload_) : fallback;
  }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace rottnest

/// Propagates a non-OK Status to the caller.
#define ROTTNEST_RETURN_NOT_OK(expr)           \
  do {                                         \
    ::rottnest::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define ROTTNEST_CONCAT_IMPL(a, b) a##b
#define ROTTNEST_CONCAT(a, b) ROTTNEST_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define ROTTNEST_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  ROTTNEST_ASSIGN_OR_RETURN_IMPL(                                    \
      ROTTNEST_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ROTTNEST_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                   \
  if (!result_name.ok()) return result_name.status();           \
  lhs = std::move(result_name).value()

#endif  // ROTTNEST_COMMON_STATUS_H_
