// Clock abstraction. The object store stamps every object with a time from a
// single Clock instance — the paper's vacuum timeout argument depends on the
// store having one global clock (S3's strong consistency implies this).
// Tests and simulations use SimulatedClock for deterministic, instantly
// advanceable time.
#ifndef ROTTNEST_COMMON_CLOCK_H_
#define ROTTNEST_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace rottnest {

/// Microseconds since an arbitrary epoch.
using Micros = int64_t;

/// Source of time for the object store and protocol timeouts.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds. Monotonic non-decreasing.
  virtual Micros NowMicros() const = 0;
};

/// Wall-clock time from the host.
class SystemClock : public Clock {
 public:
  Micros NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Deterministic clock advanced explicitly by tests / simulations.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Advances time by `delta` microseconds.
  void Advance(Micros delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }

  void SetMicros(Micros t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Micros> now_;
};

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_CLOCK_H_
