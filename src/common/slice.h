// Slice: a non-owning view over a byte range, in the style of RocksDB's
// Slice / std::string_view, plus Buffer, an owning byte container.
#ifndef ROTTNEST_COMMON_SLICE_H_
#define ROTTNEST_COMMON_SLICE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace rottnest {

/// Owning byte buffer used throughout the storage stack.
using Buffer = std::vector<uint8_t>;

/// Non-owning view of a contiguous byte range. The referenced memory must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  /// Views a Buffer. The Buffer must outlive the Slice.
  explicit Slice(const Buffer& buf) : data_(buf.data()), size_(buf.size()) {}
  /// Views a string's bytes. The string must outlive the Slice.
  explicit Slice(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  explicit Slice(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Sub-view [offset, offset+len); caller guarantees bounds.
  Slice Subslice(size_t offset, size_t len) const {
    return Slice(data_ + offset, len);
  }

  /// Copies the bytes into an owning string.
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  /// Copies the bytes into an owning Buffer.
  Buffer ToBuffer() const { return Buffer(data_, data_ + size_); }

  std::string_view ToStringView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_SLICE_H_
