#include "common/hash.h"

namespace rottnest {

namespace {

constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;
constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

uint64_t Hash64(const uint8_t* data, size_t size, uint64_t seed) {
  const uint8_t* p = data;
  const uint8_t* end = data + size;
  uint64_t h;

  if (size >= 32) {
    const uint8_t* limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(size);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace rottnest
