// Deterministic pseudo-random generator (xoshiro256**) used by the synthetic
// workload generators and tests. Deterministic seeds keep experiments
// reproducible run-to-run.
#ifndef ROTTNEST_COMMON_RANDOM_H_
#define ROTTNEST_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/hash.h"

namespace rottnest {

/// xoshiro256** PRNG. Not thread-safe; create one per thread.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // Expand the seed with splitmix64 so nearby seeds produce unrelated
    // streams.
    for (auto& s : state_) {
      seed = Mix64(seed);
      s = seed;
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Zipf-distributed rank in [0, n) with exponent s, via rejection-free
  /// inverse-CDF over a precomputed-free approximation (sufficient for
  /// workload shaping). Slower path; cache externally for hot loops.
  uint64_t NextZipf(uint64_t n, double s) {
    // Approximate inverse CDF for Zipf: P(X <= k) ~ H_k / H_n; use the
    // continuous approximation H_k ~ (k^(1-s)-1)/(1-s) for s != 1.
    double u = NextDouble();
    if (s == 1.0) {
      double hn = std::log(static_cast<double>(n) + 1.0);
      return static_cast<uint64_t>(std::exp(u * hn)) % n;
    }
    double oneMinusS = 1.0 - s;
    double hn = (std::pow(static_cast<double>(n) + 1.0, oneMinusS) - 1.0) /
                oneMinusS;
    double k = std::pow(u * hn * oneMinusS + 1.0, 1.0 / oneMinusS) - 1.0;
    uint64_t r = static_cast<uint64_t>(k);
    return r >= n ? n - 1 : r;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_RANDOM_H_
