// Minimal JSON value, writer and parser for transaction-log records and
// metadata. Supports objects, arrays, strings, integers, doubles, booleans
// and null — the subset Delta-style logs need.
#ifndef ROTTNEST_COMMON_JSON_H_
#define ROTTNEST_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace rottnest {

/// A parsed JSON value. Objects keep keys in sorted order (std::map), which
/// makes serialized log records byte-stable — useful for tests and checksums.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(int64_t i) : value_(i) {}                     // NOLINT
  Json(int i) : value_(static_cast<int64_t>(i)) {}   // NOLINT
  Json(uint64_t i) : value_(static_cast<int64_t>(i)) {}  // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(Array a) : value_(std::move(a)) {}            // NOLINT
  Json(Object o) : value_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool AsBool() const { return std::get<bool>(value_); }
  int64_t AsInt() const {
    if (is_double()) return static_cast<int64_t>(std::get<double>(value_));
    return std::get<int64_t>(value_);
  }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(value_));
    return std::get<double>(value_);
  }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const Array& AsArray() const { return std::get<Array>(value_); }
  Array& AsArray() { return std::get<Array>(value_); }
  const Object& AsObject() const { return std::get<Object>(value_); }
  Object& AsObject() { return std::get<Object>(value_); }

  /// Object member access; returns true and sets *out if `key` exists.
  bool Get(const std::string& key, Json* out) const {
    if (!is_object()) return false;
    auto it = AsObject().find(key);
    if (it == AsObject().end()) return false;
    *out = it->second;
    return true;
  }

  /// Convenience typed getters on objects; fail with InvalidArgument when
  /// the key is missing or of the wrong type.
  Status GetString(const std::string& key, std::string* out) const;
  Status GetInt(const std::string& key, int64_t* out) const;
  Status GetBool(const std::string& key, bool* out) const;
  Status GetArray(const std::string& key, Array* out) const;

  /// Sets an object member (value must be an object).
  void Set(const std::string& key, Json value) {
    AsObject()[key] = std::move(value);
  }

  /// Serializes to compact JSON text.
  std::string Dump() const;

  /// Parses JSON text.
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace rottnest

#endif  // ROTTNEST_COMMON_JSON_H_
