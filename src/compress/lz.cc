#include "compress/lz.h"

#include <cstring>

namespace rottnest::compress {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
// Matches within the last 12 bytes of input are not emitted (mirrors LZ4's
// end-of-block restrictions and keeps the decoder's copy loops simple).
constexpr size_t kLastLiterals = 12;

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t HashSeq(uint32_t seq) {
  return (seq * 2654435761u) >> (32 - kHashBits);
}

void EmitLength(Buffer* out, size_t len) {
  while (len >= 255) {
    out->push_back(0xff);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

void EmitSequence(Buffer* out, const uint8_t* literals, size_t literal_len,
                  size_t offset, size_t match_len) {
  size_t lit_token = literal_len < 15 ? literal_len : 15;
  size_t match_token;
  bool has_match = match_len >= kMinMatch;
  if (has_match) {
    size_t m = match_len - kMinMatch;
    match_token = m < 15 ? m : 15;
  } else {
    match_token = 0;
  }
  out->push_back(static_cast<uint8_t>((lit_token << 4) | match_token));
  if (lit_token == 15) EmitLength(out, literal_len - 15);
  out->insert(out->end(), literals, literals + literal_len);
  if (has_match) {
    out->push_back(static_cast<uint8_t>(offset & 0xff));
    out->push_back(static_cast<uint8_t>(offset >> 8));
    if (match_token == 15) EmitLength(out, match_len - kMinMatch - 15);
  }
}

}  // namespace

Buffer LzCompress(Slice input) {
  Buffer out;
  const uint8_t* base = input.data();
  const size_t size = input.size();
  out.reserve(size / 2 + 32);

  if (size < kMinMatch + kLastLiterals) {
    // Too small to find matches: emit one literal-only sequence.
    EmitSequence(&out, base, size, 0, 0);
    return out;
  }

  // Hash table of candidate positions for 4-byte sequences.
  std::vector<uint32_t> table(kHashSize, 0);
  const size_t scan_limit = size - kLastLiterals;

  size_t anchor = 0;  // Start of pending literals.
  size_t pos = 1;     // Position 0 can never match backwards.

  while (pos + kMinMatch <= scan_limit) {
    uint32_t h = HashSeq(Read32(base + pos));
    size_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);

    bool match = candidate < pos && pos - candidate <= kMaxOffset &&
                 Read32(base + candidate) == Read32(base + pos);
    if (!match) {
      ++pos;
      continue;
    }

    // Extend the match forward.
    size_t match_len = kMinMatch;
    while (pos + match_len < scan_limit &&
           base[candidate + match_len] == base[pos + match_len]) {
      ++match_len;
    }
    // Extend backwards into pending literals.
    while (pos > anchor && candidate > 0 &&
           base[candidate - 1] == base[pos - 1]) {
      --pos;
      --candidate;
      ++match_len;
    }

    EmitSequence(&out, base + anchor, pos - anchor, pos - candidate,
                 match_len);
    pos += match_len;
    anchor = pos;

    // Seed the table at the position just before the next scan point to
    // improve density.
    if (pos + kMinMatch <= scan_limit && pos >= 2) {
      table[HashSeq(Read32(base + pos - 2))] = static_cast<uint32_t>(pos - 2);
    }
  }

  // Final literal-only sequence.
  EmitSequence(&out, base + anchor, size - anchor, 0, 0);
  return out;
}

Status LzDecompress(Slice input, size_t uncompressed_size, Buffer* out) {
  out->clear();
  out->reserve(uncompressed_size);
  const uint8_t* p = input.data();
  const uint8_t* end = p + input.size();

  auto read_extended = [&](size_t base_len, size_t* len) -> Status {
    *len = base_len;
    if (base_len == 15) {
      uint8_t b;
      do {
        if (p >= end) return Status::Corruption("lz: truncated length");
        b = *p++;
        *len += b;
      } while (b == 0xff);
    }
    return Status::OK();
  };

  while (p < end) {
    uint8_t token = *p++;
    size_t literal_len;
    ROTTNEST_RETURN_NOT_OK(read_extended(token >> 4, &literal_len));
    if (static_cast<size_t>(end - p) < literal_len) {
      return Status::Corruption("lz: truncated literals");
    }
    if (out->size() + literal_len > uncompressed_size) {
      return Status::Corruption("lz: output overflow (literals)");
    }
    out->insert(out->end(), p, p + literal_len);
    p += literal_len;

    if (p >= end) break;  // Final sequence has no match.

    if (end - p < 2) return Status::Corruption("lz: truncated offset");
    size_t offset = p[0] | (static_cast<size_t>(p[1]) << 8);
    p += 2;
    if (offset == 0 || offset > out->size()) {
      return Status::Corruption("lz: bad match offset");
    }
    size_t match_len;
    ROTTNEST_RETURN_NOT_OK(read_extended(token & 0x0f, &match_len));
    match_len += kMinMatch;
    if (out->size() + match_len > uncompressed_size) {
      return Status::Corruption("lz: output overflow (match)");
    }
    // Byte-by-byte copy: overlapping matches (offset < match_len) are the
    // run-length case and must replicate bytes produced by this same copy.
    size_t src = out->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[src + i]);
    }
  }

  if (out->size() != uncompressed_size) {
    return Status::Corruption("lz: size mismatch after decompress");
  }
  return Status::OK();
}

Buffer Compress(Codec codec, Slice input) {
  switch (codec) {
    case Codec::kNone:
      return input.ToBuffer();
    case Codec::kLz:
      return LzCompress(input);
  }
  return input.ToBuffer();
}

Status Decompress(Codec codec, Slice input, size_t uncompressed_size,
                  Buffer* out) {
  switch (codec) {
    case Codec::kNone:
      if (input.size() != uncompressed_size) {
        return Status::Corruption("stored block size mismatch");
      }
      *out = input.ToBuffer();
      return Status::OK();
    case Codec::kLz:
      return LzDecompress(input, uncompressed_size, out);
  }
  return Status::NotSupported("unknown codec");
}

}  // namespace rottnest::compress
