#include "compress/bitpack.h"

namespace rottnest::compress {

void BitPack(const std::vector<uint64_t>& values, int bit_width, Buffer* out) {
  if (bit_width == 0) return;
  uint64_t acc = 0;
  int acc_bits = 0;
  for (uint64_t v : values) {
    acc |= v << acc_bits;
    acc_bits += bit_width;
    while (acc_bits >= 8) {
      out->push_back(static_cast<uint8_t>(acc & 0xff));
      acc >>= 8;
      acc_bits -= 8;
    }
    // acc_bits < 8 here, but v may have had high bits not yet emitted when
    // bit_width > 64 - 8; cap bit_width at 57 via the shifted accumulator.
  }
  if (acc_bits > 0) out->push_back(static_cast<uint8_t>(acc & 0xff));
}

Status BitUnpack(Slice input, int bit_width, size_t count,
                 std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(count);
  if (bit_width == 0) {
    out->assign(count, 0);
    return Status::OK();
  }
  size_t needed_bits = count * static_cast<size_t>(bit_width);
  if (input.size() * 8 < needed_bits) {
    return Status::Corruption("bitpack: input too short");
  }
  uint64_t acc = 0;
  int acc_bits = 0;
  size_t pos = 0;
  uint64_t mask = bit_width == 64 ? ~0ULL : ((1ULL << bit_width) - 1);
  for (size_t i = 0; i < count; ++i) {
    while (acc_bits < bit_width) {
      acc |= static_cast<uint64_t>(input[pos++]) << acc_bits;
      acc_bits += 8;
    }
    out->push_back(acc & mask);
    acc >>= bit_width;
    acc_bits -= bit_width;
  }
  return Status::OK();
}

void DeltaEncodeSorted(const std::vector<uint64_t>& values, Buffer* out) {
  PutVarint64(out, values.size());
  uint64_t prev = 0;
  for (uint64_t v : values) {
    PutVarint64(out, v - prev);
    prev = v;
  }
}

Status DeltaDecodeSorted(Decoder* dec, std::vector<uint64_t>* out) {
  uint64_t count;
  ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&count));
  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta;
    ROTTNEST_RETURN_NOT_OK(dec->GetVarint64(&delta));
    prev += delta;
    out->push_back(prev);
  }
  return Status::OK();
}

}  // namespace rottnest::compress
