// From-scratch LZ77 block codec with an LZ4-style token format. Used for
// page-level compression in the columnar format and component-level
// compression in index files.
//
// Block format (no header; the caller stores the uncompressed size):
//   repeated sequences of
//     token byte:   high nibble = literal length (15 => extended),
//                   low nibble  = match length - kMinMatch (15 => extended)
//     [extended literal length: 0xff bytes then a final < 0xff byte]
//     literal bytes
//     [2-byte little-endian match offset, 1..65535]   (absent in final seq)
//     [extended match length bytes]                   (absent in final seq)
// The final sequence has only literals (offset omitted), as in LZ4.
#ifndef ROTTNEST_COMPRESS_LZ_H_
#define ROTTNEST_COMPRESS_LZ_H_

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"

namespace rottnest::compress {

/// Compresses `input` into an LZ block. Always succeeds; incompressible
/// input expands by at most ~0.4% + 16 bytes.
Buffer LzCompress(Slice input);

/// Decompresses a block produced by LzCompress. `uncompressed_size` must be
/// the exact original size; fails with Corruption on malformed input.
Status LzDecompress(Slice input, size_t uncompressed_size, Buffer* out);

/// Supported page/component codecs.
enum class Codec : uint8_t {
  kNone = 0,  ///< Stored raw.
  kLz = 1,    ///< LzCompress block.
};

/// Compresses with the given codec. kNone copies.
Buffer Compress(Codec codec, Slice input);

/// Inverse of Compress.
Status Decompress(Codec codec, Slice input, size_t uncompressed_size,
                  Buffer* out);

}  // namespace rottnest::compress

#endif  // ROTTNEST_COMPRESS_LZ_H_
