// Bit-packing and run-length utilities for integer columns, deletion
// vectors, and index posting lists.
#ifndef ROTTNEST_COMPRESS_BITPACK_H_
#define ROTTNEST_COMPRESS_BITPACK_H_

#include <cstdint>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace rottnest::compress {

/// Number of bits needed to represent `v` (0 -> 0 bits).
inline int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Appends `values` packed at `bit_width` bits each (LSB-first within the
/// stream). bit_width must be >= BitWidth(max(values)) and <= 56 (the
/// accumulator holds at most 7 residual bits between values).
void BitPack(const std::vector<uint64_t>& values, int bit_width, Buffer* out);

/// Unpacks `count` values of `bit_width` bits from `input`.
Status BitUnpack(Slice input, int bit_width, size_t count,
                 std::vector<uint64_t>* out);

/// Delta + varint encoding for sorted (non-decreasing) sequences such as
/// posting lists of page ids.
void DeltaEncodeSorted(const std::vector<uint64_t>& values, Buffer* out);

/// Inverse of DeltaEncodeSorted.
Status DeltaDecodeSorted(Decoder* dec, std::vector<uint64_t>* out);

}  // namespace rottnest::compress

#endif  // ROTTNEST_COMPRESS_BITPACK_H_
