#!/usr/bin/env python3
"""Schema check for the committed BENCH_*.json artifacts.

Every bench emitter writes its report through WriteBenchJson(), which
appends the observability registry snapshot under "metrics_snapshot".
This check fails if any BENCH_*.json in the given directory (default:
cwd, CI runs it from the repo root) is unparseable or lacks that block,
so a bench that bypasses the emitter cannot land silently.
"""
import glob
import json
import os
import sys

# Per-artifact required keys, beyond the universal metrics_snapshot block.
# The serving bench's committed report must carry both sides of the
# batched-vs-unbatched comparison and its acceptance numbers, or the
# comparison cannot be audited from the artifact alone.
REQUIRED_KEYS = {
    "BENCH_serve.json": [
        "queries", "tenants", "clients",
        "unbatched_gets", "unbatched_p99_micros", "unbatched_traced_gets",
        "batched_gets", "batched_p99_micros", "batched_traced_gets",
        "batched_waves", "batched_wave_hits", "batched_coalesced",
        "get_ratio", "p99_ratio", "reconciled",
    ],
    # The metadata-plane bench must carry both sides of the cold-read
    # comparison (replay-from-zero vs checkpoint+suffix) and its gate.
    "BENCH_metadata.json": [
        "commits", "replay_gets", "replay_sim_ms",
        "checkpoint_gets", "checkpoint_sim_ms",
        "get_ratio", "speedup", "rows",
    ],
    # The keyword bench must carry both sides of the cold-GET comparison
    # (inverted index vs brute page scan) and the postings codec numbers.
    "BENCH_keyword.json": [
        "queries", "rows", "data_bytes", "index_bytes",
        "brute_gets", "brute_bytes", "indexed_gets", "indexed_bytes",
        "matches", "get_bytes_ratio",
        "terms", "postings", "encoded_posting_bytes",
        "postings_compression_ratio",
    ],
}

# Acceptance gates re-checked from the committed artifact (the bench binary
# enforces them at emit time; this catches a stale or hand-edited file).
def check_serve_gates(path: str, doc: dict) -> list:
    problems = []
    if doc.get("get_ratio", 1.0) > 0.5:
        problems.append(f"get_ratio {doc.get('get_ratio')} > 0.5")
    if doc.get("p99_ratio", 1.0) > 1.0:
        problems.append(f"p99_ratio {doc.get('p99_ratio')} > 1.0")
    if doc.get("reconciled") is not True:
        problems.append("traced GETs did not reconcile against the cache")
    return problems


def check_metadata_gates(path: str, doc: dict) -> list:
    problems = []
    if doc.get("get_ratio", 1.0) > 0.1:
        problems.append(f"get_ratio {doc.get('get_ratio')} > 0.1")
    if doc.get("rows") != doc.get("commits"):
        problems.append(
            f"rows {doc.get('rows')} != commits {doc.get('commits')} "
            "(cold snapshot lost commits)")
    return problems


def check_keyword_gates(path: str, doc: dict) -> list:
    problems = []
    if doc.get("get_bytes_ratio", 1.0) > 0.2:
        problems.append(f"get_bytes_ratio {doc.get('get_bytes_ratio')} > 0.2")
    if doc.get("postings_compression_ratio", 0.0) <= 1.0:
        problems.append(
            f"postings_compression_ratio "
            f"{doc.get('postings_compression_ratio')} <= 1.0")
    if not doc.get("matches"):
        problems.append("keyword queries found no matches")
    return problems


GATE_CHECKS = {
    "BENCH_serve.json": check_serve_gates,
    "BENCH_metadata.json": check_metadata_gates,
    "BENCH_keyword.json": check_keyword_gates,
}


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print(f"FAIL: no BENCH_*.json found under {os.path.abspath(root)}",
              file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"FAIL: {path}: unreadable or invalid JSON: {e}",
                  file=sys.stderr)
            failed = True
            continue
        if not isinstance(doc, dict) or "metrics_snapshot" not in doc:
            print(f"FAIL: {path}: missing 'metrics_snapshot' block "
                  "(was it written via WriteBenchJson?)", file=sys.stderr)
            failed = True
            continue
        snap = doc["metrics_snapshot"]
        if not isinstance(snap, dict):
            print(f"FAIL: {path}: 'metrics_snapshot' is not an object",
                  file=sys.stderr)
            failed = True
            continue
        name = os.path.basename(path)
        missing = [k for k in REQUIRED_KEYS.get(name, []) if k not in doc]
        if missing:
            print(f"FAIL: {path}: missing required key(s): "
                  f"{', '.join(missing)}", file=sys.stderr)
            failed = True
            continue
        problems = GATE_CHECKS.get(name, lambda p, d: [])(path, doc)
        if problems:
            for problem in problems:
                print(f"FAIL: {path}: {problem}", file=sys.stderr)
            failed = True
            continue
        print(f"ok: {path} ({len(snap)} metric(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
