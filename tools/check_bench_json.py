#!/usr/bin/env python3
"""Schema check for the committed BENCH_*.json artifacts.

Every bench emitter writes its report through WriteBenchJson(), which
appends the observability registry snapshot under "metrics_snapshot".
This check fails if any BENCH_*.json in the given directory (default:
cwd, CI runs it from the repo root) is unparseable or lacks that block,
so a bench that bypasses the emitter cannot land silently.
"""
import glob
import json
import os
import sys


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print(f"FAIL: no BENCH_*.json found under {os.path.abspath(root)}",
              file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"FAIL: {path}: unreadable or invalid JSON: {e}",
                  file=sys.stderr)
            failed = True
            continue
        if not isinstance(doc, dict) or "metrics_snapshot" not in doc:
            print(f"FAIL: {path}: missing 'metrics_snapshot' block "
                  "(was it written via WriteBenchJson?)", file=sys.stderr)
            failed = True
            continue
        snap = doc["metrics_snapshot"]
        if not isinstance(snap, dict):
            print(f"FAIL: {path}: 'metrics_snapshot' is not an object",
                  file=sys.stderr)
            failed = True
            continue
        print(f"ok: {path} ({len(snap)} metric(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
