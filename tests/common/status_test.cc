#include "common/status.h"

#include <gtest/gtest.h>

namespace rottnest {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing.parquet");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing.parquet");
  EXPECT_EQ(s.ToString(), "NotFound: missing.parquet");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk on fire"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x, int* out) {
  ROTTNEST_RETURN_NOT_OK(FailIfNegative(x));
  *out = x * 2;
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesReturnNotOk(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(UsesReturnNotOk(-1, &out).IsInvalidArgument());
}

Result<int> MakeValue(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return x + 1;
}

Status UsesAssignOrReturn(int x, int* out) {
  ROTTNEST_ASSIGN_OR_RETURN(int v, MakeValue(x));
  *out = v;
  return Status::OK();
}

TEST(MacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(7, &out).ok());
  EXPECT_EQ(out, 8);
  EXPECT_TRUE(UsesAssignOrReturn(-2, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace rottnest
