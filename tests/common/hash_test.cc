#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace rottnest {
namespace {

TEST(HashTest, Deterministic) {
  std::string data = "the quick brown fox";
  EXPECT_EQ(Hash64(Slice(data)), Hash64(Slice(data)));
}

TEST(HashTest, SeedChangesResult) {
  std::string data = "payload";
  EXPECT_NE(Hash64(Slice(data), 0), Hash64(Slice(data), 1));
}

TEST(HashTest, EmptyInputIsStable) {
  EXPECT_EQ(Hash64(nullptr, 0), Hash64(nullptr, 0));
}

TEST(HashTest, AllLengthsUpTo128DontCollideTrivially) {
  // Exercises every tail-handling path (0..31 bytes and the 32-byte loop).
  std::set<uint64_t> seen;
  std::string data(128, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  for (size_t len = 0; len <= 128; ++len) {
    seen.insert(Hash64(reinterpret_cast<const uint8_t*>(data.data()), len));
  }
  EXPECT_EQ(seen.size(), 129u);
}

TEST(HashTest, SingleBitFlipsChangeHash) {
  std::string a(64, 'a');
  uint64_t base = Hash64(Slice(a));
  for (size_t i = 0; i < a.size(); ++i) {
    std::string b = a;
    b[i] ^= 1;
    EXPECT_NE(Hash64(Slice(b)), base) << "byte " << i;
  }
}

TEST(HashTest, Mix64IsBijectiveish) {
  // Distinct small inputs must map to distinct outputs.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace rottnest
