#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace rottnest {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  Buffer buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, UINT32_MAX);
  Decoder dec{Slice(buf)};
  uint32_t v;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodingTest, Fixed64RoundTrip) {
  Buffer buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Decoder dec{Slice(buf)};
  uint64_t v;
  ASSERT_TRUE(dec.GetFixed64(&v).ok());
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(CodingTest, VarintBoundaries) {
  // Boundary values at each 7-bit threshold.
  std::vector<uint64_t> values;
  for (int shift = 0; shift < 64; shift += 7) {
    values.push_back(1ULL << shift);
    values.push_back((1ULL << shift) - 1);
  }
  values.push_back(UINT64_MAX);
  values.push_back(0);

  Buffer buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec{Slice(buf)};
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(dec.GetVarint64(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodingTest, VarintRandomRoundTrip) {
  Random rng(1234);
  Buffer buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix of magnitudes.
    uint64_t v = rng.Next() >> rng.Uniform(64);
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Decoder dec{Slice(buf)};
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(dec.GetVarint64(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(CodingTest, ZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(INT64_MIN)), INT64_MIN);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(INT64_MAX)), INT64_MAX);
  for (int64_t v : {-1000000007LL, -42LL, 0LL, 7LL, 123456789012345LL}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(CodingTest, SignedVarint) {
  Buffer buf;
  PutVarint64Signed(&buf, -12345);
  PutVarint64Signed(&buf, 67890);
  Decoder dec{Slice(buf)};
  int64_t v;
  ASSERT_TRUE(dec.GetVarint64Signed(&v).ok());
  EXPECT_EQ(v, -12345);
  ASSERT_TRUE(dec.GetVarint64Signed(&v).ok());
  EXPECT_EQ(v, 67890);
}

TEST(CodingTest, TruncatedInputsFailCleanly) {
  Buffer buf;
  PutFixed64(&buf, 42);
  // Chop to 3 bytes: every accessor must fail (without advancing), not crash.
  Decoder dec(Slice(buf.data(), 3));
  uint64_t v64;
  uint32_t v32;
  EXPECT_TRUE(dec.GetFixed64(&v64).IsCorruption());
  EXPECT_TRUE(dec.GetFixed32(&v32).IsCorruption());
  EXPECT_EQ(dec.position(), 0u);
}

TEST(CodingTest, TruncatedFixed32Fails) {
  Buffer buf = {1, 2, 3};
  Decoder dec{Slice(buf)};
  uint32_t v;
  EXPECT_TRUE(dec.GetFixed32(&v).IsCorruption());
}

TEST(CodingTest, TruncatedVarintFails) {
  Buffer buf = {0x80, 0x80};  // Continuation bits with no terminator.
  Decoder dec{Slice(buf)};
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, OverlongVarintFails) {
  Buffer buf(11, 0x80);  // 11 continuation bytes > max 10.
  Decoder dec{Slice(buf)};
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, LengthPrefixed) {
  Buffer buf;
  PutLengthPrefixedString(&buf, "hello");
  PutLengthPrefixedString(&buf, "");
  PutLengthPrefixedString(&buf, std::string(300, 'x'));
  Decoder dec{Slice(buf)};
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixedString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixedString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixedString(&s).ok());
  EXPECT_EQ(s, std::string(300, 'x'));
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodingTest, LengthPrefixedTruncatedBody) {
  Buffer buf;
  PutVarint64(&buf, 100);  // Claims 100 bytes...
  buf.push_back('a');      // ...delivers 1.
  Decoder dec{Slice(buf)};
  Slice s;
  EXPECT_TRUE(dec.GetLengthPrefixed(&s).IsCorruption());
}

}  // namespace
}  // namespace rottnest
