#include "common/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace rottnest {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformInRange) {
  Random rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U(0,1) is 0.5; 10k samples are within ±0.02 w.h.p.
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(123);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Random rng(99);
  const uint64_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) counts[rng.NextZipf(n, 1.1)]++;
  // Rank 0 must dominate rank 100 decisively under s=1.1.
  EXPECT_GT(counts[0], counts[100] * 5);
  // All samples in range (checked by the indexing above not crashing).
}

}  // namespace
}  // namespace rottnest
