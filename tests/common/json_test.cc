#include "common/json.h"

#include <gtest/gtest.h>

namespace rottnest {
namespace {

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Json(nullptr).Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(int64_t{42}).Dump(), "42");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, DumpObjectSortedKeys) {
  Json::Object obj;
  obj["zeta"] = Json(1);
  obj["alpha"] = Json(2);
  Json j(std::move(obj));
  EXPECT_EQ(j.Dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(JsonTest, DumpNested) {
  Json::Object inner;
  inner["path"] = Json("a.parquet");
  inner["rows"] = Json(int64_t{100});
  Json::Array arr;
  arr.push_back(Json(std::move(inner)));
  Json::Object root;
  root["add"] = Json(std::move(arr));
  Json j(std::move(root));
  EXPECT_EQ(j.Dump(), "{\"add\":[{\"path\":\"a.parquet\",\"rows\":100}]}");
}

TEST(JsonTest, ParseRoundTrip) {
  const char* text =
      "{\"add\":[{\"path\":\"a.parquet\",\"rows\":100}],"
      "\"flag\":true,\"nothing\":null,\"pi\":3.5}";
  auto r = Json::Parse(text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Dump(), text);
}

TEST(JsonTest, ParseEscapes) {
  auto r = Json::Parse("\"line\\nbreak \\\"quoted\\\" back\\\\slash\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().AsString(), "line\nbreak \"quoted\" back\\slash");
}

TEST(JsonTest, ParseUnicodeEscape) {
  auto r = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().AsString(), "A\xc3\xa9");
}

TEST(JsonTest, EscapeRoundTrip) {
  Json j(std::string("a\"b\\c\nd\te\x01f"));
  auto r = Json::Parse(j.Dump());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().AsString(), j.AsString());
}

TEST(JsonTest, ParseNegativeAndLargeInts) {
  auto r = Json::Parse("[-9223372036854775808,9223372036854775807,0]");
  ASSERT_TRUE(r.ok());
  const auto& arr = r.value().AsArray();
  EXPECT_EQ(arr[0].AsInt(), INT64_MIN);
  EXPECT_EQ(arr[1].AsInt(), INT64_MAX);
  EXPECT_EQ(arr[2].AsInt(), 0);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,").ok());
  EXPECT_FALSE(Json::Parse("{\"a\"}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{} extra").ok());
}

TEST(JsonTest, TypedGetters) {
  auto r = Json::Parse(
      "{\"name\":\"idx\",\"rows\":42,\"ok\":true,\"files\":[\"a\",\"b\"]}");
  ASSERT_TRUE(r.ok());
  const Json& j = r.value();

  std::string name;
  ASSERT_TRUE(j.GetString("name", &name).ok());
  EXPECT_EQ(name, "idx");

  int64_t rows;
  ASSERT_TRUE(j.GetInt("rows", &rows).ok());
  EXPECT_EQ(rows, 42);

  bool ok;
  ASSERT_TRUE(j.GetBool("ok", &ok).ok());
  EXPECT_TRUE(ok);

  Json::Array files;
  ASSERT_TRUE(j.GetArray("files", &files).ok());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[1].AsString(), "b");

  EXPECT_TRUE(j.GetString("missing", &name).IsInvalidArgument());
  EXPECT_TRUE(j.GetInt("name", &rows).IsInvalidArgument());
}

TEST(JsonTest, GetOnNonObjectReturnsFalse) {
  Json j(int64_t{5});
  Json out;
  EXPECT_FALSE(j.Get("key", &out));
}

}  // namespace
}  // namespace rottnest
