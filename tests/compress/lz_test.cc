#include "compress/lz.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace rottnest::compress {
namespace {

Buffer MakeBuffer(const std::string& s) {
  return Buffer(s.begin(), s.end());
}

void ExpectRoundTrip(const Buffer& input) {
  Buffer compressed = LzCompress(Slice(input));
  Buffer out;
  Status s = LzDecompress(Slice(compressed), input.size(), &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(out, input);
}

TEST(LzTest, Empty) { ExpectRoundTrip({}); }

TEST(LzTest, TinyInputs) {
  for (size_t n = 1; n <= 20; ++n) {
    Buffer input(n);
    for (size_t i = 0; i < n; ++i) input[i] = static_cast<uint8_t>(i * 37);
    ExpectRoundTrip(input);
  }
}

TEST(LzTest, HighlyRepetitiveCompressesWell) {
  Buffer input = MakeBuffer(std::string(100000, 'a'));
  Buffer compressed = LzCompress(Slice(input));
  EXPECT_LT(compressed.size(), input.size() / 50);
  Buffer out;
  ASSERT_TRUE(LzDecompress(Slice(compressed), input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzTest, RepeatedPhraseCompresses) {
  std::string phrase = "the data lake stores parquet files on object storage ";
  std::string text;
  for (int i = 0; i < 1000; ++i) text += phrase;
  Buffer input = MakeBuffer(text);
  Buffer compressed = LzCompress(Slice(input));
  EXPECT_LT(compressed.size(), input.size() / 10);
  ExpectRoundTrip(input);
}

TEST(LzTest, RandomBytesRoundTrip) {
  Random rng(5);
  Buffer input(65536);
  for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
  Buffer compressed = LzCompress(Slice(input));
  // Incompressible data must not expand much.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 128 + 64);
  ExpectRoundTrip(input);
}

TEST(LzTest, MixedEntropyRoundTrip) {
  Random rng(9);
  Buffer input;
  for (int block = 0; block < 50; ++block) {
    if (block % 2 == 0) {
      uint8_t c = static_cast<uint8_t>(rng.Next());
      input.insert(input.end(), 500 + rng.Uniform(2000), c);
    } else {
      for (size_t i = rng.Uniform(3000); i > 0; --i) {
        input.push_back(static_cast<uint8_t>(rng.Next()));
      }
    }
  }
  ExpectRoundTrip(input);
}

TEST(LzTest, LongMatchesAndLongLiterals) {
  // > 255-byte extended lengths on both sides.
  Random rng(11);
  Buffer input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<uint8_t>(rng.Next()));  // literals
  }
  Buffer run(10000, 0x42);
  input.insert(input.end(), run.begin(), run.end());  // long match
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<uint8_t>(rng.Next()));
  }
  ExpectRoundTrip(input);
}

TEST(LzTest, OverlappingMatchPeriodicity) {
  // Period-3 pattern forces overlapping copies (offset < match length).
  Buffer input;
  for (int i = 0; i < 30000; ++i) input.push_back("abc"[i % 3]);
  Buffer compressed = LzCompress(Slice(input));
  EXPECT_LT(compressed.size(), 1000u);
  ExpectRoundTrip(input);
}

TEST(LzTest, FarMatchesBeyondWindowAreNotUsed) {
  // Two identical 1KB blocks separated by > 64KB of random data: the second
  // block cannot reference the first (offset > 65535) but must still decode.
  Random rng(13);
  Buffer block(1024);
  for (auto& b : block) b = static_cast<uint8_t>(rng.Next());
  Buffer input = block;
  for (int i = 0; i < 70000; ++i) {
    input.push_back(static_cast<uint8_t>(rng.Next()));
  }
  input.insert(input.end(), block.begin(), block.end());
  ExpectRoundTrip(input);
}

TEST(LzTest, DecompressRejectsWrongSize) {
  Buffer input = MakeBuffer("hello world hello world hello world hello");
  Buffer compressed = LzCompress(Slice(input));
  Buffer out;
  EXPECT_TRUE(
      LzDecompress(Slice(compressed), input.size() + 1, &out).IsCorruption());
  EXPECT_TRUE(
      LzDecompress(Slice(compressed), input.size() - 1, &out).IsCorruption());
}

TEST(LzTest, DecompressRejectsTruncated) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "repetitive repetitive ";
  Buffer input = MakeBuffer(text);
  Buffer compressed = LzCompress(Slice(input));
  Buffer out;
  for (size_t cut : {size_t{1}, compressed.size() / 2, compressed.size() - 1}) {
    Status s = LzDecompress(Slice(compressed.data(), cut), input.size(), &out);
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
}

TEST(LzTest, DecompressRejectsBadOffset) {
  // Hand-craft a block with an offset pointing before the stream start.
  Buffer bad;
  bad.push_back(0x14);  // 1 literal, match_len 4+4... token=(1<<4)|0
  bad[0] = (1 << 4) | 0;
  bad.push_back('x');   // literal
  bad.push_back(0x09);  // offset low = 9 > produced bytes (1)
  bad.push_back(0x00);  // offset high
  Buffer out;
  EXPECT_TRUE(LzDecompress(Slice(bad), 100, &out).IsCorruption());
}

TEST(LzTest, CodecDispatch) {
  Buffer input = MakeBuffer("some page payload for codec dispatch testing");
  for (Codec codec : {Codec::kNone, Codec::kLz}) {
    Buffer compressed = Compress(codec, Slice(input));
    Buffer out;
    ASSERT_TRUE(Decompress(codec, Slice(compressed), input.size(), &out).ok());
    EXPECT_EQ(out, input);
  }
}

TEST(LzTest, CodecNoneSizeMismatchFails) {
  Buffer input = MakeBuffer("abc");
  Buffer out;
  EXPECT_TRUE(
      Decompress(Codec::kNone, Slice(input), 5, &out).IsCorruption());
}

// Property sweep: many sizes and entropy profiles round-trip.
class LzRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LzRoundTripTest, TextLikeRoundTrip) {
  size_t size = GetParam();
  Random rng(size);
  static const char* words[] = {"lake", "index", "parquet", "search",
                                "vector", "page",  "trie",    "scan"};
  std::string text;
  while (text.size() < size) {
    text += words[rng.Uniform(8)];
    text.push_back(' ');
  }
  text.resize(size);
  ExpectRoundTrip(MakeBuffer(text));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzRoundTripTest,
                         ::testing::Values(1, 13, 64, 100, 1000, 4096, 65535,
                                           65536, 65537, 300000));

}  // namespace
}  // namespace rottnest::compress
