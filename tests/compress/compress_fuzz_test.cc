// Fuzz-style robustness: decompressors must reject (never crash on)
// arbitrarily corrupted input, and compressors must round-trip adversarial
// entropy profiles.
#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/lz.h"

namespace rottnest::compress {
namespace {

TEST(LzFuzzTest, RandomCorruptionNeverCrashes) {
  Random rng(2025);
  for (int trial = 0; trial < 200; ++trial) {
    // Produce a legitimate block, then corrupt it.
    size_t n = 64 + rng.Uniform(4096);
    Buffer input(n);
    for (auto& b : input) {
      b = static_cast<uint8_t>('a' + rng.Uniform(4));  // compressible
    }
    Buffer compressed = LzCompress(Slice(input));
    Buffer corrupt = compressed;
    int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int f = 0; f < flips; ++f) {
      corrupt[rng.Uniform(corrupt.size())] ^=
          static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    Buffer out;
    Status s = LzDecompress(Slice(corrupt), input.size(), &out);
    // Either it detects corruption, or the flip was in literal bytes and
    // decoding "succeeds" with different content — both acceptable; the
    // page layer's checksum catches the latter. Crashing is the only
    // failure mode.
    if (s.ok()) {
      EXPECT_EQ(out.size(), input.size());
    }
  }
}

TEST(LzFuzzTest, RandomGarbageInputNeverCrashes) {
  Random rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 1 + rng.Uniform(2048);
    Buffer garbage(n);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    Buffer out;
    (void)LzDecompress(Slice(garbage), 1 + rng.Uniform(8192), &out);
  }
}

TEST(LzFuzzTest, AdversarialEntropyProfilesRoundTrip) {
  Random rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    Buffer input;
    int segments = 1 + static_cast<int>(rng.Uniform(12));
    for (int s = 0; s < segments; ++s) {
      size_t len = rng.Uniform(8000);
      switch (rng.Uniform(5)) {
        case 0:  // constant run
          input.insert(input.end(), len, static_cast<uint8_t>(rng.Next()));
          break;
        case 1:  // random bytes
          for (size_t i = 0; i < len; ++i) {
            input.push_back(static_cast<uint8_t>(rng.Next()));
          }
          break;
        case 2: {  // short period
          size_t period = 1 + rng.Uniform(7);
          for (size_t i = 0; i < len; ++i) {
            input.push_back(static_cast<uint8_t>('A' + i % period));
          }
          break;
        }
        case 3: {  // copy of an earlier window (long-range match)
          if (!input.empty()) {
            size_t start = rng.Uniform(input.size());
            size_t copy = std::min(len, input.size() - start);
            // Note: iterators into the same vector — reserve to avoid
            // reallocation during self-append.
            input.reserve(input.size() + copy);
            for (size_t i = 0; i < copy; ++i) {
              input.push_back(input[start + i]);
            }
          }
          break;
        }
        default:  // ascii-ish text
          for (size_t i = 0; i < len; ++i) {
            input.push_back(static_cast<uint8_t>(' ' + rng.Uniform(94)));
          }
      }
    }
    Buffer compressed = LzCompress(Slice(input));
    Buffer out;
    ASSERT_TRUE(LzDecompress(Slice(compressed), input.size(), &out).ok())
        << "trial " << trial << " n=" << input.size();
    ASSERT_EQ(out, input) << "trial " << trial;
  }
}

TEST(LzFuzzTest, AllByteValuesRoundTrip) {
  Buffer input;
  for (int rep = 0; rep < 64; ++rep) {
    for (int b = 0; b < 256; ++b) input.push_back(static_cast<uint8_t>(b));
  }
  Buffer compressed = LzCompress(Slice(input));
  Buffer out;
  ASSERT_TRUE(LzDecompress(Slice(compressed), input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

}  // namespace
}  // namespace rottnest::compress
