#include "compress/bitpack.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace rottnest::compress {
namespace {

TEST(BitWidthTest, Values) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth((1ULL << 56) - 1), 56);
}

class BitPackWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackWidthTest, RoundTrip) {
  int width = GetParam();
  Random rng(width);
  std::vector<uint64_t> values;
  uint64_t mask = width == 0 ? 0 : (width == 64 ? ~0ULL : (1ULL << width) - 1);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Next() & mask);
  Buffer buf;
  BitPack(values, width, &buf);
  std::vector<uint64_t> out;
  ASSERT_TRUE(BitUnpack(Slice(buf), width, values.size(), &out).ok());
  EXPECT_EQ(out, values);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitPackWidthTest,
                         ::testing::Values(0, 1, 2, 3, 5, 7, 8, 9, 13, 16, 24,
                                           31, 32, 33, 48, 56));

TEST(BitPackTest, PackedSizeIsMinimal) {
  std::vector<uint64_t> values(100, 5);  // 3 bits each.
  Buffer buf;
  BitPack(values, 3, &buf);
  EXPECT_EQ(buf.size(), (100 * 3 + 7) / 8);
}

TEST(BitPackTest, UnpackTooShortFails) {
  Buffer buf = {0xff};
  std::vector<uint64_t> out;
  EXPECT_TRUE(BitUnpack(Slice(buf), 8, 2, &out).IsCorruption());
}

TEST(BitPackTest, ZeroWidthProducesZeros) {
  Buffer buf;
  BitPack({0, 0, 0}, 0, &buf);
  EXPECT_TRUE(buf.empty());
  std::vector<uint64_t> out;
  ASSERT_TRUE(BitUnpack(Slice(buf), 0, 3, &out).ok());
  EXPECT_EQ(out, (std::vector<uint64_t>{0, 0, 0}));
}

TEST(DeltaTest, SortedRoundTrip) {
  std::vector<uint64_t> values = {0, 0, 1, 5, 5, 100, 1000000, 1000001};
  Buffer buf;
  DeltaEncodeSorted(values, &buf);
  Decoder dec{Slice(buf)};
  std::vector<uint64_t> out;
  ASSERT_TRUE(DeltaDecodeSorted(&dec, &out).ok());
  EXPECT_EQ(out, values);
  EXPECT_TRUE(dec.exhausted());
}

TEST(DeltaTest, EmptyRoundTrip) {
  Buffer buf;
  DeltaEncodeSorted({}, &buf);
  Decoder dec{Slice(buf)};
  std::vector<uint64_t> out;
  ASSERT_TRUE(DeltaDecodeSorted(&dec, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DeltaTest, DenseSortedIsCompact) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 1000; ++i) values.push_back(i);
  Buffer buf;
  DeltaEncodeSorted(values, &buf);
  // Deltas are all 1: one byte each plus the count varint.
  EXPECT_LE(buf.size(), 1002u);
}

TEST(DeltaTest, RandomSortedRoundTrip) {
  Random rng(77);
  std::vector<uint64_t> values;
  uint64_t v = 0;
  for (int i = 0; i < 10000; ++i) {
    v += rng.Uniform(1 << 20);
    values.push_back(v);
  }
  Buffer buf;
  DeltaEncodeSorted(values, &buf);
  Decoder dec{Slice(buf)};
  std::vector<uint64_t> out;
  ASSERT_TRUE(DeltaDecodeSorted(&dec, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(DeltaTest, TruncatedFails) {
  std::vector<uint64_t> values = {1, 2, 3};
  Buffer buf;
  DeltaEncodeSorted(values, &buf);
  Decoder dec{Slice(buf.data(), buf.size() - 1)};
  std::vector<uint64_t> out;
  EXPECT_TRUE(DeltaDecodeSorted(&dec, &out).IsCorruption());
}

}  // namespace
}  // namespace rottnest::compress
