#include <gtest/gtest.h>

#include "common/random.h"
#include "format/page.h"
#include "format/page_table.h"
#include "format/reader.h"
#include "format/writer.h"
#include "objectstore/object_store.h"

namespace rottnest::format {
namespace {

using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

Schema MakeTextSchema() {
  Schema s;
  s.columns.push_back({"ts", PhysicalType::kInt64, 0});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  return s;
}

RowBatch MakeTextBatch(size_t rows, uint64_t seed) {
  Random rng(seed);
  RowBatch batch;
  batch.schema = MakeTextSchema();
  ColumnVector::Ints ts;
  ColumnVector::Strings body;
  static const char* words[] = {"error", "warn", "request", "latency",
                                "pod",   "node", "disk",    "timeout"};
  for (size_t i = 0; i < rows; ++i) {
    ts.push_back(static_cast<int64_t>(1700000000 + i));
    std::string line;
    for (int w = 0; w < 12; ++w) {
      line += words[rng.Uniform(8)];
      line.push_back(' ');
    }
    body.push_back(line);
  }
  batch.columns.emplace_back(std::move(ts));
  batch.columns.emplace_back(std::move(body));
  return batch;
}

TEST(PageTest, Int64RoundTrip) {
  ColumnVector col(ColumnVector::Ints{1, -5, 1LL << 60, 0, -(1LL << 62)});
  Buffer out;
  EncodePage(col, 0, 5, compress::Codec::kLz, &out);
  ColumnVector decoded;
  ColumnSchema schema{"c", PhysicalType::kInt64, 0};
  ASSERT_TRUE(DecodePage(Slice(out), schema, &decoded).ok());
  EXPECT_EQ(decoded, col);
}

TEST(PageTest, DoubleRoundTrip) {
  ColumnVector col(ColumnVector::Doubles{0.0, -1.5, 3.14159, 1e300, -1e-300});
  Buffer out;
  EncodePage(col, 0, 5, compress::Codec::kLz, &out);
  ColumnVector decoded;
  ColumnSchema schema{"c", PhysicalType::kDouble, 0};
  ASSERT_TRUE(DecodePage(Slice(out), schema, &decoded).ok());
  EXPECT_EQ(decoded, col);
}

TEST(PageTest, ByteArrayRoundTrip) {
  ColumnVector col(
      ColumnVector::Strings{"", "a", std::string(5000, 'z'), "hello\0x"});
  Buffer out;
  EncodePage(col, 0, 4, compress::Codec::kLz, &out);
  ColumnVector decoded;
  ColumnSchema schema{"c", PhysicalType::kByteArray, 0};
  ASSERT_TRUE(DecodePage(Slice(out), schema, &decoded).ok());
  EXPECT_EQ(decoded, col);
}

TEST(PageTest, FixedLenRoundTrip) {
  FlatFixed f;
  f.elem_size = 16;
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    Buffer v(16);
    for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
    f.Append(Slice(v));
  }
  ColumnVector col(f);
  Buffer out;
  EncodePage(col, 0, 100, compress::Codec::kLz, &out);
  ColumnVector decoded;
  ColumnSchema schema{"c", PhysicalType::kFixedLenByteArray, 16};
  ASSERT_TRUE(DecodePage(Slice(out), schema, &decoded).ok());
  EXPECT_EQ(decoded, col);
}

TEST(PageTest, SubRangeEncoding) {
  ColumnVector col(ColumnVector::Ints{10, 20, 30, 40, 50});
  Buffer out;
  EncodePage(col, 1, 4, compress::Codec::kNone, &out);
  ColumnVector decoded;
  ColumnSchema schema{"c", PhysicalType::kInt64, 0};
  ASSERT_TRUE(DecodePage(Slice(out), schema, &decoded).ok());
  EXPECT_EQ(decoded.ints(), (ColumnVector::Ints{20, 30, 40}));
}

TEST(PageTest, CorruptChecksumRejected) {
  ColumnVector col(ColumnVector::Ints{1, 2, 3});
  Buffer out;
  EncodePage(col, 0, 3, compress::Codec::kNone, &out);
  out.back() ^= 0xff;  // Flip a payload byte.
  ColumnVector decoded;
  ColumnSchema schema{"c", PhysicalType::kInt64, 0};
  EXPECT_TRUE(DecodePage(Slice(out), schema, &decoded).IsCorruption());
}

TEST(PageTest, TruncatedPageRejected) {
  ColumnVector col(ColumnVector::Ints{1, 2, 3});
  Buffer out;
  EncodePage(col, 0, 3, compress::Codec::kNone, &out);
  ColumnVector decoded;
  ColumnSchema schema{"c", PhysicalType::kInt64, 0};
  EXPECT_FALSE(
      DecodePage(Slice(out.data(), out.size() - 2), schema, &decoded).ok());
}

TEST(PageTest, ConsecutivePagesDecodeWithConsumed) {
  ColumnVector col(ColumnVector::Ints{1, 2, 3, 4, 5, 6});
  Buffer out;
  EncodePage(col, 0, 3, compress::Codec::kLz, &out);
  EncodePage(col, 3, 6, compress::Codec::kLz, &out);
  ColumnSchema schema{"c", PhysicalType::kInt64, 0};
  ColumnVector first, second;
  size_t consumed = 0;
  ASSERT_TRUE(DecodePage(Slice(out), schema, &first, &consumed).ok());
  EXPECT_EQ(first.ints(), (ColumnVector::Ints{1, 2, 3}));
  ASSERT_TRUE(DecodePage(Slice(out.data() + consumed, out.size() - consumed),
                         schema, &second)
                  .ok());
  EXPECT_EQ(second.ints(), (ColumnVector::Ints{4, 5, 6}));
}

TEST(WriterTest, WriteAndReadWholeFile) {
  RowBatch batch = MakeTextBatch(5000, 42);
  WriterOptions options;
  options.target_page_bytes = 8 << 10;  // Force many pages.
  options.target_row_group_bytes = 64 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());
  EXPECT_EQ(meta.num_rows, 5000u);
  EXPECT_GT(meta.row_groups.size(), 1u);

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("t/a.lakefile", Slice(file)).ok());

  auto reader_r = FileReader::Open(&store, "t/a.lakefile", nullptr);
  ASSERT_TRUE(reader_r.ok()) << reader_r.status().ToString();
  auto& reader = *reader_r.value();
  EXPECT_EQ(reader.meta().num_rows, 5000u);
  ASSERT_EQ(reader.meta().schema.columns.size(), 2u);

  ColumnVector body;
  ASSERT_TRUE(reader.ReadColumn(1, nullptr, &body).ok());
  ASSERT_EQ(body.size(), 5000u);
  EXPECT_EQ(body.strings()[0], batch.columns[1].strings()[0]);
  EXPECT_EQ(body.strings()[4999], batch.columns[1].strings()[4999]);

  ColumnVector ts;
  ASSERT_TRUE(reader.ReadColumn(0, nullptr, &ts).ok());
  EXPECT_EQ(ts.ints(), batch.columns[0].ints());
}

TEST(WriterTest, MinMaxStatsOnIntColumns) {
  RowBatch batch = MakeTextBatch(100, 1);
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, WriterOptions{}, &file, &meta).ok());
  ASSERT_EQ(meta.row_groups.size(), 1u);
  const ColumnChunkMeta& cc = meta.row_groups[0].columns[0];
  EXPECT_TRUE(cc.has_stats);
  EXPECT_EQ(cc.min, 1700000000);
  EXPECT_EQ(cc.max, 1700000099);
  EXPECT_FALSE(meta.row_groups[0].columns[1].has_stats);
}

TEST(WriterTest, PageRowAccountingIsContiguous) {
  RowBatch batch = MakeTextBatch(3000, 7);
  WriterOptions options;
  options.target_page_bytes = 4 << 10;
  options.target_row_group_bytes = 32 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());
  uint64_t expected_row = 0;
  for (const RowGroupMeta& rg : meta.row_groups) {
    EXPECT_EQ(rg.first_row, expected_row);
    uint64_t row_in_group = rg.first_row;
    for (const PageMeta& p : rg.columns[1].pages) {
      EXPECT_EQ(p.first_row, row_in_group);
      row_in_group += p.num_values;
    }
    EXPECT_EQ(row_in_group, rg.first_row + rg.num_rows);
    expected_row += rg.num_rows;
  }
  EXPECT_EQ(expected_row, 3000u);
}

TEST(WriterTest, EmptyFileHasNoRowGroups) {
  FileWriter writer(MakeTextSchema(), WriterOptions{});
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  FileMeta meta;
  ASSERT_TRUE(ParseFileMeta(Slice(file), &meta).ok());
  EXPECT_EQ(meta.num_rows, 0u);
  EXPECT_TRUE(meta.row_groups.empty());
}

TEST(WriterTest, AppendAfterFinishFails) {
  FileWriter writer(MakeTextSchema(), WriterOptions{});
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  EXPECT_TRUE(writer.Append(MakeTextBatch(1, 1)).IsInvalidArgument());
}

TEST(WriterTest, SchemaMismatchRejected) {
  FileWriter writer(MakeTextSchema(), WriterOptions{});
  RowBatch bad;
  bad.schema.columns.push_back({"x", PhysicalType::kInt64, 0});
  bad.columns.emplace_back(ColumnVector::Ints{1});
  EXPECT_TRUE(writer.Append(bad).IsInvalidArgument());
}

TEST(WriterTest, RaggedBatchRejected) {
  RowBatch bad;
  bad.schema = MakeTextSchema();
  bad.columns.emplace_back(ColumnVector::Ints{1, 2});
  bad.columns.emplace_back(ColumnVector::Strings{"only one"});
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(ReaderTest, FooterLargerThanTailRead) {
  // Build a file with a huge number of tiny pages so the footer exceeds the
  // 64KB speculative tail read.
  RowBatch batch = MakeTextBatch(30000, 11);
  WriterOptions options;
  options.target_page_bytes = 64;  // ~1 row per page -> ~30k page entries.
  options.target_row_group_bytes = 1 << 20;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("big", Slice(file)).ok());
  auto reader_r = FileReader::Open(&store, "big", nullptr);
  ASSERT_TRUE(reader_r.ok()) << reader_r.status().ToString();
  EXPECT_EQ(reader_r.value()->meta().num_rows, 30000u);
}

TEST(ReaderTest, CorruptMagicRejected) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  Buffer junk(100, 0x5a);
  ASSERT_TRUE(store.Put("junk", Slice(junk)).ok());
  auto r = FileReader::Open(&store, "junk", nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(ReaderTest, MissingObjectIsNotFound) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto r = FileReader::Open(&store, "ghost", nullptr);
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(PageReaderTest, InSituPageReadsMatchFullScan) {
  RowBatch batch = MakeTextBatch(4000, 99);
  WriterOptions options;
  options.target_page_bytes = 8 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("f", Slice(file)).ok());

  PageTable table;
  table.AddFile("f", meta, 1);
  ASSERT_GT(table.num_pages(), 4u);

  // Fetch three scattered pages and verify contents against the batch.
  ThreadPool pool(4);
  IoTrace trace;
  std::vector<PageFetch> fetches = {table.MakeFetch(0),
                                    table.MakeFetch(2),
                                    table.MakeFetch(static_cast<PageId>(
                                        table.num_pages() - 1))};
  std::vector<ColumnVector> pages;
  ASSERT_TRUE(ReadPages(&store, fetches, meta.schema.columns[1], &pool,
                        &trace, &pages)
                  .ok());
  ASSERT_EQ(pages.size(), 3u);
  EXPECT_EQ(trace.depth(), 1u);  // All pages in one parallel round.
  EXPECT_EQ(trace.total_gets(), 3u);

  for (size_t i = 0; i < fetches.size(); ++i) {
    uint64_t first = fetches[i].page.first_row;
    for (size_t v = 0; v < pages[i].size(); ++v) {
      EXPECT_EQ(pages[i].strings()[v], batch.columns[1].strings()[first + v]);
    }
  }
}

TEST(PageReaderTest, PageReadsBypassFooter) {
  // The page reader must not issue any footer read: exactly one range GET
  // per page and nothing else.
  RowBatch batch = MakeTextBatch(1000, 5);
  WriterOptions options;
  options.target_page_bytes = 16 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("f", Slice(file)).ok());
  PageTable table;
  table.AddFile("f", meta, 1);

  uint64_t gets_before = store.stats().gets.load();
  std::vector<ColumnVector> pages;
  std::vector<PageFetch> fetches = {table.MakeFetch(0)};
  ASSERT_TRUE(ReadPages(&store, fetches, meta.schema.columns[1], nullptr,
                        nullptr, &pages)
                  .ok());
  EXPECT_EQ(store.stats().gets.load() - gets_before, 1u);
}

TEST(PageTableTest, PageOfRowFindsContainingPage) {
  RowBatch batch = MakeTextBatch(5000, 21);
  WriterOptions options;
  options.target_page_bytes = 8 << 10;
  options.target_row_group_bytes = 64 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());
  PageTable table;
  table.AddFile("f", meta, 1);

  for (uint64_t row : {uint64_t{0}, uint64_t{1}, uint64_t{2500},
                       uint64_t{4999}}) {
    auto page = table.PageOfRow(0, row);
    ASSERT_TRUE(page.ok()) << "row " << row;
    const PageEntry& e = table.entry(page.value());
    EXPECT_GE(row, e.first_row);
    EXPECT_LT(row, e.first_row + e.num_values);
  }
  EXPECT_TRUE(table.PageOfRow(0, 5000).status().IsNotFound());
}

TEST(PageTableTest, SerializeRoundTrip) {
  RowBatch batch = MakeTextBatch(2000, 31);
  WriterOptions options;
  options.target_page_bytes = 8 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());
  PageTable table;
  table.AddFile("alpha", meta, 1);
  table.AddFile("beta", meta, 1);

  Buffer buf;
  table.Serialize(&buf);
  Decoder dec{Slice(buf)};
  PageTable decoded;
  ASSERT_TRUE(PageTable::Deserialize(&dec, &decoded).ok());
  ASSERT_EQ(decoded.num_pages(), table.num_pages());
  ASSERT_EQ(decoded.num_files(), 2u);
  EXPECT_EQ(decoded.files()[1], "beta");
  for (PageId p = 0; p < table.num_pages(); ++p) {
    EXPECT_EQ(decoded.entry(p).offset, table.entry(p).offset);
    EXPECT_EQ(decoded.entry(p).first_row, table.entry(p).first_row);
    EXPECT_EQ(decoded.file_of(p), table.file_of(p));
  }
}

TEST(PageTableTest, AbsorbOffsetsIds) {
  RowBatch batch = MakeTextBatch(1000, 41);
  WriterOptions options;
  options.target_page_bytes = 8 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());

  PageTable a, b;
  a.AddFile("one", meta, 1);
  size_t a_pages = a.num_pages();
  b.AddFile("two", meta, 1);
  PageId offset = a.Absorb(b);
  EXPECT_EQ(offset, a_pages);
  EXPECT_EQ(a.num_pages(), 2 * a_pages);
  EXPECT_EQ(a.file_of(static_cast<PageId>(a_pages)), "two");
  auto [begin, end] = a.FilePageRange(1);
  EXPECT_EQ(begin, a_pages);
  EXPECT_EQ(end, 2 * a_pages);
}

}  // namespace
}  // namespace rottnest::format
