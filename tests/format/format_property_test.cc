// Property sweeps over the columnar format: every (page size, row-group
// size, codec) configuration must round-trip every physical type, and the
// page-granular reader must agree with the whole-chunk reader bit for bit.
#include <gtest/gtest.h>

#include "common/random.h"
#include "format/page_table.h"
#include "format/reader.h"
#include "format/writer.h"
#include "objectstore/object_store.h"

namespace rottnest::format {
namespace {

using objectstore::InMemoryObjectStore;

Schema AllTypesSchema() {
  Schema s;
  s.columns.push_back({"i", PhysicalType::kInt64, 0});
  s.columns.push_back({"d", PhysicalType::kDouble, 0});
  s.columns.push_back({"s", PhysicalType::kByteArray, 0});
  s.columns.push_back({"f", PhysicalType::kFixedLenByteArray, 12});
  return s;
}

RowBatch AllTypesBatch(size_t rows, uint64_t seed) {
  Random rng(seed);
  RowBatch b;
  b.schema = AllTypesSchema();
  ColumnVector::Ints ints;
  ColumnVector::Doubles doubles;
  ColumnVector::Strings strings;
  FlatFixed fixed;
  fixed.elem_size = 12;
  for (size_t r = 0; r < rows; ++r) {
    ints.push_back(static_cast<int64_t>(rng.Next()));
    doubles.push_back(rng.NextGaussian());
    // Mix of empty, short, long and binary-ish strings.
    switch (rng.Uniform(4)) {
      case 0:
        strings.push_back("");
        break;
      case 1:
        strings.push_back("short");
        break;
      case 2:
        strings.push_back(std::string(rng.Uniform(2000), 'x'));
        break;
      default: {
        std::string bin(16, '\0');
        for (auto& c : bin) c = static_cast<char>(rng.Next());
        strings.push_back(bin);
      }
    }
    Buffer v(12);
    for (auto& x : v) x = static_cast<uint8_t>(rng.Next());
    fixed.Append(Slice(v));
  }
  b.columns.emplace_back(std::move(ints));
  b.columns.emplace_back(std::move(doubles));
  b.columns.emplace_back(std::move(strings));
  b.columns.emplace_back(std::move(fixed));
  return b;
}

class FormatSweepTest
    : public ::testing::TestWithParam<
          std::tuple<size_t, size_t, compress::Codec>> {};

TEST_P(FormatSweepTest, RoundTripAllTypes) {
  auto [page_bytes, group_bytes, codec] = GetParam();
  WriterOptions options;
  options.target_page_bytes = page_bytes;
  options.target_row_group_bytes = group_bytes;
  options.codec = codec;

  RowBatch batch = AllTypesBatch(1500, page_bytes ^ group_bytes);
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());
  ASSERT_EQ(meta.num_rows, 1500u);

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("f", Slice(file)).ok());
  auto reader = FileReader::Open(&store, "f", nullptr).MoveValue();
  for (size_t c = 0; c < 4; ++c) {
    ColumnVector col;
    ASSERT_TRUE(reader->ReadColumn(c, nullptr, &col).ok()) << "col " << c;
    EXPECT_EQ(col, batch.columns[c]) << "col " << c;
  }
}

TEST_P(FormatSweepTest, PageReaderAgreesWithChunkReader) {
  auto [page_bytes, group_bytes, codec] = GetParam();
  WriterOptions options;
  options.target_page_bytes = page_bytes;
  options.target_row_group_bytes = group_bytes;
  options.codec = codec;

  RowBatch batch = AllTypesBatch(800, 99);
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, options, &file, &meta).ok());
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("f", Slice(file)).ok());

  PageTable table;
  table.AddFile("f", meta, 2);  // Strings column.
  std::vector<PageFetch> fetches;
  for (PageId p = 0; p < table.num_pages(); ++p) {
    fetches.push_back(table.MakeFetch(p));
  }
  std::vector<ColumnVector> pages;
  ASSERT_TRUE(ReadPages(&store, fetches, batch.schema.columns[2], nullptr,
                        nullptr, &pages)
                  .ok());
  // Concatenation of all pages == the full column.
  ColumnVector glued = MakeEmptyColumn(batch.schema.columns[2]);
  for (const ColumnVector& p : pages) glued.AppendFrom(p);
  EXPECT_EQ(glued, batch.columns[2]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FormatSweepTest,
    ::testing::Combine(::testing::Values(size_t{512}, size_t{8 << 10},
                                         size_t{1 << 20}),
                       ::testing::Values(size_t{4 << 10}, size_t{256 << 10}),
                       ::testing::Values(compress::Codec::kNone,
                                         compress::Codec::kLz)));

TEST(FormatRobustnessTest, TruncatedFilesNeverCrash) {
  RowBatch batch = AllTypesBatch(500, 7);
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, WriterOptions{}, &file, &meta).ok());

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  Random rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    size_t cut = 1 + rng.Uniform(file.size() - 1);
    Buffer truncated(file.begin(), file.begin() + cut);
    ASSERT_TRUE(store.Put("t", Slice(truncated)).ok());
    auto reader = FileReader::Open(&store, "t", nullptr);
    if (reader.ok()) {
      // Footer happened to parse (cut inside data): chunk reads must fail
      // cleanly, not crash.
      ColumnVector col;
      (void)reader.value()->ReadColumn(0, nullptr, &col);
    }
  }
}

TEST(FormatRobustnessTest, BitFlippedFilesNeverCrash) {
  RowBatch batch = AllTypesBatch(300, 9);
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(batch, WriterOptions{}, &file, &meta).ok());
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  Random rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    Buffer corrupt = file;
    for (int flips = 0; flips < 3; ++flips) {
      corrupt[rng.Uniform(corrupt.size())] ^=
          static_cast<uint8_t>(1 << rng.Uniform(8));
    }
    ASSERT_TRUE(store.Put("c", Slice(corrupt)).ok());
    auto reader = FileReader::Open(&store, "c", nullptr);
    if (!reader.ok()) continue;
    for (size_t c = 0; c < 4; ++c) {
      ColumnVector col;
      Status s = reader.value()->ReadColumn(c, nullptr, &col);
      if (s.ok()) {
        // Checksum may miss flips in the *header* varints that still parse
        // consistently; but a clean read must deliver the right row count.
        EXPECT_EQ(col.size(), 300u);
      }
    }
  }
}

TEST(FormatRobustnessTest, SingleRowAndSingleColumnFiles) {
  Schema s;
  s.columns.push_back({"only", PhysicalType::kByteArray, 0});
  RowBatch b;
  b.schema = s;
  b.columns.emplace_back(ColumnVector::Strings{"lonely row"});
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(b, WriterOptions{}, &file, &meta).ok());
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("f", Slice(file)).ok());
  auto reader = FileReader::Open(&store, "f", nullptr).MoveValue();
  ColumnVector col;
  ASSERT_TRUE(reader->ReadColumn(0, nullptr, &col).ok());
  ASSERT_EQ(col.size(), 1u);
  EXPECT_EQ(col.strings()[0], "lonely row");
}

TEST(FormatRobustnessTest, HugeSingleValueGetsOwnPage) {
  Schema s;
  s.columns.push_back({"blob", PhysicalType::kByteArray, 0});
  RowBatch b;
  b.schema = s;
  // One 5MB value among small ones with a 64KB page target.
  ColumnVector::Strings values = {"small", std::string(5 << 20, 'Z'),
                                  "another"};
  b.columns.emplace_back(values);
  WriterOptions options;
  options.target_page_bytes = 64 << 10;
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(b, options, &file, &meta).ok());
  ASSERT_EQ(meta.row_groups[0].columns[0].pages.size(), 3u);

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("f", Slice(file)).ok());
  auto reader = FileReader::Open(&store, "f", nullptr).MoveValue();
  ColumnVector col;
  ASSERT_TRUE(reader->ReadColumn(0, nullptr, &col).ok());
  EXPECT_EQ(col.strings(), values);
}

TEST(FormatRobustnessTest, MinMaxStatsEnablePruning) {
  Schema s;
  s.columns.push_back({"ts", PhysicalType::kInt64, 0});
  RowBatch b;
  b.schema = s;
  ColumnVector::Ints ts;
  for (int64_t i = 0; i < 3000; ++i) ts.push_back(i);
  b.columns.emplace_back(std::move(ts));
  WriterOptions options;
  options.target_row_group_bytes = 4 << 10;  // ~512 rows per group.
  Buffer file;
  FileMeta meta;
  ASSERT_TRUE(WriteSingleFile(b, options, &file, &meta).ok());
  ASSERT_GT(meta.row_groups.size(), 2u);
  // Stats must tile [0, 2999] without overlap.
  int64_t expected_min = 0;
  for (const RowGroupMeta& rg : meta.row_groups) {
    ASSERT_TRUE(rg.columns[0].has_stats);
    EXPECT_EQ(rg.columns[0].min, expected_min);
    expected_min = rg.columns[0].max + 1;
  }
  EXPECT_EQ(expected_min, 3000);
}

}  // namespace
}  // namespace rottnest::format
