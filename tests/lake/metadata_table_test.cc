#include "lake/metadata_table.h"

#include <gtest/gtest.h>

#include "objectstore/object_store.h"

namespace rottnest::lake {
namespace {

using objectstore::InMemoryObjectStore;

IndexEntry MakeEntry(const std::string& path,
                     std::vector<std::string> covered) {
  IndexEntry e;
  e.index_path = path;
  e.index_type = "trie";
  e.column = "uuid";
  e.covered_files = std::move(covered);
  e.rows = 1000;
  e.created_micros = 42;
  return e;
}

class MetadataTableTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  MetadataTable meta_{&store_, "idx"};
};

TEST_F(MetadataTableTest, EmptyReadsEmpty) {
  auto entries = meta_.ReadAll();
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  EXPECT_TRUE(entries.value().empty());
}

TEST_F(MetadataTableTest, InsertAndRead) {
  ASSERT_TRUE(
      meta_.Update({MakeEntry("idx/a.index", {"d/1.lake", "d/2.lake"})}, {})
          .ok());
  auto entries = meta_.ReadAll().MoveValue();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].index_path, "idx/a.index");
  EXPECT_EQ(entries[0].index_type, "trie");
  EXPECT_EQ(entries[0].column, "uuid");
  EXPECT_EQ(entries[0].covered_files,
            (std::vector<std::string>{"d/1.lake", "d/2.lake"}));
  EXPECT_EQ(entries[0].rows, 1000u);
  EXPECT_EQ(entries[0].created_micros, 42);
}

TEST_F(MetadataTableTest, AtomicSwapOnCompaction) {
  ASSERT_TRUE(meta_.Update({MakeEntry("idx/a.index", {"d/1.lake"})}, {}).ok());
  ASSERT_TRUE(meta_.Update({MakeEntry("idx/b.index", {"d/2.lake"})}, {}).ok());
  // Compaction: one transaction removes a & b, adds merged.
  ASSERT_TRUE(meta_
                  .Update({MakeEntry("idx/merged.index",
                                     {"d/1.lake", "d/2.lake"})},
                          {"idx/a.index", "idx/b.index"})
                  .ok());
  auto entries = meta_.ReadAll().MoveValue();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].index_path, "idx/merged.index");
}

TEST_F(MetadataTableTest, RemoveMissingIsTolerated) {
  ASSERT_TRUE(meta_.Update({}, {"idx/never-existed.index"}).ok());
  EXPECT_TRUE(meta_.ReadAll().MoveValue().empty());
}

TEST_F(MetadataTableTest, MultipleEntriesPersistAcrossReopen) {
  ASSERT_TRUE(meta_.Update({MakeEntry("idx/a.index", {"d/1.lake"}),
                            MakeEntry("idx/b.index", {"d/2.lake"})},
                           {})
                  .ok());
  MetadataTable reopened(&store_, "idx");
  auto entries = reopened.ReadAll().MoveValue();
  EXPECT_EQ(entries.size(), 2u);
}

}  // namespace
}  // namespace rottnest::lake
