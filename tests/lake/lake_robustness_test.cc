// Robustness tests for the transaction log and table: corrupted log
// entries, interleaved writers, log gaps, and snapshot edge cases.
#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "lake/table.h"
#include "objectstore/object_store.h"

namespace rottnest::lake {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using objectstore::InMemoryObjectStore;

Schema OneColSchema() {
  Schema s;
  s.columns.push_back({"v", PhysicalType::kInt64, 0});
  return s;
}

RowBatch IntBatch(int64_t first, size_t rows) {
  RowBatch b;
  b.schema = OneColSchema();
  ColumnVector::Ints v;
  for (size_t i = 0; i < rows; ++i) v.push_back(first + static_cast<int64_t>(i));
  b.columns.emplace_back(std::move(v));
  return b;
}

TEST(LakeRobustnessTest, CorruptedLogEntryIsDetected) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "t", OneColSchema()).MoveValue();
  ASSERT_TRUE(table->Append(IntBatch(0, 10)).ok());

  // Corrupt the version-1 log object.
  std::string key = "t/_log/00000000000000000001.json";
  Buffer garbage(50, '{');
  ASSERT_TRUE(store.Put(key, Slice(garbage)).ok());
  auto snap = table->GetSnapshot();
  EXPECT_FALSE(snap.ok());
}

TEST(LakeRobustnessTest, UnknownActionsAreIgnoredForwardCompat) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "t", OneColSchema()).MoveValue();
  ASSERT_TRUE(table->Append(IntBatch(0, 10)).ok());
  // A future writer adds an action kind this reader does not know.
  ASSERT_TRUE(table->log()
                  .Commit(2, {Json::Parse("{\"zOrderBy\":{\"col\":\"v\"}}")
                                  .MoveValue()})
                  .ok());
  auto snap = table->GetSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap.value().version, 2);
  EXPECT_EQ(snap.value().files.size(), 1u);
}

TEST(LakeRobustnessTest, SnapshotOfEmptyTable) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "t", OneColSchema()).MoveValue();
  auto snap = table->GetSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().version, 0);
  EXPECT_TRUE(snap.value().files.empty());
  EXPECT_EQ(snap.value().TotalRows(), 0u);
}

TEST(LakeRobustnessTest, SnapshotBeyondLatestFails) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "t", OneColSchema()).MoveValue();
  auto snap = table->GetSnapshot(5);
  EXPECT_FALSE(snap.ok());
}

TEST(LakeRobustnessTest, ConcurrentAppendersAllCommit) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(Table::Create(&store, "t", OneColSchema()).ok());

  constexpr int kWriters = 6;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      // Independent Table instances, like separate processes.
      auto table = Table::Open(&store, "t").MoveValue();
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(table->Append(IntBatch(w * 100 + i * 10, 10)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  auto table = Table::Open(&store, "t").MoveValue();
  auto snap = table->GetSnapshot().MoveValue();
  EXPECT_EQ(snap.files.size(), kWriters * 3u);
  EXPECT_EQ(snap.TotalRows(), kWriters * 30u);
}

TEST(LakeRobustnessTest, DeleteEverythingThenCompact) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "t", OneColSchema()).MoveValue();
  ASSERT_TRUE(table->Append(IntBatch(0, 20)).ok());
  ASSERT_TRUE(table->Append(IntBatch(20, 20)).ok());
  ASSERT_TRUE(table
                  ->DeleteWhere("v", [](const ColumnVector&, size_t) {
                    return true;  // Delete every row.
                  })
                  .ok());
  auto snap = table->GetSnapshot().MoveValue();
  for (const DataFile& f : snap.files) {
    DeletionVector dv;
    ASSERT_TRUE(table->ReadDeletionVector(f, &dv).ok());
    EXPECT_EQ(dv.size(), 20u);
  }
  // Compaction rewrites to an empty file.
  ASSERT_TRUE(table->CompactFiles(UINT64_MAX).ok());
  snap = table->GetSnapshot().MoveValue();
  ASSERT_EQ(snap.files.size(), 1u);
  EXPECT_EQ(snap.TotalRows(), 0u);
}

TEST(LakeRobustnessTest, TimeTravelThroughDeleteHistory) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "t", OneColSchema()).MoveValue();
  auto v1 = table->Append(IntBatch(0, 10)).MoveValue();
  auto v2 = table
                ->DeleteWhere("v",
                              [](const ColumnVector& col, size_t r) {
                                return col.ints()[r] < 5;
                              })
                .MoveValue();
  // At v1 the file has no deletion vector; at v2 it does.
  auto snap1 = table->GetSnapshot(v1).MoveValue();
  EXPECT_TRUE(snap1.files[0].dv_path.empty());
  auto snap2 = table->GetSnapshot(v2).MoveValue();
  EXPECT_FALSE(snap2.files[0].dv_path.empty());
}

TEST(JsonRobustnessTest, DeepNestingRoundTrips) {
  std::string text;
  for (int i = 0; i < 60; ++i) text += "{\"a\":[";
  text += "1";
  for (int i = 0; i < 60; ++i) text += "]}";
  auto r = Json::Parse(text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Dump(), text);
}

TEST(JsonRobustnessTest, GarbageNeverCrashes) {
  Random rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    size_t n = rng.Uniform(100);
    static const char chars[] = "{}[]\",:0123456789.eE+-truefalsn\\ ";
    for (size_t i = 0; i < n; ++i) {
      garbage.push_back(chars[rng.Uniform(sizeof(chars) - 1)]);
    }
    (void)Json::Parse(garbage);  // Must not crash; errors are fine.
  }
}

}  // namespace
}  // namespace rottnest::lake
