#include "lake/txn_log.h"

#include <gtest/gtest.h>

#include <thread>

#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"

namespace rottnest::lake {
namespace {

using objectstore::InMemoryObjectStore;

class TxnLogTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
};

Json Action(const std::string& kind, int64_t id) {
  Json::Object payload;
  payload["id"] = Json(id);
  Json::Object action;
  action[kind] = Json(std::move(payload));
  return Json(std::move(action));
}

TEST_F(TxnLogTest, EmptyLogHasNoLatest) {
  TxnLog log(&store_, "t/_log");
  EXPECT_TRUE(log.LatestVersion().status().IsNotFound());
}

TEST_F(TxnLogTest, CommitAndRead) {
  TxnLog log(&store_, "t/_log");
  ASSERT_TRUE(log.Commit(0, {Action("add", 1), Action("add", 2)}).ok());
  std::vector<Json> actions;
  ASSERT_TRUE(log.ReadVersion(0, &actions).ok());
  ASSERT_EQ(actions.size(), 2u);
  Json payload;
  ASSERT_TRUE(actions[1].Get("add", &payload));
  int64_t id;
  ASSERT_TRUE(payload.GetInt("id", &id).ok());
  EXPECT_EQ(id, 2);
}

TEST_F(TxnLogTest, CommitConflictDetected) {
  TxnLog log(&store_, "t/_log");
  ASSERT_TRUE(log.Commit(0, {Action("a", 1)}).ok());
  EXPECT_TRUE(log.Commit(0, {Action("b", 2)}).IsAlreadyExists());
}

TEST_F(TxnLogTest, CommitNextSkipsPastConflicts) {
  TxnLog log(&store_, "t/_log");
  ASSERT_TRUE(log.Commit(0, {Action("a", 0)}).ok());
  ASSERT_TRUE(log.Commit(1, {Action("a", 1)}).ok());
  auto v = log.CommitNext({Action("b", 2)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 2);
  auto latest = log.LatestVersion();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value(), 2);
}

TEST_F(TxnLogTest, ConcurrentCommittersGetDistinctVersions) {
  TxnLog log(&store_, "t/_log");
  constexpr int kWriters = 8;
  std::vector<std::thread> threads;
  std::vector<Version> got(kWriters, -1);
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&, i] {
      TxnLog local(&store_, "t/_log");
      auto v = local.CommitNext({Action("w", i)});
      ASSERT_TRUE(v.ok());
      got[i] = v.value();
    });
  }
  for (auto& t : threads) t.join();
  std::sort(got.begin(), got.end());
  for (int i = 0; i < kWriters; ++i) {
    EXPECT_EQ(got[i], i) << "versions must be dense and unique";
  }
}

TEST_F(TxnLogTest, ReplayConcatenatesInOrder) {
  TxnLog log(&store_, "t/_log");
  ASSERT_TRUE(log.Commit(0, {Action("x", 0)}).ok());
  ASSERT_TRUE(log.Commit(1, {Action("x", 1), Action("x", 2)}).ok());
  ASSERT_TRUE(log.Commit(2, {Action("x", 3)}).ok());

  std::vector<Json> actions;
  auto v = log.Replay(-1, &actions);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 2);
  ASSERT_EQ(actions.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    Json payload;
    ASSERT_TRUE(actions[i].Get("x", &payload));
    int64_t id;
    ASSERT_TRUE(payload.GetInt("id", &id).ok());
    EXPECT_EQ(id, i);
  }
}

TEST_F(TxnLogTest, ReplayToSpecificVersion) {
  TxnLog log(&store_, "t/_log");
  ASSERT_TRUE(log.Commit(0, {Action("x", 0)}).ok());
  ASSERT_TRUE(log.Commit(1, {Action("x", 1)}).ok());
  std::vector<Json> actions;
  auto v = log.Replay(0, &actions);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 0);
  EXPECT_EQ(actions.size(), 1u);
}

TEST_F(TxnLogTest, CommitNextRelistsToTailUnderContention) {
  // A conflict re-lists the log and jumps to the real tail instead of
  // probing `latest + 1 + attempt` blindly — a burst of N intervening
  // commits costs one extra conditional put, not N.
  objectstore::FaultInjectingStore faulty(&store_);
  TxnLog log(&faulty, "t/_log");
  ASSERT_TRUE(log.Commit(0, {Action("a", 0)}).ok());

  bool burst_done = false;
  faulty.SetFailurePoint(
      [&](const std::string& op, const std::string& key) -> Status {
        if (op == "put_if_absent" && !burst_done) {
          burst_done = true;
          // Five rival commits land just before our conditional put.
          TxnLog rival(&store_, "t/_log");
          for (int i = 0; i < 5; ++i) {
            EXPECT_TRUE(rival.CommitNext({Action("rival", i)}).ok());
          }
        }
        return Status::OK();
      });
  uint64_t puts_before = store_.stats().puts.load();
  auto v = log.CommitNext({Action("b", 9)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 6);  // Versions 1..5 went to the rival.
  // Total conditional puts: 5 rival + 2 ours (the conflicted probe and the
  // re-listed tail commit). A blind probe walk would have spent 6.
  EXPECT_EQ(store_.stats().puts.load() - puts_before, 7u);
}

TEST_F(TxnLogTest, CommitBackoffConsumesSimulatedTime) {
  objectstore::FaultInjectingStore faulty(&store_);
  TxnLog log(&faulty, "t/_log");
  objectstore::RetryPolicy policy;
  policy.initial_backoff_micros = 50'000;
  log.SetCommitBackoff(policy, objectstore::SimulatedSleeper(&clock_));

  bool fired = false;
  faulty.SetFailurePoint(
      [&](const std::string& op, const std::string& key) -> Status {
        if (op == "put_if_absent" && !fired) {
          fired = true;
          TxnLog rival(&store_, "t/_log");
          EXPECT_TRUE(rival.CommitNext({Action("rival", 0)}).ok());
        }
        return Status::OK();
      });
  Micros before = clock_.NowMicros();
  auto v = log.CommitNext({Action("b", 1)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 1);  // The rival took version 0.
  // The contention backoff advanced the simulated clock, not wall time.
  EXPECT_GT(clock_.NowMicros(), before);
}

TEST_F(TxnLogTest, SeparateLogsAreIndependent) {
  TxnLog a(&store_, "a/_log"), b(&store_, "b/_log");
  ASSERT_TRUE(a.Commit(0, {Action("x", 1)}).ok());
  EXPECT_TRUE(b.LatestVersion().status().IsNotFound());
}

}  // namespace
}  // namespace rottnest::lake
