// Multi-writer chaos harness (ISSUE 9 tentpole c): N concurrent committers
// — Append / DeleteWhere / CompactFiles / metadata-registry Update /
// Checkpoint / TruncateLog — race over a fault-injecting store (transient
// errors, ambiguous puts, injected latency) behind retrying decorators.
// Afterwards the version chain must be linearizable (no gaps, every ack a
// distinct version, no lost commits) and replay-from-0 byte-identical to
// checkpoint+suffix at every version. Phase 2 runs retention concurrently
// with the storm; phase 3 kills the store mid-storm and asserts a cold
// reopen converges.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lake/metadata_table.h"
#include "lake/table.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"

namespace rottnest::lake {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using objectstore::FaultInjectingStore;
using objectstore::FaultOptions;
using objectstore::InMemoryObjectStore;
using objectstore::RetryingStore;
using objectstore::RetryPolicy;
using objectstore::SimulatedSleeper;

Schema IdSchema() {
  Schema s;
  s.columns.push_back({"id", PhysicalType::kInt64, 0});
  return s;
}

RowBatch IdBatch(int64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = IdSchema();
  ColumnVector::Ints ids;
  for (size_t i = 0; i < rows; ++i) {
    ids.push_back(first_id + static_cast<int64_t>(i));
  }
  b.columns.emplace_back(std::move(ids));
  return b;
}

FaultOptions ChaosFaults(uint64_t seed) {
  FaultOptions f;
  f.seed = seed;
  f.transient_fault_rate = 0.02;
  f.ambiguous_put_rate = 0.03;
  f.base_latency_micros = 20;
  f.slow_read_rate = 0.02;
  f.slow_read_latency_micros = 2'000;
  return f;
}

RetryPolicy ChaosRetry() {
  RetryPolicy p;
  p.max_attempts = 16;
  p.initial_backoff_micros = 500;
  p.max_backoff_micros = 50'000;
  return p;
}

/// The shared chaos universe: clean memory at the bottom, deterministic
/// seeded faults in the middle, retries (with simulated-time backoff) on
/// top. Writers commit through `store`; post-storm audits read `inner`
/// directly so verification is not itself perturbed by injected faults.
struct ChaosWorld {
  SimulatedClock clock;
  InMemoryObjectStore inner{&clock};
  FaultInjectingStore faults;
  RetryingStore store;

  explicit ChaosWorld(uint64_t seed)
      : faults(&inner, ChaosFaults(seed)),
        store(&faults, ChaosRetry(), SimulatedSleeper(&clock)) {
    faults.SetSleeper(SimulatedSleeper(&clock));
  }

  std::unique_ptr<Table> OpenWriter(const std::string& root) {
    auto opened = Table::Open(&store, root);
    if (!opened.ok()) return nullptr;
    auto table = opened.MoveValue();
    table->log().SetCommitBackoff(ChaosRetry(), SimulatedSleeper(&clock));
    return table;
  }
};

/// Byte-identity of checkpoint+suffix vs replay-from-0 at every version,
/// via two independent cold readers of the clean inner store.
void AssertEquivalentAtEveryVersion(InMemoryObjectStore* inner,
                                    const std::string& root) {
  auto with = Table::Open(inner, root).MoveValue();
  auto without = Table::Open(inner, root).MoveValue();
  without->log().set_use_checkpoints(false);
  Version latest = with->log().LatestVersion().MoveValue();
  ASSERT_EQ(without->log().LatestVersion().MoveValue(), latest);
  for (Version v = 0; v <= latest; ++v) {
    auto a = with->GetSnapshot(v);
    auto b = without->GetSnapshot(v);
    ASSERT_TRUE(a.ok()) << "v" << v << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << "v" << v << ": " << b.status().ToString();
    EXPECT_EQ(a.value().DebugString(), b.value().DebugString())
        << "divergence at version " << v;
  }
}

// ---------------------------------------------------------------------------
// Phase 1: the storm without retention — full per-version equivalence.

TEST(MultiWriterChaosTest, StormKeepsChainLinearizableAndReplayEquivalent) {
  ChaosWorld w(20260809);
  const std::string root = "lake/c";
  ASSERT_TRUE(Table::Create(&w.store, root, IdSchema()).ok());

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 8;
  std::mutex mu;
  std::vector<Version> append_acks;  // Must be pairwise distinct.
  std::vector<Version> meta_acks;    // Registry log: its own chain.
  std::atomic<int> append_failures{0};

  std::vector<std::thread> threads;
  for (int wr = 0; wr < kWriters; ++wr) {
    threads.emplace_back([&, wr] {
      auto table = w.OpenWriter(root);
      ASSERT_NE(table, nullptr);
      MetadataTable meta(&w.store, root);
      for (int j = 0; j < kOpsPerWriter; ++j) {
        auto v = table->Append(IdBatch(wr * 1000 + j * 10, 5));
        if (v.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          append_acks.push_back(v.value());
        } else {
          append_failures.fetch_add(1);
        }
        switch (wr) {
          case 0:
            // Checkpointer: races the pointer against everyone's commits.
            if (j % 3 == 2) table->Checkpoint().status();
            break;
          case 1:
            if (j % 4 == 3) {
              table
                  ->DeleteWhere("id",
                                [](const ColumnVector& c, size_t r) {
                                  return c.ints()[r] % 13 == 1;
                                })
                  .status();
            }
            break;
          case 2: {
            // "Index" commits: the metadata registry is a second log with
            // its own checkpointed chain.
            IndexEntry e;
            e.index_path = "idx/c/w2-" + std::to_string(j) + ".index";
            e.index_type = "trie";
            e.column = "id";
            e.covered_files = {"data/f" + std::to_string(j)};
            e.rows = 5;
            auto mv = meta.Update({e}, {});
            if (mv.ok()) {
              std::lock_guard<std::mutex> lock(mu);
              meta_acks.push_back(mv.value());
            }
            if (j % 3 == 2) meta.Checkpoint().status();
            break;
          }
          default:
            if (j % 5 == 4) table->CompactFiles(1 << 20).status();
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // The chaos was real: the seeded stream injected faults into the storm.
  EXPECT_GT(w.faults.fault_stats().transient_injected.load() +
                w.faults.fault_stats().ambiguous_injected.load(),
            0u);
  // Retries absorb almost everything; a rare exhausted budget is legal.
  EXPECT_GE(append_acks.size(),
            static_cast<size_t>(kWriters * kOpsPerWriter / 2));

  // No lost commits, no double-acks: every acked append is a distinct
  // version of a gap-free chain.
  std::set<Version> distinct(append_acks.begin(), append_acks.end());
  EXPECT_EQ(distinct.size(), append_acks.size());
  std::set<Version> meta_distinct(meta_acks.begin(), meta_acks.end());
  EXPECT_EQ(meta_distinct.size(), meta_acks.size());

  TxnLog audit(&w.inner, root + "/_log");
  Version latest = audit.LatestVersion().MoveValue();
  for (Version v = 0; v <= latest; ++v) {
    std::vector<Json> actions;
    EXPECT_TRUE(audit.ReadVersion(v, &actions).ok()) << "gap at v" << v;
  }
  for (Version v : append_acks) EXPECT_LE(v, latest);

  AssertEquivalentAtEveryVersion(&w.inner, root);

  // The registry chain replays identically with and without checkpoints.
  TxnLog meta_with(&w.inner, root + "/_meta");
  TxnLog meta_without(&w.inner, root + "/_meta");
  meta_without.set_use_checkpoints(false);
  std::vector<Json> a, b;
  ASSERT_TRUE(meta_with.Replay(-1, &a).ok());
  ASSERT_TRUE(meta_without.Replay(-1, &b).ok());
  // Checkpoint seeding compacts the prefix, so compare reconciled state.
  std::vector<Json> ca, cb;
  ASSERT_TRUE(CompactMetaActions(a, &ca).ok());
  ASSERT_TRUE(CompactMetaActions(b, &cb).ok());
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].Dump(), cb[i].Dump());
  }
}

// ---------------------------------------------------------------------------
// Phase 2: the storm with concurrent retention. Readers may only ever see
// correct bytes, a typed truncated error, or a retryable failure — never
// a torn state.

TEST(MultiWriterChaosTest, ConcurrentTruncationYieldsTypedErrorsOnly) {
  ChaosWorld w(20260811);
  const std::string root = "lake/t";
  ASSERT_TRUE(Table::Create(&w.store, root, IdSchema()).ok());

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 6;
  std::mutex mu;
  std::vector<Version> append_acks;
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int wr = 0; wr < kWriters; ++wr) {
    threads.emplace_back([&, wr] {
      auto table = w.OpenWriter(root);
      ASSERT_NE(table, nullptr);
      for (int j = 0; j < kOpsPerWriter; ++j) {
        auto v = table->Append(IdBatch(wr * 1000 + j * 10, 5));
        if (v.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          append_acks.push_back(v.value());
        }
      }
    });
  }
  // The retention daemon: checkpoint + truncate in a loop, racing the
  // appenders' commits and each other's pointer advances.
  threads.emplace_back([&] {
    auto table = w.OpenWriter(root);
    ASSERT_NE(table, nullptr);
    // Keep going until retention has actually bitten — the post-storm
    // audit asserts a moved floor.
    bool floor_moved = false;
    for (int iter = 0; iter < 500 && !(floor_moved && done.load());
         ++iter) {
      table->Checkpoint().status();
      // Windowed retention while the storm runs; once the writers are done,
      // tighten to keep=0 (final compaction) so the floor provably bites —
      // a window reaching below the newest checkpoint is refused unless an
      // older checkpoint can seed replay of the retained versions.
      table->TruncateLog(/*keep_versions=*/done.load() ? 0 : 4).status();
      auto ptr = table->log().checkpointer().ReadPointer();
      if (ptr.ok() && ptr.value().truncated_before > 0) floor_moved = true;
      w.clock.Advance(1'000);
    }
    EXPECT_TRUE(floor_moved);
  });
  // A chaos reader: every observation must be a valid snapshot or a typed
  // failure (truncated / transient / deadline) — never corruption.
  threads.emplace_back([&] {
    auto table = w.OpenWriter(root);
    ASSERT_NE(table, nullptr);
    while (!done.load()) {
      auto snap = table->GetSnapshot();
      if (!snap.ok()) {
        EXPECT_TRUE(snap.status().IsUnavailable() ||
                    snap.status().IsNotFound() ||
                    snap.status().IsDeadlineExceeded())
            << snap.status().ToString();
      }
      w.clock.Advance(500);
    }
  });
  for (int i = 0; i < kWriters; ++i) threads[i].join();
  done.store(true);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  std::set<Version> distinct(append_acks.begin(), append_acks.end());
  EXPECT_EQ(distinct.size(), append_acks.size());
  EXPECT_GE(append_acks.size(),
            static_cast<size_t>(kWriters * kOpsPerWriter / 2));

  // Audit on the clean store: above the pointer's version everything is
  // readable and two independent cold readers agree byte-for-byte; below
  // the retention floor the failure is the typed truncated error.
  auto r1 = Table::Open(&w.inner, root).MoveValue();
  auto r2 = Table::Open(&w.inner, root).MoveValue();
  Version latest = r1->log().LatestVersion().MoveValue();
  auto ptr = r1->log().checkpointer().ReadPointer();
  ASSERT_TRUE(ptr.ok()) << ptr.status().ToString();
  ASSERT_GE(ptr.value().version, 0);
  EXPECT_GT(ptr.value().truncated_before, 0);  // Retention actually ran.
  for (Version v = 0; v <= latest; ++v) {
    auto a = r1->GetSnapshot(v);
    if (v >= ptr.value().version) {
      ASSERT_TRUE(a.ok()) << "v" << v << ": " << a.status().ToString();
    }
    if (a.ok()) {
      auto b = r2->GetSnapshot(v);
      ASSERT_TRUE(b.ok()) << "v" << v << ": " << b.status().ToString();
      EXPECT_EQ(a.value().DebugString(), b.value().DebugString());
    } else {
      EXPECT_TRUE(a.status().IsNotFound()) << a.status().ToString();
      EXPECT_NE(a.status().message().find("version truncated"),
                std::string::npos)
          << a.status().ToString();
    }
  }
  // Row accounting: every acked batch's rows are in the final snapshot
  // (5-row batches; a failed-but-landed commit may add more).
  uint64_t rows = r1->GetSnapshot().MoveValue().TotalRows();
  EXPECT_GE(rows, 5 * append_acks.size());
  EXPECT_EQ(rows % 5, 0u);
}

// ---------------------------------------------------------------------------
// Phase 3: kill the store mid-storm; a cold reopen must converge.

TEST(MultiWriterChaosTest, CrashMidStormReopensAndConverges) {
  for (uint64_t seed : {3u, 11u, 19u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosWorld w(20260813 + seed);
    const std::string root = "lake/x";
    ASSERT_TRUE(Table::Create(&w.store, root, IdSchema()).ok());
    // Arm the crash somewhere inside the storm's op stream.
    w.faults.SetCrashAtOp(50 + seed * 7,
                          seed % 2 == 0 ? objectstore::CrashMode::kBeforeOp
                                        : objectstore::CrashMode::kAfterOp);

    constexpr int kWriters = 3;
    std::vector<std::thread> threads;
    for (int wr = 0; wr < kWriters; ++wr) {
      threads.emplace_back([&, wr] {
        auto table = w.OpenWriter(root);
        if (table == nullptr) return;  // Crashed before our open finished.
        for (int j = 0; j < 6; ++j) {
          table->Append(IdBatch(wr * 1000 + j * 10, 5)).status();
          if (wr == 0 && j % 2 == 1) {
            table->Checkpoint().status();
            table->TruncateLog(3).status();
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (!w.faults.crashed()) {
      // The storm finished before the countdown elapsed; keep committing
      // until the crash fires so every seed exercises a real crash.
      auto t = w.OpenWriter(root);
      for (int i = 0; i < 300 && t != nullptr && !w.faults.crashed(); ++i) {
        t->Append(IdBatch(5000 + i, 1)).status();
      }
    }
    ASSERT_TRUE(w.faults.crashed());  // The storm really died mid-flight.
    w.faults.ClearCrash();            // "Restart."

    // Cold reopen over the crashed remains: a readable, convergent chain.
    auto cold = Table::Open(&w.store, root);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    Version latest = cold.value()->log().LatestVersion().MoveValue();
    for (Version v = 0; v <= latest; ++v) {
      auto snap = cold.value()->GetSnapshot(v);
      if (!snap.ok()) {
        EXPECT_TRUE(snap.status().IsNotFound())
            << "v" << v << ": " << snap.status().ToString();
        EXPECT_NE(snap.status().message().find("version truncated"),
                  std::string::npos)
            << "v" << v << ": " << snap.status().ToString();
      }
    }
    // The metadata plane still moves forward: commit, checkpoint,
    // truncate, and a second cold reader agrees on the result.
    auto v = cold.value()->Append(IdBatch(9000, 5));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(v.value(), latest + 1);
    ASSERT_TRUE(cold.value()->Checkpoint().ok());
    auto again = Table::Open(&w.inner, root).MoveValue();
    EXPECT_EQ(again->GetSnapshot().MoveValue().DebugString(),
              cold.value()->GetSnapshot().MoveValue().DebugString());
  }
}

}  // namespace
}  // namespace rottnest::lake
