#include "lake/table.h"

#include <gtest/gtest.h>

#include <set>

#include "format/reader.h"
#include "objectstore/object_store.h"

namespace rottnest::lake {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using objectstore::InMemoryObjectStore;

Schema LogSchema() {
  Schema s;
  s.columns.push_back({"id", PhysicalType::kInt64, 0});
  s.columns.push_back({"msg", PhysicalType::kByteArray, 0});
  return s;
}

RowBatch MakeBatch(int64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = LogSchema();
  ColumnVector::Ints ids;
  ColumnVector::Strings msgs;
  for (size_t i = 0; i < rows; ++i) {
    ids.push_back(first_id + static_cast<int64_t>(i));
    msgs.push_back("message-" + std::to_string(first_id + i));
  }
  b.columns.emplace_back(std::move(ids));
  b.columns.emplace_back(std::move(msgs));
  return b;
}

class TableTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
};

TEST_F(TableTest, CreateAndOpen) {
  auto t = Table::Create(&store_, "tables/logs", LogSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto reopened = Table::Open(&store_, "tables/logs");
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value()->schema().columns.size(), 2u);
  EXPECT_EQ(reopened.value()->schema().columns[1].name, "msg");
}

TEST_F(TableTest, CreateTwiceFails) {
  ASSERT_TRUE(Table::Create(&store_, "t", LogSchema()).ok());
  EXPECT_TRUE(Table::Create(&store_, "t", LogSchema())
                  .status()
                  .IsAlreadyExists());
}

TEST_F(TableTest, OpenMissingFails) {
  EXPECT_FALSE(Table::Open(&store_, "ghost").ok());
}

TEST_F(TableTest, AppendCreatesSnapshotFiles) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 100)).ok());
  ASSERT_TRUE(t->Append(MakeBatch(100, 50)).ok());

  auto snap = t->GetSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().files.size(), 2u);
  EXPECT_EQ(snap.value().TotalRows(), 150u);
  for (const DataFile& f : snap.value().files) {
    EXPECT_GT(f.bytes, 0u);
    objectstore::ObjectMeta meta;
    EXPECT_TRUE(store_.Head(f.path, &meta).ok()) << f.path;
    EXPECT_EQ(meta.size, f.bytes);
  }
}

TEST_F(TableTest, AppendedDataReadsBack) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  RowBatch batch = MakeBatch(7, 20);
  ASSERT_TRUE(t->Append(batch).ok());
  auto snap = t->GetSnapshot().MoveValue();
  ASSERT_EQ(snap.files.size(), 1u);
  auto reader = format::FileReader::Open(&store_, snap.files[0].path, nullptr)
                    .MoveValue();
  ColumnVector msg;
  ASSERT_TRUE(reader->ReadColumn(1, nullptr, &msg).ok());
  EXPECT_EQ(msg.strings(), batch.columns[1].strings());
}

TEST_F(TableTest, TimeTravelSeesOldSnapshot) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  auto v1 = t->Append(MakeBatch(0, 10));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(t->Append(MakeBatch(10, 10)).ok());

  auto old_snap = t->GetSnapshot(v1.value());
  ASSERT_TRUE(old_snap.ok());
  EXPECT_EQ(old_snap.value().files.size(), 1u);
  EXPECT_EQ(old_snap.value().TotalRows(), 10u);

  auto new_snap = t->GetSnapshot();
  ASSERT_TRUE(new_snap.ok());
  EXPECT_EQ(new_snap.value().files.size(), 2u);
}

TEST_F(TableTest, CompactMergesSmallFiles) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t->Append(MakeBatch(i * 10, 10)).ok());
  }
  auto before = t->GetSnapshot().MoveValue();
  ASSERT_EQ(before.files.size(), 4u);

  auto v = t->CompactFiles(UINT64_MAX);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto after = t->GetSnapshot().MoveValue();
  ASSERT_EQ(after.files.size(), 1u);
  EXPECT_EQ(after.TotalRows(), 40u);

  // Merged content preserves all rows.
  auto reader = format::FileReader::Open(&store_, after.files[0].path, nullptr)
                    .MoveValue();
  ColumnVector ids;
  ASSERT_TRUE(reader->ReadColumn(0, nullptr, &ids).ok());
  std::set<int64_t> seen(ids.ints().begin(), ids.ints().end());
  EXPECT_EQ(seen.size(), 40u);
  EXPECT_TRUE(seen.count(0) && seen.count(39));

  // Old snapshot still resolves to the old files (time travel).
  auto old_snap = t->GetSnapshot(before.version);
  ASSERT_TRUE(old_snap.ok());
  EXPECT_EQ(old_snap.value().files.size(), 4u);
}

TEST_F(TableTest, CompactOnlyTouchesSmallFiles) {
  format::WriterOptions options;
  auto t = Table::Create(&store_, "t", LogSchema(), options).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 2000)).ok());  // Big file.
  ASSERT_TRUE(t->Append(MakeBatch(2000, 5)).ok());  // Small.
  ASSERT_TRUE(t->Append(MakeBatch(2005, 5)).ok());  // Small.
  auto big_snap = t->GetSnapshot().MoveValue();
  uint64_t big_bytes = 0;
  for (const DataFile& f : big_snap.files) big_bytes = std::max(big_bytes, f.bytes);

  ASSERT_TRUE(t->CompactFiles(big_bytes).ok());  // Threshold below big file.
  auto after = t->GetSnapshot().MoveValue();
  EXPECT_EQ(after.files.size(), 2u);  // big + merged small pair
  EXPECT_EQ(after.TotalRows(), 2010u);
}

TEST_F(TableTest, CompactSingleSmallFileIsNoop) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 5)).ok());
  auto before = t->GetSnapshot().MoveValue();
  auto v = t->CompactFiles(UINT64_MAX);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), before.version);
}

TEST_F(TableTest, DeleteWhereWritesDeletionVector) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 100)).ok());
  auto v = t->DeleteWhere("id", [](const ColumnVector& col, size_t r) {
    return col.ints()[r] % 10 == 0;
  });
  ASSERT_TRUE(v.ok()) << v.status().ToString();

  auto snap = t->GetSnapshot().MoveValue();
  ASSERT_EQ(snap.files.size(), 1u);
  ASSERT_FALSE(snap.files[0].dv_path.empty());
  DeletionVector dv;
  ASSERT_TRUE(t->ReadDeletionVector(snap.files[0], &dv).ok());
  EXPECT_EQ(dv.size(), 10u);
  EXPECT_TRUE(dv.Contains(0));
  EXPECT_TRUE(dv.Contains(90));
  EXPECT_FALSE(dv.Contains(1));
}

TEST_F(TableTest, SuccessiveDeletesUnion) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 100)).ok());
  ASSERT_TRUE(t->DeleteWhere("id", [](const ColumnVector& c, size_t r) {
                 return c.ints()[r] == 5;
               }).ok());
  ASSERT_TRUE(t->DeleteWhere("id", [](const ColumnVector& c, size_t r) {
                 return c.ints()[r] == 7;
               }).ok());
  auto snap = t->GetSnapshot().MoveValue();
  DeletionVector dv;
  ASSERT_TRUE(t->ReadDeletionVector(snap.files[0], &dv).ok());
  EXPECT_TRUE(dv.Contains(5));
  EXPECT_TRUE(dv.Contains(7));
  EXPECT_EQ(dv.size(), 2u);
}

TEST_F(TableTest, DeleteWithNoMatchesIsNoop) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 10)).ok());
  auto before = t->GetSnapshot().MoveValue();
  auto v = t->DeleteWhere(
      "id", [](const ColumnVector&, size_t) { return false; });
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), before.version);
  EXPECT_TRUE(t->GetSnapshot().MoveValue().files[0].dv_path.empty());
}

TEST_F(TableTest, CompactionDropsDeletedRows) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 10)).ok());
  ASSERT_TRUE(t->Append(MakeBatch(10, 10)).ok());
  ASSERT_TRUE(t->DeleteWhere("id", [](const ColumnVector& c, size_t r) {
                 return c.ints()[r] < 5;
               }).ok());
  ASSERT_TRUE(t->CompactFiles(UINT64_MAX).ok());
  auto snap = t->GetSnapshot().MoveValue();
  ASSERT_EQ(snap.files.size(), 1u);
  EXPECT_EQ(snap.TotalRows(), 15u);
  EXPECT_TRUE(snap.files[0].dv_path.empty());
}

TEST_F(TableTest, VacuumRemovesOrphansRespectingRetention) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 10)).ok());
  ASSERT_TRUE(t->Append(MakeBatch(10, 10)).ok());
  ASSERT_TRUE(t->CompactFiles(UINT64_MAX).ok());
  // Two orphan data files exist now (replaced by the compacted file).

  // Young orphans survive a vacuum with retention.
  auto removed = t->Vacuum(/*retention_micros=*/1'000'000);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 0u);

  clock_.Advance(2'000'000);
  removed = t->Vacuum(1'000'000);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 2u);

  // Live file still readable.
  auto snap = t->GetSnapshot().MoveValue();
  ASSERT_EQ(snap.files.size(), 1u);
  objectstore::ObjectMeta meta;
  EXPECT_TRUE(store_.Head(snap.files[0].path, &meta).ok());
}

TEST_F(TableTest, VacuumKeepsReferencedDeletionVectors) {
  auto t = Table::Create(&store_, "t", LogSchema()).MoveValue();
  ASSERT_TRUE(t->Append(MakeBatch(0, 10)).ok());
  ASSERT_TRUE(t->DeleteWhere("id", [](const ColumnVector& c, size_t r) {
                 return c.ints()[r] == 0;
               }).ok());
  clock_.Advance(10'000'000);
  ASSERT_TRUE(t->Vacuum(1'000'000).ok());
  auto snap = t->GetSnapshot().MoveValue();
  DeletionVector dv;
  EXPECT_TRUE(t->ReadDeletionVector(snap.files[0], &dv).ok());
  EXPECT_EQ(dv.size(), 1u);
}

TEST(DeletionVectorTest, BuildSortsAndDedups) {
  DeletionVector dv({5, 1, 5, 3});
  EXPECT_EQ(dv.rows(), (std::vector<uint64_t>{1, 3, 5}));
  EXPECT_TRUE(dv.Contains(3));
  EXPECT_FALSE(dv.Contains(2));
}

TEST(DeletionVectorTest, SerializeRoundTrip) {
  DeletionVector dv({0, 7, 100000, 100001});
  Buffer buf;
  dv.Serialize(&buf);
  DeletionVector decoded;
  ASSERT_TRUE(DeletionVector::Deserialize(Slice(buf), &decoded).ok());
  EXPECT_EQ(decoded.rows(), dv.rows());
}

TEST(DeletionVectorTest, DeserializeRejectsTrailingBytes) {
  DeletionVector dv({1, 2});
  Buffer buf;
  dv.Serialize(&buf);
  buf.push_back(0);
  DeletionVector decoded;
  EXPECT_TRUE(
      DeletionVector::Deserialize(Slice(buf), &decoded).IsCorruption());
}

}  // namespace
}  // namespace rottnest::lake
