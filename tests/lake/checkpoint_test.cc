// Checkpointed metadata plane (ISSUE 9 tentpole): checkpoint + suffix
// replay equivalence at several checkpoint widths, torn-pointer / rotten-
// checkpoint fallbacks (never wrong, only slower), typed truncated time
// travel, the byte-flip corruption sweep over log entries and checkpoint
// objects, hint-accelerated tail discovery, crash-schedule exploration of
// Checkpoint/TruncateLog, and Scrub/Repair of rotten checkpoints.
#include "lake/checkpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rottnest.h"
#include "lake/table.h"
#include "lake/txn_log.h"
#include "obs/metrics.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"

namespace rottnest::lake {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using objectstore::CrashMode;
using objectstore::FaultInjectingStore;
using objectstore::InMemoryObjectStore;

Schema IdSchema() {
  Schema s;
  s.columns.push_back({"id", PhysicalType::kInt64, 0});
  return s;
}

RowBatch IdBatch(int64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = IdSchema();
  ColumnVector::Ints ids;
  for (size_t i = 0; i < rows; ++i) {
    ids.push_back(first_id + static_cast<int64_t>(i));
  }
  b.columns.emplace_back(std::move(ids));
  return b;
}

class CheckpointTest : public ::testing::Test {
 protected:
  /// Snapshot DebugStrings at every version, read through `table`.
  std::vector<std::string> SweepSnapshots(Table* table, Version latest) {
    std::vector<std::string> out;
    for (Version v = 0; v <= latest; ++v) {
      auto snap = table->GetSnapshot(v);
      EXPECT_TRUE(snap.ok()) << "v" << v << ": " << snap.status().ToString();
      out.push_back(snap.ok() ? snap.value().DebugString() : "<error>");
    }
    return out;
  }

  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
};

// ---------------------------------------------------------------------------
// Tentpole (a): checkpoint + suffix replay is byte-identical to full replay
// at EVERY version, for several checkpoint widths and interleaved deletes.

TEST_F(CheckpointTest, EquivalentToFullReplayAtEveryVersionAcrossWidths) {
  for (int width : {1, 3, 8}) {
    SCOPED_TRACE("checkpoint width " + std::to_string(width));
    const std::string root = "t" + std::to_string(width);
    auto t = Table::Create(&store_, root, IdSchema()).MoveValue();
    const int kCommits = 12;
    for (int i = 0; i < kCommits; ++i) {
      ASSERT_TRUE(t->Append(IdBatch(i * 10, 10)).ok());
      if (i % 4 == 3) {
        // Interleave deletes so checkpoints must reconcile remove actions.
        ASSERT_TRUE(t->DeleteWhere("id",
                                   [&](const ColumnVector& c, size_t r) {
                                     return c.ints()[r] % 10 == i % 10;
                                   })
                        .ok());
      }
      if ((i + 1) % width == 0) {
        ASSERT_TRUE(t->Checkpoint().ok());
      }
    }
    auto latest = t->log().LatestVersion();
    ASSERT_TRUE(latest.ok());

    // Two cold readers of the same store: one seeds replay from
    // checkpoints, the other replays every commit from 0.
    auto with = Table::Open(&store_, root).MoveValue();
    auto without = Table::Open(&store_, root).MoveValue();
    without->log().set_use_checkpoints(false);
    std::vector<std::string> a = SweepSnapshots(with.get(), latest.value());
    std::vector<std::string> b =
        SweepSnapshots(without.get(), latest.value());
    ASSERT_EQ(a.size(), b.size());
    for (size_t v = 0; v < a.size(); ++v) {
      EXPECT_EQ(a[v], b[v]) << "divergence at version " << v;
    }
  }
}

TEST_F(CheckpointTest, ColdReplayReadsCheckpointPlusSuffixOnly) {
  auto t = Table::Create(&store_, "t", IdSchema()).MoveValue();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t->Append(IdBatch(i, 1)).ok());
  }
  auto ckpt_v = t->Checkpoint();
  ASSERT_TRUE(ckpt_v.ok());
  for (int i = 20; i < 24; ++i) {
    ASSERT_TRUE(t->Append(IdBatch(i, 1)).ok());
  }

  auto cold = Table::Open(&store_, "t").MoveValue();
  std::vector<Json> actions;
  ReplayStats stats;
  auto v = cold->log().Replay(-1, &actions, &stats);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(stats.checkpoint_version, ckpt_v.value());
  // Only the 4 post-checkpoint commits are fetched entry-by-entry.
  EXPECT_EQ(stats.entry_gets, static_cast<uint64_t>(v.value() -
                                                    ckpt_v.value()));

  auto full = Table::Open(&store_, "t").MoveValue();
  full->log().set_use_checkpoints(false);
  ReplayStats full_stats;
  ASSERT_TRUE(full->log().Replay(-1, &actions, &full_stats).ok());
  EXPECT_FALSE(full_stats.used_checkpoint);
  EXPECT_EQ(full_stats.entry_gets, static_cast<uint64_t>(v.value() + 1));
}

// ---------------------------------------------------------------------------
// Fallback semantics: a torn pointer or rotten checkpoint degrades the read
// path, never corrupts it.

TEST_F(CheckpointTest, TornPointerFallsBackToListWalkAndStillServes) {
  auto t = Table::Create(&store_, "t", IdSchema()).MoveValue();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(t->Append(IdBatch(i, 2)).ok());
  ASSERT_TRUE(t->Checkpoint().ok());
  std::string expected = t->GetSnapshot().MoveValue().DebugString();

  // Tear the pointer: unparseable bytes, as a crashed writer would leave.
  const std::string ptr_key = t->log().checkpointer().pointer_key();
  const std::string torn = "torn{{{";
  ASSERT_TRUE(store_.Put(ptr_key, Slice(torn)).ok());

  obs::MetricsRegistry registry;
  auto cold = Table::Open(&store_, "t").MoveValue();
  cold->AttachMetrics(&registry);
  ReplayStats stats;
  std::vector<Json> actions;
  ASSERT_TRUE(cold->log().Replay(-1, &actions, &stats).ok());
  // The LIST walk still discovered the (valid) checkpoint object.
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_GE(registry.GetCounter("meta.checkpoint.fallbacks")->value(), 1u);
  EXPECT_EQ(cold->GetSnapshot().MoveValue().DebugString(), expected);
}

TEST_F(CheckpointTest, RottenCheckpointFallsBackToFullReplay) {
  auto t = Table::Create(&store_, "t", IdSchema()).MoveValue();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(t->Append(IdBatch(i, 2)).ok());
  auto ckpt_v = t->Checkpoint();
  ASSERT_TRUE(ckpt_v.ok());
  std::string expected = t->GetSnapshot().MoveValue().DebugString();

  // Rot the checkpoint payload itself; the pointer still names it.
  const std::string key = t->log().checkpointer().KeyFor(ckpt_v.value());
  const std::string junk = "{\"not\":\"a checkpoint\"}";
  ASSERT_TRUE(store_.Put(key, Slice(junk)).ok());

  auto cold = Table::Open(&store_, "t").MoveValue();
  ReplayStats stats;
  std::vector<Json> actions;
  ASSERT_TRUE(cold->log().Replay(-1, &actions, &stats).ok());
  EXPECT_FALSE(stats.used_checkpoint);  // Degraded to replay-from-0.
  EXPECT_EQ(cold->GetSnapshot().MoveValue().DebugString(), expected);

  // Read() itself reports typed Corruption naming the offending key.
  auto read = cold->log().checkpointer().Read(ckpt_v.value());
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsCorruption()) << read.status().ToString();
  EXPECT_NE(read.status().message().find(key), std::string::npos)
      << read.status().ToString();
}

// ---------------------------------------------------------------------------
// Tentpole (b): retention. Time travel below the floor is a typed error;
// the tail stays fully readable; a fully truncated log still knows its
// version chain.

TEST_F(CheckpointTest, TimeTravelBelowRetentionFloorIsTypedNotFound) {
  auto t = Table::Create(&store_, "t", IdSchema()).MoveValue();
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(t->Append(IdBatch(i, 1)).ok());
  ASSERT_TRUE(t->Checkpoint().ok());  // Checkpoint at version 7.
  for (int i = 7; i < 10; ++i) ASSERT_TRUE(t->Append(IdBatch(i, 1)).ok());
  auto latest = t->log().LatestVersion().MoveValue();
  std::string expected = t->GetSnapshot().MoveValue().DebugString();

  // A retention window reaching below the newest checkpoint with no older
  // checkpoint to seed replay from: nothing can be safely deleted, and the
  // old versions stay readable.
  auto noop = t->TruncateLog(/*keep_versions=*/5);
  ASSERT_TRUE(noop.ok()) << noop.status().ToString();
  EXPECT_EQ(noop.value(), 0u);
  EXPECT_TRUE(t->GetSnapshot(1).ok());

  // keep_versions=3 lands the floor exactly on the checkpoint boundary
  // (checkpoint 7 seeds replay of versions 8..10).
  auto deleted = t->TruncateLog(/*keep_versions=*/3);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_GT(deleted.value(), 0u);

  // Below the floor: typed, named error — not Corruption, not silence.
  auto old = t->GetSnapshot(1);
  ASSERT_FALSE(old.ok());
  EXPECT_TRUE(old.status().IsNotFound()) << old.status().ToString();
  EXPECT_NE(old.status().message().find("version truncated"),
            std::string::npos)
      << old.status().ToString();

  // The retained window and the tail still serve, cold as well as warm.
  EXPECT_TRUE(t->GetSnapshot(latest - 2).ok());
  EXPECT_EQ(t->GetSnapshot().MoveValue().DebugString(), expected);
  auto cold = Table::Open(&store_, "t").MoveValue();
  EXPECT_EQ(cold->GetSnapshot().MoveValue().DebugString(), expected);
}

TEST_F(CheckpointTest, FullyTruncatedLogStillCommitsFreshVersions) {
  auto t = Table::Create(&store_, "t", IdSchema()).MoveValue();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(t->Append(IdBatch(i, 1)).ok());
  ASSERT_TRUE(t->Checkpoint().ok());
  auto latest = t->log().LatestVersion().MoveValue();
  ASSERT_TRUE(t->TruncateLog(/*keep_versions=*/0).ok());

  // Every entry is gone; the checkpoint alone carries the state. A cold
  // open must still resolve the true tail — committing must not reuse a
  // burned version number.
  auto cold = Table::Open(&store_, "t").MoveValue();
  EXPECT_EQ(cold->log().LatestVersion().MoveValue(), latest);
  auto v = cold->Append(IdBatch(100, 1));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value(), latest + 1);
  EXPECT_EQ(cold->GetSnapshot().MoveValue().TotalRows(), 7u);
}

TEST_F(CheckpointTest, TruncateWithoutCheckpointIsRefused) {
  auto t = Table::Create(&store_, "t", IdSchema()).MoveValue();
  ASSERT_TRUE(t->Append(IdBatch(0, 1)).ok());
  auto s = t->TruncateLog(0);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsInvalidArgument()) << s.status().ToString();
}

// ---------------------------------------------------------------------------
// Satellite 1: byte-flip sweep. Every single-bit flip of a log entry or
// checkpoint body yields OK (the flip kept the JSON well-formed and the
// checksum, if any, happened to hold) or typed Corruption naming the key —
// never a crash, never a silently wrong other status.

TEST_F(CheckpointTest, LogEntryByteFlipSweepYieldsOkOrTypedCorruption) {
  TxnLog log(&store_, "sweep");
  std::vector<Json> actions;
  actions.push_back(Json(Json::Object{
      {"add", Json(Json::Object{{"path", Json("data/x.lake")},
                                {"rows", Json(int64_t{42})}})}}));
  ASSERT_TRUE(log.Commit(0, actions).ok());
  const std::string key = "sweep/00000000000000000000.json";

  Buffer pristine;
  ASSERT_TRUE(store_.Get(key, &pristine).ok());
  size_t corruptions = 0;
  for (size_t i = 0; i < pristine.size(); ++i) {
    Buffer flipped = pristine;
    flipped[i] ^= 0x20;
    ASSERT_TRUE(store_.Put(key, Slice(flipped.data(), flipped.size())).ok());
    std::vector<Json> out;
    Status s = log.ReadVersion(0, &out);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsCorruption()) << "byte " << i << ": " << s.ToString();
      EXPECT_NE(s.message().find(key), std::string::npos)
          << "byte " << i << ": " << s.ToString();
      ++corruptions;
    }
  }
  EXPECT_GT(corruptions, 0u);
  // Short bodies (torn writes) are typed the same way.
  Buffer torn(pristine.begin(), pristine.begin() + pristine.size() / 2);
  ASSERT_TRUE(store_.Put(key, Slice(torn.data(), torn.size())).ok());
  std::vector<Json> out;
  Status s = log.ReadVersion(0, &out);
  if (!s.ok()) {
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
    EXPECT_NE(s.message().find(key), std::string::npos);
  }
  ASSERT_TRUE(store_.Put(key, Slice(pristine.data(), pristine.size())).ok());
  EXPECT_TRUE(log.ReadVersion(0, &out).ok());
}

TEST_F(CheckpointTest, CheckpointByteFlipSweepIsChecksummed) {
  auto t = Table::Create(&store_, "t", IdSchema()).MoveValue();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(t->Append(IdBatch(i, 1)).ok());
  auto v = t->Checkpoint();
  ASSERT_TRUE(v.ok());
  Checkpointer& ckpt = t->log().checkpointer();
  const std::string key = ckpt.KeyFor(v.value());
  Buffer pristine;
  ASSERT_TRUE(store_.Get(key, &pristine).ok());

  size_t corruptions = 0;
  for (size_t i = 0; i < pristine.size(); ++i) {
    Buffer flipped = pristine;
    flipped[i] ^= 0x04;
    ASSERT_TRUE(store_.Put(key, Slice(flipped.data(), flipped.size())).ok());
    auto read = ckpt.Read(v.value());
    if (!read.ok()) {
      EXPECT_TRUE(read.status().IsCorruption())
          << "byte " << i << ": " << read.status().ToString();
      EXPECT_NE(read.status().message().find(key), std::string::npos);
      ++corruptions;
    }
  }
  // The Hash64 checksum catches content damage JSON parsing cannot: the
  // overwhelming majority of flips must be detected.
  EXPECT_GT(corruptions, pristine.size() / 2);
  ASSERT_TRUE(store_.Put(key, Slice(pristine.data(), pristine.size())).ok());
  EXPECT_TRUE(ckpt.Read(v.value()).ok());
}

// ---------------------------------------------------------------------------
// Satellite 2: hint-accelerated tail discovery — HEAD probes on the steady
// path, LIST only on big gaps or cold starts.

TEST_F(CheckpointTest, LatestVersionProbesForwardFromHint) {
  TxnLog writer(&store_, "hint");
  TxnLog reader(&store_, "hint");
  std::vector<Json> none;
  for (Version v = 0; v <= 4; ++v) ASSERT_TRUE(writer.Commit(v, none).ok());
  std::vector<Json> actions;
  ASSERT_TRUE(reader.Replay(-1, &actions).ok());  // Hint is now 4.

  // One new commit: the reader finds it with HEADs alone.
  ASSERT_TRUE(writer.Commit(5, none).ok());
  uint64_t lists_before = store_.stats().lists.load();
  EXPECT_EQ(reader.LatestVersion().MoveValue(), 5);
  EXPECT_EQ(store_.stats().lists.load(), lists_before);

  // A burst far past the probe window falls back to one LIST.
  for (Version v = 6; v <= 30; ++v) ASSERT_TRUE(writer.Commit(v, none).ok());
  lists_before = store_.stats().lists.load();
  EXPECT_EQ(reader.LatestVersion().MoveValue(), 30);
  EXPECT_EQ(store_.stats().lists.load(), lists_before + 1);

  // Explicit-hint overload: a stale caller-supplied hint converges too.
  EXPECT_EQ(reader.LatestVersion(28).MoveValue(), 30);
}

// ---------------------------------------------------------------------------
// Tentpole (b) crash exploration: Checkpoint and TruncateLog survive a
// crash at EVERY prefix of their storage footprint. After restart, every
// version either serves the pre-crash bytes or fails typed-truncated.

TEST(CheckpointCrashTest, CheckpointAndTruncateSurviveEveryCrashPoint) {
  struct Victim {
    const char* name;
    std::function<Status(Table*)> op;
  };
  const Victim victims[] = {
      {"checkpoint", [](Table* t) { return t->Checkpoint().status(); }},
      {"truncate",
       [](Table* t) {
         Status s = t->Checkpoint().status();
         if (!s.ok()) return s;
         return t->TruncateLog(2).status();
       }},
  };
  for (const Victim& victim : victims) {
    // Fault-free run: the victim's op-count footprint. (Expected snapshot
    // bytes are captured inside each crash run — data file names mix
    // instance identity, so they are not stable across separate builds.)
    uint64_t num_ops = 0;
    auto build = [](FaultInjectingStore* store) {
      auto t = Table::Create(store, "lake/c", IdSchema()).MoveValue();
      for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(t->Append(IdBatch(i, 2)).ok());
      }
      // Mid-stream checkpoint at version 4: gives the truncate victim a
      // floor to land on (retention can only cut at a checkpoint boundary).
      EXPECT_TRUE(t->Checkpoint().ok());
      for (int i = 4; i < 6; ++i) {
        EXPECT_TRUE(t->Append(IdBatch(i, 2)).ok());
      }
      return t;
    };
    {
      SimulatedClock clock;
      InMemoryObjectStore inner{&clock};
      FaultInjectingStore store(&inner, {});
      auto t = build(&store);
      uint64_t before = store.op_count();
      ASSERT_TRUE(victim.op(t.get()).ok());
      num_ops = store.op_count() - before;
    }
    ASSERT_GT(num_ops, 0u);

    for (uint64_t n = 0; n < num_ops; ++n) {
      for (CrashMode mode : {CrashMode::kBeforeOp, CrashMode::kAfterOp}) {
        SCOPED_TRACE(std::string(victim.name) + " crash at op " +
                     std::to_string(n) +
                     (mode == CrashMode::kBeforeOp ? " (before)"
                                                   : " (after)"));
        SimulatedClock clock;
        InMemoryObjectStore inner{&clock};
        FaultInjectingStore store(&inner, {});
        auto t = build(&store);
        Version latest = t->log().LatestVersion().MoveValue();
        std::vector<std::string> expected;
        for (Version v = 0; v <= latest; ++v) {
          expected.push_back(t->GetSnapshot(v).MoveValue().DebugString());
        }
        store.SetCrashAtOp(store.op_count() + n, mode);
        Status s = victim.op(t.get());
        EXPECT_FALSE(s.ok());
        EXPECT_TRUE(store.crashed());
        store.ClearCrash();  // "Restart."

        // Reopen converges: every version serves the exact pre-crash
        // bytes or fails typed-truncated — never corrupt, never torn.
        auto cold = Table::Open(&store, "lake/c");
        ASSERT_TRUE(cold.ok()) << cold.status().ToString();
        for (Version v = 0; v <= latest; ++v) {
          auto snap = cold.value()->GetSnapshot(v);
          if (snap.ok()) {
            EXPECT_EQ(snap.value().DebugString(), expected[v])
                << "version " << v;
          } else {
            EXPECT_TRUE(snap.status().IsNotFound())
                << "v" << v << ": " << snap.status().ToString();
            EXPECT_NE(
                snap.status().message().find("version truncated"),
                std::string::npos)
                << "v" << v << ": " << snap.status().ToString();
          }
        }
        // The retried operation completes and the tail still serves.
        Status retry = victim.op(cold.value().get());
        EXPECT_TRUE(retry.ok()) << retry.ToString();
        EXPECT_EQ(cold.value()->GetSnapshot().MoveValue().DebugString(),
                  expected[latest]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Tentpole (b): Scrub audits checkpoint integrity; Repair rebuilds rotten
// checkpoints from the log.

core::RottnestOptions ClientOptions() {
  core::RottnestOptions options;
  options.index_dir = "idx/p";
  return options;
}

TEST(CheckpointScrubTest, ScrubFlagsRottenCheckpointAndRepairRebuilds) {
  SimulatedClock clock;
  InMemoryObjectStore store{&clock};
  auto table = Table::Create(&store, "lake/p", IdSchema()).MoveValue();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table->Append(IdBatch(i, 2)).ok());
  }
  auto v = table->Checkpoint();
  ASSERT_TRUE(v.ok());
  core::Rottnest client(&store, table.get(), ClientOptions());

  auto pristine = client.Scrub();
  ASSERT_TRUE(pristine.ok());
  EXPECT_TRUE(pristine.value().clean());
  EXPECT_GE(pristine.value().checkpoints_checked, 1u);

  // Rot the table checkpoint in place.
  const std::string key = table->log().checkpointer().KeyFor(v.value());
  const std::string rot = "rotten";
  ASSERT_TRUE(store.Put(key, Slice(rot)).ok());

  auto scrub = client.Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_FALSE(scrub.value().clean());
  bool flagged = false;
  for (const auto& f : scrub.value().findings) {
    if (f.kind == core::ScrubFindingKind::kCorruptCheckpoint &&
        f.index_path == key) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);

  auto repair = client.Repair(scrub.value());
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  ASSERT_EQ(repair.value().checkpoints_rebuilt.size(), 1u);
  EXPECT_EQ(repair.value().checkpoints_rebuilt[0], key);

  // The rebuilt checkpoint validates and the plane scrubs clean again.
  EXPECT_TRUE(table->log().checkpointer().Read(v.value()).ok());
  auto again = client.Scrub();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().clean()) << again.value().findings.size()
                                     << " findings";
}

TEST(CheckpointScrubTest, OrphanCheckpointIsWarningNotError) {
  SimulatedClock clock;
  InMemoryObjectStore store{&clock};
  auto table = Table::Create(&store, "lake/p", IdSchema()).MoveValue();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(table->Append(IdBatch(i, 1)).ok());
  }
  ASSERT_TRUE(table->Checkpoint().ok());
  // Simulate a crash between checkpoint write and pointer move: the
  // checkpoint object exists but nothing names it.
  ASSERT_TRUE(store.Delete(table->log().checkpointer().pointer_key()).ok());

  core::Rottnest client(&store, table.get(), ClientOptions());
  auto scrub = client.Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub.value().clean());  // Legal crash residue: no error.
  bool warned = false;
  for (const auto& f : scrub.value().findings) {
    if (f.kind == core::ScrubFindingKind::kOrphanCheckpoint) {
      EXPECT_EQ(f.severity, core::ScrubSeverity::kWarning);
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

}  // namespace
}  // namespace rottnest::lake
