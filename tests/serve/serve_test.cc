// The serving front-end, end to end:
//   * the unified Query API through the engine answers exactly like the
//     direct Search*/Count* wrappers;
//   * a multi-tenant closed loop completes everything and the per-query
//     traced GETs reconcile EXACTLY against the shared cache's physical
//     counters (hits + misses + coalesced + wave_hits);
//   * weighted tenants complete proportionally under saturation, and no
//     tenant starves;
//   * queue wait counts against the ambient deadline — a query that
//     expires queued fails typed DeadlineExceeded BEFORE any planning I/O;
//   * a GET wave shares physical fetches across members (the wave ledger),
//     cutting physical GETs vs the same queries unbatched;
//   * inside a wave each member keeps its OWN deadline, and a breaker-
//     failed shared fetch propagates per-query (failures are never
//     ledger-cached);
//   * Shutdown fails queued queries typed Unavailable.
// TSAN-relevant throughout: many submitter threads block on Execute while
// the dispatcher and the shared pool complete them.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rottnest.h"
#include "objectstore/fault_injection.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "workload/generators.h"
#include "workload/multi_tenant.h"

namespace rottnest::serve {
namespace {

using core::Query;
using core::QueryResponse;
using core::Rottnest;
using core::RottnestOptions;
using core::SearchOptions;
using core::SearchResult;
using index::IndexType;
using objectstore::BrownOut;
using objectstore::FaultInjectingStore;
using objectstore::InMemoryObjectStore;
using objectstore::IoStats;
using objectstore::SimulatedSleeper;

/// The canonical dataset (generators.h schema: ts/uuid/body/vec) behind a
/// FaultInjectingStore, so tests can inject latency and outages around the
/// serving path. Small enough to index in milliseconds.
struct ServeWorld {
  SimulatedClock clock;
  InMemoryObjectStore mem{&clock};
  FaultInjectingStore store{&mem};
  workload::DatasetSpec spec;
  std::unique_ptr<lake::Table> table;

  explicit ServeWorld(bool simulated_sleep = true) {
    if (simulated_sleep) store.SetSleeper(SimulatedSleeper(&clock));
    spec.total_rows = 600;
    spec.num_files = 3;
    spec.doc_chars = 120;
    spec.vector_dim = 16;
    format::WriterOptions w;
    w.target_page_bytes = 2048;
    w.target_row_group_bytes = 32 << 10;
    table = workload::BuildDataset(&store, "lake/t", spec, w).MoveValue();
  }

  RottnestOptions Options(uint64_t cache_bytes = 0) const {
    RottnestOptions o;
    o.index_dir = "idx/t";
    o.fm.block_size = 2048;
    o.fm.sample_rate = 8;
    o.ivfpq.nlist = 16;
    o.ivfpq.num_subquantizers = 4;
    o.cache_bytes = cache_bytes;
    // Heads uncached: the cache counters then cover byte reads only, so
    // per-query traced GETs reconcile EXACTLY against them.
    o.cache_heads = false;
    return o;
  }

  /// One index per column over all three files.
  void Build(Rottnest* client) {
    ASSERT_TRUE(client->Index("uuid", IndexType::kTrie).ok());
    ASSERT_TRUE(client->Index("body", IndexType::kFm).ok());
    ASSERT_TRUE(client->Index("vec", IndexType::kIvfPq).ok());
  }

  std::string UuidFor(uint64_t row) const {
    return workload::UuidGenerator(spec.seed, spec.uuid_bytes).IdFor(row);
  }

  /// From now on every store op costs `extra` on the (simulated) clock.
  void SlowEverything(Micros extra) {
    store.AddBrownOut(BrownOut{
        clock.NowMicros(),
        clock.NowMicros() + 100LL * 365 * 86'400 * 1'000'000, "", extra});
  }
};

/// Blocks until `engine` holds exactly `n` queued queries (staging tests
/// run the engine paused, so the depth can only grow to n and stay).
void WaitForQueueDepth(const QueryEngine& engine, size_t n) {
  while (engine.QueueDepth() < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

uint64_t CachePhysicalGets(const Rottnest& client) {
  return client.cache()->stats().cache_misses.load();
}

uint64_t CacheLogicalGets(const Rottnest& client) {
  const IoStats& s = client.cache()->stats();
  return s.cache_hits.load() + s.cache_misses.load() +
         s.cache_coalesced.load() + s.cache_wave_hits.load();
}

// ---------------------------------------------------------------------------
// Unified API equivalence: the engine is a scheduler, not a different
// query planner — every kind answers exactly like its direct wrapper.
// ---------------------------------------------------------------------------

TEST(ServeTest, EngineExecuteMatchesDirectSearch) {
  ServeWorld w;
  Rottnest client(&w.store, w.table.get(), w.Options());
  w.Build(&client);
  QueryEngine engine(&client, ServeOptions{});

  // UUID lookup: exactly one verified match, identical row.
  std::string id = w.UuidFor(42);
  auto direct_uuid = client.SearchUuid("uuid", Slice(id), 5);
  ASSERT_TRUE(direct_uuid.ok()) << direct_uuid.status().ToString();
  ASSERT_EQ(direct_uuid.value().matches.size(), 1u);
  auto via_engine = engine.Execute(Query::Uuid("uuid", id, 5));
  ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
  ASSERT_EQ(via_engine.value().result.matches.size(), 1u);
  EXPECT_EQ(via_engine.value().result.matches[0].row,
            direct_uuid.value().matches[0].row);
  EXPECT_EQ(via_engine.value().result.matches[0].file,
            direct_uuid.value().matches[0].file);

  // Substring + regex (a literal pattern, so both take the FM path) +
  // count: identical matches and identical exact count.
  workload::TextGenerator text(w.spec.seed);
  std::string pattern = text.SamplePattern(1);
  auto direct_sub = client.SearchSubstring("body", pattern, 8);
  ASSERT_TRUE(direct_sub.ok());
  auto engine_sub = engine.Execute(Query::Substring("body", pattern, 8));
  ASSERT_TRUE(engine_sub.ok());
  ASSERT_EQ(engine_sub.value().result.matches.size(),
            direct_sub.value().matches.size());
  for (size_t i = 0; i < direct_sub.value().matches.size(); ++i) {
    EXPECT_EQ(engine_sub.value().result.matches[i].row,
              direct_sub.value().matches[i].row);
  }
  auto direct_regex = client.SearchRegex("body", pattern, 8);
  ASSERT_TRUE(direct_regex.ok());
  auto engine_regex = engine.Execute(Query::Regex("body", pattern, 8));
  ASSERT_TRUE(engine_regex.ok());
  EXPECT_EQ(engine_regex.value().result.matches.size(),
            direct_regex.value().matches.size());
  auto direct_count = client.CountSubstring("body", pattern);
  ASSERT_TRUE(direct_count.ok());
  auto engine_count = engine.Execute(Query::Count("body", pattern));
  ASSERT_TRUE(engine_count.ok());
  EXPECT_EQ(engine_count.value().count, direct_count.value());

  // Vector ANN: same candidates, same exact reranked distances.
  std::vector<float> qv =
      workload::VectorGenerator(w.spec.seed, w.spec.vector_dim)
          .QueryNear(10);
  auto direct_vec = client.SearchVector("vec", qv.data(),
                                        static_cast<uint32_t>(qv.size()), 4);
  ASSERT_TRUE(direct_vec.ok()) << direct_vec.status().ToString();
  auto engine_vec = engine.Execute(Query::Vector("vec", qv, 4));
  ASSERT_TRUE(engine_vec.ok()) << engine_vec.status().ToString();
  ASSERT_EQ(engine_vec.value().result.matches.size(),
            direct_vec.value().matches.size());
  for (size_t i = 0; i < direct_vec.value().matches.size(); ++i) {
    EXPECT_EQ(engine_vec.value().result.matches[i].row,
              direct_vec.value().matches[i].row);
    EXPECT_FLOAT_EQ(engine_vec.value().result.matches[i].distance,
                    direct_vec.value().matches[i].distance);
  }

  EXPECT_EQ(engine.stats().submitted.load(), 5u);
  EXPECT_EQ(engine.stats().completed.load(), 5u);
  EXPECT_EQ(engine.stats().failed.load(), 0u);
}

TEST(ServeTest, InvalidQueryFailsTypedThroughEngine) {
  ServeWorld w;
  Rottnest client(&w.store, w.table.get(), w.Options());
  w.Build(&client);
  QueryEngine engine(&client, ServeOptions{});

  auto r = engine.Execute(Query::Vector("vec", {}, 4));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  // The failure flowed through a wave like any other completion.
  EXPECT_EQ(engine.stats().completed.load(), 1u);
  EXPECT_EQ(engine.stats().failed.load(), 1u);
}

// ---------------------------------------------------------------------------
// The multi-tenant closed loop: everything completes, and logical reads
// reconcile exactly against the shared cache.
// ---------------------------------------------------------------------------

TEST(ServeTest, MultiTenantClosedLoopReconcilesExactly) {
  ServeWorld w;
  Rottnest client(&w.store, w.table.get(), w.Options(256 << 10));
  w.Build(&client);
  ASSERT_NE(client.cache(), nullptr);

  obs::MetricsRegistry registry;
  QueryEngine engine(&client, ServeOptions{});
  engine.AttachMetrics(&registry);

  workload::MultiTenantSpec mt;
  mt.dataset = w.spec;
  mt.tenants = 3;
  mt.clients = 6;
  mt.requests_per_client = 8;
  workload::MultiTenantWorkload workload(mt);

  const uint64_t physical0 = CachePhysicalGets(client);
  const uint64_t logical0 = CacheLogicalGets(client);
  workload::ServeLoopReport report =
      workload::RunServeLoop(&engine, workload, /*trace_requests=*/true);

  const uint64_t total = static_cast<uint64_t>(mt.clients) *
                         static_cast<uint64_t>(mt.requests_per_client);
  EXPECT_EQ(report.overall.total(), total);
  EXPECT_EQ(report.overall.errors, 0u);
  EXPECT_EQ(report.overall.shed, 0u);
  EXPECT_EQ(report.overall.ok, total);  // No deadlines, no faults.

  // Engine accounting: every submission completed, in waves.
  EXPECT_EQ(engine.stats().submitted.load(), total);
  EXPECT_EQ(engine.stats().completed.load(), total);
  EXPECT_EQ(engine.stats().failed.load(), 0u);
  EXPECT_EQ(engine.stats().wave_queries.load(), total);
  EXPECT_GE(engine.stats().waves.load(), 1u);
  EXPECT_LE(engine.stats().waves.load(), total);
  EXPECT_EQ(engine.QueueDepth(), 0u);

  // Fairness observability: per-tenant completions add up, and the same
  // counts are visible through TenantCompleted().
  uint64_t per_tenant_sum = 0;
  for (const auto& [tenant, n] : report.per_tenant_ok) per_tenant_sum += n;
  EXPECT_EQ(per_tenant_sum, total);
  std::map<std::string, uint64_t> completed = engine.TenantCompleted();
  for (const auto& [tenant, n] : report.per_tenant_ok) {
    EXPECT_EQ(completed[tenant], n) << tenant;
  }

  // THE reconciliation invariant: every logical read each query traced is
  // accounted for by exactly one cache outcome — hit, physical miss,
  // in-flight coalesce or wave-ledger hit. No hidden I/O, no double count.
  EXPECT_GT(report.traced_gets, 0u);
  EXPECT_EQ(report.traced_gets, CacheLogicalGets(client) - logical0);
  // And physical index GETs are exactly the cache misses.
  EXPECT_GT(CachePhysicalGets(client), physical0);
  EXPECT_LE(CachePhysicalGets(client) - physical0, report.traced_gets);

  // The mirrored registry agrees with the native stats surface.
  EXPECT_EQ(registry.GetCounter("serve.serve.completed")->value(), total);
  EXPECT_EQ(registry.GetCounter("serve.serve.shed")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("admission.serve.admitted")->value(), total);
  EXPECT_EQ(registry.GetHistogram("serve.serve.latency_micros")->Count(),
            total);
}

// ---------------------------------------------------------------------------
// Weighted fairness under saturation.
// ---------------------------------------------------------------------------

TEST(ServeTest, WeightedTenantsCompleteProportionally) {
  // REAL sleeper + per-op latency: queries occupy wall time, so both
  // tenants keep their queues non-empty and the stride scheduler's 3:1
  // pick ratio is observable in completion counts.
  ServeWorld w(/*simulated_sleep=*/false);
  Rottnest client(&w.store, w.table.get(), w.Options());
  w.Build(&client);
  w.SlowEverything(300);  // ~0.3ms of real wall per store op.

  ServeOptions sopts;
  sopts.max_concurrent = 1;  // Serialized service: picks ARE throughput.
  sopts.max_queue = 16;
  sopts.batch_max = 1;
  sopts.tenant_weights = {{"alpha", 3.0}, {"beta", 1.0}};
  sopts.start_paused = true;
  QueryEngine engine(&client, sopts);

  constexpr int kThreadsPerTenant = 3;
  constexpr int kRequestsPerThread = 8;
  constexpr uint64_t kPerTenant = kThreadsPerTenant * kRequestsPerThread;
  std::atomic<uint64_t> failures{0};
  auto run_tenant = [&](const std::string& tenant, int thread_idx) {
    for (int i = 0; i < kRequestsPerThread; ++i) {
      Query q = Query::Uuid(
          "uuid", w.UuidFor(static_cast<uint64_t>(thread_idx * 100 + i)), 4);
      q.tenant = tenant;
      if (!engine.Execute(std::move(q)).ok()) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> alpha, beta;
  for (int t = 0; t < kThreadsPerTenant; ++t) {
    alpha.emplace_back(run_tenant, "alpha", t);
    beta.emplace_back(run_tenant, "beta", t + kThreadsPerTenant);
  }
  WaitForQueueDepth(engine, 2 * kThreadsPerTenant);  // Both tenants staged.
  engine.Resume();

  for (auto& th : alpha) th.join();
  // Snapshot the moment the favored tenant finishes: with 3:1 strides beta
  // should have completed about a third of alpha's count — demonstrably
  // throttled (well under parity) but never starved.
  const uint64_t beta_at_alpha_done = engine.TenantCompleted()["beta"];
  for (auto& th : beta) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(beta_at_alpha_done, 1u);  // No starvation.
  EXPECT_LT(beta_at_alpha_done, kPerTenant * 2 / 3);  // Weighted down.
  std::map<std::string, uint64_t> done = engine.TenantCompleted();
  EXPECT_EQ(done["alpha"], kPerTenant);  // Everyone finishes eventually.
  EXPECT_EQ(done["beta"], kPerTenant);
}

// ---------------------------------------------------------------------------
// Queue wait counts against the ambient deadline (resolved at submit).
// ---------------------------------------------------------------------------

TEST(ServeTest, QueueWaitCountsAgainstDeadline) {
  ServeWorld w;
  Rottnest client(&w.store, w.table.get(), w.Options());
  w.Build(&client);

  ServeOptions sopts;
  sopts.start_paused = true;
  QueryEngine engine(&client, sopts);

  SearchOptions opts;
  opts.time_budget_micros = 1'000;
  std::thread submitter;
  Status got = Status::OK();
  submitter = std::thread([&] {
    auto r = engine.Execute(Query::Uuid("uuid", w.UuidFor(42), 4, opts));
    got = r.status();
  });
  WaitForQueueDepth(engine, 1);
  const uint64_t gets_before = w.mem.stats().gets.load();
  // The budget started ticking at submit; the query is still queued when
  // it runs out.
  w.clock.Advance(2'000);
  engine.Resume();
  submitter.join();

  EXPECT_TRUE(got.IsDeadlineExceeded()) << got.ToString();
  // Failed BEFORE any planning I/O: not one store read happened.
  EXPECT_EQ(w.mem.stats().gets.load(), gets_before);
  EXPECT_EQ(engine.stats().expired_in_queue.load(), 1u);
  EXPECT_EQ(engine.stats().completed.load(), 1u);
  EXPECT_EQ(engine.stats().failed.load(), 1u);
  EXPECT_EQ(engine.admission().admission_stats().expired_waiting.load(), 1u);
  EXPECT_EQ(engine.admission().running(), 0);
  EXPECT_EQ(engine.admission().waiting(), 0);
}

// ---------------------------------------------------------------------------
// Batching: one GET wave shares physical fetches across members.
// ---------------------------------------------------------------------------

TEST(ServeTest, WaveSharesFetchesAcrossMembers) {
  // A cache too small to RETAIN anything (entries evict on insert), so the
  // LRU itself cannot explain any sharing: only in-flight coalescing and
  // the wave ledger can. One worker thread serializes wave members enough
  // that later members re-request ranges the LRU already dropped — the
  // wave ledger's case.
  constexpr int kQueries = 6;
  workload::TextGenerator text(42);
  const std::string pattern = text.SamplePattern(1);

  auto run = [&](size_t batch_max, uint64_t* physical,
                 uint64_t* wave_hits) {
    ServeWorld w;
    RottnestOptions copts = w.Options(/*cache_bytes=*/4096);
    copts.num_threads = 1;
    Rottnest client(&w.store, w.table.get(), copts);
    w.Build(&client);

    ServeOptions sopts;
    sopts.batch_max = batch_max;
    sopts.start_paused = true;
    QueryEngine engine(&client, sopts);

    const uint64_t physical0 = CachePhysicalGets(client);
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kQueries; ++i) {
      threads.emplace_back([&] {
        if (!engine.Execute(Query::Substring("body", pattern, 4)).ok()) {
          failures.fetch_add(1);
        }
      });
    }
    WaitForQueueDepth(engine, kQueries);
    engine.Resume();
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(engine.stats().completed.load(),
              static_cast<uint64_t>(kQueries));
    // Submitters unblock before the dispatcher closes the wave; Shutdown
    // joins it, so EndWave has definitely run by the time we look.
    engine.Shutdown();
    *physical = CachePhysicalGets(client) - physical0;
    *wave_hits = client.cache()->stats().cache_wave_hits.load();
    // The ledger is wave-scoped: nothing survives past EndWave.
    EXPECT_EQ(client.cache()->WaveLedgerEntries(), 0u);
  };

  uint64_t batched_physical = 0, batched_wave_hits = 0;
  run(/*batch_max=*/8, &batched_physical, &batched_wave_hits);
  uint64_t unbatched_physical = 0, unbatched_wave_hits = 0;
  run(/*batch_max=*/1, &unbatched_physical, &unbatched_wave_hits);

  // Identical offered queries; batching must at least HALVE physical GETs
  // (the serve bench's acceptance gate, at test scale), and the sharing
  // must include genuine wave-ledger hits — batch_max=1 never opens a
  // wave, so its ledger count is structurally zero.
  EXPECT_GT(batched_physical, 0u);
  EXPECT_LE(batched_physical * 2, unbatched_physical)
      << "batched=" << batched_physical
      << " unbatched=" << unbatched_physical;
  EXPECT_GT(batched_wave_hits, 0u);
  EXPECT_EQ(unbatched_wave_hits, 0u);
}

// ---------------------------------------------------------------------------
// Batching x tail tolerance.
// ---------------------------------------------------------------------------

TEST(ServeTest, WaveHonorsEarliestMemberDeadline) {
  ServeWorld w;
  Rottnest client(&w.store, w.table.get(), w.Options(256 << 10));
  w.Build(&client);
  w.SlowEverything(2'000);  // Every store op advances the sim clock 2ms.

  ServeOptions sopts;
  sopts.start_paused = true;
  QueryEngine engine(&client, sopts);

  // Member A carries a 1ms budget (expires on the first slow read);
  // member B carries none. Same wave.
  Result<QueryResponse> ra = Status::Internal("unset");
  Result<QueryResponse> rb = Status::Internal("unset");
  SearchOptions tight;
  tight.time_budget_micros = 1'000;
  std::thread ta([&] {
    ra = engine.Execute(Query::Uuid("uuid", w.UuidFor(7), 4, tight));
  });
  WaitForQueueDepth(engine, 1);
  std::thread tb([&] {
    rb = engine.Execute(Query::Uuid("uuid", w.UuidFor(9), 4));
  });
  WaitForQueueDepth(engine, 2);
  engine.Resume();
  ta.join();
  tb.join();

  ASSERT_EQ(engine.stats().waves.load(), 1u);  // One wave held both.
  ASSERT_EQ(engine.stats().wave_queries.load(), 2u);
  // A cut ITSELF short — a structured partial, not an error...
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  EXPECT_TRUE(ra.value().result.partial);
  EXPECT_FALSE(ra.value().result.cut_short.empty());
  // ...while its wave-mate ran to a complete answer.
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_FALSE(rb.value().result.partial);
  ASSERT_EQ(rb.value().result.matches.size(), 1u);
}

TEST(ServeTest, BreakerFailedWavePropagatesPerQuery) {
  ServeWorld w;
  Rottnest client(&w.store, w.table.get(), w.Options(256 << 10));
  w.Build(&client);
  // An open breaker's fail-fast verdict for index objects: shared fetches
  // inside the wave fail. Failures are never ledger-cached, so EVERY
  // member that needed the range observes the Unavailable itself and
  // degrades to its own structured partial.
  w.store.SetFailurePoint([](const std::string& op, const std::string& key) {
    bool read = op == "get" || op == "head";
    if (read && key.size() >= 6 &&
        key.compare(key.size() - 6, 6, ".index") == 0) {
      return Status::Unavailable("circuit breaker open");
    }
    return Status::OK();
  });

  ServeOptions sopts;
  sopts.start_paused = true;
  QueryEngine engine(&client, sopts);

  Result<QueryResponse> ra = Status::Internal("unset");
  Result<QueryResponse> rb = Status::Internal("unset");
  std::thread ta([&] {
    ra = engine.Execute(Query::Uuid("uuid", w.UuidFor(7), 4));
  });
  WaitForQueueDepth(engine, 1);
  std::thread tb([&] {
    rb = engine.Execute(Query::Uuid("uuid", w.UuidFor(7), 4));
  });
  WaitForQueueDepth(engine, 2);
  engine.Resume();
  ta.join();
  tb.join();

  ASSERT_EQ(engine.stats().waves.load(), 1u);
  for (const Result<QueryResponse>* r : {&ra, &rb}) {
    ASSERT_TRUE(r->ok()) << r->status().ToString();
    EXPECT_TRUE(r->value().result.partial);
    EXPECT_FALSE(r->value().result.cut_short.empty());
    EXPECT_TRUE(r->value().result.matches.empty());
  }
  EXPECT_EQ(engine.stats().failed.load(), 0u);  // Partials are NOT errors.
  // Nothing from the failed fetches went into the wave ledger.
  EXPECT_EQ(client.cache()->stats().cache_wave_hits.load(), 0u);
}

// ---------------------------------------------------------------------------
// Shutdown.
// ---------------------------------------------------------------------------

TEST(ServeTest, ShutdownFailsQueuedQueriesTyped) {
  ServeWorld w;
  Rottnest client(&w.store, w.table.get(), w.Options());
  w.Build(&client);

  ServeOptions sopts;
  sopts.start_paused = true;
  QueryEngine engine(&client, sopts);

  Status sa = Status::OK(), sb = Status::OK();
  std::thread ta([&] {
    sa = engine.Execute(Query::Uuid("uuid", w.UuidFor(1), 4)).status();
  });
  std::thread tb([&] {
    Query q = Query::Uuid("uuid", w.UuidFor(2), 4);
    q.tenant = "other";
    sb = engine.Execute(std::move(q)).status();
  });
  WaitForQueueDepth(engine, 2);
  engine.Shutdown();
  ta.join();
  tb.join();

  EXPECT_TRUE(sa.IsUnavailable()) << sa.ToString();
  EXPECT_TRUE(sb.IsUnavailable()) << sb.ToString();
  EXPECT_EQ(engine.stats().completed.load(), 2u);
  EXPECT_EQ(engine.QueueDepth(), 0u);
  EXPECT_EQ(engine.admission().waiting(), 0);
  // Submissions after shutdown are refused outright, same typed status.
  auto late = engine.Execute(Query::Uuid("uuid", w.UuidFor(3), 4));
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsUnavailable());
}

}  // namespace
}  // namespace rottnest::serve
