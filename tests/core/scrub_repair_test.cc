// Anti-entropy subsystem tests: deep parallel Scrub over latent corruption
// (post-commit "object rot"), crash-safe Repair (quarantine + index rebuild
// + orphan GC), auto-quarantine on the search path, cache-poisoning
// regression, the Scrub-based CheckInvariants, and a crash-schedule
// exploration of Repair itself (every prefix of its storage footprint must
// leave the invariants intact and a retry must converge).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/rottnest.h"
#include "index/component_file.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"

namespace rottnest::core {
namespace {

using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::CrashMode;
using objectstore::FaultInjectingStore;
using objectstore::InMemoryObjectStore;
using objectstore::RotKind;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0x7e57);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/s";
  options.index_timeout_micros = 600LL * 1'000'000;
  return options;
}

void AppendRows(Table* table, uint64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  for (size_t i = 0; i < rows; ++i) {
    std::string u = UuidFor(first_id + i);
    uuids.Append(Slice(u));
  }
  b.columns.emplace_back(std::move(uuids));
  ASSERT_TRUE(table->Append(b).ok());
}

using MatchSet = std::multiset<std::pair<uint64_t, std::string>>;

MatchSet Reduce(const SearchResult& r) {
  MatchSet out;
  for (const RowMatch& m : r.matches) out.emplace(m.row, m.value);
  return out;
}

size_t ErrorCount(const ScrubReport& r) {
  size_t n = 0;
  for (const auto& f : r.findings) {
    if (f.severity == ScrubSeverity::kError) ++n;
  }
  return n;
}

class ScrubRepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = Table::Create(&store_, "lake/s", MakeSchema()).MoveValue();
    client_ = std::make_unique<Rottnest>(&store_, table_.get(), Options());
  }

  /// Appends `n` batches of 100 rows, indexing each incrementally, and
  /// returns the n committed index object paths (entry i covers batch i,
  /// rows [100*i, 100*i+100)).
  std::vector<std::string> BuildIndexes(size_t n) {
    std::vector<std::string> paths;
    for (size_t i = 0; i < n; ++i) {
      AppendRows(table_.get(), i * 100, 100);
      auto r = client_->Index("uuid", IndexType::kTrie);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) paths.push_back(r.value().index_path);
    }
    return paths;
  }

  MatchSet Probe(Rottnest* client, uint64_t id) {
    auto r = client->SearchUuid("uuid", Slice(UuidFor(id)), 5);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? Reduce(r.value()) : MatchSet{};
  }

  SimulatedClock clock_;
  InMemoryObjectStore inner_{&clock_};
  FaultInjectingStore store_{&inner_};
  std::unique_ptr<Table> table_;
  std::unique_ptr<Rottnest> client_;
};

TEST_F(ScrubRepairTest, CleanWorldScrubsClean) {
  BuildIndexes(3);
  auto r = client_->Scrub();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ScrubReport& report = r.value();
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.indexes_checked, 3u);
  EXPECT_GT(report.components_verified, 0u);
  EXPECT_EQ(report.components_skipped, 0u);
  // Small indexes live entirely in the Open tail read, so their payload
  // checksums are verified there and the deep pass re-fetches nothing.
  EXPECT_EQ(report.bytes_verified, 0u);
  EXPECT_TRUE(client_->CheckInvariants().ok());
}

TEST_F(ScrubRepairTest, ScrubFindsExactlyTheRottenObjects) {
  std::vector<std::string> paths = BuildIndexes(5);
  ASSERT_EQ(paths.size(), 5u);

  // Three flavours of post-commit rot on three of the five objects; the
  // other two must produce NO findings (no false positives).
  ASSERT_TRUE(store_.RotObject(paths[0], RotKind::kDrop).ok());
  ASSERT_TRUE(store_.RotObject(paths[1], RotKind::kFlipBit).ok());
  ASSERT_TRUE(store_.RotObject(paths[3], RotKind::kTruncate).ok());
  EXPECT_EQ(store_.fault_stats().rot_injected.load(), 3u);

  auto r = client_->Scrub();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ScrubReport& report = r.value();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.indexes_checked, 5u);
  EXPECT_EQ(ErrorCount(report), 3u);

  std::set<std::string> flagged;
  for (const auto& f : report.findings) {
    ASSERT_EQ(f.severity, ScrubSeverity::kError);
    flagged.insert(f.index_path);
    if (f.index_path == paths[0]) {
      EXPECT_EQ(f.kind, ScrubFindingKind::kMissingIndex);
    } else {
      // A bit flip or truncation anywhere in a tail-sized file is caught
      // by Open's structural + payload checksum verification.
      EXPECT_EQ(f.kind, ScrubFindingKind::kCorruptIndex);
    }
    // Findings carry the (column, type) Repair needs to rebuild coverage.
    EXPECT_EQ(f.column, "uuid");
    EXPECT_EQ(f.index_type, "trie");
  }
  EXPECT_EQ(flagged, (std::set<std::string>{paths[0], paths[1], paths[3]}));
}

TEST_F(ScrubRepairTest, RepairQuarantinesRebuildsAndConverges) {
  std::vector<std::string> paths = BuildIndexes(4);
  ASSERT_EQ(paths.size(), 4u);
  const std::vector<uint64_t> probes = {5, 150, 250, 350};

  std::vector<MatchSet> truth;
  for (uint64_t id : probes) truth.push_back(Probe(client_.get(), id));
  for (const MatchSet& m : truth) ASSERT_EQ(m.size(), 1u);

  ASSERT_TRUE(store_.RotObject(paths[0], RotKind::kFlipBit).ok());
  ASSERT_TRUE(store_.RotObject(paths[2], RotKind::kDrop).ok());

  // Degraded-mode contract: identical answers, served by brute scan.
  for (size_t i = 0; i < probes.size(); ++i) {
    auto r = client_->SearchUuid("uuid", Slice(UuidFor(probes[i])), 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Reduce(r.value()), truth[i]);
  }

  auto scrub = client_->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  ASSERT_EQ(ErrorCount(scrub.value()), 2u);

  // Dry run: reports the plan, commits nothing.
  {
    RepairOptions dry;
    dry.dry_run = true;
    auto r = client_->Repair(scrub.value(), dry);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().quarantined.size(), 2u);
    EXPECT_TRUE(r.value().rebuilt.empty());
    auto entries = client_->metadata().ReadAll();
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), 4u);
  }

  auto repair = client_->Repair(scrub.value());
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  const RepairReport& rep = repair.value();
  EXPECT_EQ(
      std::set<std::string>(rep.quarantined.begin(), rep.quarantined.end()),
      (std::set<std::string>{paths[0], paths[2]}));
  // One rebuild re-covers both quarantined batches in a single new index.
  ASSERT_EQ(rep.rebuilt.size(), 1u);
  EXPECT_EQ(rep.rebuilt_rows, 200u);
  EXPECT_TRUE(rep.orphans_deleted.empty());

  // Converged: no errors, full coverage, byte-identical answers.
  auto scrub2 = client_->Scrub();
  ASSERT_TRUE(scrub2.ok());
  EXPECT_TRUE(scrub2.value().clean());
  EXPECT_TRUE(client_->CheckInvariants().ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    auto r = client_->SearchUuid("uuid", Slice(UuidFor(probes[i])), 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Reduce(r.value()), truth[i]);
    EXPECT_EQ(r.value().indexes_degraded, 0u);
    EXPECT_EQ(r.value().files_scanned, 0u);
  }

  // The quarantined-but-still-present object (the flip victim; the drop
  // victim is already gone) is now an orphan WARNING — reported, not an
  // invariant violation, and only GC'd once past the protocol grace.
  ASSERT_EQ(scrub2.value().findings.size(), 1u);
  EXPECT_EQ(scrub2.value().findings[0].kind, ScrubFindingKind::kOrphanObject);
  EXPECT_EQ(scrub2.value().findings[0].index_path, paths[0]);

  clock_.Advance(Options().index_timeout_micros + 1'000'000);
  auto gc = client_->Repair(scrub2.value());
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  EXPECT_EQ(gc.value().orphans_deleted, (std::vector<std::string>{paths[0]}));

  auto scrub3 = client_->Scrub();
  ASSERT_TRUE(scrub3.ok());
  EXPECT_TRUE(scrub3.value().findings.empty());
}

TEST_F(ScrubRepairTest, ScrubRespectsParallelismAndByteBudgetOptions) {
  BuildIndexes(4);
  // Identical findings and counters at any parallelism: the audit is
  // deterministic in entry order regardless of scheduling.
  ScrubOptions seq;
  seq.parallelism = 1;
  ScrubOptions wide;
  wide.parallelism = 8;
  auto a = client_->Scrub(seq);
  auto b = client_->Scrub(wide);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().findings.size(), b.value().findings.size());
  EXPECT_EQ(a.value().components_verified, b.value().components_verified);
  EXPECT_EQ(a.value().bytes_verified, b.value().bytes_verified);
}

TEST_F(ScrubRepairTest, AutoQuarantineDropsCorruptEntryOnSearch) {
  std::vector<std::string> paths = BuildIndexes(2);
  MatchSet truth = Probe(client_.get(), 7);  // Batch 0, the rot victim.
  ASSERT_EQ(truth.size(), 1u);
  ASSERT_TRUE(store_.RotObject(paths[0], RotKind::kFlipBit).ok());

  // Default: degrade but leave metadata alone.
  auto r1 = client_->SearchUuid("uuid", Slice(UuidFor(7)), 5);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(Reduce(r1.value()), truth);
  EXPECT_EQ(r1.value().indexes_degraded, 1u);
  EXPECT_EQ(r1.value().indexes_quarantined, 0u);
  {
    auto entries = client_->metadata().ReadAll();
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), 2u);
  }

  // Opt-in: the tripped query itself expels the poisoned entry.
  SearchOptions q;
  q.auto_quarantine = true;
  auto r2 = client_->SearchUuid("uuid", Slice(UuidFor(7)), 5, q);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(Reduce(r2.value()), truth);
  EXPECT_EQ(r2.value().indexes_degraded, 1u);
  EXPECT_EQ(r2.value().indexes_quarantined, 1u);
  {
    auto entries = client_->metadata().ReadAll();
    ASSERT_TRUE(entries.ok());
    ASSERT_EQ(entries.value().size(), 1u);
    EXPECT_EQ(entries.value()[0].index_path, paths[1]);
  }

  // Post-quarantine: no more degradation (the batch is scanned as merely
  // unindexed) and the auditor is green again — rot became an orphan.
  auto r3 = client_->SearchUuid("uuid", Slice(UuidFor(7)), 5);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(Reduce(r3.value()), truth);
  EXPECT_EQ(r3.value().indexes_degraded, 0u);
  EXPECT_GE(r3.value().files_scanned, 1u);
  EXPECT_TRUE(client_->CheckInvariants().ok());
}

TEST_F(ScrubRepairTest, CorruptReadInvalidatesPoisonedCacheBlocks) {
  // Cache-poisoning regression: a read-path bit flip (the bytes in the
  // bucket are FINE) lands in the client cache. The checksum trips, the
  // search degrades — and the poisoned blocks must be invalidated, so the
  // next search re-fetches clean bytes instead of degrading forever.
  RottnestOptions copts = Options();
  copts.cache_bytes = 8ull << 20;
  Rottnest cached(&store_, table_.get(), copts);
  AppendRows(table_.get(), 0, 100);
  ASSERT_TRUE(cached.Index("uuid", IndexType::kTrie).ok());

  store_.SetCorruptReadRate(1.0, ".index");
  auto poisoned = cached.SearchUuid("uuid", Slice(UuidFor(7)), 5);
  ASSERT_TRUE(poisoned.ok()) << poisoned.status().ToString();
  EXPECT_EQ(poisoned.value().indexes_degraded, 1u);
  ASSERT_EQ(poisoned.value().matches.size(), 1u);  // Scan still answers.
  EXPECT_GT(store_.fault_stats().corrupt_reads_injected.load(), 0u);

  // Faults off: with the invalidation fix the very next query is healthy.
  // (Without it, the cache would keep serving the poisoned tail bytes and
  // this search would degrade despite a perfectly healthy store.)
  store_.SetCorruptReadRate(0.0);
  auto healthy = cached.SearchUuid("uuid", Slice(UuidFor(7)), 5);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy.value().indexes_degraded, 0u);
  EXPECT_EQ(healthy.value().files_scanned, 0u);
  ASSERT_EQ(healthy.value().matches.size(), 1u);
}

TEST_F(ScrubRepairTest, CheckInvariantsReportsEveryViolation) {
  // The auditor must list ALL violations in one Status, not fail fast on
  // the first — an operator repairing a blast radius needs the full list.
  std::vector<std::string> paths = BuildIndexes(3);
  ASSERT_TRUE(store_.RotObject(paths[0], RotKind::kFlipBit).ok());
  ASSERT_TRUE(store_.RotObject(paths[1], RotKind::kFlipBit).ok());
  ASSERT_TRUE(store_.RotObject(paths[2], RotKind::kDrop).ok());

  Status s = client_->CheckInvariants();
  ASSERT_FALSE(s.ok());
  std::string msg = s.ToString();
  for (const std::string& p : paths) {
    EXPECT_NE(msg.find(p), std::string::npos) << "missing " << p << " in\n"
                                              << msg;
  }
  EXPECT_NE(msg.find("missing-index"), std::string::npos);
  EXPECT_NE(msg.find("corrupt-index"), std::string::npos);
}

TEST_F(ScrubRepairTest, DeepScrubCatchesRotThatShallowAuditsMiss) {
  // An index too large for the Open tail read: damage outside the tail is
  // invisible to the structural audit (Open + page table) and to queries
  // that never touch the damaged component. Only the deep re-verification
  // of every component checksum finds it — the reason Scrub exists.
  std::vector<std::string> paths = BuildIndexes(1);
  const std::string& path = paths[0];

  // Rewrite the committed object as a logically-identical file with a
  // 300 KiB incompressible pad component FIRST (so it lands outside the
  // 256 KiB tail and is never verified at open).
  {
    auto opened = index::ComponentFileReader::Open(&store_, path, nullptr);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& reader = opened.value();
    std::vector<std::string> names = reader->ComponentNames();
    std::vector<Buffer> payloads;
    ASSERT_TRUE(
        reader->ReadComponents(names, nullptr, nullptr, &payloads).ok());
    Random rng(99);
    Buffer pad(300 << 10);
    for (auto& b : pad) b = static_cast<uint8_t>(rng.Next());
    index::ComponentFileWriter writer(reader->type(), reader->column());
    ASSERT_TRUE(writer.AddComponent("aa_pad", Slice(pad)).ok());
    for (size_t i = 0; i < names.size(); ++i) {
      ASSERT_TRUE(writer.AddComponent(names[i], Slice(payloads[i])).ok());
    }
    Buffer file;
    ASSERT_TRUE(writer.Finish(&file).ok());
    ASSERT_TRUE(store_.Put(path, Slice(file)).ok());
  }

  // The inflated object is valid: searches and deep scrub are green, and
  // the deep pass now actually fetches bytes (the pad is not in the tail).
  EXPECT_EQ(Probe(client_.get(), 7).size(), 1u);
  {
    auto r = client_->Scrub();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().findings.empty());
    EXPECT_GT(r.value().bytes_verified, 200u << 10);
  }

  // Rot one byte in the middle of the pad, far outside the tail.
  {
    Buffer buf;
    ASSERT_TRUE(inner_.Get(path, &buf).ok());
    buf[50'000] ^= 0x01;
    ASSERT_TRUE(inner_.Put(path, Slice(buf)).ok());
  }

  // Queries never read the pad; the shallow audit never re-fetches it.
  EXPECT_EQ(Probe(client_.get(), 7).size(), 1u);
  EXPECT_TRUE(client_->CheckInvariants().ok());
  ScrubOptions shallow;
  shallow.deep = false;
  auto sr = client_->Scrub(shallow);
  ASSERT_TRUE(sr.ok());
  EXPECT_TRUE(sr.value().findings.empty());

  // The deep audit localizes the damage to the component.
  auto deep = client_->Scrub();
  ASSERT_TRUE(deep.ok()) << deep.status().ToString();
  ASSERT_EQ(ErrorCount(deep.value()), 1u);
  const ScrubFinding& f = deep.value().findings[0];
  EXPECT_EQ(f.kind, ScrubFindingKind::kCorruptComponent);
  EXPECT_EQ(f.index_path, path);
  EXPECT_EQ(f.component, "aa_pad");

  // A starved byte budget skips (and reports skipping) the deep fetch —
  // the audit stays cheap but honestly incomplete.
  ScrubOptions starved;
  starved.byte_budget = 1;
  auto skim = client_->Scrub(starved);
  ASSERT_TRUE(skim.ok());
  EXPECT_GE(skim.value().components_skipped, 1u);
  EXPECT_TRUE(skim.value().clean());

  // Repair heals it: quarantine + rebuild, then a clean deep scrub.
  auto repair = client_->Repair(deep.value());
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_EQ(repair.value().quarantined, (std::vector<std::string>{path}));
  ASSERT_EQ(repair.value().rebuilt.size(), 1u);
  auto after = client_->Scrub();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().clean());
  auto probe = client_->SearchUuid("uuid", Slice(UuidFor(7)), 5);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe.value().indexes_degraded, 0u);
  EXPECT_EQ(probe.value().files_scanned, 0u);
}

// ---------------------------------------------------------------------------
// Crash-schedule exploration of Repair: for EVERY prefix of its fault-free
// storage footprint, in both crash modes, a truncated Repair must leave a
// state where searches still answer correctly, and retrying Repair with the
// SAME report must converge to full coverage and a clean scrub.

struct RepairWorld {
  SimulatedClock clock;
  InMemoryObjectStore inner{&clock};
  FaultInjectingStore store{&inner};
  std::unique_ptr<Table> table;
  std::unique_ptr<Rottnest> client;
  ScrubReport report;            ///< The damage report Repair acts on.
  std::vector<MatchSet> truth;   ///< Pre-rot answers for the probe ids.

  RepairWorld() {
    table = Table::Create(&store, "lake/s", MakeSchema()).MoveValue();
    client = std::make_unique<Rottnest>(&store, table.get(), Options());
  }
};

const std::vector<uint64_t> kRepairProbes = {7, 55};

void SetupRepairWorld(RepairWorld& w) {
  AppendRows(w.table.get(), 0, 40);
  ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
  AppendRows(w.table.get(), 40, 40);
  ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
  for (uint64_t id : kRepairProbes) {
    auto r = w.client->SearchUuid("uuid", Slice(UuidFor(id)), 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    w.truth.push_back(Reduce(r.value()));
    ASSERT_EQ(w.truth.back().size(), 1u);
  }
  // Mutate-only rot (no drop): Existence keeps holding throughout, so the
  // damaged entry is a pure corruption case for Repair to quarantine.
  auto entries = w.client->metadata().ReadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  ASSERT_TRUE(
      w.store.RotObject(entries.value()[0].index_path, RotKind::kFlipBit)
          .ok());
  ScrubOptions so;
  so.parallelism = 1;  // Deterministic op sequence for the crash schedule.
  auto scrub = w.client->Scrub(so);
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  ASSERT_EQ(ErrorCount(scrub.value()), 1u);
  w.report = scrub.value();
}

Status RunRepair(RepairWorld& w) {
  RepairOptions ro;
  ro.parallelism = 1;
  return w.client->Repair(w.report, ro).status();
}

void ExpectConverged(RepairWorld& w) {
  ScrubOptions so;
  so.parallelism = 1;
  auto scrub = w.client->Scrub(so);
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_TRUE(scrub.value().clean());
  Status inv = w.client->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  for (size_t i = 0; i < kRepairProbes.size(); ++i) {
    auto r = w.client->SearchUuid("uuid", Slice(UuidFor(kRepairProbes[i])), 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Reduce(r.value()), w.truth[i]);
    EXPECT_EQ(r.value().indexes_degraded, 0u);
    EXPECT_EQ(r.value().files_scanned, 0u);  // Coverage fully restored.
  }
}

TEST(RepairCrashScheduleTest, RepairSurvivesEveryCrashPoint) {
  // Fault-free footprint, and the baseline: one repair converges.
  uint64_t num_ops = 0;
  {
    RepairWorld w;
    SetupRepairWorld(w);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    uint64_t before = w.store.op_count();
    Status s = RunRepair(w);
    ASSERT_TRUE(s.ok()) << s.ToString();
    num_ops = w.store.op_count() - before;
    ExpectConverged(w);
  }
  ASSERT_GT(num_ops, 0u);

  size_t schedules = 0;
  for (uint64_t n = 0; n < num_ops; ++n) {
    for (CrashMode mode : {CrashMode::kBeforeOp, CrashMode::kAfterOp}) {
      SCOPED_TRACE("repair crash at op " + std::to_string(n) +
                   (mode == CrashMode::kBeforeOp ? " (before)" : " (after)"));
      RepairWorld w;
      SetupRepairWorld(w);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      w.store.SetCrashAtOp(w.store.op_count() + n, mode);

      Status s = RunRepair(w);
      EXPECT_FALSE(s.ok());
      EXPECT_TRUE(w.store.crashed());
      w.store.ClearCrash();  // "Restart."

      // Whatever prefix landed, searches still answer correctly (possibly
      // degraded or scanning — but never wrong). Note plain CheckInvariants
      // may legitimately FAIL here: before the quarantine commit the
      // metadata still references the rotten object, which is exactly the
      // violation the pending repair exists to fix.
      for (size_t i = 0; i < kRepairProbes.size(); ++i) {
        auto r =
            w.client->SearchUuid("uuid", Slice(UuidFor(kRepairProbes[i])), 5);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_EQ(Reduce(r.value()), w.truth[i]);
      }

      // Retrying with the SAME report converges: the findings carry the
      // (column, type) to rebuild even when the crashed attempt already
      // committed the quarantine.
      Status retry = RunRepair(w);
      EXPECT_TRUE(retry.ok()) << retry.ToString();
      ExpectConverged(w);
      ++schedules;
    }
  }
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

}  // namespace
}  // namespace rottnest::core
