// Tests for the extension features: structured-attribute (ScanRange)
// filtering via min/max statistics, regex search with FM-index literal
// prefiltering, and index introspection.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"ts", PhysicalType::kInt64, 0});
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0xfeed);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

class FeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    format::WriterOptions writer;
    writer.target_page_bytes = 2 << 10;
    writer.target_row_group_bytes = 8 << 10;  // Several groups per file.
    table_ =
        Table::Create(&store_, "lake/f", MakeSchema(), writer).MoveValue();
    RottnestOptions options;
    options.index_dir = "idx/f";
    options.fm.block_size = 2048;
    client_ = std::make_unique<Rottnest>(&store_, table_.get(), options);
  }

  // Rows get ts = first_ts + i; duplicated uuid key every 50 rows.
  void Append(int64_t first_ts, size_t rows) {
    RowBatch b;
    b.schema = MakeSchema();
    ColumnVector::Ints ts;
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    ColumnVector::Strings bodies;
    for (size_t i = 0; i < rows; ++i) {
      int64_t t = first_ts + static_cast<int64_t>(i);
      ts.push_back(t);
      std::string u = UuidFor(static_cast<uint64_t>(t % 50));  // Repeats!
      uuids.Append(Slice(u));
      bodies.push_back("ts=" + std::to_string(t) +
                       (t % 25 == 0 ? " ERROR code-500 retry" : " info ok"));
    }
    b.columns.emplace_back(std::move(ts));
    b.columns.emplace_back(std::move(uuids));
    b.columns.emplace_back(std::move(bodies));
    ASSERT_TRUE(table_->Append(b).ok());
  }

  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  std::unique_ptr<Table> table_;
  std::unique_ptr<Rottnest> client_;
};

TEST_F(FeaturesTest, RangeFilterNarrowsUuidMatches) {
  Append(0, 500);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());

  // Key UuidFor(0) occurs at ts = 0, 50, 100, ... 450 (10 times).
  std::string key = UuidFor(0);
  auto all = client_->SearchUuid("uuid", Slice(key), 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().matches.size(), 10u);

  SearchOptions opts;
  opts.range = ScanRange{"ts", 100, 249};
  auto filtered = client_->SearchUuid("uuid", Slice(key), 100, opts);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ(filtered.value().matches.size(), 3u);  // ts 100, 150, 200.
}

TEST_F(FeaturesTest, RangeFilterAppliesToUnindexedScan) {
  Append(0, 500);  // No index: pure scan path.
  std::string key = UuidFor(0);
  SearchOptions opts;
  opts.range = ScanRange{"ts", 0, 99};
  auto r = client_->SearchUuid("uuid", Slice(key), 100, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches.size(), 2u);  // ts 0 and 50.
}

TEST_F(FeaturesTest, RangeFilterPrunesWholeFilesByStats) {
  Append(0, 300);     // File A: ts 0..299.
  Append(1000, 300);  // File B: ts 1000..1299.

  // Range entirely within file B: file A must be pruned by min/max stats
  // (zero row groups read -> not counted as scanned).
  SearchOptions opts;
  opts.range = ScanRange{"ts", 1000, 1099};
  auto r = client_->SearchUuid("uuid", Slice(UuidFor(0)), 100, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().files_scanned, 1u);
  for (const RowMatch& m : r.value().matches) {
    EXPECT_GE(m.row, 0u);
  }
  EXPECT_EQ(r.value().matches.size(), 2u);  // ts 1000 and 1050.
}

TEST_F(FeaturesTest, RangeFilterOnSubstring) {
  Append(0, 500);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  SearchOptions opts;
  opts.range = ScanRange{"ts", 100, 200};
  auto r = client_->SearchSubstring("body", "ERROR", 100, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ERROR at ts % 25 == 0 within [100, 200]: 100,125,150,175,200.
  EXPECT_EQ(r.value().matches.size(), 5u);
  for (const RowMatch& m : r.value().matches) {
    EXPECT_NE(m.value.find("ERROR"), std::string::npos);
  }
}

TEST_F(FeaturesTest, RangeFilterUnknownColumnFails) {
  Append(0, 10);
  SearchOptions opts;
  opts.range = ScanRange{"nope", 0, 1};
  auto r = client_->SearchUuid("uuid", Slice(UuidFor(0)), 10, opts);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(FeaturesTest, EmptyRangeYieldsNothing) {
  Append(0, 100);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  SearchOptions opts;
  opts.range = ScanRange{"ts", 5000, 6000};
  auto r = client_->SearchUuid("uuid", Slice(UuidFor(0)), 10, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().matches.empty());
}

TEST_F(FeaturesTest, RegexWithLiteralUsesIndex) {
  Append(0, 500);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  auto r = client_->SearchRegex("body", "ERROR code-[0-9]+ retry", 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().matches.empty());
  EXPECT_GE(r.value().indexes_queried, 1u);  // Used the FM index.
  EXPECT_EQ(r.value().files_scanned, 0u);    // No brute-force needed.
  for (const RowMatch& m : r.value().matches) {
    EXPECT_NE(m.value.find("ERROR code-500"), std::string::npos);
  }
}

TEST_F(FeaturesTest, RegexRejectsNonMatchingCandidates) {
  Append(0, 500);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  // "ERROR" occurs but never followed by code-9xx.
  auto r = client_->SearchRegex("body", "ERROR code-9[0-9][0-9]", 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().matches.empty());
}

TEST_F(FeaturesTest, RegexWithoutLiteralFallsBackToScan) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  auto r = client_->SearchRegex("body", "[A-Z]{5}", 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().matches.empty());  // Matches "ERROR".
  EXPECT_GE(r.value().files_scanned, 1u);   // Scan path.
}

TEST_F(FeaturesTest, RegexAnchorsAndClasses) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  auto r = client_->SearchRegex("body", "^ts=100 ", 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().matches.size(), 1u);
  EXPECT_EQ(r.value().matches[0].value.rfind("ts=100 ", 0), 0u);
}

TEST_F(FeaturesTest, BadRegexIsInvalidArgument) {
  Append(0, 10);
  auto r = client_->SearchRegex("body", "([unclosed", 10);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(FeaturesTest, RegexHonorsRange) {
  Append(0, 500);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  SearchOptions opts;
  opts.range = ScanRange{"ts", 0, 99};
  auto r = client_->SearchRegex("body", "ERROR code-\\d+", 10, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().matches.size(), 4u);  // ts 0, 25, 50, 75.
}

TEST_F(FeaturesTest, RegexAlternationFallsBackToScan) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  // Alternation invalidates any guaranteed literal: must scan, and must
  // still find both branches.
  auto r = client_->SearchRegex("body", "ERROR|ts=50 ", 300);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r.value().files_scanned, 1u);
  size_t errors = 0, ts50 = 0;
  for (const RowMatch& m : r.value().matches) {
    if (m.value.find("ERROR") != std::string::npos) ++errors;
    if (m.value.rfind("ts=50 ", 0) == 0) ++ts50;
  }
  EXPECT_EQ(errors, 8u);  // ts 0,25,...,175.
  EXPECT_EQ(ts50, 1u);
}

TEST_F(FeaturesTest, RegexQuantifierDoesNotOverTrustLiteral) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  // "ERRORS?" must match "ERROR" even though the trailing 'S' is optional:
  // the extracted literal must exclude the quantified character.
  auto r = client_->SearchRegex("body", "ERRORS? code", 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().matches.empty());
}

TEST_F(FeaturesTest, RegexDotAndClassesSplitLiterals) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  // The guaranteed literal is "retry" (after the class), not "code-".
  auto r = client_->SearchRegex("body", "code.[0-9]+ retry", 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().matches.empty());
  for (const RowMatch& m : r.value().matches) {
    EXPECT_NE(m.value.find("code-500 retry"), std::string::npos);
  }
}

TEST_F(FeaturesTest, CountSubstringMatchesGroundTruth) {
  Append(0, 500);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  // "ERROR" occurs once per row where ts % 25 == 0: 20 rows.
  auto count = client_->CountSubstring("body", "ERROR");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 20u);
  // "info ok" occurs once per remaining row: 480.
  count = client_->CountSubstring("body", "info ok");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 480u);
  // Substring occurrences, not rows: "0" appears in many ts= strings.
  count = client_->CountSubstring("body", "ts=10");
  ASSERT_TRUE(count.ok());
  // ts=10 itself plus ts=100..109 -> 11 occurrences of the prefix.
  EXPECT_EQ(count.value(), 11u);
}

TEST_F(FeaturesTest, CountSubstringMixesIndexAndScan) {
  Append(0, 250);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  Append(250, 250);  // Unindexed tail counted by scanning.
  auto count = client_->CountSubstring("body", "ERROR");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 20u);
}

TEST_F(FeaturesTest, CountSubstringFallsBackOnDeletionVectors) {
  Append(0, 500);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  // Delete ts=0 (an ERROR row): the index alone would overcount, so the
  // implementation must scan the DV'd file and return the exact count.
  ASSERT_TRUE(table_
                  ->DeleteWhere("ts",
                                [](const ColumnVector& col, size_t r) {
                                  return col.ints()[r] == 0;
                                })
                  .ok());
  auto count = client_->CountSubstring("body", "ERROR");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 19u);
}

TEST_F(FeaturesTest, CountSubstringRejectsRange) {
  Append(0, 10);
  SearchOptions opts;
  opts.range = ScanRange{"ts", 0, 5};
  auto count = client_->CountSubstring("body", "x", opts);
  EXPECT_TRUE(count.status().IsNotSupported());
}

TEST_F(FeaturesTest, DescribeIndexesReportsLiveness) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());

  auto described = client_->DescribeIndexes();
  ASSERT_TRUE(described.ok());
  ASSERT_EQ(described.value().size(), 2u);
  for (const IndexDescription& d : described.value()) {
    EXPECT_GT(d.bytes, 0u);
    EXPECT_TRUE(d.covers_live_files);
    EXPECT_EQ(d.entry.covered_files.size(), 1u);
  }

  // Lake compaction makes the indexes stale.
  Append(200, 200);
  ASSERT_TRUE(table_->CompactFiles(UINT64_MAX).ok());
  described = client_->DescribeIndexes();
  ASSERT_TRUE(described.ok());
  for (const IndexDescription& d : described.value()) {
    EXPECT_FALSE(d.covers_live_files);
  }
}

}  // namespace
}  // namespace rottnest::core
