// Integration tests for the client-side cache + multi-index search fan-out
// (the "Client-side caching & search fan-out" section of DESIGN.md):
//   * cached and uncached clients return byte-identical matches;
//   * a hot cache answers repeat queries with ZERO object-store GETs for
//     index components (enforced with a failure point, not just counters);
//   * fanning out across N index files keeps the dependent-round depth of
//     the IoTrace at one index chain, not N chains.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

constexpr uint32_t kDim = 16;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  s.columns.push_back({"vec", PhysicalType::kFixedLenByteArray, kDim * 4});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0xabcdef);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

std::vector<float> VecFor(uint64_t id) {
  Random rng(id * 7 + 3);
  std::vector<float> v(kDim);
  uint64_t cluster = id % 8;
  for (uint32_t d = 0; d < kDim; ++d) {
    v[d] = static_cast<float>((cluster == d % 8 ? 50.0 : 0.0) +
                              rng.NextGaussian() * 0.1);
  }
  return v;
}

RottnestOptions Options(uint64_t cache_bytes) {
  RottnestOptions options;
  options.index_dir = "idx/t";
  options.ivfpq.nlist = 16;
  options.ivfpq.num_subquantizers = 4;
  options.fm.block_size = 2048;
  options.fm.sample_rate = 8;
  options.cache_bytes = cache_bytes;
  return options;
}

/// A self-contained lake: clock + store + table, with helpers to append
/// batches and build a multi-file index plan. Tests instantiate as many
/// worlds as they need (e.g. to compare trace depths across index counts).
struct World {
  SimulatedClock clock;
  InMemoryObjectStore store{&clock};
  std::unique_ptr<Table> table;

  World() {
    format::WriterOptions w;
    w.target_page_bytes = 2048;  // Many small pages.
    w.target_row_group_bytes = 32 << 10;
    table = Table::Create(&store, "lake/t", MakeSchema(), w).MoveValue();
  }

  void Append(uint64_t first_id, size_t rows) {
    RowBatch b;
    b.schema = MakeSchema();
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    ColumnVector::Strings bodies;
    format::FlatFixed vecs;
    vecs.elem_size = kDim * 4;
    for (size_t i = 0; i < rows; ++i) {
      uint64_t id = first_id + i;
      std::string u = UuidFor(id);
      uuids.Append(Slice(u));
      bodies.push_back("row " + std::to_string(id) + " token" +
                       std::to_string(id % 7) + " payload");
      std::vector<float> v = VecFor(id);
      vecs.Append(
          Slice(reinterpret_cast<const uint8_t*>(v.data()), kDim * 4));
    }
    b.columns.emplace_back(std::move(uuids));
    b.columns.emplace_back(std::move(bodies));
    b.columns.emplace_back(std::move(vecs));
    ASSERT_TRUE(table->Append(b).ok());
  }

  /// Appends `files` batches of 200 rows, indexing after each, so every
  /// (column, type) pair ends up with `files` separate index entries — a
  /// multi-index plan that exercises the fan-out.
  void BuildMultiIndex(Rottnest* client, size_t files) {
    for (size_t f = 0; f < files; ++f) {
      Append(f * 200, 200);
      ASSERT_TRUE(client->Index("uuid", IndexType::kTrie).ok());
      ASSERT_TRUE(client->Index("body", IndexType::kFm).ok());
      ASSERT_TRUE(client->Index("vec", IndexType::kIvfPq).ok());
    }
  }
};

void ExpectSameMatches(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].file, b.matches[i].file);
    EXPECT_EQ(a.matches[i].row, b.matches[i].row);
    EXPECT_EQ(a.matches[i].value, b.matches[i].value);
    EXPECT_EQ(a.matches[i].distance, b.matches[i].distance);
  }
}

TEST(CacheFanoutTest, CachedAndUncachedSearchesAreByteIdentical) {
  World w;
  Rottnest uncached(&w.store, w.table.get(), Options(0));
  w.BuildMultiIndex(&uncached, 3);
  Rottnest cached(&w.store, w.table.get(), Options(64 << 20));
  EXPECT_EQ(uncached.cache(), nullptr);
  ASSERT_NE(cached.cache(), nullptr);

  for (uint64_t id : {7ULL, 250ULL, 599ULL}) {
    std::string u = UuidFor(id);
    auto a = uncached.SearchUuid("uuid", Slice(u), 5);
    auto b = cached.SearchUuid("uuid", Slice(u), 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameMatches(a.value(), b.value());
    EXPECT_EQ(a.value().matches.size(), 1u);
  }
  {
    auto a = uncached.SearchSubstring("body", "token3", 100);
    auto b = cached.SearchSubstring("body", "token3", 100);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameMatches(a.value(), b.value());
  }
  {
    std::vector<float> q = VecFor(42);
    auto a = uncached.SearchVector("vec", q.data(), kDim, 10);
    auto b = cached.SearchVector("vec", q.data(), kDim, 10);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameMatches(a.value(), b.value());
  }
  {
    auto a = uncached.CountSubstring("body", "token5");
    auto b = cached.CountSubstring("body", "token5");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
  // Repeat with the cache warm: still identical, and served from cache.
  {
    std::string u = UuidFor(250);
    auto a = uncached.SearchUuid("uuid", Slice(u), 5);
    auto b = cached.SearchUuid("uuid", Slice(u), 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameMatches(a.value(), b.value());
    EXPECT_GT(b.value().stats.cache_hits, 0u);
    EXPECT_EQ(b.value().stats.cache_misses, 0u);
  }
}

TEST(CacheFanoutTest, HotCacheQueriesNeverTouchIndexObjects) {
  World w;
  Rottnest client(&w.store, w.table.get(), Options(64 << 20));
  w.BuildMultiIndex(&client, 2);

  // Warm the read path once.
  std::string u = UuidFor(123);
  auto cold = client.SearchUuid("uuid", Slice(u), 5);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold.value().matches.size(), 1u);
  EXPECT_GT(cold.value().stats.cache_misses, 0u);

  // From now on, ANY object-store read of an index object fails hard. A hot
  // query must not notice: every index component comes from the cache.
  w.store.SetFailurePoint([](const std::string& op, const std::string& key) {
    bool is_read = op == "get" || op == "head";
    if (is_read && key.size() >= 6 &&
        key.compare(key.size() - 6, 6, ".index") == 0) {
      return Status::Unavailable("index objects are off limits when hot");
    }
    return Status::OK();
  });
  auto hot = client.SearchUuid("uuid", Slice(u), 5);
  ASSERT_TRUE(hot.ok()) << hot.status().ToString();
  ExpectSameMatches(cold.value(), hot.value());
  EXPECT_GT(hot.value().stats.cache_hits, 0u);
  EXPECT_EQ(hot.value().stats.cache_misses, 0u);
  w.store.SetFailurePoint({});

  // Counter view of the same fact: a repeat query adds zero physical GETs
  // through the cache.
  uint64_t physical_gets = client.cache()->stats().gets.load();
  auto again = client.SearchUuid("uuid", Slice(u), 5);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(client.cache()->stats().gets.load(), physical_gets);
}

TEST(CacheFanoutTest, FanOutKeepsTraceDepthAtOneIndexChain) {
  // With per-index chains running concurrently and merged via
  // MergeParallel, a three-index plan's dependent-round depth must stay at
  // one index chain (±1 round of slack for the page-probe round) — serial
  // execution would be deeper by two whole extra chains.
  auto depth_with = [](size_t files, size_t* indexes_queried) {
    World w;
    Rottnest client(&w.store, w.table.get(), Options(0));
    w.BuildMultiIndex(&client, files);
    IoTrace trace;
    SearchOptions opts;
    opts.trace = &trace;
    std::string u = UuidFor(42);
    auto r = client.SearchUuid("uuid", Slice(u), 5, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) *indexes_queried = r.value().indexes_queried;
    return trace.depth();
  };

  size_t solo_queried = 0, multi_queried = 0;
  size_t depth1 = depth_with(1, &solo_queried);
  size_t depth3 = depth_with(3, &multi_queried);
  EXPECT_EQ(solo_queried, 1u);
  EXPECT_EQ(multi_queried, 3u);
  ASSERT_GT(depth1, 0u);
  EXPECT_LE(depth3, depth1 + 1);
}

}  // namespace
}  // namespace rottnest::core
