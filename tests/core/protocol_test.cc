// Protocol correctness tests (paper §IV-D): the Existence and Consistency
// invariants must hold after every step of index / compact / vacuum,
// including injected failures at each protocol state and concurrent
// lake-side mutations.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::InMemoryObjectStore;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0x5a5a);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

class ProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = Table::Create(&store_, "lake/p", MakeSchema()).MoveValue();
    client_ = std::make_unique<Rottnest>(&store_, table_.get(), Options());
  }

  static RottnestOptions Options() {
    RottnestOptions options;
    options.index_dir = "idx/p";
    options.index_timeout_micros = 60LL * 1'000'000;  // 60 simulated secs.
    return options;
  }

  void Append(uint64_t first_id, size_t rows) {
    RowBatch b;
    b.schema = MakeSchema();
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    for (size_t i = 0; i < rows; ++i) {
      std::string u = UuidFor(first_id + i);
      uuids.Append(Slice(u));
    }
    b.columns.emplace_back(std::move(uuids));
    ASSERT_TRUE(table_->Append(b).ok());
  }

  size_t CountIndexObjects() {
    std::vector<objectstore::ObjectMeta> listing;
    EXPECT_TRUE(store_.List("idx/p/", &listing).ok());
    size_t count = 0;
    for (const auto& obj : listing) {
      if (obj.key.size() >= 6 &&
          obj.key.compare(obj.key.size() - 6, 6, ".index") == 0) {
        ++count;
      }
    }
    return count;
  }

  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  std::unique_ptr<Table> table_;
  std::unique_ptr<Rottnest> client_;
};

TEST_F(ProtocolTest, InvariantsHoldAfterNormalOperation) {
  Append(0, 100);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client_->CheckInvariants().ok());
  Append(100, 100);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client_->CheckInvariants().ok());
}

TEST_F(ProtocolTest, FailureBeforeUploadLeavesCleanState) {
  Append(0, 100);
  // Fail every index-file upload: the commit never happens.
  store_.SetFailurePoint([](const std::string& op, const std::string& key) {
    if (op == "put" && key.find(".index") != std::string::npos) {
      return Status::IOError("injected: crash before upload completes");
    }
    return Status::OK();
  });
  EXPECT_FALSE(client_->Index("uuid", IndexType::kTrie).ok());
  store_.SetFailurePoint(nullptr);

  // Metadata references nothing; invariants hold; search still works via
  // brute-force fallback.
  ASSERT_TRUE(client_->CheckInvariants().ok());
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(5)), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 1u);
}

TEST_F(ProtocolTest, FailureBeforeCommitLeavesOrphanNotCorruption) {
  Append(0, 100);
  // Let the upload succeed but fail the metadata-table commit.
  store_.SetFailurePoint([](const std::string& op, const std::string& key) {
    if (op == "put_if_absent" && key.find("idx/p/_meta/") == 0) {
      return Status::IOError("injected: crash before commit");
    }
    return Status::OK();
  });
  EXPECT_FALSE(client_->Index("uuid", IndexType::kTrie).ok());
  store_.SetFailurePoint(nullptr);

  // An orphan index object exists but is NOT referenced: invariants hold.
  EXPECT_EQ(CountIndexObjects(), 1u);
  ASSERT_TRUE(client_->CheckInvariants().ok());

  // A retry indexes the same files again (the orphan is ignored).
  auto retry = client_->Index("uuid", IndexType::kTrie);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().covered_files.size(), 1u);
  ASSERT_TRUE(client_->CheckInvariants().ok());
  EXPECT_EQ(CountIndexObjects(), 2u);  // Orphan + committed.

  // Vacuum before the timeout must NOT delete the young orphan (it cannot
  // distinguish it from an in-flight upload)...
  auto vac = client_->Vacuum(0);
  ASSERT_TRUE(vac.ok());
  EXPECT_EQ(vac.value().objects_deleted, 0u);
  EXPECT_EQ(CountIndexObjects(), 2u);

  // ...but after the timeout it can.
  clock_.Advance(Options().index_timeout_micros + 1'000'000);
  vac = client_->Vacuum(0);
  ASSERT_TRUE(vac.ok());
  EXPECT_EQ(vac.value().objects_deleted, 1u);
  EXPECT_EQ(CountIndexObjects(), 1u);
  ASSERT_TRUE(client_->CheckInvariants().ok());
}

TEST_F(ProtocolTest, IndexTimeoutAborts) {
  Append(0, 100);
  RottnestOptions options = Options();
  options.index_timeout_micros = 0;  // Expire immediately.
  Rottnest slow(&store_, table_.get(), options);
  clock_.Advance(1);
  auto report = slow.Index("uuid", IndexType::kTrie);
  EXPECT_TRUE(report.status().IsAborted());
  ASSERT_TRUE(client_->CheckInvariants().ok());
}

TEST_F(ProtocolTest, IndexAbortsWhenDataFileVanishes) {
  Append(0, 100);
  auto snap = table_->GetSnapshot().MoveValue();
  // Simulate aggressive lake GC deleting the data file mid-index.
  store_.SetFailurePoint([&](const std::string& op, const std::string& key) {
    if (op == "head" && key == snap.files[0].path) {
      return Status::NotFound("injected: vanished");
    }
    return Status::OK();
  });
  auto report = client_->Index("uuid", IndexType::kTrie);
  EXPECT_TRUE(report.status().IsAborted()) << report.status().ToString();
  store_.SetFailurePoint(nullptr);
  ASSERT_TRUE(client_->CheckInvariants().ok());
}

TEST_F(ProtocolTest, CompactionSwapsEntriesAtomically) {
  for (int i = 0; i < 4; ++i) {
    Append(i * 100, 100);
    ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  }
  auto entries = client_->metadata().ReadAll().MoveValue();
  ASSERT_EQ(entries.size(), 4u);

  auto report = client_->Compact("uuid", IndexType::kTrie);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().replaced.size(), 4u);

  entries = client_->metadata().ReadAll().MoveValue();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].covered_files.size(), 4u);
  ASSERT_TRUE(client_->CheckInvariants().ok());

  // Search still answers from the merged index with no fallback scans.
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(250)), 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().indexes_queried, 1u);
  EXPECT_EQ(result.value().files_scanned, 0u);
}

TEST_F(ProtocolTest, CompactionFailureBeforeCommitKeepsOldEntries) {
  for (int i = 0; i < 2; ++i) {
    Append(i * 100, 100);
    ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  }
  store_.SetFailurePoint([](const std::string& op, const std::string& key) {
    if (op == "put_if_absent" && key.find("idx/p/_meta/") == 0) {
      return Status::IOError("injected");
    }
    return Status::OK();
  });
  EXPECT_FALSE(client_->Compact("uuid", IndexType::kTrie).ok());
  store_.SetFailurePoint(nullptr);

  // Old entries intact; search unaffected.
  auto entries = client_->metadata().ReadAll().MoveValue();
  EXPECT_EQ(entries.size(), 2u);
  ASSERT_TRUE(client_->CheckInvariants().ok());
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(150)), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
}

TEST_F(ProtocolTest, VacuumRemovesReplacedIndexFiles) {
  for (int i = 0; i < 3; ++i) {
    Append(i * 100, 100);
    ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  }
  ASSERT_TRUE(client_->Compact("uuid", IndexType::kTrie).ok());
  EXPECT_EQ(CountIndexObjects(), 4u);  // 3 old + merged.

  clock_.Advance(Options().index_timeout_micros + 1'000'000);
  auto latest = table_->GetSnapshot().MoveValue();
  auto vac = client_->Vacuum(latest.version);
  ASSERT_TRUE(vac.ok()) << vac.status().ToString();
  EXPECT_EQ(vac.value().objects_deleted, 3u);
  EXPECT_EQ(CountIndexObjects(), 1u);
  ASSERT_TRUE(client_->CheckInvariants().ok());

  auto result = client_->SearchUuid("uuid", Slice(UuidFor(42)), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
}

TEST_F(ProtocolTest, VacuumDropsIndexesForDeadSnapshots) {
  Append(0, 100);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  // The lake compacts (single-file no-op requires >= 2 files; append more).
  Append(100, 100);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(table_->CompactFiles(UINT64_MAX).ok());
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());

  auto latest = table_->GetSnapshot().MoveValue();
  // Keep only the latest snapshot: indexes over the dead pre-compaction
  // files are no longer needed.
  clock_.Advance(Options().index_timeout_micros + 1'000'000);
  auto vac = client_->Vacuum(latest.version);
  ASSERT_TRUE(vac.ok());
  EXPECT_EQ(vac.value().metadata_entries_removed, 2u);
  EXPECT_EQ(vac.value().objects_deleted, 2u);
  ASSERT_TRUE(client_->CheckInvariants().ok());

  auto result = client_->SearchUuid("uuid", Slice(UuidFor(150)), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 0u);
}

TEST_F(ProtocolTest, VacuumKeepsIndexesForRetainedSnapshots) {
  Append(0, 100);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  Append(100, 100);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(table_->CompactFiles(UINT64_MAX).ok());
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());

  clock_.Advance(Options().index_timeout_micros + 1'000'000);
  // Retain everything from snapshot 0: the old files are still "active",
  // so their index entries survive.
  auto vac = client_->Vacuum(0);
  ASSERT_TRUE(vac.ok());
  EXPECT_EQ(vac.value().metadata_entries_removed, 0u);
  ASSERT_TRUE(client_->CheckInvariants().ok());
}

TEST(VacuumCoverTest, KeepsIndexesOfEveryColumnAndType) {
  // Regression: the vacuum greedy cover used to track covered data files
  // globally, so an index on one column could "cover" the files of another
  // column's index and vacuum would delete a live entry (which entry lost
  // depended on ReadAll's randomized name order). Coverage is per
  // (column, index_type); with one index per column over the same files,
  // vacuum must keep both.
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  Schema schema;
  schema.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  schema.columns.push_back({"body", PhysicalType::kByteArray, 0});
  auto table = Table::Create(&store, "lake/vc", schema).MoveValue();

  RowBatch b;
  b.schema = schema;
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  ColumnVector::Strings bodies;
  for (int i = 0; i < 200; ++i) {
    std::string u = UuidFor(i);
    uuids.Append(Slice(u));
    bodies.push_back("payload number " + std::to_string(i));
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(bodies));
  ASSERT_TRUE(table->Append(b).ok());

  RottnestOptions options;
  options.index_dir = "idx/vc";
  options.index_timeout_micros = 60LL * 1'000'000;
  options.fm.block_size = 2048;
  Rottnest client(&store, table.get(), options);
  ASSERT_TRUE(client.Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client.Index("body", IndexType::kFm).ok());

  clock.Advance(options.index_timeout_micros + 1'000'000);
  auto latest = table->GetSnapshot().MoveValue();
  auto vac = client.Vacuum(latest.version);
  ASSERT_TRUE(vac.ok()) << vac.status().ToString();
  EXPECT_EQ(vac.value().metadata_entries_removed, 0u);
  EXPECT_EQ(vac.value().objects_deleted, 0u);
  ASSERT_TRUE(client.CheckInvariants().ok());

  // Both searches stay index-served — no brute-scan fallback for a column
  // whose index was wrongly vacuumed.
  auto u = client.SearchUuid("uuid", Slice(UuidFor(42)), 5);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().matches.size(), 1u);
  EXPECT_EQ(u.value().files_scanned, 0u);
  auto s = client.SearchSubstring("body", "number 42", 5);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.value().matches.empty());
  EXPECT_EQ(s.value().files_scanned, 0u);
}

TEST_F(ProtocolTest, ConcurrentIndexersDoNotViolateInvariants) {
  // The paper allows (discourages, but allows) concurrent indexers on the
  // same column: both commit, files get doubly indexed, nothing breaks.
  Append(0, 200);
  Rottnest other(&store_, table_.get(), Options());
  auto a = client_->Index("uuid", IndexType::kTrie);
  auto b = other.Index("uuid", IndexType::kTrie);
  ASSERT_TRUE(a.ok());
  // b may be a no-op (saw a's commit) or a duplicate index; both legal.
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(client_->CheckInvariants().ok());

  // Search dedups matches across duplicate indexes.
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(7)), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
}

TEST_F(ProtocolTest, RandomizedCrashRecoveryFuzz) {
  // Inject a failure at a random operation repeatedly; after every failed
  // call, invariants must hold and search must stay correct.
  Random rng(2024);
  uint64_t next_id = 0;
  for (int round = 0; round < 15; ++round) {
    Append(next_id, 50);
    next_id += 50;

    int fail_after = static_cast<int>(rng.Uniform(6));
    int counter = 0;
    store_.SetFailurePoint(
        [&](const std::string& op, const std::string& key) {
          if (key.find("idx/p/") != 0) return Status::OK();
          if (op != "put" && op != "put_if_absent") return Status::OK();
          if (counter++ == fail_after) {
            return Status::IOError("injected crash");
          }
          return Status::OK();
        });
    (void)client_->Index("uuid", IndexType::kTrie);
    (void)client_->Compact("uuid", IndexType::kTrie);
    store_.SetFailurePoint(nullptr);

    ASSERT_TRUE(client_->CheckInvariants().ok()) << "round " << round;
    uint64_t probe = rng.Uniform(next_id);
    auto result = client_->SearchUuid("uuid", Slice(UuidFor(probe)), 3);
    ASSERT_TRUE(result.ok()) << "round " << round;
    ASSERT_EQ(result.value().matches.size(), 1u)
        << "round " << round << " id " << probe;
  }
  // Converge: a clean index + compact + vacuum leaves a tidy state.
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client_->Compact("uuid", IndexType::kTrie).ok());
  clock_.Advance(Options().index_timeout_micros + 1'000'000);
  auto latest = table_->GetSnapshot().MoveValue();
  ASSERT_TRUE(client_->Vacuum(latest.version).ok());
  ASSERT_TRUE(client_->CheckInvariants().ok());
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(1)), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
}

}  // namespace
}  // namespace rottnest::core
