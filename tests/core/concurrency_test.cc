// Concurrency tests: the paper's deployment model runs `search`, `index`,
// `compact` and `vacuum` from independent processes against shared object
// storage. Here they run from concurrent threads against one store; every
// search must return correct results at every interleaving, and the
// invariants must hold throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::InMemoryObjectStore;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0xc0ffee);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

RowBatch MakeBatch(uint64_t first, size_t rows) {
  RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  for (size_t i = 0; i < rows; ++i) {
    std::string u = UuidFor(first + i);
    uuids.Append(Slice(u));
  }
  b.columns.emplace_back(std::move(uuids));
  return b;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/c";
  options.num_threads = 2;
  return options;
}

TEST(ConcurrencyTest, SearchersRunDuringIndexingAndCompaction) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "lake/c", MakeSchema()).MoveValue();

  // Seed with two indexed files so searchers always have work.
  Rottnest maintainer(&store, table.get(), Options());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(table->Append(MakeBatch(i * 100, 100)).ok());
    ASSERT_TRUE(maintainer.Index("uuid", IndexType::kTrie).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> searches{0};
  std::atomic<int> failures{0};

  // Three independent searcher "processes".
  std::vector<std::thread> searchers;
  for (int t = 0; t < 3; ++t) {
    searchers.emplace_back([&, t] {
      Rottnest client(&store, table.get(), Options());
      Random rng(t + 1);
      while (!stop.load()) {
        uint64_t id = rng.Uniform(200);
        std::string u = UuidFor(id);
        auto r = client.SearchUuid("uuid", Slice(u), 3);
        if (!r.ok() || r.value().matches.empty()) {
          failures.fetch_add(1);
        }
        searches.fetch_add(1);
      }
    });
  }

  // Every searcher must be up and searching before maintenance starts, and
  // maintenance must not declare victory until searches kept flowing after
  // it — otherwise a fast maintenance loop can finish before the searcher
  // threads even construct their clients and the test overlaps nothing.
  while (searches.load() < 3) std::this_thread::yield();

  // Maintenance loop: append + index + compact + vacuum concurrently.
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(table->Append(MakeBatch(200 + round * 50, 50)).ok());
    ASSERT_TRUE(maintainer.Index("uuid", IndexType::kTrie).ok());
    if (round % 2 == 1) {
      ASSERT_TRUE(
          maintainer.Compact("uuid", IndexType::kTrie).ok());
      // Vacuum with a live timeout: uncommitted-looking young files are
      // protected, so concurrent searches never lose their index files.
      auto latest = table->GetSnapshot().MoveValue().version;
      ASSERT_TRUE(maintainer.Vacuum(latest).ok());
    }
  }
  int at_end = searches.load();
  while (searches.load() < at_end + 10) std::this_thread::yield();
  stop.store(true);
  for (auto& t : searchers) t.join();

  EXPECT_GT(searches.load(), 10);
  EXPECT_EQ(failures.load(), 0) << "some search lost rows mid-maintenance";
  ASSERT_TRUE(maintainer.CheckInvariants().ok());
}

TEST(ConcurrencyTest, ConcurrentIndexersOnDifferentColumnsCommute) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  Schema schema;
  schema.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  schema.columns.push_back({"body", PhysicalType::kByteArray, 0});
  auto table = Table::Create(&store, "lake/c2", schema).MoveValue();

  RowBatch b;
  b.schema = schema;
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  ColumnVector::Strings bodies;
  for (int i = 0; i < 300; ++i) {
    std::string u = UuidFor(i);
    uuids.Append(Slice(u));
    bodies.push_back("payload number " + std::to_string(i));
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(bodies));
  ASSERT_TRUE(table->Append(b).ok());

  std::thread t1([&] {
    Rottnest c(&store, table.get(), Options());
    ASSERT_TRUE(c.Index("uuid", IndexType::kTrie).ok());
  });
  std::thread t2([&] {
    RottnestOptions options = Options();
    options.fm.block_size = 2048;
    Rottnest c(&store, table.get(), options);
    ASSERT_TRUE(c.Index("body", IndexType::kFm).ok());
  });
  t1.join();
  t2.join();

  Rottnest client(&store, table.get(), Options());
  ASSERT_TRUE(client.CheckInvariants().ok());
  auto uuid_r = client.SearchUuid("uuid", Slice(UuidFor(42)), 3);
  ASSERT_TRUE(uuid_r.ok());
  EXPECT_EQ(uuid_r.value().matches.size(), 1u);
  EXPECT_EQ(uuid_r.value().files_scanned, 0u);
  auto sub_r = client.SearchSubstring("body", "number 42", 3);
  ASSERT_TRUE(sub_r.ok());
  EXPECT_FALSE(sub_r.value().matches.empty());
  EXPECT_EQ(sub_r.value().files_scanned, 0u);
}

TEST(ConcurrencyTest, LakeWritersAndIndexersInterleave) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table = Table::Create(&store, "lake/c3", MakeSchema()).MoveValue();

  constexpr int kBatches = 12;
  std::thread writer([&] {
    lake::Table* t = table.get();
    for (int i = 0; i < kBatches; ++i) {
      ASSERT_TRUE(t->Append(MakeBatch(i * 20, 20)).ok());
    }
  });

  Rottnest indexer(&store, table.get(), Options());
  for (int i = 0; i < 10; ++i) {
    auto r = indexer.Index("uuid", IndexType::kTrie);
    // May be a no-op when the writer is between commits; never an error.
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  writer.join();
  // One final pass so everything committed is indexed or scannable.
  ASSERT_TRUE(indexer.Index("uuid", IndexType::kTrie).ok());

  ASSERT_TRUE(indexer.CheckInvariants().ok());
  // Everything ever written is findable (indexed or via fallback scan).
  Rottnest client(&store, table.get(), Options());
  auto snap = table->GetSnapshot().MoveValue();
  uint64_t total = snap.TotalRows();
  ASSERT_GT(total, 0u);
  for (uint64_t probe : {uint64_t{0}, total / 2, total - 1}) {
    auto r = client.SearchUuid("uuid", Slice(UuidFor(probe)), 3);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().matches.size(), 1u) << probe;
  }
}

}  // namespace
}  // namespace rottnest::core
