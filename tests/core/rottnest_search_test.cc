// End-to-end tests of the Rottnest client: index + search across all three
// index types against a live data lake, including snapshot filtering,
// deletion vectors, and unindexed-file fallback.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rottnest.h"
#include "index/ivfpq/kmeans.h"
#include "objectstore/object_store.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

constexpr uint32_t kDim = 16;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  s.columns.push_back({"vec", PhysicalType::kFixedLenByteArray, kDim * 4});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0xabcdef);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

class RottnestSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = Table::Create(&store_, "lake/t", MakeSchema(), WriterOpts())
                 .MoveValue();
    RottnestOptions options;
    options.index_dir = "idx/t";
    options.ivfpq.nlist = 16;
    options.ivfpq.num_subquantizers = 4;
    options.fm.block_size = 2048;
    options.fm.sample_rate = 8;
    client_ = std::make_unique<Rottnest>(&store_, table_.get(), options);
  }

  static format::WriterOptions WriterOpts() {
    format::WriterOptions w;
    w.target_page_bytes = 2048;       // Many small pages.
    w.target_row_group_bytes = 32 << 10;
    return w;
  }

  // Appends `rows` rows with ids [first_id, first_id + rows).
  void Append(uint64_t first_id, size_t rows) {
    Random rng(first_id + 1);
    RowBatch b;
    b.schema = MakeSchema();
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    ColumnVector::Strings bodies;
    format::FlatFixed vecs;
    vecs.elem_size = kDim * 4;
    for (size_t i = 0; i < rows; ++i) {
      uint64_t id = first_id + i;
      std::string u = UuidFor(id);
      uuids.Append(Slice(u));
      bodies.push_back("row " + std::to_string(id) + " token" +
                       std::to_string(id % 7) + " payload");
      std::vector<float> v = VecFor(id);
      vecs.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()),
                        kDim * 4));
    }
    b.columns.emplace_back(std::move(uuids));
    b.columns.emplace_back(std::move(bodies));
    b.columns.emplace_back(std::move(vecs));
    ASSERT_TRUE(table_->Append(b).ok());
  }

  static std::vector<float> VecFor(uint64_t id) {
    Random rng(id * 7 + 3);
    std::vector<float> v(kDim);
    // 8 well-separated cluster centers + small jitter.
    uint64_t cluster = id % 8;
    for (uint32_t d = 0; d < kDim; ++d) {
      v[d] = static_cast<float>((cluster == d % 8 ? 50.0 : 0.0) +
                                rng.NextGaussian() * 0.1);
    }
    return v;
  }

  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  std::unique_ptr<Table> table_;
  std::unique_ptr<Rottnest> client_;
};

TEST_F(RottnestSearchTest, IndexThenUuidSearch) {
  Append(0, 500);
  Append(500, 500);
  auto report = client_->Index("uuid", IndexType::kTrie);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().covered_files.size(), 2u);
  EXPECT_EQ(report.value().rows, 1000u);

  for (uint64_t id : {0ULL, 123ULL, 999ULL}) {
    std::string u = UuidFor(id);
    auto result = client_->SearchUuid("uuid", Slice(u), 10);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().matches.size(), 1u) << id;
    EXPECT_EQ(result.value().matches[0].value, u);
    EXPECT_EQ(result.value().files_scanned, 0u);  // Fully indexed.
  }
  // Missing key: nothing (and no brute-force panic since index is
  // exhaustive for these files — fallback scan may still run; allow it).
  std::string ghost = UuidFor(123456789);
  auto result = client_->SearchUuid("uuid", Slice(ghost), 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());
}

TEST_F(RottnestSearchTest, IndexIsIncremental) {
  Append(0, 300);
  auto r1 = client_->Index("uuid", IndexType::kTrie);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().covered_files.size(), 1u);

  Append(300, 300);
  auto r2 = client_->Index("uuid", IndexType::kTrie);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().covered_files.size(), 1u);  // Only the new file.
  EXPECT_NE(r2.value().index_path, r1.value().index_path);

  auto r3 = client_->Index("uuid", IndexType::kTrie);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().index_path.empty());  // Nothing new.

  // Both ranges searchable.
  auto a = client_->SearchUuid("uuid", Slice(UuidFor(10)), 5);
  auto b = client_->SearchUuid("uuid", Slice(UuidFor(599)), 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().matches.size(), 1u);
  EXPECT_EQ(b.value().matches.size(), 1u);
  EXPECT_EQ(a.value().indexes_queried, 2u);
}

TEST_F(RottnestSearchTest, UnindexedFilesFallBackToScan) {
  Append(0, 300);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  Append(300, 300);  // Not indexed.

  auto result = client_->SearchUuid("uuid", Slice(UuidFor(450)), 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 1u);  // Scanned the fresh file.
}

TEST_F(RottnestSearchTest, ExactTopKSkipsScanWhenSatisfied) {
  Append(0, 300);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  Append(300, 300);  // Unindexed.

  // Key 10 is in the indexed file; k=1 is satisfied by the index, so the
  // unindexed file must NOT be scanned (paper §IV-B step 3).
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(10)), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 0u);
}

TEST_F(RottnestSearchTest, SubstringSearchEndToEnd) {
  Append(0, 400);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());

  auto result = client_->SearchSubstring("body", "row 123 ", 10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_NE(result.value().matches[0].value.find("row 123 "),
            std::string::npos);

  // Common token appears in many rows.
  auto common = client_->SearchSubstring("body", "token3", 20);
  ASSERT_TRUE(common.ok());
  EXPECT_GE(common.value().matches.size(), 20u - 3);
  for (const RowMatch& m : common.value().matches) {
    EXPECT_NE(m.value.find("token3"), std::string::npos);
  }
}

TEST_F(RottnestSearchTest, SubstringAcrossIndexedAndUnindexed) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  Append(200, 200);

  auto result = client_->SearchSubstring("body", "row 350 ", 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 1u);
}

TEST_F(RottnestSearchTest, VectorSearchFindsNearestNeighbours) {
  Append(0, 800);
  ASSERT_TRUE(client_->Index("vec", IndexType::kIvfPq).ok());

  // Query with the exact stored vector of id 42: its own row must rank
  // first with distance ~0.
  std::vector<float> q = VecFor(42);
  SearchOptions opts;
  opts.params.vector = {/*nprobe=*/16, /*refine=*/50};
  auto result = client_->SearchVector("vec", q.data(), kDim, 10, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result.value().matches.size(), 10u);
  EXPECT_NEAR(result.value().matches[0].distance, 0.0, 1e-3);
  // Distances ascend.
  for (size_t i = 1; i < result.value().matches.size(); ++i) {
    EXPECT_LE(result.value().matches[i - 1].distance,
              result.value().matches[i].distance);
  }
}

TEST_F(RottnestSearchTest, VectorSearchAlwaysScansUnindexed) {
  Append(0, 400);
  ASSERT_TRUE(client_->Index("vec", IndexType::kIvfPq).ok());
  Append(400, 100);  // Unindexed rows.

  std::vector<float> q = VecFor(450);  // Lives in the unindexed file.
  SearchOptions opts;
  opts.params.vector = {/*nprobe=*/16, /*refine=*/50};
  auto result = client_->SearchVector("vec", q.data(), kDim, 5, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().files_scanned, 1u);  // Scoring queries must scan.
  ASSERT_FALSE(result.value().matches.empty());
  EXPECT_NEAR(result.value().matches[0].distance, 0.0, 1e-3);
}

TEST_F(RottnestSearchTest, SnapshotFilteringAfterLakeCompaction) {
  Append(0, 300);
  Append(300, 300);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());

  // Lake-side compaction rewrites both files into one; the index now
  // points at dead files.
  ASSERT_TRUE(table_->CompactFiles(UINT64_MAX).ok());

  // Search must still be correct: postings to dead files are filtered and
  // the new (unindexed) file is scanned.
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(100)), 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 1u);
  EXPECT_EQ(result.value().pages_probed, 0u);  // All postings filtered out.

  // Re-index covers the compacted file; scans stop.
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  result = client_->SearchUuid("uuid", Slice(UuidFor(100)), 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 0u);
}

TEST_F(RottnestSearchTest, DeletionVectorsRespected) {
  Append(0, 300);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());

  std::string victim = UuidFor(77);
  ASSERT_TRUE(table_
                  ->DeleteWhere("uuid",
                                [&](const ColumnVector& col, size_t r) {
                                  return col.fixed().at(r) == Slice(victim);
                                })
                  .ok());

  auto result = client_->SearchUuid("uuid", Slice(victim), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());  // Deleted row filtered.

  // Neighbouring rows unaffected.
  auto other = client_->SearchUuid("uuid", Slice(UuidFor(78)), 5);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value().matches.size(), 1u);
}

TEST_F(RottnestSearchTest, TimeTravelSearchesOldSnapshot) {
  Append(0, 200);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  auto snap1 = table_->GetSnapshot().MoveValue();
  Append(200, 200);

  // Searching the old snapshot must not see (or scan) the new file.
  SearchOptions pinned;
  pinned.snapshot = snap1.version;
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(250)), 5, pinned);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());
  EXPECT_EQ(result.value().files_scanned, 0u);

  auto latest = client_->SearchUuid("uuid", Slice(UuidFor(250)), 5);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().matches.size(), 1u);
}

TEST_F(RottnestSearchTest, SearchUnknownColumnFails) {
  Append(0, 10);
  auto result = client_->SearchUuid("nope", Slice(UuidFor(1)), 5);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(RottnestSearchTest, VectorMinimumSizeAborts) {
  RottnestOptions options;
  options.index_dir = "idx/min";
  options.min_vector_index_rows = 1000;
  options.ivfpq.nlist = 16;
  options.ivfpq.num_subquantizers = 4;
  Rottnest strict(&store_, table_.get(), options);
  Append(0, 100);  // Below the minimum.
  auto report = strict.Index("vec", IndexType::kIvfPq);
  EXPECT_TRUE(report.status().IsAborted());
}

TEST_F(RottnestSearchTest, SearchRecordsTraceRounds) {
  Append(0, 400);
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  IoTrace trace;
  SearchOptions opts;
  opts.trace = &trace;
  auto result = client_->SearchUuid("uuid", Slice(UuidFor(3)), 5, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(trace.total_gets(), 0u);
  EXPECT_GT(trace.total_lists(), 0u);
  // Plan + index open + leaf + page probe: a handful of dependent rounds,
  // never proportional to data size.
  EXPECT_LE(trace.depth(), 8u);
}

}  // namespace
}  // namespace rottnest::core
