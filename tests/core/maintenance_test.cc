// The v2 maintenance API (MaintenanceOptions): determinism of the parallel
// Index/Compact pipelines, the per-page-batch timeout, dry runs, byte
// budgets, and maintenance concurrency/chaos — including the crash-schedule
// explorer extended to the parallel pipeline stages.
//
// The load-bearing property is BYTE-IDENTITY: the index object emitted by a
// parallel build must equal the serial build's bytes exactly, at any
// `parallelism` and any `byte_budget`, so operators can turn the knobs
// without changing what lands in the object store.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::CrashMode;
using objectstore::FaultInjectingStore;
using objectstore::FaultOptions;
using objectstore::InMemoryObjectStore;
using objectstore::RetryingStore;
using objectstore::RetryPolicy;
using objectstore::SimulatedSleeper;

constexpr uint32_t kDim = 16;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  s.columns.push_back({"vec", PhysicalType::kFixedLenByteArray, kDim * 4});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0x77aa55);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

std::vector<float> VecFor(uint64_t id) {
  Random rng(id * 13 + 1);
  std::vector<float> v(kDim);
  uint64_t cluster = id % 8;
  for (uint32_t d = 0; d < kDim; ++d) {
    v[d] = static_cast<float>((cluster == d % 8 ? 50.0 : 0.0) +
                              rng.NextGaussian() * 0.1);
  }
  return v;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/m";
  options.ivfpq.nlist = 16;
  options.ivfpq.num_subquantizers = 4;
  options.fm.block_size = 2048;
  options.fm.sample_rate = 8;
  options.index_timeout_micros = 600LL * 1'000'000;
  return options;
}

format::WriterOptions WriterOpts() {
  format::WriterOptions w;
  w.target_page_bytes = 1024;
  w.target_row_group_bytes = 8 << 10;
  return w;
}

void AppendRows(Table* table, uint64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  ColumnVector::Strings bodies;
  format::FlatFixed vecs;
  vecs.elem_size = kDim * 4;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t id = first_id + i;
    std::string u = UuidFor(id);
    uuids.Append(Slice(u));
    bodies.push_back("row " + std::to_string(id) + " token" +
                     std::to_string(id % 7) + " payload");
    std::vector<float> v = VecFor(id);
    vecs.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()), kDim * 4));
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(bodies));
  b.columns.emplace_back(std::move(vecs));
  ASSERT_TRUE(table->Append(b).ok());
}

/// A fresh deterministic universe over a plain in-memory store.
struct World {
  SimulatedClock clock;
  InMemoryObjectStore store{&clock};
  std::unique_ptr<Table> table;
  std::unique_ptr<Rottnest> client;

  World() {
    table =
        Table::Create(&store, "lake/m", MakeSchema(), WriterOpts()).MoveValue();
    client = std::make_unique<Rottnest>(&store, table.get(), Options());
  }

  void Append(uint64_t first_id, size_t rows) {
    AppendRows(table.get(), first_id, rows);
  }

  Buffer ObjectBytes(const std::string& key) {
    Buffer b;
    EXPECT_TRUE(store.Get(key, &b).ok()) << key;
    return b;
  }
};

/// The width-invariant fingerprint of a maintenance op: parallelism may
/// reorder and overlap requests (changing depth/latency), but must never
/// add or drop any — so totals and request cost are identical.
void ExpectSameFootprint(const MaintenanceStats& a, const MaintenanceStats& b) {
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.lists, b.lists);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.simulated_cost_usd, b.simulated_cost_usd);
}

/// The width-DEPENDENT half of the contract: widening the pipeline overlaps
/// per-file chains in waves, so the recorded dependent-round depth (and the
/// simulated latency it implies) must strictly improve, never regress.
void ExpectShallower(const MaintenanceStats& parallel,
                     const MaintenanceStats& serial) {
  EXPECT_LT(parallel.io_depth, serial.io_depth);
  EXPECT_LT(parallel.simulated_latency_ms, serial.simulated_latency_ms);
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical output at any parallelism / byte budget.
//
// Data-file object names are intentionally unique per table instance
// (Table::NewObjectName mixes instance identity), and the index object
// embeds the covered data-file paths — so byte-identity is only meaningful
// WITHIN one world. Each variant builds against the same table, then
// un-commits its entry (metadata Update + object delete) so the next
// variant sees the identical input state.

TEST(MaintenanceDeterminismTest, IndexByteIdenticalAtAnyParallelismAndBudget) {
  World w;
  w.Append(0, 200);
  w.Append(200, 200);

  auto rebuild = [&](const char* column, IndexType type, size_t parallelism,
                     uint64_t byte_budget) -> Buffer {
    MaintenanceOptions opts;
    opts.parallelism = parallelism;
    opts.byte_budget = byte_budget;
    auto r = w.client->Index(column, type, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok() || r.value().index_path.empty()) return Buffer();
    EXPECT_EQ(r.value().stats.parallelism, parallelism);
    Buffer bytes = w.ObjectBytes(r.value().index_path);
    // Un-commit: drop the entry and the object so the files count as
    // fresh again for the next variant.
    EXPECT_TRUE(w.client->metadata().Update({}, {r.value().index_path}).ok());
    EXPECT_TRUE(w.store.Delete(r.value().index_path).ok());
    return bytes;
  };

  for (auto [column, type] :
       {std::pair{"uuid", IndexType::kTrie}, std::pair{"body", IndexType::kFm},
        std::pair{"vec", IndexType::kIvfPq}}) {
    SCOPED_TRACE(column);
    Buffer serial = rebuild(column, type, 1, 0);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, rebuild(column, type, 2, 0));
    EXPECT_EQ(serial, rebuild(column, type, 8, 0));
    // A 1-byte staging budget degenerates the pipeline to head-of-line-only
    // admission; output bytes must not notice.
    EXPECT_EQ(serial, rebuild(column, type, 8, 1));
  }
}

TEST(MaintenanceDeterminismTest, IndexFootprintIdenticalAtAnyParallelism) {
  // The IO footprint (and therefore simulated latency/cost) is part of the
  // determinism contract: parallelism reorders requests, never adds any.
  // Footprints are world-shape-independent, so these compare across fresh
  // worlds — one per width, with identical histories.
  auto build = [](size_t parallelism, MaintenanceStats* trie,
                  MaintenanceStats* fm, MaintenanceStats* ivf) {
    World w;
    w.Append(0, 200);
    w.Append(200, 200);
    MaintenanceOptions opts;
    opts.parallelism = parallelism;
    auto t = w.client->Index("uuid", IndexType::kTrie, opts);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    *trie = t.value().stats;
    auto f = w.client->Index("body", IndexType::kFm, opts);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    *fm = f.value().stats;
    auto v = w.client->Index("vec", IndexType::kIvfPq, opts);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    *ivf = v.value().stats;
  };
  MaintenanceStats t1, f1, v1, t8, f8, v8;
  build(1, &t1, &f1, &v1);
  build(8, &t8, &f8, &v8);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ExpectSameFootprint(t1, t8);
  ExpectSameFootprint(f1, f8);
  ExpectSameFootprint(v1, v8);
  // Two data files: the serial build pays both staging chains back to
  // back; the wide build overlaps them.
  ExpectShallower(t8, t1);
  ExpectShallower(f8, f1);
  ExpectShallower(v8, v1);
  EXPECT_EQ(t1.parallelism, 1u);
  EXPECT_EQ(t8.parallelism, 8u);
  EXPECT_GT(t1.gets, 0u);
  EXPECT_GT(t1.io_depth, 0u);
}

TEST(MaintenanceDeterminismTest, CompactByteIdenticalAtAnyParallelismAndBudget) {
  World w;
  for (int r = 0; r < 3; ++r) {
    w.Append(static_cast<uint64_t>(r) * 150, 150);
    ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
    ASSERT_TRUE(w.client->Index("body", IndexType::kFm).ok());
    ASSERT_TRUE(w.client->Index("vec", IndexType::kIvfPq).ok());
    // Distinct commit stamps: the deterministic merge order sorts small
    // inputs by created_micros first.
    w.clock.Advance(1'000'000);
  }

  auto recompact = [&](const char* column, IndexType type, size_t parallelism,
                       uint64_t byte_budget) -> Buffer {
    auto before = w.client->metadata().ReadAll();
    EXPECT_TRUE(before.ok());
    MaintenanceOptions opts;
    opts.parallelism = parallelism;
    opts.byte_budget = byte_budget;
    auto c = w.client->Compact(column, type, opts);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    if (!c.ok() || c.value().merged_path.empty()) return Buffer();
    EXPECT_EQ(c.value().replaced.size(), 3u);
    Buffer bytes = w.ObjectBytes(c.value().merged_path);
    // Restore the replaced entries (original created_micros and all) so
    // the next variant merges the identical input set.
    std::vector<lake::IndexEntry> readd;
    for (const lake::IndexEntry& e : before.value()) {
      if (std::find(c.value().replaced.begin(), c.value().replaced.end(),
                    e.index_path) != c.value().replaced.end()) {
        readd.push_back(e);
      }
    }
    EXPECT_EQ(readd.size(), 3u);
    EXPECT_TRUE(
        w.client->metadata().Update(readd, {c.value().merged_path}).ok());
    EXPECT_TRUE(w.store.Delete(c.value().merged_path).ok());
    return bytes;
  };

  for (auto [column, type] :
       {std::pair{"uuid", IndexType::kTrie}, std::pair{"body", IndexType::kFm},
        std::pair{"vec", IndexType::kIvfPq}}) {
    SCOPED_TRACE(column);
    Buffer serial = recompact(column, type, 1, 0);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, recompact(column, type, 8, 0));
    // byte_budget bounds how much of the inputs is prefetched concurrently;
    // a starved budget may change the REQUEST pattern but never the bytes.
    EXPECT_EQ(serial, recompact(column, type, 8, 1));
  }
  EXPECT_TRUE(w.client->CheckInvariants().ok());
}

TEST(MaintenanceDeterminismTest, CompactFootprintIdenticalAtAnyParallelism) {
  auto compact = [](size_t parallelism, std::vector<MaintenanceStats>* stats) {
    World w;
    for (int r = 0; r < 3; ++r) {
      w.Append(static_cast<uint64_t>(r) * 150, 150);
      ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
      ASSERT_TRUE(w.client->Index("body", IndexType::kFm).ok());
      w.clock.Advance(1'000'000);
    }
    MaintenanceOptions opts;
    opts.parallelism = parallelism;
    for (auto [column, type] : {std::pair{"uuid", IndexType::kTrie},
                                std::pair{"body", IndexType::kFm}}) {
      auto c = w.client->Compact(column, type, opts);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      EXPECT_EQ(c.value().replaced.size(), 3u);
      stats->push_back(c.value().stats);
    }
    ASSERT_TRUE(w.client->CheckInvariants().ok());
  };
  std::vector<MaintenanceStats> serial, parallel;
  compact(1, &serial);
  compact(8, &parallel);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameFootprint(serial[i], parallel[i]);
    // Three input prefetch chains: one wave wide vs three sequential.
    ExpectShallower(parallel[i], serial[i]);
  }
}

// ---------------------------------------------------------------------------
// Timeout granularity: the deadline is enforced per page batch, not once
// per data file, so a slow store mid-file aborts promptly.

TEST(MaintenanceTimeoutTest, TimeoutEnforcedPerPageBatch) {
  SimulatedClock clock;
  InMemoryObjectStore inner(&clock);
  FaultInjectingStore store(&inner);
  auto table =
      Table::Create(&store, "lake/to", MakeSchema(), WriterOpts()).MoveValue();
  Rottnest client(&store, table.get(), Options());
  AppendRows(table.get(), 0, 1500);  // Many row groups in one data file.

  // Fault-free footprint of the same build, measured in an identical world.
  uint64_t fault_free_ops = 0;
  {
    SimulatedClock c2;
    InMemoryObjectStore i2(&c2);
    FaultInjectingStore s2(&i2);
    auto t2 =
        Table::Create(&s2, "lake/to", MakeSchema(), WriterOpts()).MoveValue();
    Rottnest c(&s2, t2.get(), Options());
    AppendRows(t2.get(), 0, 1500);
    uint64_t before = s2.op_count();
    auto r = c.Index("uuid", IndexType::kTrie);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    fault_free_ops = s2.op_count() - before;
  }
  ASSERT_GT(fault_free_ops, 8u) << "world too small to distinguish per-file "
                                   "from per-batch timeout checks";

  // The store turns to molasses on the first data-file read: the budget
  // expires while the file is mid-staging.
  bool fired = false;
  store.SetFailurePoint([&](const std::string& op,
                            const std::string& key) -> Status {
    if (!fired && op == "get" && key.find("/data/") != std::string::npos) {
      fired = true;
      clock.Advance(10'000'000);
    }
    return Status::OK();
  });
  MaintenanceOptions opts;
  opts.parallelism = 1;
  opts.time_budget_micros = 1000;
  uint64_t before = store.op_count();
  auto r = client.Index("uuid", IndexType::kTrie, opts);
  uint64_t used = store.op_count() - before;
  store.SetFailurePoint(nullptr);

  EXPECT_TRUE(fired);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted()) << r.status().ToString();
  // Aborted mid-file: a once-per-file check would have staged the whole
  // file (and only failed afterwards), spending nearly the full footprint.
  EXPECT_LT(2 * used, fault_free_ops)
      << "timeout did not abort promptly (used " << used << " of "
      << fault_free_ops << " ops)";
  // Nothing was committed.
  auto entries = client.metadata().ReadAll();
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries.value().empty());

  // With the clock no longer sabotaged, the retried op converges.
  auto retry = client.Index("uuid", IndexType::kTrie);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(client.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Dry runs: full plan + stats, zero mutation.

TEST(MaintenanceDryRunTest, DryRunsPlanWithoutMutating) {
  World w;
  MaintenanceOptions dry;
  dry.dry_run = true;

  w.Append(0, 300);
  auto di = w.client->Index("uuid", IndexType::kTrie, dry);
  ASSERT_TRUE(di.ok()) << di.status().ToString();
  EXPECT_TRUE(di.value().index_path.empty());
  EXPECT_GE(di.value().covered_files.size(), 1u);
  EXPECT_EQ(di.value().rows, 300u);
  EXPECT_TRUE(di.value().stats.dry_run);
  std::vector<objectstore::ObjectMeta> listing;
  ASSERT_TRUE(w.store.List("idx/m/", &listing).ok());
  EXPECT_TRUE(listing.empty()) << "dry-run Index wrote an object";
  auto entries = w.client->metadata().ReadAll();
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries.value().empty()) << "dry-run Index committed metadata";

  // Three real rounds, then a dry compact.
  for (int r = 0; r < 3; ++r) {
    if (r > 0) w.Append(static_cast<uint64_t>(r) * 300, 300);
    ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
    w.clock.Advance(1'000'000);
  }
  ASSERT_TRUE(w.store.List("idx/m/", &listing).ok());
  size_t objects_before = listing.size();
  auto dc = w.client->Compact("uuid", IndexType::kTrie, dry);
  ASSERT_TRUE(dc.ok()) << dc.status().ToString();
  EXPECT_TRUE(dc.value().merged_path.empty());
  EXPECT_EQ(dc.value().replaced.size(), 3u);
  EXPECT_TRUE(dc.value().stats.dry_run);
  ASSERT_TRUE(w.store.List("idx/m/", &listing).ok());
  EXPECT_EQ(listing.size(), objects_before) << "dry-run Compact wrote";
  entries = w.client->metadata().ReadAll();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 3u) << "dry-run Compact committed";

  // Real compact, age out the replaced objects, then dry vacuum.
  auto rc = w.client->Compact("uuid", IndexType::kTrie);
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  ASSERT_EQ(rc.value().replaced.size(), 3u);
  w.clock.Advance(Options().index_timeout_micros + 1'000'000);
  auto latest = w.table->GetSnapshot();
  ASSERT_TRUE(latest.ok());

  auto dv = w.client->Vacuum(latest.value().version, dry);
  ASSERT_TRUE(dv.ok()) << dv.status().ToString();
  EXPECT_TRUE(dv.value().stats.dry_run);
  std::multiset<std::string> planned(dv.value().deleted_objects.begin(),
                                     dv.value().deleted_objects.end());
  EXPECT_EQ(planned.size(), 3u);  // Exactly the replaced index objects.
  for (const std::string& key : planned) {
    objectstore::ObjectMeta meta;
    EXPECT_TRUE(w.store.Head(key, &meta).ok())
        << "dry-run Vacuum deleted " << key;
  }

  // The real vacuum deletes exactly what the dry run planned.
  auto rv = w.client->Vacuum(latest.value().version);
  ASSERT_TRUE(rv.ok()) << rv.status().ToString();
  EXPECT_EQ(rv.value().objects_deleted, 3u);
  std::multiset<std::string> deleted(rv.value().deleted_objects.begin(),
                                     rv.value().deleted_objects.end());
  EXPECT_EQ(deleted, planned);
  for (const std::string& key : planned) {
    objectstore::ObjectMeta meta;
    EXPECT_TRUE(w.store.Head(key, &meta).IsNotFound());
  }
  EXPECT_TRUE(w.client->CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Concurrency & chaos over the parallel pipelines.

TEST(MaintenanceConcurrencyTest, IndexCommitLandingDuringCompactCommutes) {
  SimulatedClock clock;
  InMemoryObjectStore inner(&clock);
  FaultInjectingStore store(&inner);
  auto table =
      Table::Create(&store, "lake/cc", MakeSchema(), WriterOpts()).MoveValue();
  Rottnest client(&store, table.get(), Options());
  for (int r = 0; r < 3; ++r) {
    AppendRows(table.get(), static_cast<uint64_t>(r) * 150, 150);
    ASSERT_TRUE(client.Index("uuid", IndexType::kTrie).ok());
    clock.Advance(1'000'000);
  }

  // A second client commits a fresh FM index at an exact protocol point
  // inside Compact: after it has chosen its inputs (the HEAD sizing pass),
  // before the merge/commit. The metadata log must serialize both commits.
  Rottnest concurrent(&store, table.get(), Options());
  bool fired = false;
  store.SetFailurePoint(
      [&](const std::string& op, const std::string& key) -> Status {
        if (op == "head" && !fired) {
          fired = true;
          auto r = concurrent.Index("body", IndexType::kFm);
          EXPECT_TRUE(r.ok()) << r.status().ToString();
          EXPECT_FALSE(r.value().index_path.empty());
        }
        return Status::OK();
      });
  MaintenanceOptions copts;
  copts.parallelism = 4;
  auto c = client.Compact("uuid", IndexType::kTrie, copts);
  store.SetFailurePoint(nullptr);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(fired);
  EXPECT_EQ(c.value().replaced.size(), 3u);

  ASSERT_TRUE(client.CheckInvariants().ok());
  // Both the merged trie and the racing FM index answer queries.
  auto u = client.SearchUuid("uuid", Slice(UuidFor(222)), 3);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u.value().matches.size(), 1u);
  EXPECT_EQ(u.value().files_scanned, 0u);
  auto s = client.SearchSubstring("body", "token3", 500);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_FALSE(s.value().matches.empty());
  EXPECT_EQ(s.value().files_scanned, 0u);
}

/// Search answers reduced to a store-layout-independent form.
using MatchSet = std::multiset<std::pair<uint64_t, std::string>>;

MatchSet Reduce(const SearchResult& r) {
  MatchSet out;
  for (const RowMatch& m : r.matches) out.emplace(m.row, m.value);
  return out;
}

struct MaintenanceAnswers {
  std::vector<MatchSet> uuid_hits;
  MatchSet substring_hits;
  uint64_t substring_count = 0;
};

/// Full maintenance cycle — parallel index, compact, vacuum — against an
/// arbitrary store stack, recording final answers.
void RunMaintenanceCycle(objectstore::ObjectStore* store, SimulatedClock* clock,
                         size_t parallelism, MaintenanceAnswers* answers) {
  auto table = Table::Create(store, "lake/mx", MakeSchema(), WriterOpts())
                   .MoveValue();
  Rottnest client(store, table.get(), Options());
  MaintenanceOptions opts;
  opts.parallelism = parallelism;
  for (int r = 0; r < 3; ++r) {
    AppendRows(table.get(), static_cast<uint64_t>(r) * 150, 150);
    ASSERT_TRUE(client.Index("uuid", IndexType::kTrie, opts).ok());
    ASSERT_TRUE(client.Index("body", IndexType::kFm, opts).ok());
    clock->Advance(1'000'000);
  }
  ASSERT_TRUE(client.Compact("uuid", IndexType::kTrie, opts).ok());
  ASSERT_TRUE(client.Compact("body", IndexType::kFm, opts).ok());
  clock->Advance(Options().index_timeout_micros + 60LL * 1'000'000);
  auto latest = table->GetSnapshot();
  ASSERT_TRUE(latest.ok());
  ASSERT_TRUE(client.Vacuum(latest.value().version, opts).ok());
  ASSERT_TRUE(client.CheckInvariants().ok());

  for (uint64_t id : {0ULL, 222ULL, 449ULL}) {
    std::string u = UuidFor(id);
    auto r = client.SearchUuid("uuid", Slice(u), 10);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    answers->uuid_hits.push_back(Reduce(r.value()));
  }
  auto s = client.SearchSubstring("body", "token3", 500);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  answers->substring_hits = Reduce(s.value());
  auto c = client.CountSubstring("body", "token3");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  answers->substring_count = c.value();
}

TEST(MaintenanceChaosTest, ParallelMaintenanceUnderChaosMatchesSerialRun) {
  // Reference: serial pipeline, fault-free store.
  MaintenanceAnswers expected;
  {
    SimulatedClock clock;
    InMemoryObjectStore store(&clock);
    RunMaintenanceCycle(&store, &clock, /*parallelism=*/1, &expected);
  }
  ASSERT_FALSE(::testing::Test::HasFailure());
  for (const MatchSet& hits : expected.uuid_hits) EXPECT_EQ(hits.size(), 1u);
  EXPECT_FALSE(expected.substring_hits.empty());

  // Chaos: width-8 pipelines over a 10% transient-fault / 10% ambiguous-put
  // store behind retries. The injected faults land inside concurrent
  // staging/prefetch threads; the final answers must not notice.
  MaintenanceAnswers actual;
  SimulatedClock clock;
  InMemoryObjectStore inner(&clock);
  FaultOptions fopts;
  fopts.seed = 20260806;
  fopts.transient_fault_rate = 0.1;
  fopts.ambiguous_put_rate = 0.1;
  FaultInjectingStore faulty(&inner, fopts);
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.max_backoff_micros = 8000;
  RetryingStore store(&faulty, policy, SimulatedSleeper(&clock));
  RunMaintenanceCycle(&store, &clock, /*parallelism=*/8, &actual);
  ASSERT_FALSE(::testing::Test::HasFailure());

  EXPECT_GT(faulty.fault_stats().transient_injected.load(), 0u);
  EXPECT_GT(store.retry_stats().retries.load(), 0u);
  EXPECT_EQ(store.retry_stats().budget_exhausted.load(), 0u);
  EXPECT_EQ(actual.uuid_hits, expected.uuid_hits);
  EXPECT_EQ(actual.substring_hits, expected.substring_hits);
  EXPECT_EQ(actual.substring_count, expected.substring_count);
}

// ---------------------------------------------------------------------------
// Crash-schedule exploration over the PIPELINE stages: every prefix of the
// parallel operation's storage footprint must leave the invariants intact
// and converge on retry — same bar the serial explorer sets, now with the
// crash landing inside concurrent staging/prefetch threads.

struct CrashWorld {
  SimulatedClock clock;
  InMemoryObjectStore inner{&clock};
  FaultInjectingStore store{&inner};
  std::unique_ptr<Table> table;
  std::unique_ptr<Rottnest> client;

  CrashWorld() {
    table = Table::Create(&store, "lake/pc", MakeSchema(), WriterOpts())
                .MoveValue();
    client = std::make_unique<Rottnest>(&store, table.get(), Options());
  }

  void Append(uint64_t first_id, size_t rows) {
    AppendRows(table.get(), first_id, rows);
  }
};

struct PipelineScenario {
  const char* name;
  std::function<void(CrashWorld&)> setup;
  std::function<Status(CrashWorld&)> victim;
  uint64_t probe_id;
};

size_t ExplorePipelineScenario(const PipelineScenario& sc) {
  // The parallel pipeline reorders store ops across threads, but the SET of
  // ops is deterministic, so the fault-free op count still bounds the
  // schedule space.
  uint64_t num_ops = 0;
  {
    CrashWorld w;
    sc.setup(w);
    uint64_t before = w.store.op_count();
    Status s = sc.victim(w);
    EXPECT_TRUE(s.ok()) << sc.name << " fault-free: " << s.ToString();
    if (!s.ok()) return 0;
    num_ops = w.store.op_count() - before;
  }
  EXPECT_GT(num_ops, 0u) << sc.name;

  size_t schedules = 0;
  for (uint64_t n = 0; n < num_ops; ++n) {
    for (CrashMode mode : {CrashMode::kBeforeOp, CrashMode::kAfterOp}) {
      SCOPED_TRACE(std::string(sc.name) + " crash at pipeline op " +
                   std::to_string(n) +
                   (mode == CrashMode::kBeforeOp ? " (before)" : " (after)"));
      CrashWorld w;
      sc.setup(w);
      w.store.SetCrashAtOp(w.store.op_count() + n, mode);

      Status s = sc.victim(w);
      EXPECT_FALSE(s.ok());
      EXPECT_TRUE(w.store.crashed());

      w.store.ClearCrash();
      Status inv = w.client->CheckInvariants();
      EXPECT_TRUE(inv.ok()) << inv.ToString();

      Status retry = sc.victim(w);
      EXPECT_TRUE(retry.ok()) << retry.ToString();
      Status inv2 = w.client->CheckInvariants();
      EXPECT_TRUE(inv2.ok()) << inv2.ToString();

      auto result =
          w.client->SearchUuid("uuid", Slice(UuidFor(sc.probe_id)), 3);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (result.ok()) {
        EXPECT_EQ(result.value().matches.size(), 1u);
      }
      ++schedules;
    }
  }
  return schedules;
}

TEST(MaintenancePipelineCrashTest, ParallelIndexSurvivesEveryCrashPoint) {
  PipelineScenario sc;
  sc.name = "index-pipeline";
  sc.setup = [](CrashWorld& w) {
    w.Append(0, 40);
    w.Append(40, 40);
  };
  sc.victim = [](CrashWorld& w) {
    MaintenanceOptions opts;
    opts.parallelism = 4;
    return w.client->Index("uuid", IndexType::kTrie, opts).status();
  };
  sc.probe_id = 55;
  size_t schedules = ExplorePipelineScenario(sc);
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

TEST(MaintenancePipelineCrashTest, ParallelCompactSurvivesEveryCrashPoint) {
  PipelineScenario sc;
  sc.name = "compact-pipeline";
  sc.setup = [](CrashWorld& w) {
    for (int i = 0; i < 3; ++i) {
      w.Append(static_cast<uint64_t>(i) * 40, 40);
      ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
      w.clock.Advance(1'000'000);
    }
  };
  sc.victim = [](CrashWorld& w) {
    MaintenanceOptions opts;
    opts.parallelism = 4;
    return w.client->Compact("uuid", IndexType::kTrie, opts).status();
  };
  sc.probe_id = 90;
  size_t schedules = ExplorePipelineScenario(sc);
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

}  // namespace
}  // namespace rottnest::core
