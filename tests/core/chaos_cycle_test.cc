// Chaos testing of the full protocol cycle: the ISSUE's acceptance bar is
// that a seeded 10% transient-fault / 10% ambiguous-write object store,
// wrapped in the retrying store, completes index -> search -> compact ->
// vacuum with EXACTLY the same search answers as a fault-free run — plus
// graceful degradation tests for searches over corrupt or missing index
// objects (§V: a broken index must demote its files to a brute scan, never
// break the query).
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::FaultInjectingStore;
using objectstore::FaultOptions;
using objectstore::InMemoryObjectStore;
using objectstore::RetryingStore;
using objectstore::RetryPolicy;
using objectstore::SimulatedSleeper;

constexpr uint32_t kDim = 16;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  s.columns.push_back({"vec", PhysicalType::kFixedLenByteArray, kDim * 4});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0xabcdef);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

std::vector<float> VecFor(uint64_t id) {
  Random rng(id * 7 + 3);
  std::vector<float> v(kDim);
  uint64_t cluster = id % 8;
  for (uint32_t d = 0; d < kDim; ++d) {
    v[d] = static_cast<float>((cluster == d % 8 ? 50.0 : 0.0) +
                              rng.NextGaussian() * 0.1);
  }
  return v;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/t";
  options.ivfpq.nlist = 16;
  options.ivfpq.num_subquantizers = 4;
  options.fm.block_size = 2048;
  options.fm.sample_rate = 8;
  // Generous: retry backoff advances the simulated clock DURING index ops,
  // and the timeout abort must not fire because of our own backoff waits.
  options.index_timeout_micros = 600LL * 1'000'000;
  return options;
}

format::WriterOptions WriterOpts() {
  format::WriterOptions w;
  w.target_page_bytes = 2048;
  w.target_row_group_bytes = 32 << 10;
  return w;
}

void AppendRows(Table* table, uint64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  ColumnVector::Strings bodies;
  format::FlatFixed vecs;
  vecs.elem_size = kDim * 4;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t id = first_id + i;
    std::string u = UuidFor(id);
    uuids.Append(Slice(u));
    bodies.push_back("row " + std::to_string(id) + " token" +
                     std::to_string(id % 7) + " payload");
    std::vector<float> v = VecFor(id);
    vecs.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()), kDim * 4));
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(bodies));
  b.columns.emplace_back(std::move(vecs));
  ASSERT_TRUE(table->Append(b).ok());
}

/// Search answers reduced to a comparable form. File paths are excluded —
/// object names may embed timestamps, and the chaos world's clock runs
/// ahead of the reference world's by the accumulated backoff.
using MatchSet = std::multiset<std::pair<uint64_t, std::string>>;

MatchSet Reduce(const SearchResult& r) {
  MatchSet out;
  for (const RowMatch& m : r.matches) out.emplace(m.row, m.value);
  return out;
}

/// The answers collected by one full protocol cycle.
struct CycleAnswers {
  std::vector<MatchSet> uuid_hits;
  MatchSet substring_hits;
  uint64_t substring_count = 0;
  MatchSet vector_hits;
  std::vector<MatchSet> post_vacuum_uuid_hits;
  MatchSet post_vacuum_substring_hits;
  uint64_t post_vacuum_count = 0;
};

/// Runs the full index -> search -> compact -> vacuum cycle against an
/// arbitrary store stack and records every search answer. `cache_bytes > 0`
/// enables the client-side read-through cache on top of the stack.
void RunCycle(objectstore::ObjectStore* store, SimulatedClock* clock,
              CycleAnswers* answers, uint64_t cache_bytes = 0) {
  auto table = Table::Create(store, "lake/t", MakeSchema(), WriterOpts())
                   .MoveValue();
  RottnestOptions options = Options();
  options.cache_bytes = cache_bytes;
  Rottnest client(store, table.get(), options);

  AppendRows(table.get(), 0, 200);
  AppendRows(table.get(), 200, 200);
  ASSERT_TRUE(client.Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client.Index("body", IndexType::kFm).ok());
  ASSERT_TRUE(client.Index("vec", IndexType::kIvfPq).ok());

  for (uint64_t id : {0ULL, 77ULL, 399ULL}) {
    std::string u = UuidFor(id);
    auto r = client.SearchUuid("uuid", Slice(u), 10);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    answers->uuid_hits.push_back(Reduce(r.value()));
  }
  {
    auto r = client.SearchSubstring("body", "token3", 500);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    answers->substring_hits = Reduce(r.value());
    auto c = client.CountSubstring("body", "token3");
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    answers->substring_count = c.value();
    std::vector<float> q = VecFor(5);
    SearchOptions vopts;
    vopts.params.vector = {/*nprobe=*/16, /*refine=*/64};
    auto v = client.SearchVector("vec", q.data(), kDim, 10, vopts);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    answers->vector_hits = Reduce(v.value());
  }

  // Grow, re-index, compact the small trie indexes, vacuum the replaced
  // objects once they age past the timeout.
  AppendRows(table.get(), 400, 200);
  ASSERT_TRUE(client.Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client.Index("body", IndexType::kFm).ok());
  ASSERT_TRUE(client.Compact("uuid", IndexType::kTrie).ok());
  clock->Advance(Options().index_timeout_micros + 60LL * 1'000'000);
  auto latest = table->GetSnapshot();
  ASSERT_TRUE(latest.ok());
  ASSERT_TRUE(client.Vacuum(latest.value().version).ok());

  for (uint64_t id : {3ULL, 250ULL, 567ULL}) {
    std::string u = UuidFor(id);
    auto r = client.SearchUuid("uuid", Slice(u), 10);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    answers->post_vacuum_uuid_hits.push_back(Reduce(r.value()));
  }
  auto r = client.SearchSubstring("body", "token5", 500);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  answers->post_vacuum_substring_hits = Reduce(r.value());
  auto c = client.CountSubstring("body", "token5");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  answers->post_vacuum_count = c.value();

  ASSERT_TRUE(client.CheckInvariants().ok());
}

TEST(ChaosCycleTest, FullCycleMatchesFaultFreeRun) {
  // Reference: fault-free world.
  CycleAnswers expected;
  {
    SimulatedClock clock;
    InMemoryObjectStore store(&clock);
    RunCycle(&store, &clock, &expected);
  }
  ASSERT_FALSE(::testing::Test::HasFailure());
  // Every probed id exists exactly once.
  for (const MatchSet& hits : expected.uuid_hits) EXPECT_EQ(hits.size(), 1u);
  EXPECT_FALSE(expected.substring_hits.empty());
  EXPECT_GT(expected.substring_count, 0u);
  EXPECT_FALSE(expected.vector_hits.empty());

  // Chaos: 10% transient faults + 10% ambiguous writes, absorbed by the
  // retrying store over simulated time.
  CycleAnswers actual;
  SimulatedClock clock;
  InMemoryObjectStore inner(&clock);
  FaultOptions fopts;
  fopts.seed = 20260809;
  fopts.transient_fault_rate = 0.1;
  fopts.ambiguous_put_rate = 0.1;
  // Latency injection on top of the faults (simulated-time sleeper, so the
  // run stays wall-instant): the cycle must stay byte-identical on a slow,
  // heavy-tailed store, not just an instant one.
  fopts.base_latency_micros = 200;
  fopts.slow_read_rate = 0.05;
  fopts.slow_read_latency_micros = 20'000;
  FaultInjectingStore faulty(&inner, fopts);
  faulty.SetSleeper(SimulatedSleeper(&clock));
  RetryPolicy policy;  // 8 attempts: P(8 consecutive faults) ~ 1e-8.
  policy.initial_backoff_micros = 1000;
  policy.max_backoff_micros = 8000;
  RetryingStore store(&faulty, policy, SimulatedSleeper(&clock));
  RunCycle(&store, &clock, &actual);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // The cycle really ran through faults, and the budget never ran dry.
  EXPECT_GT(faulty.fault_stats().transient_injected.load(), 0u);
  EXPECT_GT(faulty.fault_stats().ambiguous_injected.load(), 0u);
  EXPECT_GT(store.retry_stats().retries.load(), 0u);
  EXPECT_EQ(store.retry_stats().budget_exhausted.load(), 0u);

  // Identical answers, byte for byte.
  EXPECT_EQ(actual.uuid_hits, expected.uuid_hits);
  EXPECT_EQ(actual.substring_hits, expected.substring_hits);
  EXPECT_EQ(actual.substring_count, expected.substring_count);
  EXPECT_EQ(actual.vector_hits, expected.vector_hits);
  EXPECT_EQ(actual.post_vacuum_uuid_hits, expected.post_vacuum_uuid_hits);
  EXPECT_EQ(actual.post_vacuum_substring_hits,
            expected.post_vacuum_substring_hits);
  EXPECT_EQ(actual.post_vacuum_count, expected.post_vacuum_count);
}

TEST(ChaosCycleTest, CachedCycleMatchesUncachedUnderChaos) {
  // The same chaos stack twice — once bare, once with the client cache on
  // top. The cache changes which physical ops reach the faulty store (hits
  // never do), so the injected faults land on different requests in the two
  // worlds; the answers must be identical regardless, and the protocol
  // invariants must hold with the cache in the read path.
  auto run = [](uint64_t cache_bytes, CycleAnswers* answers) {
    SimulatedClock clock;
    InMemoryObjectStore inner(&clock);
    FaultOptions fopts;
    fopts.seed = 20260806;
    fopts.transient_fault_rate = 0.1;
    fopts.ambiguous_put_rate = 0.1;
    fopts.base_latency_micros = 200;  // Latency chaos rides along here too.
    fopts.slow_read_rate = 0.05;
    fopts.slow_read_latency_micros = 20'000;
    FaultInjectingStore faulty(&inner, fopts);
    faulty.SetSleeper(SimulatedSleeper(&clock));
    RetryPolicy policy;
    policy.initial_backoff_micros = 1000;
    policy.max_backoff_micros = 8000;
    RetryingStore store(&faulty, policy, SimulatedSleeper(&clock));
    RunCycle(&store, &clock, answers, cache_bytes);
    EXPECT_GT(faulty.fault_stats().transient_injected.load(), 0u);
  };
  CycleAnswers uncached, cached;
  run(0, &uncached);
  ASSERT_FALSE(::testing::Test::HasFailure());
  run(32ull << 20, &cached);
  ASSERT_FALSE(::testing::Test::HasFailure());

  EXPECT_EQ(cached.uuid_hits, uncached.uuid_hits);
  EXPECT_EQ(cached.substring_hits, uncached.substring_hits);
  EXPECT_EQ(cached.substring_count, uncached.substring_count);
  EXPECT_EQ(cached.vector_hits, uncached.vector_hits);
  EXPECT_EQ(cached.post_vacuum_uuid_hits, uncached.post_vacuum_uuid_hits);
  EXPECT_EQ(cached.post_vacuum_substring_hits,
            uncached.post_vacuum_substring_hits);
  EXPECT_EQ(cached.post_vacuum_count, uncached.post_vacuum_count);
}

// ---------------------------------------------------------------------------
// Graceful degradation: corrupt / missing index objects demote their covered
// files to a brute scan instead of failing the query.

class DegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = Table::Create(&store_, "lake/t", MakeSchema(), WriterOpts())
                 .MoveValue();
    client_ = std::make_unique<Rottnest>(&store_, table_.get(), Options());
    AppendRows(table_.get(), 0, 300);
  }

  /// The single committed index entry's object key.
  std::string OnlyIndexPath() {
    auto entries = client_->metadata().ReadAll();
    EXPECT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), 1u);
    return entries.value()[0].index_path;
  }

  void CorruptObject(const std::string& key) {
    Buffer buf;
    ASSERT_TRUE(store_.Get(key, &buf).ok());
    ASSERT_GT(buf.size(), 30u);
    buf[buf.size() / 3] ^= 0xff;  // Mid-file bit flips hit a checksum.
    ASSERT_TRUE(store_.Put(key, Slice(buf)).ok());
  }

  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  std::unique_ptr<Table> table_;
  std::unique_ptr<Rottnest> client_;
};

TEST_F(DegradationTest, CorruptTrieIndexDegradesToScan) {
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  std::string path = OnlyIndexPath();

  std::string u = UuidFor(123);
  auto healthy = client_->SearchUuid("uuid", Slice(u), 10);
  ASSERT_TRUE(healthy.ok());
  ASSERT_EQ(healthy.value().matches.size(), 1u);
  EXPECT_EQ(healthy.value().indexes_degraded, 0u);

  CorruptObject(path);
  auto degraded = client_->SearchUuid("uuid", Slice(u), 10);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_EQ(degraded.value().matches.size(), 1u);
  EXPECT_EQ(degraded.value().matches[0].value, u);
  EXPECT_EQ(degraded.value().indexes_degraded, 1u);
  ASSERT_EQ(degraded.value().degraded_indexes.size(), 1u);
  EXPECT_EQ(degraded.value().degraded_indexes[0], path);
  EXPECT_EQ(degraded.value().indexes_queried, 0u);
  EXPECT_GE(degraded.value().files_scanned, 1u);
  // Search degrades gracefully, but the auditor still flags the corrupt
  // object (the Consistency check opens every referenced index).
  EXPECT_FALSE(client_->CheckInvariants().ok());
}

TEST_F(DegradationTest, MissingIndexObjectDegradesToScan) {
  ASSERT_TRUE(client_->Index("uuid", IndexType::kTrie).ok());
  std::string path = OnlyIndexPath();
  ASSERT_TRUE(store_.Delete(path).ok());

  std::string u = UuidFor(42);
  auto r = client_->SearchUuid("uuid", Slice(u), 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().matches.size(), 1u);
  EXPECT_EQ(r.value().indexes_degraded, 1u);
  // A MISSING referenced object, unlike a corrupt one, IS an Existence
  // invariant violation — search degrades, but the auditor reports it.
  EXPECT_FALSE(client_->CheckInvariants().ok());
}

TEST_F(DegradationTest, SubstringSearchAndCountSurviveCorruption) {
  ASSERT_TRUE(client_->Index("body", IndexType::kFm).ok());
  std::string path = OnlyIndexPath();

  auto before = client_->SearchSubstring("body", "token4", 500);
  ASSERT_TRUE(before.ok());
  auto count_before = client_->CountSubstring("body", "token4");
  ASSERT_TRUE(count_before.ok());
  EXPECT_GT(count_before.value(), 0u);

  CorruptObject(path);
  auto after = client_->SearchSubstring("body", "token4", 500);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().indexes_degraded, 1u);
  EXPECT_EQ(Reduce(after.value()), Reduce(before.value()));
  auto count_after = client_->CountSubstring("body", "token4");
  ASSERT_TRUE(count_after.ok()) << count_after.status().ToString();
  EXPECT_EQ(count_after.value(), count_before.value());
}

TEST_F(DegradationTest, VectorSearchSurvivesCorruption) {
  ASSERT_TRUE(client_->Index("vec", IndexType::kIvfPq).ok());
  std::string path = OnlyIndexPath();
  CorruptObject(path);

  std::vector<float> q = VecFor(9);
  SearchOptions vopts;
  vopts.params.vector = {/*nprobe=*/16, /*refine=*/32};
  auto r = client_->SearchVector("vec", q.data(), kDim, 5, vopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().indexes_degraded, 1u);
  // The degraded path exact-scans the covered file, so the true nearest
  // neighbours come back even without the index.
  ASSERT_FALSE(r.value().matches.empty());
  EXPECT_EQ(r.value().matches[0].row, 9u);
}

}  // namespace
}  // namespace rottnest::core
